//! # dagsched
//!
//! A reproduction of *"Scheduling Parallelizable Jobs Online to Maximize
//! Throughput"* (Agrawal, Li, Lu, Moseley — SPAA 2017): online scheduling of
//! DAG-structured parallel jobs on `m` identical processors to maximize
//! throughput (profit of jobs finished by their deadlines) or general
//! non-increasing profit.
//!
//! This facade crate re-exports the whole workspace; see the README for the
//! architecture and `examples/quickstart.rs` for a three-minute tour.
//!
//! ```
//! use dagsched::prelude::*;
//!
//! // A workload of mixed DAG jobs with Theorem-2 deadline slack...
//! let inst = WorkloadGen::standard(8, 40, 42).generate().unwrap();
//! // ...scheduled online by the paper's algorithm S...
//! let mut s = SchedulerS::with_epsilon(8, 1.0);
//! let result = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
//! // ...earns profit compared against an upper bound on OPT.
//! let ub = fractional_ub(&inst, Speed::ONE);
//! assert!(result.total_profit <= ub);
//! ```

#![warn(missing_docs)]

pub use dagsched_core as core;
pub use dagsched_dag as dag;
pub use dagsched_engine as engine;
pub use dagsched_experiments as experiments;
pub use dagsched_metrics as metrics;
pub use dagsched_opt as opt;
pub use dagsched_sched as sched;
pub use dagsched_verify as verify;
pub use dagsched_workload as workload;

/// The common imports for working with the library.
pub mod prelude {
    pub use dagsched_core::{AlgoParams, JobId, NodeId, Rng64, SchedError, Speed, Time, Work};
    pub use dagsched_dag::{gen as daggen, DagBuilder, DagJobSpec, UnfoldState};
    pub use dagsched_engine::{
        simulate, simulate_observed, JobInfo, JobStatus, NodePick, NullObserver, Observers,
        OnlineScheduler, SimConfig, SimDriver, SimObserver, SimResult, TickView, Trace, TraceStats,
    };
    pub use dagsched_experiments::{SchedKind, SweepGrid, SweepResult};
    pub use dagsched_opt::{
        adversarial_makespan, clairvoyant_edf_profit, exact_subset_ub, fractional_ub, lpf_makespan,
    };
    pub use dagsched_sched::{
        federated_assignment, Edf, FederatedScheduler, Fifo, GreedyDensity, LeastLaxity,
        RandomOrder, SNoAdmission, SchedulerS, SchedulerSProfit,
    };
    pub use dagsched_verify::{
        AllotmentChecker, BandCapacityChecker, DeltaGoodChecker, EventLog, InvariantSuite,
        WorkConservationChecker,
    };
    pub use dagsched_workload::{
        ArrivalProcess, ClusterTraceGen, DagFamily, DeadlinePolicy, Instance, JobSpec,
        ProfitPolicy, ProfitShape, SporadicTask, SporadicTaskSet, StepProfitFn, WorkloadGen,
    };
}
