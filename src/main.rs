//! The `dagsched` command-line entry point.
//!
//! Parsing and execution are unit-tested in the libraries
//! (`dagsched_experiments::sweep`, `dagsched_bench::cli`); this binary only
//! dispatches and sets the exit code.

use std::process::ExitCode;

const USAGE: &str = "\
usage: dagsched <command> [options]

commands:
  sweep  run a scheduler sweep grid sharded over worker threads
           (see `dagsched sweep help`)
  bench  run the hot-path perf harness at smoke sizes and validate
           its report schema (see `dagsched bench help`)
  fuzz   coverage-guided adversarial workload fuzzing against the
           invariant and differential oracles (see `dagsched fuzz help`)
  help   print this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => {
            let report = dagsched_experiments::sweep::parse(&args[1..])
                .and_then(|cmd| dagsched_experiments::sweep::execute(&cmd));
            match report {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dagsched sweep: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench") => {
            let report = dagsched_bench::cli::parse(&args[1..])
                .and_then(|cmd| dagsched_bench::cli::execute(&cmd));
            match report {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dagsched bench: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("fuzz") => {
            let report = dagsched_fuzz::cli::parse(&args[1..])
                .and_then(|cmd| dagsched_fuzz::cli::execute(&cmd));
            match report {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dagsched fuzz: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("dagsched: unknown command {other:?}; try `help`");
            ExitCode::FAILURE
        }
    }
}
