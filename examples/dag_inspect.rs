//! Inspecting job structure: parallelism profiles, critical paths and
//! Graphviz export for the DAGs this library schedules — from the paper's
//! Figure 1 to a tiled Cholesky factorization.
//!
//! ```sh
//! cargo run --example dag_inspect          # summary + profiles
//! cargo run --example dag_inspect -- --dot # also dump cholesky.dot
//! ```

use dagsched::dag::analysis::{critical_nodes, degree_stats, max_parallelism, parallelism_profile};
use dagsched::dag::dot;
use dagsched::dag::hpc::{self, KernelCosts};
use dagsched::prelude::*;

fn inspect(name: &str, dag: DagJobSpec) {
    let shared = dag.into_shared();
    let profile = parallelism_profile(&shared);
    let stats = degree_stats(&shared);
    println!(
        "\n{name}: {} nodes, {} edges, W = {}, L = {}, avg parallelism {:.1}, peak {}",
        shared.num_nodes(),
        shared.num_edges(),
        shared.total_work(),
        shared.span(),
        shared.parallelism(),
        max_parallelism(&shared),
    );
    println!(
        "  degrees: max in {}, max out {}, {} sources, {} sinks; {} critical nodes",
        stats.max_in,
        stats.max_out,
        stats.sources,
        stats.sinks,
        critical_nodes(&shared).len()
    );
    // A coarse sparkline of the ideal-execution width over time.
    let buckets = 40.min(profile.len());
    if buckets > 0 {
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let peak = *profile.iter().max().expect("non-empty") as f64;
        let line: String = (0..buckets)
            .map(|b| {
                let lo = b * profile.len() / buckets;
                let hi = ((b + 1) * profile.len() / buckets).max(lo + 1);
                let avg = profile[lo..hi].iter().sum::<u64>() as f64 / (hi - lo) as f64;
                glyphs[((avg / peak) * (glyphs.len() - 1) as f64).round() as usize]
            })
            .collect();
        println!("  width over time: [{line}]");
    }
}

fn main() {
    let dump_dot = std::env::args().any(|a| a == "--dot");

    inspect("Figure-1 adversarial job (m=8)", daggen::fig1(8, 32, 1));
    inspect("Figure-2 chain-then-block", daggen::fig2(16, 128, 2));
    inspect("fork-join (4 segments x 8)", daggen::fork_join(4, 8, 2));
    inspect(
        "tiled Cholesky (T=6)",
        hpc::cholesky(6, KernelCosts::default()),
    );
    inspect("2-D wavefront (12x12)", hpc::wavefront(12, 12, 1));

    if dump_dot {
        let chol = hpc::cholesky(4, KernelCosts::default());
        let text = dot::to_dot(&chol, "cholesky4");
        std::fs::write("cholesky.dot", &text).expect("writable cwd");
        println!(
            "\nwrote cholesky.dot ({} bytes) — render with `dot -Tsvg cholesky.dot`",
            text.len()
        );
    } else {
        println!("\n(pass --dot to export a Graphviz file of the T=4 Cholesky DAG)");
    }
}
