//! An overloaded render-farm scenario: bursts of parallel jobs with mixed
//! value arrive faster than the machine can possibly process. Policies that
//! chase deadlines (EDF/LLF) or arrival order (FIFO) thrash; the paper's
//! admission-controlled scheduler S keeps completing the work it commits
//! to.
//!
//! ```sh
//! cargo run --example overloaded_server
//! ```

use dagsched::prelude::*;

fn main() {
    let m = 16;
    // Bursty arrivals: every 40 ticks, a batch of 12 jobs lands at once
    // (frames to render: fork-join pipelines and wide shading blocks), with
    // profits spread over a 16:1 density range.
    let instance = WorkloadGen {
        m,
        n_jobs: 180,
        seed: 7,
        arrivals: ArrivalProcess::Bursty {
            burst_size: 12,
            gap: 40,
        },
        family: DagFamily::Mixed(vec![
            (
                2.0,
                DagFamily::ForkJoin {
                    segments: (2, 4),
                    width: (4, 12),
                    node_work: (1, 4),
                },
            ),
            (
                2.0,
                DagFamily::Block {
                    width: (16, 48),
                    node_work: (1, 4),
                },
            ),
            (
                1.0,
                DagFamily::Chain {
                    len: (4, 10),
                    node_work: (2, 6),
                },
            ),
        ]),
        deadlines: DeadlinePolicy::UniformSlack { lo: 2.0, hi: 3.0 },
        profits: ProfitPolicy::ZipfDensity {
            classes: 16,
            s: 1.1,
            base: 16.0,
        },
        shape: ProfitShape::Deadline,
    }
    .generate()
    .expect("valid configuration");

    let stats = instance.stats();
    println!(
        "render farm: m={m}, {} jobs, offered load {:.1}x capacity\n",
        stats.n_jobs, stats.load_factor
    );

    let ub = fractional_ub(&instance, Speed::ONE);
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>8}",
        "policy", "profit", "completed", "expired", "of UB"
    );
    let run = |name: &str, sched: &mut dyn OnlineScheduler| {
        let r = simulate(&instance, sched, &SimConfig::default()).expect("valid run");
        println!(
            "{:<10} {:>8} {:>10} {:>9} {:>7.1}%",
            name,
            r.total_profit,
            r.completed(),
            r.expired(),
            100.0 * r.total_profit as f64 / ub as f64
        );
    };
    run("S(e=1)", &mut SchedulerS::with_epsilon(m, 1.0));
    run("HDF", &mut GreedyDensity::new(m));
    run("EDF", &mut Edf::new(m));
    run("LLF", &mut LeastLaxity::new(m));
    run("FIFO", &mut Fifo::new(m));
    run("RANDOM", &mut RandomOrder::new(m, 3));

    println!(
        "\nUnder overload, S's density-band admission control picks a \
         completable high-value subset up front\ninstead of starting \
         everything and finishing little — the behaviour Theorem 2 bounds."
    );
}
