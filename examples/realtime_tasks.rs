//! Sporadic real-time DAG tasks: hard guarantees (federated scheduling,
//! from the paper's related work) versus online throughput (the paper's
//! scheduler S), on the same recurring task set.
//!
//! ```sh
//! cargo run --example realtime_tasks
//! ```

use dagsched::prelude::*;
use dagsched::sched::{federated_assignment, FederatedScheduler};
use dagsched::workload::sporadic::{SporadicTask, SporadicTaskSet};

fn task(dag: DagJobSpec, period: u64, d: u64) -> SporadicTask {
    let w = dag.total_work().units();
    SporadicTask {
        dag: dag.into_shared(),
        period,
        rel_deadline: Time(d),
        profit: w,
        jitter: period / 10,
    }
}

fn completion_pct(r: &SimResult) -> f64 {
    100.0 * r.completed() as f64 / r.outcomes.len() as f64
}

fn main() {
    let m = 8;
    // A control task set: one heavy sensor-fusion DAG, three light ones.
    let set = SporadicTaskSet {
        m,
        tasks: vec![
            task(daggen::block(24, 2), 120, 30), // heavy: W=48 > D=30
            task(daggen::fork_join(2, 3, 2), 40, 30),
            task(daggen::chain(5, 2), 25, 20),
            task(daggen::diamond(4, 3), 60, 35),
        ],
        horizon: Time(2_000),
        seed: 7,
    };
    println!(
        "task set: {} tasks, total utilization {:.2} of m={m}",
        set.tasks.len(),
        set.total_utilization()
    );
    for (i, t) in set.tasks.iter().enumerate() {
        println!(
            "  task {i}: W={} L={} D={} T={} {} util={:.2}",
            t.dag.total_work(),
            t.dag.span(),
            t.rel_deadline,
            t.period,
            if t.is_heavy() { "HEAVY" } else { "light" },
            t.utilization()
        );
    }

    let (inst, task_of_job) = set.generate().expect("valid set");
    println!(
        "\nunrolled: {} job instances over {} ticks",
        inst.len(),
        2_000
    );

    match federated_assignment(&set) {
        Some(a) => {
            println!(
                "federated test: ACCEPTED ({} dedicated + {} shared processors)",
                a.processors_used() - a.shared_count,
                a.shared_count
            );
            let mut fed = FederatedScheduler::new(a, task_of_job);
            let r = simulate(&inst, &mut fed, &SimConfig::default()).expect("valid run");
            println!(
                "  federated execution: {:.1}% instances completed ({} misses — guaranteed 0)",
                completion_pct(&r),
                r.outcomes.len() - r.completed()
            );
        }
        None => println!("federated test: REJECTED (would need more processors)"),
    }

    for (name, mut sched) in [
        (
            "S-wc",
            Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving())
                as Box<dyn OnlineScheduler>,
        ),
        ("EDF", Box::new(Edf::new(m))),
    ] {
        let r = simulate(&inst, sched.as_mut(), &SimConfig::default()).expect("valid run");
        println!(
            "  {name}: {:.1}% instances completed, profit {}",
            completion_pct(&r),
            r.total_profit
        );
    }

    println!(
        "\nFederated scheduling gives a yes/no guarantee; the paper's throughput \
         framing keeps earning\nwhen the answer is no (raise the load and re-run \
         to see the acceptance flip)."
    );
}
