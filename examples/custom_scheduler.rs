//! Implementing your own semi-non-clairvoyant scheduler against the engine
//! API — everything a policy can legally observe flows through
//! `on_arrival`/`on_completion`/`on_expiry` and the per-tick `TickView`.
//!
//! The toy policy here, "shortest remaining budget first" (SRBF), tracks
//! each job's `(W−L)/m + L` estimate and favours jobs it believes are
//! nearly done — a plausible heuristic a practitioner might try. The
//! example pits it against the paper's S on the same workload.
//!
//! ```sh
//! cargo run --example custom_scheduler
//! ```

use dagsched::prelude::*;
use std::collections::HashMap;

/// Shortest-estimated-budget-first: a work-conserving policy ordering jobs
/// by their arrival-time `brent = (W−L)/m + L` estimate, tie-broken FIFO.
struct Srbf {
    m: u32,
    /// (estimate, arrival sequence) per alive job.
    alive: HashMap<JobId, (f64, u64)>,
    seq: u64,
}

impl Srbf {
    fn new(m: u32) -> Srbf {
        Srbf {
            m,
            alive: HashMap::new(),
            seq: 0,
        }
    }
}

impl OnlineScheduler for Srbf {
    fn name(&self) -> String {
        "SRBF".into()
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let brent = (w - l) / self.m as f64 + l;
        self.alive.insert(info.id, (brent, self.seq));
        self.seq += 1;
    }

    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.remove(&id);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.remove(&id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Vec<(JobId, u32)> {
        let mut order: Vec<(JobId, f64, u64)> = view
            .jobs()
            .iter()
            .filter_map(|&(id, _)| self.alive.get(&id).map(|&(b, s)| (id, b, s)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)));
        let mut left = view.m;
        let mut out = Vec::new();
        for (id, _, _) in order {
            if left == 0 {
                break;
            }
            let ready = view.ready_count(id).unwrap_or(0);
            let k = ready.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        out
    }
}

fn main() {
    let m = 8;
    let instance = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(3.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(2.0),
        profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 8.0 },
        ..WorkloadGen::standard(m, 100, 123)
    }
    .generate()
    .expect("valid configuration");

    let ub = fractional_ub(&instance, Speed::ONE);
    println!(
        "{:<8} {:>8} {:>10} {:>8}",
        "policy", "profit", "completed", "of UB"
    );
    let mut srbf = Srbf::new(m);
    let r1 = simulate(&instance, &mut srbf, &SimConfig::default()).expect("valid run");
    let mut s = SchedulerS::with_epsilon(m, 1.0);
    let r2 = simulate(&instance, &mut s, &SimConfig::default()).expect("valid run");
    for r in [&r1, &r2] {
        println!(
            "{:<8} {:>8} {:>10} {:>7.1}%",
            r.scheduler,
            r.total_profit,
            r.completed(),
            100.0 * r.total_profit as f64 / ub as f64
        );
    }
    println!(
        "\nSRBF is {} lines of code against the public API — swap in your \
         own policy the same way.",
        60
    );
}
