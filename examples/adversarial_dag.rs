//! The paper's Figure 1 lower bound, live: a semi-non-clairvoyant scheduler
//! can be forced to take `(W−L)/m + L` on a job a clairvoyant scheduler
//! finishes in `W/m` — so speed augmentation `2 − 1/m` is necessary
//! (Theorem 1).
//!
//! ```sh
//! cargo run --example adversarial_dag
//! ```

use dagsched::prelude::*;

fn main() {
    let m = 8u32;
    // The Figure 1 job: a chain of length L = W/m alongside an independent
    // parallel block of W − L unit nodes.
    let dag = daggen::fig1(m, 100, 1).into_shared();
    println!(
        "Figure-1 job on m={m}: W = {}, L = {} (= W/m), parallelism {:.1}",
        dag.total_work(),
        dag.span(),
        dag.parallelism()
    );

    let friendly = lpf_makespan(dag.clone(), m, Speed::ONE).unwrap();
    let adversarial = adversarial_makespan(dag.clone(), m, Speed::ONE).unwrap();
    println!("\nclairvoyant (critical-path-first): {friendly} ticks  (= W/m)");
    println!("adversarial node picks:            {adversarial} ticks  (= (W-L)/m + L)");
    println!(
        "ratio {:.4} vs theory 2 - 1/m = {:.4}",
        adversarial.as_f64() / friendly.as_f64(),
        2.0 - 1.0 / m as f64
    );

    // How much faster must the unlucky scheduler run to meet the
    // clairvoyant deadline D = W/m?
    let deadline = dag.total_work().units() / m as u64;
    println!("\nspeed sweep against deadline D = {deadline}:");
    for (num, den) in [(1, 1), (3, 2), (7, 4), (15, 8), (2, 1)] {
        let s = Speed::new(num, den).unwrap();
        let t = adversarial_makespan(dag.clone(), m, s).unwrap();
        println!(
            "  speed {:>5} -> {:>4} ticks  {}",
            s.to_string(),
            t,
            if t.ticks() <= deadline {
                "MEETS deadline"
            } else {
                "misses"
            }
        );
    }
    println!(
        "\nThe crossover sits at 2 - 1/m = {} — Theorem 1's threshold.",
        Speed::theorem1_threshold(m).unwrap()
    );
}
