//! A day on a shared cluster: diurnal arrivals, heavy-tailed job sizes and
//! three job classes (interactive / pipeline / batch), scheduled by the
//! paper's S, its work-conserving extension, and HDF — with execution
//! traces turned on so we can compare utilization and preemption behaviour
//! (the axis the paper's future-work section highlights).
//!
//! ```sh
//! cargo run --example cluster_day
//! ```

use dagsched::prelude::*;
use dagsched::workload::ClusterTraceGen;

fn main() {
    let m = 16;
    let gen = ClusterTraceGen::new(m, 250, 2024);
    let instance = gen.generate().expect("valid configuration");
    let stats = instance.stats();
    println!(
        "cluster day: m={m}, {} jobs over {} ticks, offered load {:.2}, day length {}",
        stats.n_jobs,
        stats.horizon.since(stats.first_arrival),
        stats.load_factor,
        gen.day_ticks
    );

    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::default()
    };
    let ub = fractional_ub(&instance, Speed::ONE);

    println!(
        "\n{:<12} {:>8} {:>7} {:>10} {:>12} {:>12}",
        "policy", "profit", "of UB", "completed", "utilization", "preemptions"
    );
    let report = |r: &SimResult| {
        let trace = r.trace.as_ref().expect("trace recorded");
        let ts = trace.stats(m, &r.completions());
        println!(
            "{:<12} {:>8} {:>6.1}% {:>10} {:>11.1}% {:>12}",
            r.scheduler,
            r.total_profit,
            100.0 * r.total_profit as f64 / ub as f64,
            r.completed(),
            100.0 * ts.mean_utilization,
            ts.preemptions
        );
    };

    let mut s = SchedulerS::with_epsilon(m, 1.0);
    report(&simulate(&instance, &mut s, &cfg).expect("valid run"));
    let mut swc = SchedulerS::with_epsilon(m, 1.0).work_conserving();
    report(&simulate(&instance, &mut swc, &cfg).expect("valid run"));
    let mut hdf = GreedyDensity::new(m);
    report(&simulate(&instance, &mut hdf, &cfg).expect("valid run"));

    println!(
        "\nS leaves capacity idle by design (band reservations); the \
         work-conserving extension\nrecovers most of it while keeping the \
         admission guarantees — the trade-off the paper\nlists as future \
         work. First 5 trace ticks of S-wc:"
    );
    let mut swc = SchedulerS::with_epsilon(m, 1.0).work_conserving();
    let r = simulate(&instance, &mut swc, &cfg).expect("valid run");
    print!("{}", r.trace.expect("trace recorded").render(5));
}
