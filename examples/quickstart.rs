//! Quickstart: generate an online DAG-job workload, run the paper's
//! scheduler S against EDF, and compare both to an upper bound on OPT.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dagsched::prelude::*;

fn main() {
    let m = 8;

    // 1. A workload: 60 mixed-shape DAG jobs (chains, blocks, fork-joins,
    //    random layered graphs), Poisson arrivals at 2x overload, deadlines
    //    with Theorem-2 slack (1+eps = 2), profit proportional to work.
    let instance = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(2.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(2.0),
        ..WorkloadGen::standard(m, 60, 42)
    }
    .generate()
    .expect("valid configuration");

    let stats = instance.stats();
    println!(
        "workload: {} jobs, total work {}, offered load {:.2}, mean parallelism {:.1}",
        stats.n_jobs, stats.total_work, stats.load_factor, stats.mean_parallelism
    );

    // 2. Run the paper's scheduler S (eps = 1).
    let mut s = SchedulerS::with_epsilon(m, 1.0);
    let rs = simulate(&instance, &mut s, &SimConfig::default()).expect("valid run");

    // 3. Run classic EDF on the identical instance.
    let mut edf = Edf::new(m);
    let re = simulate(&instance, &mut edf, &SimConfig::default()).expect("valid run");

    // 4. An upper bound on what ANY schedule (even clairvoyant) could earn.
    let ub = fractional_ub(&instance, Speed::ONE);

    println!(
        "\n{:<12} {:>8} {:>10} {:>8}",
        "scheduler", "profit", "completed", "of UB"
    );
    for r in [&rs, &re] {
        println!(
            "{:<12} {:>8} {:>10} {:>7.1}%",
            r.scheduler,
            r.total_profit,
            r.completed(),
            100.0 * r.total_profit as f64 / ub as f64
        );
    }
    println!("{:<12} {:>8}", "OPT bound", ub);

    // The admitted/started accounting behind Lemma 5:
    let mt = s.metrics();
    println!(
        "\nS internals: started {} jobs (profit {}), {} admitted later from P, \
         {} band rejections",
        mt.started_count, mt.started_profit, mt.admitted_from_p, mt.band_rejections
    );
}
