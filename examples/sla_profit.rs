//! General profit functions as SLA tiers (Section 5): finishing a batch job
//! within its fast tier pays full price; later tiers pay less; too late
//! pays nothing. The Section-5 scheduler assigns each job the smallest
//! deadline it can actually honour and runs it only in its reserved slots.
//!
//! ```sh
//! cargo run --example sla_profit
//! ```

use dagsched::prelude::*;

fn main() {
    let m = 8;
    // Analytics batch jobs with 3-tier SLAs: 100% / 45% / 20% of the
    // contract value depending on turnaround.
    let instance = WorkloadGen {
        m,
        n_jobs: 80,
        seed: 11,
        arrivals: ArrivalProcess::poisson_for_load(2.5, 60.0, m),
        family: DagFamily::standard_mix((1, 6)),
        deadlines: DeadlinePolicy::SlackFactor(2.0),
        profits: ProfitPolicy::UniformDensity { lo: 2.0, hi: 8.0 },
        shape: ProfitShape::SteppedDecay {
            extra_steps: 2,
            time_factor: 2.0,
            value_factor: 0.45,
        },
    }
    .generate()
    .expect("valid configuration");

    // Show one job's SLA staircase.
    let j0 = &instance.jobs()[0];
    println!("example SLA (job 0, W={} L={}):", j0.work(), j0.span());
    for (bound, value) in j0.profit.segments() {
        println!("  finish within {bound:>4} ticks -> pays {value}");
    }
    println!("  later -> pays {}", j0.profit.tail_value());

    // S-profit (Section 5) vs plain S (which only sees the flat prefix as a
    // hard deadline) vs the HDF baseline.
    let ub = fractional_ub(&instance, Speed::ONE);
    println!(
        "\n{:<22} {:>8} {:>10} {:>8}",
        "scheduler", "profit", "completed", "of UB"
    );
    let mut sp = SchedulerSProfit::with_epsilon(m, 1.0);
    let r = simulate(&instance, &mut sp, &SimConfig::default()).expect("valid run");
    println!(
        "{:<22} {:>8} {:>10} {:>7.1}%",
        r.scheduler,
        r.total_profit,
        r.completed(),
        100.0 * r.total_profit as f64 / ub as f64
    );
    let mt = sp.metrics();
    println!(
        "    ({} scheduled, {} rejected, mean assigned-deadline stretch {:.2}x of x*)",
        mt.scheduled,
        mt.rejected,
        mt.stretch_sum / mt.scheduled.max(1) as f64
    );

    for (name, sched) in [
        (
            "S (flat prefix only)",
            Box::new(SchedulerS::with_epsilon(m, 1.0)) as Box<dyn OnlineScheduler>,
        ),
        ("HDF", Box::new(GreedyDensity::new(m))),
    ] {
        let mut sched = sched;
        let r = simulate(&instance, sched.as_mut(), &SimConfig::default()).expect("valid run");
        println!(
            "{:<22} {:>8} {:>10} {:>7.1}%",
            name,
            r.total_profit,
            r.completed(),
            100.0 * r.total_profit as f64 / ub as f64
        );
    }
}
