//! The density-band admission structure (condition (2) / Observation 3).
//!
//! Scheduler S admits a job `J_i` into the running queue `Q` only if, with
//! `J_i` included, **every** density band `[v_j, c·v_j)` anchored at a queued
//! job's density `v_j` requires at most `b·m` processors:
//!
//! > `N(Q ∪ {J_i}, v_j, c·v_j) ≤ b·m` for all `J_j ∈ Q ∪ {J_i}`.
//!
//! [`DensityBands`] maintains the multiset of `(density, allotment)` pairs of
//! queued jobs and answers the admission question in one sorted sweep with a
//! sliding window. Observation 3 — the bound holds at all times — is exactly
//! the invariant that insertions are only performed after a successful
//! [`DensityBands::fits`] check; [`DensityBands::check_invariant`] re-verifies
//! it from scratch for tests.

use dagsched_core::JobId;

/// An entry of the structure: one queued job.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    density: f64,
    allot: u32,
    id: JobId,
}

/// Multiset of queued jobs ordered by density, supporting the paper's
/// band-capacity queries.
#[derive(Debug, Clone)]
pub struct DensityBands {
    /// Sorted ascending by (density, id); |Q| is small (≤ m admitted jobs in
    /// practice since every allotment ≥ 1), so O(n) updates are fine.
    entries: Vec<Entry>,
    /// Band width `c > 1`.
    c: f64,
    /// Capacity `b·m`.
    capacity: f64,
}

impl DensityBands {
    /// Create a structure with band width `c` and capacity `b·m`.
    pub fn new(c: f64, capacity: f64) -> DensityBands {
        assert!(c > 1.0, "band width c must exceed 1");
        assert!(capacity > 0.0, "capacity must be positive");
        DensityBands {
            entries: Vec::new(),
            c,
            capacity,
        }
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total allotment of queued jobs with density in `[lo, hi)` —
    /// the paper's `N(Q, lo, hi)`.
    pub fn band_load(&self, lo: f64, hi: f64) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.density >= lo && e.density < hi)
            .map(|e| e.allot as u64)
            .sum()
    }

    /// `N(Q, v, ∞)`: total allotment of `v`-dense queued jobs.
    pub fn dense_load(&self, v: f64) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.density >= v)
            .map(|e| e.allot as u64)
            .sum()
    }

    /// Would adding `(density, allot)` keep every band within capacity?
    ///
    /// Checks `N(Q ∪ {J_i}, v_j, c·v_j) ≤ b·m` for every anchor `v_j` in the
    /// union. Only bands anchored at member densities matter: any other
    /// anchor's band is contained in some member-anchored band's range
    /// extension... more precisely, the maximal band loads occur at anchors
    /// equal to member densities, which is what the paper quantifies over.
    pub fn fits(&self, density: f64, allot: u32) -> bool {
        debug_assert!(density.is_finite() && density > 0.0);
        // Merged sorted view including the candidate (by density).
        let cand = Entry {
            density,
            allot,
            id: JobId(u32::MAX),
        };
        let pos = self
            .entries
            .partition_point(|e| (e.density, e.id.0) < (cand.density, cand.id.0));
        let get = |i: usize| -> Entry {
            match i.cmp(&pos) {
                std::cmp::Ordering::Less => self.entries[i],
                std::cmp::Ordering::Equal => cand,
                std::cmp::Ordering::Greater => self.entries[i - 1],
            }
        };
        let n = self.entries.len() + 1;
        // Sliding window over the merged order: for anchor `i` the window
        // `[i, j)` holds all entries with density < c·vᵢ. Both pointers only
        // move forward, so the sweep is O(n).
        let mut j = 0usize;
        let mut window: u64 = 0;
        for i in 0..n {
            if i > 0 {
                // Entry i−1 leaves the window (it was counted: after
                // iteration i−1, j ≥ i because c > 1 puts each anchor in its
                // own band).
                window -= get(i - 1).allot as u64;
            }
            while j < n && get(j).density < self.c * get(i).density {
                window += get(j).allot as u64;
                j += 1;
            }
            if window as f64 > self.capacity {
                return false;
            }
        }
        true
    }

    /// Insert a job (caller has already verified [`fits`](Self::fits) when
    /// enforcing the paper's admission rule; insertion itself does not
    /// check, because Observation 3 is the *caller's* invariant).
    pub fn insert(&mut self, id: JobId, density: f64, allot: u32) {
        assert!(density.is_finite() && density > 0.0, "bad density");
        assert!(allot >= 1, "allotment must be at least 1");
        let e = Entry { density, allot, id };
        let pos = self
            .entries
            .partition_point(|x| (x.density, x.id.0) < (e.density, e.id.0));
        self.entries.insert(pos, e);
    }

    /// Remove a job by id; returns true if it was present.
    pub fn remove(&mut self, id: JobId) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Re-verify Observation 3 from scratch: every band anchored at a member
    /// density is within capacity. O(n²); for tests and debug assertions.
    pub fn check_invariant(&self) -> bool {
        self.entries
            .iter()
            .all(|e| self.band_load(e.density, self.c * e.density) as f64 <= self.capacity)
    }

    /// Iterate `(id, density, allot)` ascending by density.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, f64, u32)> + '_ {
        self.entries.iter().map(|e| (e.id, e.density, e.allot))
    }
}

/// Standalone band check over an arbitrary slot population (used by the
/// general-profit scheduler, whose per-tick populations `J(t)` are not kept
/// in a persistent [`DensityBands`]).
///
/// Returns true iff adding `(density, allot)` to `members` keeps
/// `N(members ∪ {cand}, v_j, c·v_j) ≤ capacity` for every anchor in the
/// union. `members` need not be sorted.
pub fn fits_population(
    members: &[(f64, u32)],
    density: f64,
    allot: u32,
    c: f64,
    capacity: f64,
) -> bool {
    let mut all: Vec<(f64, u32)> = Vec::with_capacity(members.len() + 1);
    all.extend_from_slice(members);
    all.push((density, allot));
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    for i in 0..all.len() {
        let anchor = all[i].0;
        let hi = c * anchor;
        let load: u64 = all[i..]
            .iter()
            .take_while(|(d, _)| *d < hi)
            .map(|(_, a)| *a as u64)
            .sum();
        if load as f64 > capacity {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bands(c: f64, cap: f64) -> DensityBands {
        DensityBands::new(c, cap)
    }

    #[test]
    fn empty_structure_accepts_anything_within_capacity() {
        let b = bands(4.0, 10.0);
        assert!(b.is_empty());
        assert!(b.fits(1.0, 10));
        assert!(!b.fits(1.0, 11), "a single job above capacity is rejected");
    }

    #[test]
    fn band_load_and_dense_load() {
        let mut b = bands(4.0, 100.0);
        b.insert(JobId(0), 1.0, 5);
        b.insert(JobId(1), 2.0, 7);
        b.insert(JobId(2), 10.0, 3);
        assert_eq!(b.band_load(1.0, 4.0), 12, "[1, 4) holds densities 1, 2");
        assert_eq!(b.band_load(2.0, 10.0), 7);
        assert_eq!(b.band_load(2.0, 10.1), 10, "upper bound exclusive");
        assert_eq!(b.dense_load(2.0), 10);
        assert_eq!(b.dense_load(0.5), 15);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn fits_detects_band_overflow_at_any_anchor() {
        // c = 2, capacity = 10.
        let mut b = bands(2.0, 10.0);
        b.insert(JobId(0), 1.0, 6);
        // Candidate at density 1.5, allot 5: band [1.0, 2.0) would hold 11.
        assert!(!b.fits(1.5, 5));
        // Allot 4: band holds exactly 10 — allowed (≤).
        assert!(b.fits(1.5, 4));
        // Candidate at density 2.5: bands [1,2)={6}, [2.5,5)={5} both fine.
        assert!(b.fits(2.5, 5));
        // The *candidate's* anchor can be the violated one: members at 3.0
        // (6) plus candidate at 1.6 with c=2 → band [1.6, 3.2) holds both.
        let mut b = bands(2.0, 10.0);
        b.insert(JobId(0), 3.0, 6);
        assert!(!b.fits(1.6, 5));
        assert!(b.fits(1.4, 5), "band [1.4, 2.8) excludes the 3.0 job");
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut b = bands(2.0, 10.0);
        b.insert(JobId(3), 1.0, 4);
        b.insert(JobId(4), 1.5, 4);
        assert!(!b.fits(1.2, 3));
        assert!(b.remove(JobId(4)));
        assert!(b.fits(1.2, 3));
        assert!(!b.remove(JobId(4)), "double remove is a no-op");
        assert!(b.remove(JobId(3)));
        assert!(b.is_empty());
    }

    #[test]
    fn invariant_checker_agrees_with_fits() {
        let mut b = bands(3.0, 8.0);
        for (i, (d, a)) in [(1.0, 3u32), (2.0, 3), (5.0, 2), (9.0, 6)]
            .iter()
            .enumerate()
        {
            assert!(b.fits(*d, *a), "entry {i} should fit");
            b.insert(JobId(i as u32), *d, *a);
            assert!(b.check_invariant(), "invariant after insert {i}");
        }
        // A violating insert breaks the checker (bypassing fits).
        b.insert(JobId(99), 1.5, 4);
        assert!(!b.check_invariant());
    }

    #[test]
    fn duplicate_densities_accumulate() {
        let mut b = bands(2.0, 10.0);
        for i in 0..5 {
            assert!(b.fits(1.0, 2));
            b.insert(JobId(i), 1.0, 2);
        }
        // Sixth job of allot 2 at the same density would hit 12 > 10.
        assert!(!b.fits(1.0, 2));
        assert!(b.fits(2.0, 10), "a disjoint band is unaffected");
        // Note [1,2) has load 10, and [2,4) would have 10: both exactly full.
    }

    #[test]
    fn fits_population_matches_structure() {
        let members = [(1.0, 3u32), (2.5, 4), (6.0, 2)];
        let mut b = bands(2.0, 8.0);
        for (i, (d, a)) in members.iter().enumerate() {
            b.insert(JobId(i as u32), *d, *a);
        }
        for (d, a) in [
            (1.1, 2u32),
            (1.1, 6),
            (3.0, 4),
            (3.0, 5),
            (12.0, 8),
            (12.0, 9),
        ] {
            assert_eq!(
                b.fits(d, a),
                fits_population(&members, d, a, 2.0, 8.0),
                "disagreement at ({d}, {a})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "band width")]
    fn rejects_c_not_above_one() {
        let _ = DensityBands::new(1.0, 5.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_jobs() -> impl Strategy<Value = Vec<(f64, u32)>> {
            proptest::collection::vec((0.01f64..100.0, 1u32..6), 0..12)
        }

        proptest! {
            /// `fits` is exactly "insert would preserve check_invariant".
            #[test]
            fn fits_iff_invariant_preserved(
                jobs in arb_jobs(),
                cand_d in 0.01f64..100.0,
                cand_a in 1u32..6,
                c in 1.5f64..8.0,
                cap in 4.0f64..20.0,
            ) {
                // Build greedily, inserting only what fits (like S does).
                let mut b = DensityBands::new(c, cap);
                for (i, (d, a)) in jobs.iter().enumerate() {
                    if b.fits(*d, *a) {
                        b.insert(JobId(i as u32), *d, *a);
                    }
                }
                prop_assert!(b.check_invariant(), "greedy build holds Obs. 3");
                let fits = b.fits(cand_d, cand_a);
                let mut b2 = b.clone();
                b2.insert(JobId(9999), cand_d, cand_a);
                prop_assert_eq!(fits, b2.check_invariant());
            }

            /// fits_population agrees with the incremental structure for
            /// arbitrary populations.
            #[test]
            fn population_check_agrees(
                jobs in arb_jobs(),
                cand_d in 0.01f64..100.0,
                cand_a in 1u32..6,
            ) {
                let c = 3.0;
                let cap = 9.0;
                let mut b = DensityBands::new(c, cap);
                for (i, (d, a)) in jobs.iter().enumerate() {
                    b.insert(JobId(i as u32), *d, *a);
                }
                prop_assert_eq!(
                    b.fits(cand_d, cand_a),
                    fits_population(&jobs, cand_d, cand_a, c, cap)
                );
            }
        }
    }
}
