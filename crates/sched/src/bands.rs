//! The density-band admission structure (condition (2) / Observation 3).
//!
//! Scheduler S admits a job `J_i` into the running queue `Q` only if, with
//! `J_i` included, **every** density band `[v_j, c·v_j)` anchored at a queued
//! job's density `v_j` requires at most `b·m` processors:
//!
//! > `N(Q ∪ {J_i}, v_j, c·v_j) ≤ b·m` for all `J_j ∈ Q ∪ {J_i}`.
//!
//! [`DensityBands`] maintains the multiset of `(density, allotment)` pairs of
//! queued jobs and answers the admission question *incrementally*: the jobs
//! live in a balanced tree (a treap keyed by `(density, id)`) where every
//! node caches its own window load `N(Q, v, c·v)` and every subtree caches
//! the maximum cached load and the total allotment below it. Because a
//! candidate at density `d` changes exactly the windows of anchors with
//! `v ≤ d < c·v` — a contiguous density range — both the query and the
//! update are O(log |Q|) range operations (range-max with pending-add tags,
//! and a lazy range-add), instead of the O(|Q|) sliding-window sweep the
//! seed implementation performed per call. That sweep is retained verbatim
//! as [`reference::ReferenceBands`], the oracle the differential proptests
//! compare against.
//!
//! Observation 3 — the bound holds at all times — is exactly the invariant
//! that insertions are only performed after a successful
//! [`DensityBands::fits`] check; [`DensityBands::check_invariant`]
//! re-verifies it from scratch for tests.

use dagsched_core::{JobId, Rng64};
use std::collections::HashMap;

/// Null link in the node arena.
const NIL: u32 = u32::MAX;

/// One queued job, stored as a treap node.
///
/// `wl`, `max_wl` and `add` follow the classic lazy-tag convention: a node's
/// stored `wl`/`max_wl` are correct *relative to its ancestors' pending
/// `add` tags* (the true value is the stored value plus the sum of `add`
/// over all strict ancestors). `max_wl` aggregates the node's own `wl` and
/// both children's `max_wl` shifted by this node's `add`.
#[derive(Debug, Clone, Copy)]
struct Node {
    density: f64,
    allot: u32,
    id: JobId,
    /// Treap heap priority (drawn from a deterministic stream).
    prio: u64,
    left: u32,
    right: u32,
    /// Total allotment in this subtree (tag-independent).
    sum: u64,
    /// Cached window load of this anchor: `N(Q, v, c·v)`, self included.
    wl: u64,
    /// Max window load over this subtree (see struct docs for tag math).
    max_wl: u64,
    /// Pending delta for both children's subtrees.
    add: i64,
}

/// Multiset of queued jobs ordered by density, supporting the paper's
/// band-capacity queries in O(log n).
#[derive(Debug, Clone)]
pub struct DensityBands {
    nodes: Vec<Node>,
    /// Free slots in `nodes`, reused before growing.
    free: Vec<u32>,
    /// Job id → node slot (slots are stable across rotations).
    index: HashMap<JobId, u32>,
    root: u32,
    /// Deterministic priority stream (bit-reproducible across runs).
    prio_rng: Rng64,
    /// Band width `c > 1`.
    c: f64,
    /// Capacity `b·m`.
    capacity: f64,
}

/// Seed of the deterministic treap-priority stream (also replayed by
/// [`DensityBands::clear`] so a cleared structure rebuilds the exact shapes
/// a new one would).
const PRIO_SEED: u64 = 0x8BAD_F00D_0B57_AC1E;

impl DensityBands {
    /// Create a structure with band width `c` and capacity `b·m`.
    pub fn new(c: f64, capacity: f64) -> DensityBands {
        assert!(c > 1.0, "band width c must exceed 1");
        assert!(capacity > 0.0, "capacity must be positive");
        DensityBands {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            root: NIL,
            prio_rng: Rng64::seed_from(PRIO_SEED),
            c,
            capacity,
        }
    }

    /// Return to the freshly-constructed state (same `c` and capacity),
    /// keeping allocated storage. The priority stream restarts from
    /// [`PRIO_SEED`], so subsequent inserts replay exactly what a new
    /// structure would build.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.index.clear();
        self.root = NIL;
        self.prio_rng = Rng64::seed_from(PRIO_SEED);
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True iff no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total allotment of queued jobs with density in `[lo, hi)` —
    /// the paper's `N(Q, lo, hi)`. O(log n).
    pub fn band_load(&self, lo: f64, hi: f64) -> u64 {
        self.sum_range(self.root, lo, hi)
    }

    /// `N(Q, v, ∞)`: total allotment of `v`-dense queued jobs. O(log n).
    pub fn dense_load(&self, v: f64) -> u64 {
        self.sum_ge(self.root, v)
    }

    /// Would adding `(density, allot)` keep every band within capacity?
    ///
    /// Checks `N(Q ∪ {J_i}, v_j, c·v_j) ≤ b·m` for every anchor `v_j` in the
    /// union, in O(log n): the candidate inflates exactly the anchors whose
    /// window `[v, c·v)` contains `density` — the contiguous range
    /// `v ≤ density < c·v` — so the answer is three range-max queries (the
    /// affected range shifted by `allot`, the two unaffected flanks as-is)
    /// plus the candidate's own window sum. Anchors are never approximated:
    /// like the reference sweep, an already-over-capacity population makes
    /// `fits` return false for any candidate.
    pub fn fits(&self, density: f64, allot: u32) -> bool {
        debug_assert!(density.is_finite() && density > 0.0);
        let a = allot as u64;
        // The candidate's own anchor: existing load in [v, c·v) plus itself.
        // (With equal-density members present this equals the load of their
        // shared first anchor, which dominates the per-duplicate windows the
        // reference sweep also examines — the maxima coincide exactly.)
        let own = self.sum_range(self.root, density, self.c * density) + a;
        if own as f64 > self.capacity {
            return false;
        }
        // Affected anchors (v ≤ d < c·v) each gain `a`. An empty range
        // yields 0, and 0 + a ≤ own ≤ capacity — no false rejection.
        if (self.max_affected(self.root, 0, density) + a) as f64 > self.capacity {
            return false;
        }
        // Unaffected anchors keep their load but are still quantified over.
        if self.max_cv_le(self.root, 0, density) as f64 > self.capacity {
            return false;
        }
        if self.max_v_gt(self.root, 0, density) as f64 > self.capacity {
            return false;
        }
        true
    }

    /// Insert a job (caller has already verified [`fits`](Self::fits) when
    /// enforcing the paper's admission rule; insertion itself does not
    /// check, because Observation 3 is the *caller's* invariant).
    ///
    /// O(log n): one window-sum query for the new anchor's cached load, one
    /// lazy range-add over the anchors whose windows absorb the newcomer,
    /// one keyed treap split + two merges to link the node.
    pub fn insert(&mut self, id: JobId, density: f64, allot: u32) {
        assert!(density.is_finite() && density > 0.0, "bad density");
        assert!(allot >= 1, "allotment must be at least 1");
        debug_assert!(
            !self.index.contains_key(&id),
            "job {id:?} inserted twice into DensityBands"
        );
        let own = self.sum_range(self.root, density, self.c * density) + allot as u64;
        let root = self.root;
        self.range_add(root, density, allot as i64);
        let idx = self.alloc_node(id, density, allot, own);
        let (l, r) = self.split_key(root, (density, id.0), false);
        let merged = self.merge(l, idx);
        self.root = self.merge(merged, r);
        self.index.insert(id, idx);
    }

    /// Remove a job by id; returns true if it was present. O(log n).
    pub fn remove(&mut self, id: JobId) -> bool {
        let Some(idx) = self.index.remove(&id) else {
            return false;
        };
        let (density, allot) = {
            let n = &self.nodes[idx as usize];
            (n.density, n.allot)
        };
        let root = self.root;
        let (l, rest) = self.split_key(root, (density, id.0), false);
        let (mid, r) = self.split_key(rest, (density, id.0), true);
        debug_assert_eq!(mid, idx, "split isolated the wrong node");
        self.free.push(mid);
        self.root = self.merge(l, r);
        let root = self.root;
        self.range_add(root, density, -(allot as i64));
        true
    }

    /// Re-verify Observation 3 from scratch: every band anchored at a member
    /// density is within capacity. O(n log n); for tests and debug
    /// assertions.
    pub fn check_invariant(&self) -> bool {
        self.collect()
            .iter()
            .all(|&(_, d, _, _)| self.band_load(d, self.c * d) as f64 <= self.capacity)
    }

    /// Iterate `(id, density, allot)` ascending by `(density, id)`.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, f64, u32)> + '_ {
        self.collect().into_iter().map(|(id, d, a, _)| (id, d, a))
    }

    /// Every cached per-anchor window load must equal a fresh
    /// `band_load(v, c·v)` recomputation. Test hook for the differential
    /// suite; not part of the public contract.
    #[doc(hidden)]
    pub fn cache_coherent(&self) -> bool {
        self.collect()
            .iter()
            .all(|&(_, d, _, wl)| wl == self.band_load(d, self.c * d))
    }

    /// In-order `(id, density, allot, true window load)` snapshot.
    fn collect(&self) -> Vec<(JobId, f64, u32, u64)> {
        let mut out = Vec::with_capacity(self.len());
        self.visit(self.root, 0, &mut out);
        out
    }

    fn visit(&self, t: u32, acc: i64, out: &mut Vec<(JobId, f64, u32, u64)>) {
        if t == NIL {
            return;
        }
        let n = &self.nodes[t as usize];
        let child_acc = acc + n.add;
        self.visit(n.left, child_acc, out);
        out.push((n.id, n.density, n.allot, n.wl.wrapping_add_signed(acc)));
        self.visit(n.right, child_acc, out);
    }

    // ----- node arena -----

    fn alloc_node(&mut self, id: JobId, density: f64, allot: u32, wl: u64) -> u32 {
        let node = Node {
            density,
            allot,
            id,
            prio: self.prio_rng.next_u64(),
            left: NIL,
            right: NIL,
            sum: allot as u64,
            wl,
            max_wl: wl,
            add: 0,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    // ----- lazy-tag plumbing -----

    /// Shift a whole subtree's window loads by `delta` (lazily).
    fn apply(&mut self, t: u32, delta: i64) {
        if t == NIL {
            return;
        }
        let n = &mut self.nodes[t as usize];
        n.wl = n.wl.wrapping_add_signed(delta);
        n.max_wl = n.max_wl.wrapping_add_signed(delta);
        n.add += delta;
    }

    /// Move a node's pending tag down to its children.
    fn push_down(&mut self, t: u32) {
        let add = self.nodes[t as usize].add;
        if add != 0 {
            let (l, r) = {
                let n = &self.nodes[t as usize];
                (n.left, n.right)
            };
            self.apply(l, add);
            self.apply(r, add);
            self.nodes[t as usize].add = 0;
        }
    }

    /// Recompute `sum` and `max_wl` from the children (tag-aware).
    fn pull(&mut self, t: u32) {
        let (l, r, add, allot, wl) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right, n.add, n.allot, n.wl)
        };
        let mut sum = allot as u64;
        let mut mx = wl;
        if l != NIL {
            let c = &self.nodes[l as usize];
            sum += c.sum;
            mx = mx.max(c.max_wl.wrapping_add_signed(add));
        }
        if r != NIL {
            let c = &self.nodes[r as usize];
            sum += c.sum;
            mx = mx.max(c.max_wl.wrapping_add_signed(add));
        }
        let n = &mut self.nodes[t as usize];
        n.sum = sum;
        n.max_wl = mx;
    }

    // ----- treap structure -----

    /// Split by key: left side holds `(density, id)` strictly below `key`
    /// (or `≤ key` when `inclusive`). The tuple comparison mirrors the
    /// reference sweep's `(density, id.0)` ordering bit-for-bit.
    fn split_key(&mut self, t: u32, key: (f64, u32), inclusive: bool) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        self.push_down(t);
        let nk = {
            let n = &self.nodes[t as usize];
            (n.density, n.id.0)
        };
        let goes_left = if inclusive { nk <= key } else { nk < key };
        if goes_left {
            let r = self.nodes[t as usize].right;
            let (a, b) = self.split_key(r, key, inclusive);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let l = self.nodes[t as usize].left;
            let (a, b) = self.split_key(l, key, inclusive);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            self.push_down(a);
            let r = self.nodes[a as usize].right;
            let nr = self.merge(r, b);
            self.nodes[a as usize].right = nr;
            self.pull(a);
            a
        } else {
            self.push_down(b);
            let l = self.nodes[b as usize].left;
            let nl = self.merge(a, l);
            self.nodes[b as usize].left = nl;
            self.pull(b);
            b
        }
    }

    // ----- range add (tree shape untouched; aggregates rebuilt on the path) -----

    /// Add `delta` to the cached window of every anchor whose window
    /// contains `at`: `v ≤ at && c·v > at`.
    fn range_add(&mut self, t: u32, at: f64, delta: i64) {
        if t == NIL {
            return;
        }
        let v = self.nodes[t as usize].density;
        if v > at {
            let l = self.nodes[t as usize].left;
            self.range_add(l, at, delta);
        } else if self.c * v <= at {
            let r = self.nodes[t as usize].right;
            self.range_add(r, at, delta);
        } else {
            self.nodes[t as usize].wl = self.nodes[t as usize].wl.wrapping_add_signed(delta);
            let (l, r) = {
                let n = &self.nodes[t as usize];
                (n.left, n.right)
            };
            self.add_where_cv_gt(l, at, delta);
            self.add_where_v_le(r, at, delta);
        }
        self.pull(t);
    }

    /// All nodes here have `v ≤ at`; add `delta` where `c·v > at`.
    fn add_where_cv_gt(&mut self, t: u32, at: f64, delta: i64) {
        if t == NIL {
            return;
        }
        let v = self.nodes[t as usize].density;
        if self.c * v > at {
            self.nodes[t as usize].wl = self.nodes[t as usize].wl.wrapping_add_signed(delta);
            let (l, r) = {
                let n = &self.nodes[t as usize];
                (n.left, n.right)
            };
            self.apply(r, delta);
            self.add_where_cv_gt(l, at, delta);
        } else {
            let r = self.nodes[t as usize].right;
            self.add_where_cv_gt(r, at, delta);
        }
        self.pull(t);
    }

    /// All nodes here have `c·v > at`; add `delta` where `v ≤ at`.
    fn add_where_v_le(&mut self, t: u32, at: f64, delta: i64) {
        if t == NIL {
            return;
        }
        let v = self.nodes[t as usize].density;
        if v <= at {
            self.nodes[t as usize].wl = self.nodes[t as usize].wl.wrapping_add_signed(delta);
            let (l, r) = {
                let n = &self.nodes[t as usize];
                (n.left, n.right)
            };
            self.apply(l, delta);
            self.add_where_v_le(r, at, delta);
        } else {
            let l = self.nodes[t as usize].left;
            self.add_where_v_le(l, at, delta);
        }
        self.pull(t);
    }

    // ----- read-only range queries (`acc` carries pending ancestor tags) -----

    /// Total allotment with density in `[lo, hi)`.
    fn sum_range(&self, t: u32, lo: f64, hi: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        if n.density < lo {
            self.sum_range(n.right, lo, hi)
        } else if n.density >= hi {
            self.sum_range(n.left, lo, hi)
        } else {
            n.allot as u64 + self.sum_ge(n.left, lo) + self.sum_lt(n.right, hi)
        }
    }

    fn sum_ge(&self, t: u32, lo: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        if n.density >= lo {
            let right = if n.right == NIL {
                0
            } else {
                self.nodes[n.right as usize].sum
            };
            n.allot as u64 + right + self.sum_ge(n.left, lo)
        } else {
            self.sum_ge(n.right, lo)
        }
    }

    fn sum_lt(&self, t: u32, hi: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        if n.density < hi {
            let left = if n.left == NIL {
                0
            } else {
                self.nodes[n.left as usize].sum
            };
            n.allot as u64 + left + self.sum_lt(n.right, hi)
        } else {
            self.sum_lt(n.left, hi)
        }
    }

    /// Max cached window over anchors with `v ≤ d && c·v > d`.
    fn max_affected(&self, t: u32, acc: i64, d: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        let child_acc = acc + n.add;
        if n.density > d {
            self.max_affected(n.left, child_acc, d)
        } else if self.c * n.density <= d {
            self.max_affected(n.right, child_acc, d)
        } else {
            let mut mx = n.wl.wrapping_add_signed(acc);
            mx = mx.max(self.max_suffix_cv_gt(n.left, child_acc, d));
            mx.max(self.max_prefix_v_le(n.right, child_acc, d))
        }
    }

    /// All nodes here have `v ≤ d`; max window where `c·v > d`.
    fn max_suffix_cv_gt(&self, t: u32, acc: i64, d: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        let child_acc = acc + n.add;
        if self.c * n.density > d {
            let mut mx = n.wl.wrapping_add_signed(acc);
            if n.right != NIL {
                mx = mx.max(
                    self.nodes[n.right as usize]
                        .max_wl
                        .wrapping_add_signed(child_acc),
                );
            }
            mx.max(self.max_suffix_cv_gt(n.left, child_acc, d))
        } else {
            self.max_suffix_cv_gt(n.right, child_acc, d)
        }
    }

    /// All nodes here have `c·v > d`; max window where `v ≤ d`.
    fn max_prefix_v_le(&self, t: u32, acc: i64, d: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        let child_acc = acc + n.add;
        if n.density <= d {
            let mut mx = n.wl.wrapping_add_signed(acc);
            if n.left != NIL {
                mx = mx.max(
                    self.nodes[n.left as usize]
                        .max_wl
                        .wrapping_add_signed(child_acc),
                );
            }
            mx.max(self.max_prefix_v_le(n.right, child_acc, d))
        } else {
            self.max_prefix_v_le(n.left, child_acc, d)
        }
    }

    /// Max cached window over anchors with `c·v ≤ d` (low flank).
    fn max_cv_le(&self, t: u32, acc: i64, d: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        let child_acc = acc + n.add;
        if self.c * n.density <= d {
            let mut mx = n.wl.wrapping_add_signed(acc);
            if n.left != NIL {
                mx = mx.max(
                    self.nodes[n.left as usize]
                        .max_wl
                        .wrapping_add_signed(child_acc),
                );
            }
            mx.max(self.max_cv_le(n.right, child_acc, d))
        } else {
            self.max_cv_le(n.left, child_acc, d)
        }
    }

    /// Max cached window over anchors with `v > d` (high flank).
    fn max_v_gt(&self, t: u32, acc: i64, d: f64) -> u64 {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        let child_acc = acc + n.add;
        if n.density > d {
            let mut mx = n.wl.wrapping_add_signed(acc);
            if n.right != NIL {
                mx = mx.max(
                    self.nodes[n.right as usize]
                        .max_wl
                        .wrapping_add_signed(child_acc),
                );
            }
            mx.max(self.max_v_gt(n.left, child_acc, d))
        } else {
            self.max_v_gt(n.right, child_acc, d)
        }
    }
}

pub mod reference {
    //! The seed implementation — a sorted `Vec` with an O(n) sliding-window
    //! sweep per query — retained as the behavioral oracle for the
    //! incremental [`DensityBands`](super::DensityBands). The differential
    //! proptests (`tests/bands_differential.rs`) replay every operation
    //! against both structures and demand identical answers.

    use dagsched_core::JobId;

    /// An entry of the structure: one queued job.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Entry {
        density: f64,
        allot: u32,
        id: JobId,
    }

    /// The legacy O(n)-per-query density-band structure.
    #[derive(Debug, Clone)]
    pub struct ReferenceBands {
        /// Sorted ascending by (density, id).
        entries: Vec<Entry>,
        c: f64,
        capacity: f64,
    }

    impl ReferenceBands {
        /// Create a structure with band width `c` and capacity `b·m`.
        pub fn new(c: f64, capacity: f64) -> ReferenceBands {
            assert!(c > 1.0, "band width c must exceed 1");
            assert!(capacity > 0.0, "capacity must be positive");
            ReferenceBands {
                entries: Vec::new(),
                c,
                capacity,
            }
        }

        /// Number of queued jobs.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// True iff no jobs are queued.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Total allotment of queued jobs with density in `[lo, hi)`.
        pub fn band_load(&self, lo: f64, hi: f64) -> u64 {
            self.entries
                .iter()
                .filter(|e| e.density >= lo && e.density < hi)
                .map(|e| e.allot as u64)
                .sum()
        }

        /// `N(Q, v, ∞)`: total allotment of `v`-dense queued jobs.
        pub fn dense_load(&self, v: f64) -> u64 {
            self.entries
                .iter()
                .filter(|e| e.density >= v)
                .map(|e| e.allot as u64)
                .sum()
        }

        /// Would adding `(density, allot)` keep every band within capacity?
        /// One O(n) merged sliding-window sweep.
        pub fn fits(&self, density: f64, allot: u32) -> bool {
            debug_assert!(density.is_finite() && density > 0.0);
            let cand = Entry {
                density,
                allot,
                id: JobId(u32::MAX),
            };
            let pos = self
                .entries
                .partition_point(|e| (e.density, e.id.0) < (cand.density, cand.id.0));
            let get = |i: usize| -> Entry {
                match i.cmp(&pos) {
                    std::cmp::Ordering::Less => self.entries[i],
                    std::cmp::Ordering::Equal => cand,
                    std::cmp::Ordering::Greater => self.entries[i - 1],
                }
            };
            let n = self.entries.len() + 1;
            let mut j = 0usize;
            let mut window: u64 = 0;
            for i in 0..n {
                if i > 0 {
                    window -= get(i - 1).allot as u64;
                }
                while j < n && get(j).density < self.c * get(i).density {
                    window += get(j).allot as u64;
                    j += 1;
                }
                if window as f64 > self.capacity {
                    return false;
                }
            }
            true
        }

        /// Insert a job (no fits check — Observation 3 is the caller's
        /// invariant).
        pub fn insert(&mut self, id: JobId, density: f64, allot: u32) {
            assert!(density.is_finite() && density > 0.0, "bad density");
            assert!(allot >= 1, "allotment must be at least 1");
            let e = Entry { density, allot, id };
            let pos = self
                .entries
                .partition_point(|x| (x.density, x.id.0) < (e.density, e.id.0));
            self.entries.insert(pos, e);
        }

        /// Remove a job by id; returns true if it was present.
        pub fn remove(&mut self, id: JobId) -> bool {
            match self.entries.iter().position(|e| e.id == id) {
                Some(i) => {
                    self.entries.remove(i);
                    true
                }
                None => false,
            }
        }

        /// Re-verify Observation 3 from scratch (O(n²)).
        pub fn check_invariant(&self) -> bool {
            self.entries
                .iter()
                .all(|e| self.band_load(e.density, self.c * e.density) as f64 <= self.capacity)
        }

        /// Iterate `(id, density, allot)` ascending by density.
        pub fn iter(&self) -> impl Iterator<Item = (JobId, f64, u32)> + '_ {
            self.entries.iter().map(|e| (e.id, e.density, e.allot))
        }
    }
}

/// Standalone band check over an arbitrary slot population (used by the
/// general-profit scheduler, whose per-tick populations `J(t)` are not kept
/// in a persistent [`DensityBands`]).
///
/// Returns true iff adding `(density, allot)` to `members` keeps
/// `N(members ∪ {cand}, v_j, c·v_j) ≤ capacity` for every anchor in the
/// union. `members` need not be sorted.
pub fn fits_population(
    members: &[(f64, u32)],
    density: f64,
    allot: u32,
    c: f64,
    capacity: f64,
) -> bool {
    let mut all: Vec<(f64, u32)> = Vec::with_capacity(members.len() + 1);
    all.extend_from_slice(members);
    all.push((density, allot));
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    for i in 0..all.len() {
        let anchor = all[i].0;
        let hi = c * anchor;
        let load: u64 = all[i..]
            .iter()
            .take_while(|(d, _)| *d < hi)
            .map(|(_, a)| *a as u64)
            .sum();
        if load as f64 > capacity {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceBands;
    use super::*;

    fn bands(c: f64, cap: f64) -> DensityBands {
        DensityBands::new(c, cap)
    }

    #[test]
    fn empty_structure_accepts_anything_within_capacity() {
        let b = bands(4.0, 10.0);
        assert!(b.is_empty());
        assert!(b.fits(1.0, 10));
        assert!(!b.fits(1.0, 11), "a single job above capacity is rejected");
    }

    #[test]
    fn band_load_and_dense_load() {
        let mut b = bands(4.0, 100.0);
        b.insert(JobId(0), 1.0, 5);
        b.insert(JobId(1), 2.0, 7);
        b.insert(JobId(2), 10.0, 3);
        assert_eq!(b.band_load(1.0, 4.0), 12, "[1, 4) holds densities 1, 2");
        assert_eq!(b.band_load(2.0, 10.0), 7);
        assert_eq!(b.band_load(2.0, 10.1), 10, "upper bound exclusive");
        assert_eq!(b.dense_load(2.0), 10);
        assert_eq!(b.dense_load(0.5), 15);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn fits_detects_band_overflow_at_any_anchor() {
        // c = 2, capacity = 10.
        let mut b = bands(2.0, 10.0);
        b.insert(JobId(0), 1.0, 6);
        // Candidate at density 1.5, allot 5: band [1.0, 2.0) would hold 11.
        assert!(!b.fits(1.5, 5));
        // Allot 4: band holds exactly 10 — allowed (≤).
        assert!(b.fits(1.5, 4));
        // Candidate at density 2.5: bands [1,2)={6}, [2.5,5)={5} both fine.
        assert!(b.fits(2.5, 5));
        // The *candidate's* anchor can be the violated one: members at 3.0
        // (6) plus candidate at 1.6 with c=2 → band [1.6, 3.2) holds both.
        let mut b = bands(2.0, 10.0);
        b.insert(JobId(0), 3.0, 6);
        assert!(!b.fits(1.6, 5));
        assert!(b.fits(1.4, 5), "band [1.4, 2.8) excludes the 3.0 job");
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut b = bands(2.0, 10.0);
        b.insert(JobId(3), 1.0, 4);
        b.insert(JobId(4), 1.5, 4);
        assert!(!b.fits(1.2, 3));
        assert!(b.remove(JobId(4)));
        assert!(b.fits(1.2, 3));
        assert!(!b.remove(JobId(4)), "double remove is a no-op");
        assert!(b.remove(JobId(3)));
        assert!(b.is_empty());
    }

    #[test]
    fn invariant_checker_agrees_with_fits() {
        let mut b = bands(3.0, 8.0);
        for (i, (d, a)) in [(1.0, 3u32), (2.0, 3), (5.0, 2), (9.0, 6)]
            .iter()
            .enumerate()
        {
            assert!(b.fits(*d, *a), "entry {i} should fit");
            b.insert(JobId(i as u32), *d, *a);
            assert!(b.check_invariant(), "invariant after insert {i}");
        }
        // A violating insert breaks the checker (bypassing fits).
        b.insert(JobId(99), 1.5, 4);
        assert!(!b.check_invariant());
    }

    #[test]
    fn duplicate_densities_accumulate() {
        let mut b = bands(2.0, 10.0);
        for i in 0..5 {
            assert!(b.fits(1.0, 2));
            b.insert(JobId(i), 1.0, 2);
        }
        // Sixth job of allot 2 at the same density would hit 12 > 10.
        assert!(!b.fits(1.0, 2));
        assert!(b.fits(2.0, 10), "a disjoint band is unaffected");
        // Note [1,2) has load 10, and [2,4) would have 10: both exactly full.
    }

    #[test]
    fn fits_population_matches_structure() {
        let members = [(1.0, 3u32), (2.5, 4), (6.0, 2)];
        let mut b = bands(2.0, 8.0);
        for (i, (d, a)) in members.iter().enumerate() {
            b.insert(JobId(i as u32), *d, *a);
        }
        for (d, a) in [
            (1.1, 2u32),
            (1.1, 6),
            (3.0, 4),
            (3.0, 5),
            (12.0, 8),
            (12.0, 9),
        ] {
            assert_eq!(
                b.fits(d, a),
                fits_population(&members, d, a, 2.0, 8.0),
                "disagreement at ({d}, {a})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "band width")]
    fn rejects_c_not_above_one() {
        let _ = DensityBands::new(1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "band width")]
    fn reference_rejects_c_not_above_one() {
        let _ = ReferenceBands::new(1.0, 5.0);
    }

    #[test]
    fn window_cache_survives_interleaved_updates() {
        // Exercise the lazy-tag machinery: interleave inserts and removes
        // across overlapping bands, then demand the cached per-anchor
        // windows equal fresh recomputations.
        let mut b = bands(2.0, 1e9);
        let mut rng = Rng64::seed_from(11);
        let mut live: Vec<u32> = Vec::new();
        for i in 0..200u32 {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let k = rng.gen_range(live.len() as u64) as usize;
                assert!(b.remove(JobId(live.swap_remove(k))));
            } else {
                let d = 10f64.powf(rng.gen_f64_range(-2.0, 2.0));
                b.insert(JobId(i), d, 1 + rng.gen_range(8) as u32);
                live.push(i);
            }
            assert!(b.cache_coherent(), "cache diverged after op {i}");
        }
        assert_eq!(b.len(), live.len());
    }

    #[test]
    fn agrees_with_reference_on_a_fixed_script() {
        let (c, cap) = (3.0, 9.0);
        let mut fast = DensityBands::new(c, cap);
        let mut slow = ReferenceBands::new(c, cap);
        let script = [
            (0u32, 1.0, 3u32),
            (1, 1.0, 2), // equal-density tie
            (2, 3.0, 2), // exactly c·1.0: outside [1, 3)
            (3, 0.5, 1),
            (4, 1.5, 1),
        ];
        for &(i, d, a) in &script {
            assert_eq!(fast.fits(d, a), slow.fits(d, a), "fits({d}, {a})");
            fast.insert(JobId(i), d, a);
            slow.insert(JobId(i), d, a);
        }
        for &(lo, hi) in &[(0.5, 1.5), (1.0, 3.0), (1.0, 3.1), (0.0, f64::INFINITY)] {
            assert_eq!(fast.band_load(lo, hi), slow.band_load(lo, hi));
        }
        fast.remove(JobId(1));
        slow.remove(JobId(1));
        for probe in [0.4f64, 0.5, 1.0, 1.5, 2.9, 3.0, 9.0] {
            assert_eq!(fast.fits(probe, 4), slow.fits(probe, 4), "fits({probe})");
            assert_eq!(fast.dense_load(probe), slow.dense_load(probe));
        }
        assert_eq!(fast.check_invariant(), slow.check_invariant());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_jobs() -> impl Strategy<Value = Vec<(f64, u32)>> {
            proptest::collection::vec((0.01f64..100.0, 1u32..6), 0..12)
        }

        proptest! {
            /// `fits` is exactly "insert would preserve check_invariant".
            #[test]
            fn fits_iff_invariant_preserved(
                jobs in arb_jobs(),
                cand_d in 0.01f64..100.0,
                cand_a in 1u32..6,
                c in 1.5f64..8.0,
                cap in 4.0f64..20.0,
            ) {
                // Build greedily, inserting only what fits (like S does).
                let mut b = DensityBands::new(c, cap);
                for (i, (d, a)) in jobs.iter().enumerate() {
                    if b.fits(*d, *a) {
                        b.insert(JobId(i as u32), *d, *a);
                    }
                }
                prop_assert!(b.check_invariant(), "greedy build holds Obs. 3");
                let fits = b.fits(cand_d, cand_a);
                let mut b2 = b.clone();
                b2.insert(JobId(9999), cand_d, cand_a);
                prop_assert_eq!(fits, b2.check_invariant());
            }

            /// fits_population agrees with the incremental structure for
            /// arbitrary populations.
            #[test]
            fn population_check_agrees(
                jobs in arb_jobs(),
                cand_d in 0.01f64..100.0,
                cand_a in 1u32..6,
            ) {
                let c = 3.0;
                let cap = 9.0;
                let mut b = DensityBands::new(c, cap);
                for (i, (d, a)) in jobs.iter().enumerate() {
                    b.insert(JobId(i as u32), *d, *a);
                }
                prop_assert_eq!(
                    b.fits(cand_d, cand_a),
                    fits_population(&jobs, cand_d, cand_a, c, cap)
                );
            }
        }
    }
}
