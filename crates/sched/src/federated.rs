//! Federated scheduling of sporadic DAG tasks (Li, Chen, Agrawal, Lu,
//! Gill, Saifullah — ECRTS'14), the real-time substrate the paper's
//! related-work section builds on.
//!
//! Federated scheduling partitions the machine statically:
//!
//! * each **heavy** task (`W_i > D_i`: cannot finish on one processor)
//!   receives `n_i = ⌈(W_i − L_i)/(D_i − L_i)⌉` **dedicated** processors —
//!   by the greedy (work-conserving) bound, every instance then meets its
//!   deadline regardless of DAG structure;
//! * **light** tasks run *sequentially* and are partitioned onto the
//!   remaining processors; a processor's light tasks meet deadlines under
//!   EDF if their total density `Σ W/min(D, T)` is at most 1.
//!
//! [`federated_assignment`] computes the partition (a *schedulability
//! test*: `None` means the set is not federated-schedulable on `m`);
//! [`FederatedScheduler`] executes it as an [`OnlineScheduler`], so the
//! guarantee can be checked empirically against the engine.

use dagsched_core::{JobId, Time};
use dagsched_engine::{Allocation, JobInfo, OnlineScheduler, TickView};
use dagsched_workload::sporadic::SporadicTaskSet;
use std::collections::HashMap;

/// The static partition computed by [`federated_assignment`].
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedAssignment {
    /// Dedicated processor count per task (0 for light tasks).
    pub dedicated: Vec<u32>,
    /// For light tasks, the shared processor they are partitioned onto
    /// (`None` for heavy tasks); indices are `0..shared_count`.
    pub shared_core: Vec<Option<u32>>,
    /// Number of processors serving light tasks.
    pub shared_count: u32,
}

impl FederatedAssignment {
    /// Total processors used.
    pub fn processors_used(&self) -> u32 {
        self.dedicated.iter().sum::<u32>() + self.shared_count
    }
}

/// Compute a federated assignment for the task set on `m` processors, or
/// `None` if the schedulability test fails.
///
/// Heavy tasks with `D_i ≤ L_i` are outright infeasible (even infinite
/// processors cannot help) and fail the test immediately.
pub fn federated_assignment(set: &SporadicTaskSet) -> Option<FederatedAssignment> {
    let m = set.m;
    let n_tasks = set.tasks.len();
    let mut dedicated = vec![0u32; n_tasks];
    let mut shared_core = vec![None; n_tasks];
    let mut used = 0u64;

    // Heavy tasks: dedicated allotments.
    for (i, task) in set.tasks.iter().enumerate() {
        if task.is_heavy() {
            let w = task.dag.total_work().as_f64();
            let l = task.dag.span().as_f64();
            let d = task.rel_deadline.as_f64();
            if d <= l {
                return None; // infeasible even with unbounded parallelism
            }
            let n = ((w - l) / (d - l)).ceil() as u32;
            dedicated[i] = n.max(1);
            used += dedicated[i] as u64;
        }
    }
    if used > m as u64 {
        return None;
    }

    // Light tasks: first-fit-decreasing by density onto shared processors,
    // each processor holding total density ≤ 1 (sequential EDF test for
    // constrained-deadline sporadic tasks).
    let mut light: Vec<usize> = (0..n_tasks).filter(|&i| !set.tasks[i].is_heavy()).collect();
    light.sort_by(|&a, &b| set.tasks[b].density().total_cmp(&set.tasks[a].density()));
    let max_shared = (m as u64 - used) as u32;
    let mut core_density: Vec<f64> = Vec::new();
    for &i in &light {
        let d = set.tasks[i].density();
        if d > 1.0 {
            return None; // a light task that alone overloads a processor
        }
        match core_density
            .iter()
            .position(|&load| load + d <= 1.0 + 1e-12)
        {
            Some(c) => {
                core_density[c] += d;
                shared_core[i] = Some(c as u32);
            }
            None => {
                if core_density.len() as u32 >= max_shared {
                    return None;
                }
                shared_core[i] = Some(core_density.len() as u32);
                core_density.push(d);
            }
        }
    }

    Some(FederatedAssignment {
        dedicated,
        shared_core,
        shared_count: core_density.len() as u32,
    })
}

/// Executes a [`FederatedAssignment`]: heavy tasks always receive their
/// dedicated allotment; each shared processor runs EDF over the alive jobs
/// of its light tasks, one processor at a time (sequential execution).
#[derive(Debug)]
pub struct FederatedScheduler {
    assignment: FederatedAssignment,
    /// Task index per job id.
    task_of_job: Vec<usize>,
    /// Alive jobs with their absolute deadlines.
    alive: HashMap<JobId, Time>,
}

impl FederatedScheduler {
    /// Create the scheduler. `task_of_job` comes from
    /// [`SporadicTaskSet::generate`].
    pub fn new(assignment: FederatedAssignment, task_of_job: Vec<usize>) -> FederatedScheduler {
        FederatedScheduler {
            assignment,
            task_of_job,
            alive: HashMap::new(),
        }
    }

    fn task_of(&self, id: JobId) -> usize {
        self.task_of_job[id.index()]
    }
}

impl OnlineScheduler for FederatedScheduler {
    fn name(&self) -> String {
        "FEDERATED".into()
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let d = info.abs_deadline().unwrap_or_else(|| {
            info.arrival
                .saturating_add(info.profit.last_useful_time().ticks())
        });
        self.alive.insert(info.id, d);
    }

    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.remove(&id);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.remove(&id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out: Allocation = Vec::new();
        // Per shared core: the earliest-deadline alive job among its tasks.
        let mut shared_best: Vec<Option<(Time, JobId)>> =
            vec![None; self.assignment.shared_count as usize];
        for &(id, ready) in view.jobs() {
            let task = self.task_of(id);
            let dedicated = self.assignment.dedicated[task];
            if dedicated > 0 {
                let k = dedicated.min(ready.max(1));
                // Heavy task instance: its dedicated cores, capped by ready
                // nodes (surplus would idle anyway).
                out.push((id, k.min(dedicated)));
            } else if let Some(core) = self.assignment.shared_core[task] {
                if ready == 0 {
                    continue;
                }
                let d = self.alive.get(&id).copied().unwrap_or(Time::MAX);
                let slot = &mut shared_best[core as usize];
                if slot.is_none() || matches!(slot, Some((dd, _)) if d < *dd) {
                    *slot = Some((d, id));
                }
            }
        }
        for best in shared_best.into_iter().flatten() {
            out.push((best.1, 1));
        }
        out
    }

    fn allocation_stable_between_events(&self) -> bool {
        // The task→core assignment is fixed offline; per-tick choice depends
        // only on alive deadlines and ready counts, never on `view.now`.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Rng64;
    use dagsched_dag::gen;
    use dagsched_engine::{simulate, SimConfig};
    use dagsched_workload::sporadic::{SporadicTask, SporadicTaskSet};

    fn heavy_task(m_needed: u32, period: u64) -> SporadicTask {
        // Block of width 4*m_needed, work 2 each, deadline forcing ~m_needed
        // processors: W = 8k, L = 2, D = (W-L)/k + L + slackish.
        let dag = gen::block(4 * m_needed, 2).into_shared();
        let w = dag.total_work().as_f64();
        let l = dag.span().as_f64();
        let d = ((w - l) / m_needed as f64 + l).ceil() as u64 + 1;
        SporadicTask {
            dag,
            period,
            rel_deadline: Time(d),
            profit: 1,
            jitter: 0,
        }
    }

    fn light_task(width: u32, period: u64, d: u64) -> SporadicTask {
        SporadicTask {
            dag: gen::block(width, 2).into_shared(),
            period,
            rel_deadline: Time(d),
            profit: 1,
            jitter: 0,
        }
    }

    #[test]
    fn assignment_dedicates_heavy_and_partitions_light() {
        let set = SporadicTaskSet {
            m: 8,
            tasks: vec![
                heavy_task(3, 100),
                light_task(2, 20, 18), // density 4/18
                light_task(2, 25, 10), // density 4/10
            ],
            horizon: Time(200),
            seed: 0,
        };
        let a = federated_assignment(&set).expect("schedulable");
        assert!(a.dedicated[0] >= 3);
        assert_eq!(a.dedicated[1], 0);
        assert_eq!(a.shared_count, 1, "both light tasks fit one processor");
        assert!(a.processors_used() <= 8);
    }

    #[test]
    fn test_rejects_overloaded_sets() {
        // Two heavy tasks each needing ~3 processors on m = 4.
        let set = SporadicTaskSet {
            m: 4,
            tasks: vec![heavy_task(3, 50), heavy_task(3, 50)],
            horizon: Time(100),
            seed: 0,
        };
        assert!(federated_assignment(&set).is_none());
        // A light task with density > 1 is impossible sequentially...
        let set = SporadicTaskSet {
            m: 4,
            tasks: vec![light_task(3, 20, 5)], // W = 6 > D = 5 -> heavy actually
            horizon: Time(100),
            seed: 0,
        };
        // W > D makes it heavy; D > L so it gets dedicated cores instead.
        assert!(federated_assignment(&set).is_some());
        // An infeasible heavy task (D < L).
        let infeasible = SporadicTask {
            dag: gen::chain(10, 2).into_shared(),
            period: 50,
            rel_deadline: Time(10),
            profit: 1,
            jitter: 0,
        };
        let set = SporadicTaskSet {
            m: 4,
            tasks: vec![infeasible],
            horizon: Time(100),
            seed: 0,
        };
        assert!(federated_assignment(&set).is_none());
    }

    #[test]
    fn schedulable_sets_meet_every_deadline_in_simulation() {
        // The federated guarantee, end to end: accepted sets miss nothing.
        let mut rng = Rng64::seed_from(42);
        for trial in 0..5 {
            let set = SporadicTaskSet {
                m: 10,
                tasks: vec![
                    heavy_task(2 + (trial % 2) as u32, 120),
                    light_task(1 + (trial % 3) as u32, 30, 25),
                    light_task(2, 40, 35),
                    light_task(1, 15, 12),
                ],
                horizon: Time(600),
                seed: rng.next_u64(),
            };
            let Some(assign) = federated_assignment(&set) else {
                panic!("trial {trial}: set should be schedulable");
            };
            let (inst, task_of_job) = set.generate().unwrap();
            let n = inst.len();
            let mut sched = FederatedScheduler::new(assign, task_of_job);
            let r = simulate(&inst, &mut sched, &SimConfig::default()).unwrap();
            assert_eq!(
                r.completed(),
                n,
                "trial {trial}: {} deadline misses",
                n - r.completed()
            );
        }
    }

    #[test]
    fn sequential_light_execution_uses_one_processor_per_core() {
        let set = SporadicTaskSet {
            m: 4,
            tasks: vec![light_task(4, 50, 40), light_task(4, 50, 40)],
            horizon: Time(45),
            seed: 0,
        };
        let a = federated_assignment(&set).unwrap();
        let (inst, map) = set.generate().unwrap();
        let mut sched = FederatedScheduler::new(a.clone(), map);
        // Both light tasks released at 0: per tick, each shared core runs
        // exactly one job with one processor.
        let jobs: Vec<(JobId, u32)> = inst
            .jobs()
            .iter()
            .map(|j| (j.id, j.dag.num_nodes() as u32))
            .collect();
        for j in inst.jobs() {
            sched.on_arrival(
                &JobInfo {
                    id: j.id,
                    arrival: j.arrival,
                    work: j.work(),
                    span: j.span(),
                    profit: j.profit.clone(),
                },
                Time(0),
            );
        }
        let alloc = sched.allocate(&TickView::new(4, Time(0), &jobs));
        assert_eq!(alloc.len() as u32, a.shared_count.min(2));
        assert!(alloc.iter().all(|(_, k)| *k == 1));
    }
}
