//! Baseline online schedulers.
//!
//! All baselines are *work-conserving*: they order the alive jobs by some
//! priority and hand each job as many processors as it has ready nodes until
//! the machine is full. (Scheduler S is deliberately **not** work-conserving
//! — it reserves band capacity — which is exactly what the baseline
//! comparison experiment, E7 in DESIGN.md, probes.)
//!
//! * [`Fifo`] — first-come-first-served;
//! * [`Edf`] — earliest absolute deadline first (the classic real-time
//!   policy, good at low load, collapses under overload);
//! * [`GreedyDensity`] — highest static density `p/W` first (profit-aware
//!   greedy, no admission control);
//! * [`LeastLaxity`] — smallest `d − brent(W, L, m)` first (deadline slack
//!   aware);
//! * [`RandomOrder`] — a seeded random order each tick (sanity floor);
//! * [`SNoAdmission`] — ablation of scheduler S: same allotments `n_i` and
//!   density order, but *every* job is admitted (no δ-good test, no band
//!   condition). Quantifies what the admission machinery buys.
//!
//! Two literature baselines sit outside the work-conserving macro family:
//!
//! * [`MoldableList`] — a moldable list scheduler in the style of Perotin,
//!   Sun & Raghavan: per-job allotments fixed at arrival and capped at
//!   `⌈m/2⌉`, list scheduling in arrival order;
//! * [`EquiPartition`] — a non-clairvoyant equipartition in the style of
//!   Garg, Gupta, Kumar & Singla: the machine is split evenly among alive
//!   jobs with no access to work, span, deadline, or profit.
//!
//! Every priority key here is fixed at arrival, so the alive list is kept
//! *insertion-sorted* by `(key, seq)` instead of being cloned and re-sorted
//! per tick: the unique ascending `seq` tiebreak makes the maintained order
//! identical to the old stable sort, and the per-tick path (a walk plus a
//! dense ready-count scratch) allocates nothing.

use crate::slab::DenseU32Map;
use dagsched_core::{AlgoParams, JobId, Rng64, Time};
use dagsched_engine::{
    AdmissionDecision, AdmissionEvent, Allocation, JobInfo, OnlineScheduler, TickView, ViewDelta,
};

/// Arrival-time facts a baseline keeps per alive job.
#[derive(Debug, Clone, Copy)]
struct Entry {
    id: JobId,
    seq: u64,
    deadline: Time,
    density: f64,
    laxity_key: f64,
    /// The owning scheduler's priority key, computed once at arrival.
    sort_key: f64,
}

/// Shared alive-set bookkeeping: a `(sort_key, seq)`-sorted list.
#[derive(Debug, Default)]
struct Base {
    alive: Vec<Entry>,
    seq: u64,
}

impl Base {
    fn add(&mut self, info: &JobInfo, m: u32, key: fn(&Entry) -> f64) {
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let brent = (w - l) / m as f64 + l;
        let deadline = info.abs_deadline().unwrap_or_else(|| {
            info.arrival
                .saturating_add(info.profit.last_useful_time().ticks())
        });
        let mut e = Entry {
            id: info.id,
            seq: self.seq,
            deadline,
            density: info.profit.max_profit() as f64 / w,
            laxity_key: deadline.as_f64() - brent,
            sort_key: 0.0,
        };
        e.sort_key = key(&e);
        self.seq += 1;
        // `e.seq` is the largest seq so far, so among equal keys the new
        // entry lands after every existing one — exactly where a stable
        // sort by `(key, seq)` would put it.
        let at = self.alive.partition_point(|x| {
            x.sort_key
                .total_cmp(&e.sort_key)
                .then(x.seq.cmp(&e.seq))
                .is_lt()
        });
        self.alive.insert(at, e);
    }

    fn remove(&mut self, id: JobId) {
        self.alive.retain(|e| e.id != id);
    }

    fn clear(&mut self) {
        self.alive.clear();
        self.seq = 0;
    }
}

/// Work-conserving fill: walk `order`, give each job `min(ready, left)`.
/// `lut` is caller-owned scratch, rebuilt from the view; `out` is appended
/// to.
fn fill_into(
    order: impl Iterator<Item = JobId>,
    view: &TickView<'_>,
    lut: &mut DenseU32Map,
    out: &mut Allocation,
) {
    lut.clear();
    for &(id, r) in view.jobs() {
        lut.set(id, r);
    }
    fill_with_lut(order, view.m, lut, out);
}

/// The fill walk against an already-current ready lut — the delta path's
/// variant of [`fill_into`] with the O(alive) rebuild factored out.
fn fill_with_lut(
    order: impl Iterator<Item = JobId>,
    m: u32,
    lut: &DenseU32Map,
    out: &mut Allocation,
) {
    let mut left = m;
    for id in order {
        if left == 0 {
            break;
        }
        let Some(r) = lut.get(id) else { continue };
        let k = r.min(left);
        if k > 0 {
            out.push((id, k));
            left -= k;
        }
    }
}

macro_rules! baseline {
    ($(#[$doc:meta])* $name:ident, $label:expr, $key:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            m: u32,
            base: Base,
            /// Ready counts: per-call scratch on the rebuild path, kept
            /// *persistent* across calls on the delta path (`lut_live`).
            ready_lut: DenseU32Map,
            /// True while `ready_lut` mirrors the engine's maintained view
            /// (delta path only; any full `allocate_into` invalidates it).
            lut_live: bool,
        }

        impl $name {
            /// Create the scheduler for `m` processors.
            pub fn new(m: u32) -> $name {
                $name {
                    m,
                    base: Base::default(),
                    ready_lut: DenseU32Map::new(),
                    lut_live: false,
                }
            }
        }

        impl OnlineScheduler for $name {
            fn name(&self) -> String {
                $label.into()
            }
            fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
                self.base.add(info, self.m, $key);
            }
            fn on_completion(&mut self, id: JobId, _now: Time) {
                self.base.remove(id);
            }
            fn on_expiry(&mut self, id: JobId, _now: Time) {
                self.base.remove(id);
            }
            fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
                let mut out = Vec::new();
                self.allocate_into(view, &mut out);
                out
            }
            fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
                self.lut_live = false;
                out.clear();
                fill_into(
                    self.base.alive.iter().map(|e| e.id),
                    view,
                    &mut self.ready_lut,
                    out,
                );
            }
            fn allocate_delta(
                &mut self,
                delta: &ViewDelta,
                view: &TickView<'_>,
                out: &mut Allocation,
            ) -> bool {
                if self.lut_live && delta.is_empty() {
                    // Nothing moved since the last call: `out` still holds
                    // that call's allocation, and replaying it verbatim is
                    // exactly what the full walk would recompute.
                    return true;
                }
                if self.lut_live {
                    self.ready_lut.apply_view_delta(delta);
                } else {
                    // First delta call of the run: seed the lut once.
                    self.ready_lut.clear();
                    for &(id, r) in view.jobs() {
                        self.ready_lut.set(id, r);
                    }
                    self.lut_live = true;
                }
                out.clear();
                fill_with_lut(
                    self.base.alive.iter().map(|e| e.id),
                    view.m,
                    &self.ready_lut,
                    out,
                );
                true
            }
            fn allocation_stable_between_events(&self) -> bool {
                // Every baseline orders by keys fixed at arrival (seq,
                // absolute deadline, static density, laxity key) and fills
                // work-conservingly from the view — a pure function of the
                // alive set and ready counts, independent of `now`.
                true
            }
            fn group_aware(&self) -> bool {
                // On a related-machines platform the baselines want their
                // highest-ranked jobs on the fastest processors: the fill
                // order is already priority order, so fastest-first
                // placement is exactly right.
                true
            }
            fn reset(&mut self) -> bool {
                self.base.clear();
                self.ready_lut.clear();
                self.lut_live = false;
                true
            }
        }
    };
}

baseline!(
    /// First-come-first-served (by arrival sequence).
    Fifo,
    "FIFO",
    |e: &Entry| e.seq as f64
);

baseline!(
    /// Earliest absolute deadline first.
    Edf,
    "EDF",
    |e: &Entry| e.deadline.as_f64()
);

baseline!(
    /// Highest static density `p/W` first.
    GreedyDensity,
    "HDF",
    |e: &Entry| -e.density
);

baseline!(
    /// Least laxity (`d − brent`) first.
    LeastLaxity,
    "LLF",
    |e: &Entry| e.laxity_key
);

/// Random job order each tick, from a fixed seed.
#[derive(Debug)]
pub struct RandomOrder {
    m: u32,
    base: Base,
    seed: u64,
    rng: Rng64,
    ids: Vec<JobId>,
    ready_lut: DenseU32Map,
}

impl RandomOrder {
    /// Create the scheduler for `m` processors with the given seed.
    pub fn new(m: u32, seed: u64) -> RandomOrder {
        RandomOrder {
            m,
            base: Base::default(),
            seed,
            rng: Rng64::seed_from(seed),
            ids: Vec::new(),
            ready_lut: DenseU32Map::new(),
        }
    }
}

impl OnlineScheduler for RandomOrder {
    fn name(&self) -> String {
        "RANDOM".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        // Arrival-sequence key: the pre-shuffle order stays the arrival
        // order, exactly as before the sorted-list rework.
        self.base.add(info, self.m, |e| e.seq as f64);
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.base.remove(id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.base.remove(id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        out.clear();
        self.ids.clear();
        self.ids.extend(self.base.alive.iter().map(|e| e.id));
        self.rng.shuffle(&mut self.ids);
        fill_into(self.ids.iter().copied(), view, &mut self.ready_lut, out);
    }
    fn allocation_stable_between_events(&self) -> bool {
        // Deliberately NOT stable: each call consumes RNG state and may
        // return a different order.
        false
    }
    fn bounded_stability(&self) -> bool {
        // ... but it IS *boundedly* stable with single-tick windows: the
        // engine re-asks (and the RNG re-rolls) every tick, exactly as the
        // naive path would, while keeping the claim/advance machinery.
        true
    }
    fn stable_until(&self, now: Time) -> Option<Time> {
        Some(now.after(1))
    }
    fn completion_keys_stable(&self) -> bool {
        // Sound because every window is a single tick: the allocation
        // cannot reshuffle *within* a window.
        true
    }
    fn reset(&mut self) -> bool {
        self.base.clear();
        self.rng = Rng64::seed_from(self.seed);
        true
    }
}

/// Ablation: scheduler S's allotment-and-density rule without admission
/// control — every arriving job goes straight to the running queue.
#[derive(Debug)]
pub struct SNoAdmission {
    m: u32,
    params: AlgoParams,
    /// (density, seq, id, allot) of alive jobs, kept sorted by
    /// (density desc, seq asc) — the allocate order.
    alive: Vec<(f64, u64, JobId, u32)>,
    seq: u64,
    report: Option<Vec<AdmissionEvent>>,
    /// True while `out` from the previous allocate call is still current
    /// (delta path: the walk ignores ready counts, so only hook-driven
    /// queue changes can invalidate it).
    cache_live: bool,
}

impl SNoAdmission {
    /// Create the ablated scheduler.
    pub fn new(m: u32, params: AlgoParams) -> SNoAdmission {
        SNoAdmission {
            m,
            params,
            alive: Vec::new(),
            seq: 0,
            report: None,
            cache_live: false,
        }
    }
}

impl OnlineScheduler for SNoAdmission {
    fn name(&self) -> String {
        "S-noadmit".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let (d_rel, profit) = info
            .profit
            .as_deadline()
            .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let allot = match self.params.raw_allotment(w, l, d_rel.as_f64()) {
            Some(frac) => ((frac.ceil() as u32).max(1)).min(self.m),
            None => self.m,
        };
        let x = AlgoParams::x_time(w, l, allot);
        let density = profit as f64 / (x * allot as f64);
        let e = (density, self.seq, info.id, allot);
        self.seq += 1;
        // Descending density, ascending seq; the new seq is the largest, so
        // equal densities place it after every existing equal — matching
        // the stable sort this list used to undergo per tick.
        let at = self
            .alive
            .partition_point(|x| x.0.total_cmp(&e.0).reverse().then(x.1.cmp(&e.1)).is_lt());
        self.alive.insert(at, e);
        if let Some(buf) = self.report.as_mut() {
            // The ablation's whole point: every job is admitted.
            buf.push(AdmissionEvent {
                job: info.id,
                decision: AdmissionDecision::Admitted,
            });
        }
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.cache_live = false;
        out.clear();
        let mut left = view.m;
        for &(_, _, id, allot) in &self.alive {
            if left == 0 {
                break;
            }
            if allot <= left {
                out.push((id, allot));
                left -= allot;
            }
        }
    }
    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        if self.cache_live && delta.is_empty() {
            return true;
        }
        // The walk never reads ready counts, so a non-empty delta just
        // means "rerun the (cheap) allotment walk" — no lut to maintain.
        self.allocate_into(view, out);
        self.cache_live = true;
        true
    }
    fn allocation_stable_between_events(&self) -> bool {
        // Pure walk over (density, seq, allot) tuples fixed at arrival.
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }

    fn reset(&mut self) -> bool {
        self.alive.clear();
        self.seq = 0;
        self.report = None;
        self.cache_live = false;
        true
    }
}

/// Moldable list scheduler after Perotin, Sun & Raghavan (multi-resource
/// list scheduling of moldable jobs under precedence constraints, 2021),
/// adapted to the single processor resource: each job's allotment is fixed
/// at arrival to the value that balances its area against its critical path
/// (`max(W/p, L)` is minimized at `p = ⌈W/L⌉`), then *limited* to `⌈m/2⌉` —
/// the paper's μ-bounded allotment trick that keeps list scheduling from
/// starving wide jobs — and jobs are list-scheduled in arrival order.
///
/// Unlike the work-conserving baselines above, a job never exceeds its
/// fixed allotment (that is what makes it *moldable*: the size is chosen
/// once, not re-negotiated per tick), but unused capacity still flows to
/// later jobs in list order.
#[derive(Debug)]
pub struct MoldableList {
    m: u32,
    /// `(seq, id, allot)` in arrival order — the list.
    alive: Vec<(u64, JobId, u32)>,
    seq: u64,
    ready_lut: DenseU32Map,
    lut_live: bool,
}

impl MoldableList {
    /// Create the scheduler for `m` processors.
    pub fn new(m: u32) -> MoldableList {
        MoldableList {
            m,
            alive: Vec::new(),
            seq: 0,
            ready_lut: DenseU32Map::new(),
            lut_live: false,
        }
    }

    fn fill(&self, m: u32, out: &mut Allocation) {
        let mut left = m;
        for &(_, id, allot) in &self.alive {
            if left == 0 {
                break;
            }
            let Some(r) = self.ready_lut.get(id) else {
                continue;
            };
            let k = r.min(allot).min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
    }
}

impl OnlineScheduler for MoldableList {
    fn name(&self) -> String {
        "MOLD-LIST".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let w = info.work.as_f64();
        let l = info.span.as_f64().max(1.0);
        let cap = self.m.div_ceil(2).max(1);
        let allot = ((w / l).ceil() as u32).clamp(1, cap);
        self.alive.push((self.seq, info.id, allot));
        self.seq += 1;
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.1 != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.1 != id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.lut_live = false;
        out.clear();
        self.ready_lut.clear();
        for &(id, r) in view.jobs() {
            self.ready_lut.set(id, r);
        }
        self.fill(view.m, out);
    }
    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        if self.lut_live && delta.is_empty() {
            return true;
        }
        if self.lut_live {
            self.ready_lut.apply_view_delta(delta);
        } else {
            self.ready_lut.clear();
            for &(id, r) in view.jobs() {
                self.ready_lut.set(id, r);
            }
            self.lut_live = true;
        }
        out.clear();
        self.fill(view.m, out);
        true
    }
    fn allocation_stable_between_events(&self) -> bool {
        // List order and allotments are fixed at arrival; the fill is a
        // pure function of the alive set and ready counts.
        true
    }
    fn group_aware(&self) -> bool {
        true
    }
    fn reset(&mut self) -> bool {
        self.alive.clear();
        self.seq = 0;
        self.ready_lut.clear();
        self.lut_live = false;
        true
    }
}

/// Non-clairvoyant equipartition after Garg, Gupta, Kumar & Singla
/// (non-clairvoyant precedence-constrained scheduling, 2019): the machine
/// is split as evenly as possible among the alive jobs, ignoring work,
/// span, deadline, *and* profit — the scheduler sees nothing but the alive
/// set and each job's ready width, exactly the non-clairvoyant information
/// model. Capacity a job cannot absorb (ready width below its share) flows
/// to later jobs in arrival order, keeping the policy work-conserving.
#[derive(Debug)]
pub struct EquiPartition {
    /// `(seq, id)` in arrival order.
    alive: Vec<(u64, JobId)>,
    seq: u64,
    ready_lut: DenseU32Map,
    lut_live: bool,
}

impl EquiPartition {
    /// Create the scheduler (`m` comes from the view).
    pub fn new(_m: u32) -> EquiPartition {
        EquiPartition {
            alive: Vec::new(),
            seq: 0,
            ready_lut: DenseU32Map::new(),
            lut_live: false,
        }
    }

    fn fill(&self, m: u32, out: &mut Allocation) {
        let k = self.alive.len() as u32;
        if k == 0 {
            return;
        }
        // Even split first: job i gets ⌊m/k⌋ (+1 for the first m mod k
        // jobs), capped by its ready width.
        let (quota, rem) = (m / k, m % k);
        let mut left = m;
        for (i, &(_, id)) in self.alive.iter().enumerate() {
            let share = quota + u32::from((i as u32) < rem);
            let Some(r) = self.ready_lut.get(id) else {
                continue;
            };
            let give = r.min(share).min(left);
            if give > 0 {
                out.push((id, give));
                left -= give;
            }
        }
        if left == 0 {
            return;
        }
        // Work-conserving second pass: hand leftover capacity to jobs with
        // ready width beyond their share, in arrival order. `out` entries
        // are in arrival order too, so patching them keeps the invariant.
        let mut at = 0;
        for &(_, id) in &self.alive {
            if left == 0 {
                break;
            }
            let Some(r) = self.ready_lut.get(id) else {
                continue;
            };
            match out.get_mut(at) {
                Some(e) if e.0 == id => {
                    let extra = (r - e.1).min(left);
                    e.1 += extra;
                    left -= extra;
                    at += 1;
                }
                _ => {
                    // Job got nothing in pass one (share rounded to zero
                    // while ready > 0 can't happen — shares are ≥ ⌊m/k⌋ ≥ 0
                    // and give > 0 whenever both share and ready are — but
                    // ready == 0 jobs are skipped, so just insert).
                    let give = r.min(left);
                    if give > 0 {
                        out.insert(at, (id, give));
                        left -= give;
                        at += 1;
                    }
                }
            }
        }
    }
}

impl OnlineScheduler for EquiPartition {
    fn name(&self) -> String {
        "EQUI".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        self.alive.push((self.seq, info.id));
        self.seq += 1;
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.1 != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.1 != id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.lut_live = false;
        out.clear();
        self.ready_lut.clear();
        for &(id, r) in view.jobs() {
            self.ready_lut.set(id, r);
        }
        self.fill(view.m, out);
    }
    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        if self.lut_live && delta.is_empty() {
            return true;
        }
        if self.lut_live {
            self.ready_lut.apply_view_delta(delta);
        } else {
            self.ready_lut.clear();
            for &(id, r) in view.jobs() {
                self.ready_lut.set(id, r);
            }
            self.lut_live = true;
        }
        out.clear();
        self.fill(view.m, out);
        true
    }
    fn allocation_stable_between_events(&self) -> bool {
        // The split depends only on the alive count and ready widths.
        true
    }
    fn group_aware(&self) -> bool {
        true
    }
    fn reset(&mut self) -> bool {
        self.alive.clear();
        self.seq = 0;
        self.ready_lut.clear();
        self.lut_live = false;
        true
    }
}

/// Ablation wrapper: run any scheduler with group-aware placement forced
/// **off**, so on a related-machines platform its allocation entries consume
/// processors in declaration order instead of fastest-first.
///
/// Every other trait method delegates verbatim, so on a uniform platform the
/// wrapper is behaviorally invisible. The `related-machines` bench group
/// compares `Edf` against `AggregateBlind<Edf>` on a skewed platform to
/// measure what fastest-first placement alone is worth.
#[derive(Debug)]
pub struct AggregateBlind<S>(pub S);

impl<S: OnlineScheduler> OnlineScheduler for AggregateBlind<S> {
    fn name(&self) -> String {
        format!("{}-blind", self.0.name())
    }
    fn on_arrival(&mut self, info: &JobInfo, now: Time) {
        self.0.on_arrival(info, now);
    }
    fn on_completion(&mut self, id: JobId, now: Time) {
        self.0.on_completion(id, now);
    }
    fn on_expiry(&mut self, id: JobId, now: Time) {
        self.0.on_expiry(id, now);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        self.0.allocate(view)
    }
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.0.allocate_into(view, out);
    }
    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        self.0.allocate_delta(delta, view, out)
    }
    fn allocation_stable_between_events(&self) -> bool {
        self.0.allocation_stable_between_events()
    }
    fn completion_keys_stable(&self) -> bool {
        self.0.completion_keys_stable()
    }
    fn bounded_stability(&self) -> bool {
        self.0.bounded_stability()
    }
    fn stable_until(&self, now: Time) -> Option<Time> {
        self.0.stable_until(now)
    }
    fn group_aware(&self) -> bool {
        false
    }
    fn enable_admission_reporting(&mut self) {
        self.0.enable_admission_reporting();
    }
    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        self.0.drain_admission_events(out);
    }
    fn reset(&mut self) -> bool {
        self.0.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_dag::gen;
    use dagsched_engine::{simulate, SimConfig};
    use dagsched_workload::{Instance, JobSpec, StepProfitFn, WorkloadGen};

    fn info(id: u32, arrival: u64, w: u64, l: u64, d: u64, p: u64) -> JobInfo {
        JobInfo {
            id: JobId(id),
            arrival: Time(arrival),
            work: Work(w),
            span: Work(l),
            profit: StepProfitFn::deadline(Time(d), p),
        }
    }

    #[test]
    fn fifo_orders_by_arrival_sequence() {
        let mut s = Fifo::new(2);
        s.on_arrival(&info(0, 0, 10, 1, 50, 1), Time(0));
        s.on_arrival(&info(1, 0, 10, 1, 5, 99), Time(0));
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(2, Time(0), &jobs));
        assert_eq!(alloc, vec![(JobId(0), 2)], "all capacity to the first");
    }

    #[test]
    fn edf_prefers_earliest_deadline() {
        let mut s = Edf::new(2);
        s.on_arrival(&info(0, 0, 10, 1, 50, 1), Time(0));
        s.on_arrival(&info(1, 0, 10, 1, 5, 1), Time(0));
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(2, Time(0), &jobs));
        assert_eq!(alloc[0].0, JobId(1));
    }

    #[test]
    fn hdf_prefers_density_not_raw_profit() {
        let mut s = GreedyDensity::new(2);
        s.on_arrival(&info(0, 0, 100, 1, 50, 60), Time(0)); // density 0.6
        s.on_arrival(&info(1, 0, 10, 1, 50, 20), Time(0)); // density 2.0
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(2, Time(0), &jobs));
        assert_eq!(alloc[0].0, JobId(1));
    }

    #[test]
    fn llf_prefers_tighter_slack() {
        let mut s = LeastLaxity::new(4);
        // Same deadline; job 1 has much more work → less laxity.
        s.on_arrival(&info(0, 0, 8, 1, 40, 1), Time(0));
        s.on_arrival(&info(1, 0, 120, 1, 40, 1), Time(0));
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(4, Time(0), &jobs));
        assert_eq!(alloc[0].0, JobId(1));
    }

    #[test]
    fn equal_keys_break_ties_by_arrival_order() {
        // Three identical jobs under EDF: the maintained sorted list must
        // keep them in arrival order, like the stable sort it replaced.
        let mut s = Edf::new(8);
        for id in 0..3 {
            s.on_arrival(&info(id, 0, 10, 1, 50, 1), Time(0));
        }
        let jobs = [(JobId(2), 2u32), (JobId(0), 2), (JobId(1), 2)];
        let alloc = s.allocate(&TickView::new(8, Time(0), &jobs));
        assert_eq!(
            alloc,
            vec![(JobId(0), 2), (JobId(1), 2), (JobId(2), 2)],
            "ties resolve by seq"
        );
    }

    #[test]
    fn work_conserving_fill_respects_ready_and_capacity() {
        let mut s = Fifo::new(4);
        s.on_arrival(&info(0, 0, 10, 10, 90, 1), Time(0)); // a chain: 1 ready
        s.on_arrival(&info(1, 0, 10, 1, 90, 1), Time(0));
        let jobs = [(JobId(0), 1u32), (JobId(1), 10)];
        let alloc = s.allocate(&TickView::new(4, Time(0), &jobs));
        assert_eq!(alloc, vec![(JobId(0), 1), (JobId(1), 3)]);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let inst = WorkloadGen::standard(4, 40, 9).generate().unwrap();
        let run = |seed| {
            let mut s = RandomOrder::new(4, seed);
            simulate(&inst, &mut s, &SimConfig::default())
                .unwrap()
                .total_profit
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn all_baselines_run_clean_on_a_real_workload() {
        let inst = WorkloadGen::standard(8, 80, 13).generate().unwrap();
        let mut results = Vec::new();
        let cfg = SimConfig::default();
        macro_rules! run {
            ($s:expr) => {{
                let mut s = $s;
                let r = simulate(&inst, &mut s, &cfg).unwrap();
                results.push((r.scheduler.clone(), r.total_profit));
            }};
        }
        run!(Fifo::new(8));
        run!(Edf::new(8));
        run!(GreedyDensity::new(8));
        run!(LeastLaxity::new(8));
        run!(RandomOrder::new(8, 5));
        run!(SNoAdmission::new(8, AlgoParams::from_epsilon(1.0).unwrap()));
        for (name, profit) in &results {
            assert!(*profit > 0, "{name} earned nothing");
        }
    }

    #[test]
    fn moldable_allotment_balances_area_against_span_and_is_capped() {
        let mut s = MoldableList::new(8);
        // W=40, L=10 → p* = ⌈40/10⌉ = 4, at the cap ⌈8/2⌉ = 4.
        s.on_arrival(&info(0, 0, 40, 10, 90, 1), Time(0));
        // W=100, L=2 → p* = 50, capped to 4.
        s.on_arrival(&info(1, 0, 100, 2, 90, 1), Time(0));
        let jobs = [(JobId(0), 8u32), (JobId(1), 8)];
        let alloc = s.allocate(&TickView::new(8, Time(0), &jobs));
        assert_eq!(
            alloc,
            vec![(JobId(0), 4), (JobId(1), 4)],
            "fixed allotments, never the full ready width"
        );
    }

    #[test]
    fn equi_splits_evenly_and_redistributes_unused_shares() {
        let mut s = EquiPartition::new(6);
        for id in 0..3 {
            s.on_arrival(&info(id, 0, 10, 1, 90, 1), Time(0));
        }
        // Job 0 can only absorb 1 of its 2-processor share; the spare
        // processor flows to job 1 (first in arrival order with headroom).
        let jobs = [(JobId(0), 1u32), (JobId(1), 6), (JobId(2), 2)];
        let alloc = s.allocate(&TickView::new(6, Time(0), &jobs));
        assert_eq!(alloc, vec![(JobId(0), 1), (JobId(1), 3), (JobId(2), 2)]);
    }

    #[test]
    fn literature_baselines_run_clean_and_match_their_naive_twin() {
        let inst = WorkloadGen::standard(6, 50, 17).generate().unwrap();
        let naive_cfg = SimConfig {
            fast_forward: false,
            ..SimConfig::default()
        };
        let fast = simulate(&inst, &mut MoldableList::new(6), &SimConfig::default()).unwrap();
        let naive = simulate(&inst, &mut MoldableList::new(6), &naive_cfg).unwrap();
        assert!(fast.total_profit > 0);
        assert!(fast.same_outcome(&naive), "MOLD-LIST fast path diverged");
        let fast = simulate(&inst, &mut EquiPartition::new(6), &SimConfig::default()).unwrap();
        let naive = simulate(&inst, &mut EquiPartition::new(6), &naive_cfg).unwrap();
        assert!(fast.total_profit > 0);
        assert!(fast.same_outcome(&naive), "EQUI fast path diverged");
    }

    #[test]
    fn expiry_and_completion_shrink_the_alive_set() {
        let mut s = Edf::new(2);
        s.on_arrival(&info(0, 0, 10, 1, 50, 1), Time(0));
        s.on_arrival(&info(1, 0, 10, 1, 5, 1), Time(0));
        s.on_completion(JobId(1), Time(3));
        s.on_expiry(JobId(0), Time(50));
        let jobs: [(JobId, u32); 0] = [];
        assert!(s.allocate(&TickView::new(2, Time(51), &jobs)).is_empty());
    }

    #[test]
    fn sno_admission_runs_everything_greedily() {
        // Two band-conflicting jobs: plain S parks one, the ablation runs
        // both at once when capacity allows.
        let dag0 = gen::block(60, 1).into_shared();
        let inst = Instance::new(
            8,
            vec![
                JobSpec::new(
                    JobId(0),
                    Time(0),
                    dag0.clone(),
                    StepProfitFn::deadline(Time(24), 60),
                ),
                JobSpec::new(
                    JobId(1),
                    Time(0),
                    dag0,
                    StepProfitFn::deadline(Time(24), 60),
                ),
            ],
        )
        .unwrap();
        let mut s = SNoAdmission::new(8, AlgoParams::from_epsilon(1.0).unwrap());
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert_eq!(r.completed(), 2, "both jobs fit when run simultaneously");
    }
}
