//! Baseline online schedulers.
//!
//! All baselines are *work-conserving*: they order the alive jobs by some
//! priority and hand each job as many processors as it has ready nodes until
//! the machine is full. (Scheduler S is deliberately **not** work-conserving
//! — it reserves band capacity — which is exactly what the baseline
//! comparison experiment, E7 in DESIGN.md, probes.)
//!
//! * [`Fifo`] — first-come-first-served;
//! * [`Edf`] — earliest absolute deadline first (the classic real-time
//!   policy, good at low load, collapses under overload);
//! * [`GreedyDensity`] — highest static density `p/W` first (profit-aware
//!   greedy, no admission control);
//! * [`LeastLaxity`] — smallest `d − brent(W, L, m)` first (deadline slack
//!   aware);
//! * [`RandomOrder`] — a seeded random order each tick (sanity floor);
//! * [`SNoAdmission`] — ablation of scheduler S: same allotments `n_i` and
//!   density order, but *every* job is admitted (no δ-good test, no band
//!   condition). Quantifies what the admission machinery buys.

use dagsched_core::{AlgoParams, JobId, Rng64, Time};
use dagsched_engine::{
    AdmissionDecision, AdmissionEvent, Allocation, JobInfo, OnlineScheduler, TickView,
};
use std::collections::HashMap;

/// Arrival-time facts a baseline keeps per alive job.
#[derive(Debug, Clone, Copy)]
struct Entry {
    id: JobId,
    seq: u64,
    deadline: Time,
    density: f64,
    laxity_key: f64,
}

/// Shared alive-set bookkeeping.
#[derive(Debug, Default)]
struct Base {
    alive: Vec<Entry>,
    seq: u64,
}

impl Base {
    fn add(&mut self, info: &JobInfo, m: u32) {
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let brent = (w - l) / m as f64 + l;
        let deadline = info.abs_deadline().unwrap_or_else(|| {
            info.arrival
                .saturating_add(info.profit.last_useful_time().ticks())
        });
        self.alive.push(Entry {
            id: info.id,
            seq: self.seq,
            deadline,
            density: info.profit.max_profit() as f64 / w,
            laxity_key: deadline.as_f64() - brent,
        });
        self.seq += 1;
    }

    fn remove(&mut self, id: JobId) {
        self.alive.retain(|e| e.id != id);
    }
}

/// Work-conserving fill: walk `order`, give each job `min(ready, left)`.
fn fill(order: &[JobId], view: &TickView<'_>) -> Allocation {
    let ready: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
    let mut left = view.m;
    let mut out = Vec::new();
    for &id in order {
        if left == 0 {
            break;
        }
        let Some(&r) = ready.get(&id) else { continue };
        let k = r.min(left);
        if k > 0 {
            out.push((id, k));
            left -= k;
        }
    }
    out
}

macro_rules! baseline {
    ($(#[$doc:meta])* $name:ident, $label:expr, $key:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            m: u32,
            base: Base,
        }

        impl $name {
            /// Create the scheduler for `m` processors.
            pub fn new(m: u32) -> $name {
                $name { m, base: Base::default() }
            }
        }

        impl OnlineScheduler for $name {
            fn name(&self) -> String {
                $label.into()
            }
            fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
                self.base.add(info, self.m);
            }
            fn on_completion(&mut self, id: JobId, _now: Time) {
                self.base.remove(id);
            }
            fn on_expiry(&mut self, id: JobId, _now: Time) {
                self.base.remove(id);
            }
            fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
                let mut order: Vec<Entry> = self.base.alive.clone();
                let key = $key;
                order.sort_by(|a, b| key(a).total_cmp(&key(b)).then(a.seq.cmp(&b.seq)));
                let ids: Vec<JobId> = order.iter().map(|e| e.id).collect();
                fill(&ids, view)
            }
            fn allocation_stable_between_events(&self) -> bool {
                // Every baseline orders by keys fixed at arrival (seq,
                // absolute deadline, static density, laxity key) and fills
                // work-conservingly from the view — a pure function of the
                // alive set and ready counts, independent of `now`.
                true
            }
        }
    };
}

baseline!(
    /// First-come-first-served (by arrival sequence).
    Fifo,
    "FIFO",
    |e: &Entry| e.seq as f64
);

baseline!(
    /// Earliest absolute deadline first.
    Edf,
    "EDF",
    |e: &Entry| e.deadline.as_f64()
);

baseline!(
    /// Highest static density `p/W` first.
    GreedyDensity,
    "HDF",
    |e: &Entry| -e.density
);

baseline!(
    /// Least laxity (`d − brent`) first.
    LeastLaxity,
    "LLF",
    |e: &Entry| e.laxity_key
);

/// Random job order each tick, from a fixed seed.
#[derive(Debug)]
pub struct RandomOrder {
    m: u32,
    base: Base,
    rng: Rng64,
}

impl RandomOrder {
    /// Create the scheduler for `m` processors with the given seed.
    pub fn new(m: u32, seed: u64) -> RandomOrder {
        RandomOrder {
            m,
            base: Base::default(),
            rng: Rng64::seed_from(seed),
        }
    }
}

impl OnlineScheduler for RandomOrder {
    fn name(&self) -> String {
        "RANDOM".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        self.base.add(info, self.m);
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.base.remove(id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.base.remove(id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut ids: Vec<JobId> = self.base.alive.iter().map(|e| e.id).collect();
        self.rng.shuffle(&mut ids);
        fill(&ids, view)
    }
    fn allocation_stable_between_events(&self) -> bool {
        // Deliberately NOT stable: each call consumes RNG state and may
        // return a different order. Must stay on the naive engine path.
        false
    }
}

/// Ablation: scheduler S's allotment-and-density rule without admission
/// control — every arriving job goes straight to the running queue.
#[derive(Debug)]
pub struct SNoAdmission {
    m: u32,
    params: AlgoParams,
    /// (density, seq, id, allot) of alive jobs.
    alive: Vec<(f64, u64, JobId, u32)>,
    seq: u64,
    report: Option<Vec<AdmissionEvent>>,
}

impl SNoAdmission {
    /// Create the ablated scheduler.
    pub fn new(m: u32, params: AlgoParams) -> SNoAdmission {
        SNoAdmission {
            m,
            params,
            alive: Vec::new(),
            seq: 0,
            report: None,
        }
    }
}

impl OnlineScheduler for SNoAdmission {
    fn name(&self) -> String {
        "S-noadmit".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let (d_rel, profit) = info
            .profit
            .as_deadline()
            .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let allot = match self.params.raw_allotment(w, l, d_rel.as_f64()) {
            Some(frac) => ((frac.ceil() as u32).max(1)).min(self.m),
            None => self.m,
        };
        let x = AlgoParams::x_time(w, l, allot);
        let density = profit as f64 / (x * allot as f64);
        self.alive.push((density, self.seq, info.id, allot));
        self.seq += 1;
        if let Some(buf) = self.report.as_mut() {
            // The ablation's whole point: every job is admitted.
            buf.push(AdmissionEvent {
                job: info.id,
                decision: AdmissionDecision::Admitted,
            });
        }
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut order = self.alive.clone();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut left = view.m;
        let mut out = Vec::new();
        for (_, _, id, allot) in order {
            if left == 0 {
                break;
            }
            if allot <= left {
                out.push((id, allot));
                left -= allot;
            }
        }
        out
    }
    fn allocation_stable_between_events(&self) -> bool {
        // Pure walk over (density, seq, allot) tuples fixed at arrival.
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_dag::gen;
    use dagsched_engine::{simulate, SimConfig};
    use dagsched_workload::{Instance, JobSpec, StepProfitFn, WorkloadGen};

    fn info(id: u32, arrival: u64, w: u64, l: u64, d: u64, p: u64) -> JobInfo {
        JobInfo {
            id: JobId(id),
            arrival: Time(arrival),
            work: Work(w),
            span: Work(l),
            profit: StepProfitFn::deadline(Time(d), p),
        }
    }

    #[test]
    fn fifo_orders_by_arrival_sequence() {
        let mut s = Fifo::new(2);
        s.on_arrival(&info(0, 0, 10, 1, 50, 1), Time(0));
        s.on_arrival(&info(1, 0, 10, 1, 5, 99), Time(0));
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(2, Time(0), &jobs));
        assert_eq!(alloc, vec![(JobId(0), 2)], "all capacity to the first");
    }

    #[test]
    fn edf_prefers_earliest_deadline() {
        let mut s = Edf::new(2);
        s.on_arrival(&info(0, 0, 10, 1, 50, 1), Time(0));
        s.on_arrival(&info(1, 0, 10, 1, 5, 1), Time(0));
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(2, Time(0), &jobs));
        assert_eq!(alloc[0].0, JobId(1));
    }

    #[test]
    fn hdf_prefers_density_not_raw_profit() {
        let mut s = GreedyDensity::new(2);
        s.on_arrival(&info(0, 0, 100, 1, 50, 60), Time(0)); // density 0.6
        s.on_arrival(&info(1, 0, 10, 1, 50, 20), Time(0)); // density 2.0
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(2, Time(0), &jobs));
        assert_eq!(alloc[0].0, JobId(1));
    }

    #[test]
    fn llf_prefers_tighter_slack() {
        let mut s = LeastLaxity::new(4);
        // Same deadline; job 1 has much more work → less laxity.
        s.on_arrival(&info(0, 0, 8, 1, 40, 1), Time(0));
        s.on_arrival(&info(1, 0, 120, 1, 40, 1), Time(0));
        let jobs = [(JobId(0), 4u32), (JobId(1), 4)];
        let alloc = s.allocate(&TickView::new(4, Time(0), &jobs));
        assert_eq!(alloc[0].0, JobId(1));
    }

    #[test]
    fn work_conserving_fill_respects_ready_and_capacity() {
        let mut s = Fifo::new(4);
        s.on_arrival(&info(0, 0, 10, 10, 90, 1), Time(0)); // a chain: 1 ready
        s.on_arrival(&info(1, 0, 10, 1, 90, 1), Time(0));
        let jobs = [(JobId(0), 1u32), (JobId(1), 10)];
        let alloc = s.allocate(&TickView::new(4, Time(0), &jobs));
        assert_eq!(alloc, vec![(JobId(0), 1), (JobId(1), 3)]);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let inst = WorkloadGen::standard(4, 40, 9).generate().unwrap();
        let run = |seed| {
            let mut s = RandomOrder::new(4, seed);
            simulate(&inst, &mut s, &SimConfig::default())
                .unwrap()
                .total_profit
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn all_baselines_run_clean_on_a_real_workload() {
        let inst = WorkloadGen::standard(8, 80, 13).generate().unwrap();
        let mut results = Vec::new();
        let cfg = SimConfig::default();
        macro_rules! run {
            ($s:expr) => {{
                let mut s = $s;
                let r = simulate(&inst, &mut s, &cfg).unwrap();
                results.push((r.scheduler.clone(), r.total_profit));
            }};
        }
        run!(Fifo::new(8));
        run!(Edf::new(8));
        run!(GreedyDensity::new(8));
        run!(LeastLaxity::new(8));
        run!(RandomOrder::new(8, 5));
        run!(SNoAdmission::new(8, AlgoParams::from_epsilon(1.0).unwrap()));
        for (name, profit) in &results {
            assert!(*profit > 0, "{name} earned nothing");
        }
    }

    #[test]
    fn expiry_and_completion_shrink_the_alive_set() {
        let mut s = Edf::new(2);
        s.on_arrival(&info(0, 0, 10, 1, 50, 1), Time(0));
        s.on_arrival(&info(1, 0, 10, 1, 5, 1), Time(0));
        s.on_completion(JobId(1), Time(3));
        s.on_expiry(JobId(0), Time(50));
        let jobs: [(JobId, u32); 0] = [];
        assert!(s.allocate(&TickView::new(2, Time(51), &jobs)).is_empty());
    }

    #[test]
    fn sno_admission_runs_everything_greedily() {
        // Two band-conflicting jobs: plain S parks one, the ablation runs
        // both at once when capacity allows.
        let dag0 = gen::block(60, 1).into_shared();
        let inst = Instance::new(
            8,
            vec![
                JobSpec::new(
                    JobId(0),
                    Time(0),
                    dag0.clone(),
                    StepProfitFn::deadline(Time(24), 60),
                ),
                JobSpec::new(
                    JobId(1),
                    Time(0),
                    dag0,
                    StepProfitFn::deadline(Time(24), 60),
                ),
            ],
        )
        .unwrap();
        let mut s = SNoAdmission::new(8, AlgoParams::from_epsilon(1.0).unwrap());
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert_eq!(r.completed(), 2, "both jobs fit when run simultaneously");
    }
}
