//! Scheduler **S** for jobs with deadlines (Section 3) — the paper's main
//! algorithm.
//!
//! Per arriving job `J_i` with work `W_i`, span `L_i`, relative deadline
//! `D_i` and profit `p_i`, S computes:
//!
//! * allotment `n_i = (W_i−L_i)/(D_i/(1+2δ) − L_i)` — the (near-)minimum
//!   number of dedicated processors that finish the job by `D_i/(1+2δ)`
//!   without knowing the DAG (Observation 2), rounded up to an integer and
//!   floored at 1 (the paper's `n_i` is fractional; Lemma 1's bound
//!   `n_i ≤ b²m` holds for the rounded value up to the +1 integrality slack);
//! * budget `x_i = (W_i−L_i)/n_i + L_i`;
//! * density `v_i = p_i/(x_i·n_i)` — potential profit per processor step.
//!
//! Jobs are *started* (admitted to queue `Q`) only if they are `δ`-good
//! (`D_i ≥ (1+2δ)x_i`) and every density band `[v_j, c·v_j)` stays within
//! `b·m` processors (condition (2), maintained by
//! [`DensityBands`](crate::bands::DensityBands) structure). Everything else waits in
//! queue `P`; at each job completion, `δ`-fresh jobs from `P` that now pass
//! the band check are started. Execution is greedy highest-density-first,
//! granting each scheduled job its full allotment.
//!
//! ## Hot-path layout
//!
//! The per-event path (completion → [`admit_from_p`](SchedulerS) scan;
//! window → [`allocate_into`](OnlineScheduler::allocate_into) + backfill)
//! is allocation-free after warm-up: job records live in a dense
//! [`JobSlab`] indexed by `JobId`, the density-ordered queues `Q` and `P`
//! are sorted `Vec`s, the band condition is answered in O(log |Q|) by the
//! incremental [`DensityBands`], and every per-call index (ready counts,
//! grant slots, the admission candidate list) is a hoisted scratch buffer.
//! The pre-refactor implementation survives as
//! [`OracleSchedulerS`](crate::oracle::OracleSchedulerS), which the
//! differential tests hold this one byte-identical to.

use crate::bands::DensityBands;
use crate::slab::{DenseU32Map, JobSlab};
use dagsched_core::{AlgoParams, JobId, Time};
use dagsched_engine::{
    AdmissionDecision, AdmissionEvent, AdmissionReason, Allocation, JobInfo, OnlineScheduler,
    TickView, ViewDelta,
};

/// Totally-ordered f64 key for the density-sorted queues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A sorted-`Vec` ordered set of `(density, id)` keys: the `BTreeSet` it
/// replaces allocated a node per insert, which put the queues on the
/// per-event allocation budget. Binary-search insert/remove keep the exact
/// iteration order `BTreeSet` had (ascending by `(OrdF64, JobId)`), and a
/// warmed-up queue reuses its backing storage forever.
#[derive(Debug, Clone, Default)]
struct DensityQueue {
    items: Vec<(OrdF64, JobId)>,
}

impl DensityQueue {
    fn insert(&mut self, key: (OrdF64, JobId)) {
        let at = self.items.partition_point(|e| e < &key);
        self.items.insert(at, key);
    }

    fn remove(&mut self, key: &(OrdF64, JobId)) -> bool {
        match self.items.binary_search(key) {
            Ok(at) => {
                self.items.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterate ascending by `(density, id)`.
    fn iter(&self) -> std::slice::Iter<'_, (OrdF64, JobId)> {
        self.items.iter()
    }
}

/// Per-job quantities S computes at arrival.
#[derive(Debug, Clone, Copy)]
struct SJob {
    allot: u32,
    x: f64,
    density: f64,
    profit: u64,
    abs_deadline: Time,
    /// False if the deadline is too tight for any allotment (not δ-good
    /// even at `n = m`); such jobs park in `P` and are never started.
    admissible: bool,
    in_q: bool,
}

/// Counters exposed for the analysis experiments (Lemma 5 etc.).
#[derive(Debug, Clone, Default)]
pub struct SchedulerSMetrics {
    /// `‖R‖`: total profit of jobs ever started (admitted to `Q`).
    pub started_profit: u64,
    /// `|R|`.
    pub started_count: usize,
    /// Jobs admitted directly at arrival.
    pub admitted_at_arrival: usize,
    /// Jobs admitted later, at a completion event.
    pub admitted_from_p: usize,
    /// Arrival-time admissions refused by the band condition.
    pub band_rejections: u64,
    /// Jobs that were never δ-good (deadline too tight).
    pub inadmissible: usize,
    /// High-water mark of `|Q|`.
    pub max_q_len: usize,
}

/// The Section 3 scheduler. See module docs.
#[derive(Debug)]
pub struct SchedulerS {
    params: AlgoParams,
    m: u32,
    jobs: JobSlab<SJob>,
    /// Started jobs, ordered by (density, id) ascending; iterated in reverse
    /// for highest-density-first.
    q: DensityQueue,
    /// Waiting jobs, same order.
    p: DensityQueue,
    bands: DensityBands,
    metrics: SchedulerSMetrics,
    check_invariants: bool,
    /// Corollary 1's transformation: when the engine runs S at speed `s`,
    /// every node's work is effectively scaled by `1/s`, so arrival-time
    /// computations divide `W` and `L` by this hint (default 1).
    speed_hint: f64,
    /// Work-conserving extension (the paper's future-work item): backfill
    /// processors left idle by the standard pass. Admission, allotments and
    /// priorities are untouched — only spare capacity is used.
    work_conserving: bool,
    /// Admission-decision buffer for the engine's observer plumbing
    /// (`None` = reporting off, the default: zero cost when unobserved).
    report: Option<Vec<AdmissionEvent>>,
    /// Scratch: candidate ids for the completion-event admission scan.
    admit_scratch: Vec<JobId>,
    /// Ready counts of the current view, for backfill: per-call scratch on
    /// the rebuild path, persistent across calls on the delta path.
    ready_lut: DenseU32Map,
    /// Scratch: job → slot position in the allocation being built.
    slot_lut: DenseU32Map,
    /// True while `ready_lut` mirrors the engine's maintained view (delta
    /// path only; a full `allocate_into` invalidates it).
    lut_live: bool,
    /// True while the previous allocate call's `out` is still current.
    cache_live: bool,
}

impl SchedulerS {
    /// Create S for `m` processors with the given constants.
    pub fn new(m: u32, params: AlgoParams) -> SchedulerS {
        assert!(m >= 1);
        let capacity = params.b() * m as f64;
        SchedulerS {
            params,
            m,
            jobs: JobSlab::new(),
            q: DensityQueue::default(),
            p: DensityQueue::default(),
            bands: DensityBands::new(params.c(), capacity),
            metrics: SchedulerSMetrics::default(),
            check_invariants: false,
            speed_hint: 1.0,
            work_conserving: false,
            report: None,
            admit_scratch: Vec::new(),
            ready_lut: DenseU32Map::new(),
            slot_lut: DenseU32Map::new(),
            lut_live: false,
            cache_live: false,
        }
    }

    /// Tell S it runs on `s`-speed processors (Corollary 1's reduction:
    /// equivalent to scaling all node works by `1/s`). Arrival-time
    /// allotments, budgets and densities then use `W/s` and `L/s`.
    pub fn with_speed_hint(mut self, s: f64) -> SchedulerS {
        assert!(s.is_finite() && s > 0.0, "speed hint must be positive");
        self.speed_hint = s;
        self
    }

    /// Convenience: S with the recommended constants for `ε`.
    pub fn with_epsilon(m: u32, epsilon: f64) -> SchedulerS {
        SchedulerS::new(m, AlgoParams::from_epsilon(epsilon).expect("valid epsilon"))
    }

    /// Enable the work-conserving backfill extension (see
    /// [`allocate`](OnlineScheduler::allocate)): the paper's analysis is
    /// oblivious to what runs on processors the standard pass leaves idle,
    /// so backfilling cannot invalidate the admission invariants — it only
    /// adds opportunistic progress. This explores the paper's future-work
    /// direction of practical, work-conserving variants of S.
    pub fn work_conserving(mut self) -> SchedulerS {
        self.work_conserving = true;
        self
    }

    /// Enable Observation-3 re-verification after every queue mutation
    /// (O(|Q| log |Q|) per event; for tests).
    pub fn with_invariant_checks(mut self) -> SchedulerS {
        self.check_invariants = true;
        self
    }

    /// Analysis counters.
    pub fn metrics(&self) -> &SchedulerSMetrics {
        &self.metrics
    }

    /// The parameters in use.
    pub fn params(&self) -> &AlgoParams {
        &self.params
    }

    /// Is the job currently in the started queue `Q`? (test hook)
    pub fn in_q(&self, id: JobId) -> bool {
        self.jobs.get(id).is_some_and(|j| j.in_q)
    }

    /// Number of jobs waiting in `P`. (test hook)
    pub fn p_len(&self) -> usize {
        self.p.len()
    }

    /// Record one admission decision (no-op unless reporting is enabled).
    fn record(&mut self, job: JobId, decision: AdmissionDecision) {
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent { job, decision });
        }
    }

    fn assert_invariant(&self) {
        if self.check_invariants {
            assert!(
                self.bands.check_invariant(),
                "Observation 3 violated: a density band exceeds b*m"
            );
        }
    }

    /// Admit into Q (caller verified the conditions).
    fn start_job(&mut self, id: JobId, from_p: bool) {
        let job = self.jobs.get_mut(id).expect("known job");
        job.in_q = true;
        let key = (OrdF64(job.density), id);
        let (density, allot, profit) = (job.density, job.allot, job.profit);
        if from_p {
            self.p.remove(&key);
            self.metrics.admitted_from_p += 1;
        } else {
            self.metrics.admitted_at_arrival += 1;
        }
        self.q.insert(key);
        self.bands.insert(id, density, allot);
        self.metrics.started_profit += profit;
        self.metrics.started_count += 1;
        self.metrics.max_q_len = self.metrics.max_q_len.max(self.q.len());
        self.record(id, AdmissionDecision::Admitted);
        self.assert_invariant();
    }

    /// Drop a job from whichever queue holds it.
    fn forget(&mut self, id: JobId) {
        if let Some(job) = self.jobs.remove(id) {
            let key = (OrdF64(job.density), id);
            if job.in_q {
                self.q.remove(&key);
                self.bands.remove(id);
            } else {
                self.p.remove(&key);
            }
        }
        self.assert_invariant();
    }

    /// The standard pass: walk `Q` highest-density-first, granting each
    /// started job its full allotment while it fits. Clears `out`; returns
    /// the processors left idle. Reads nothing but the queues, so both the
    /// rebuild and the delta handoff share it verbatim.
    fn standard_pass(&self, m: u32, out: &mut Allocation) -> u32 {
        out.clear();
        let mut left = m;
        for &(_, id) in self.q.iter().rev() {
            if left == 0 {
                break;
            }
            let job = self.jobs.get(id).expect("queued job is known");
            if job.allot <= left {
                out.push((id, job.allot));
                left -= job.allot;
            }
        }
        left
    }

    /// Work-conserving backfill over processors the standard pass left
    /// idle, in three stages of decreasing theoretical blessing:
    ///
    /// 1. top up *scheduled* jobs to their ready-node counts (a scheduled
    ///    job with more ready nodes than its allotment can absorb spare
    ///    processors with zero risk);
    /// 2. partially schedule Q jobs that were skipped because their full
    ///    allotment did not fit;
    /// 3. run waiting (`P`) jobs opportunistically — they stay officially
    ///    un-started, keeping the admission accounting intact, but spare
    ///    capacity does real work toward their completion.
    ///
    /// Ready counts and grant slots are tracked in dense scratch maps — no
    /// per-call hashing or allocation, and the grant merge that used to
    /// rescan `out` per grant (`out.iter_mut().find`) is now an O(1) slot
    /// lookup.
    fn backfill(&mut self, view: &TickView<'_>, left: u32, out: &mut Allocation) {
        self.ready_lut.clear();
        for &(id, r) in view.jobs() {
            self.ready_lut.set(id, r);
        }
        self.backfill_with_lut(left, out);
    }

    /// The backfill walk against an already-current `ready_lut` — the delta
    /// path's variant of [`backfill`](SchedulerS::backfill) with the
    /// O(alive) ready-count rebuild factored out. The slot lut is still
    /// rebuilt from `out` each call, which is O(|out|) ≤ O(m).
    fn backfill_with_lut(&mut self, mut left: u32, out: &mut Allocation) {
        self.slot_lut.clear();
        for (slot, &(id, _)) in out.iter().enumerate() {
            self.slot_lut.set(id, slot as u32);
        }
        // Stage 1 + 2: walk Q by density again.
        for &(_, id) in self.q.iter().rev() {
            if left == 0 {
                return;
            }
            let Some(r) = self.ready_lut.get(id) else {
                continue;
            };
            let slot = self.slot_lut.get(id);
            let have = slot.map_or(0, |s| out[s as usize].1);
            let want = r.saturating_sub(have).min(left);
            if want == 0 {
                continue;
            }
            left -= want;
            match slot {
                Some(s) => out[s as usize].1 += want,
                None => {
                    self.slot_lut.set(id, out.len() as u32);
                    out.push((id, want));
                }
            }
        }
        // Stage 3: waiting jobs by density.
        for &(_, id) in self.p.iter().rev() {
            if left == 0 {
                return;
            }
            let Some(r) = self.ready_lut.get(id) else {
                continue;
            };
            let want = r.min(left);
            if want == 0 {
                continue;
            }
            left -= want;
            debug_assert!(self.slot_lut.get(id).is_none(), "P and Q are disjoint");
            out.push((id, want));
        }
    }

    /// The completion-event admission pass: scan `P` by density (desc),
    /// dropping dead jobs and starting every δ-fresh job that passes the
    /// band condition. With the incremental band index each candidate costs
    /// O(log |Q|), so a pass is O((|P| + admitted) · log |Q|) instead of
    /// the seed's O(|P| · |Q|).
    fn admit_from_p(&mut self, now: Time) {
        let mut candidates = std::mem::take(&mut self.admit_scratch);
        candidates.clear();
        candidates.extend(self.p.iter().rev().map(|&(_, id)| id));
        for &id in &candidates {
            let Some(job) = self.jobs.get(id).copied() else {
                continue;
            };
            // Remove jobs whose absolute deadline has passed.
            if job.abs_deadline <= now {
                self.forget(id);
                self.record(
                    id,
                    AdmissionDecision::Rejected(AdmissionReason::DeadlinePassed),
                );
                continue;
            }
            if !job.admissible {
                continue;
            }
            // δ-fresh: d_i − t ≥ (1+δ)x_i.
            let slack = job.abs_deadline.since(now) as f64;
            if slack < self.params.fresh_factor() * job.x {
                continue;
            }
            if self.bands.fits(job.density, job.allot) {
                self.start_job(id, true);
            }
        }
        self.admit_scratch = candidates;
    }
}

impl OnlineScheduler for SchedulerS {
    fn name(&self) -> String {
        if self.work_conserving {
            format!("S-wc(eps={})", self.params.epsilon())
        } else {
            format!("S(eps={})", self.params.epsilon())
        }
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        // S targets deadline jobs; a general profit function is treated via
        // its flat prefix (deadline = x*, profit = the flat value).
        let (d_rel, profit) = info
            .profit
            .as_deadline()
            .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
        let w = info.work.as_f64() / self.speed_hint;
        let l = info.span.as_f64() / self.speed_hint;
        let d = d_rel.as_f64();

        // Fractional allotment; None means the deadline is infeasible under
        // the (1+2δ) contraction even with unbounded parallelism.
        let (allot, admissible) = match self.params.raw_allotment(w, l, d) {
            Some(frac) => {
                let n = (frac.ceil() as u32).max(1);
                (n.min(self.m), n <= self.m)
            }
            None => (self.m, false),
        };
        let x = AlgoParams::x_time(w, l, allot);
        let density = profit as f64 / (x * allot as f64);
        let abs_deadline = info.arrival.saturating_add(d_rel.ticks());
        let delta_good = admissible && d >= self.params.good_factor() * x;

        self.jobs.insert(
            info.id,
            SJob {
                allot,
                x,
                density,
                profit,
                abs_deadline,
                admissible,
                in_q: false,
            },
        );
        if !admissible {
            self.metrics.inadmissible += 1;
        }

        if delta_good && self.bands.fits(density, allot) {
            self.start_job(info.id, false);
        } else {
            if delta_good {
                self.metrics.band_rejections += 1;
            }
            let reason = if !admissible {
                AdmissionReason::Infeasible
            } else if !delta_good {
                AdmissionReason::NotDeltaGood
            } else {
                AdmissionReason::BandCapacity
            };
            self.record(info.id, AdmissionDecision::Deferred(reason));
            self.p.insert((OrdF64(density), info.id));
        }
    }

    fn on_completion(&mut self, id: JobId, now: Time) {
        self.forget(id);
        self.admit_from_p(now);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.forget(id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }

    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.lut_live = false;
        self.cache_live = false;
        let left = self.standard_pass(view.m, out);
        if self.work_conserving && left > 0 {
            self.backfill(view, left, out);
        }
    }

    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        if self.cache_live && delta.is_empty() {
            // No hook fired and no ready count moved: the previous call's
            // `out` (still in the buffer) is exactly what a full walk would
            // recompute.
            return true;
        }
        if self.work_conserving {
            // Only the backfill reads ready counts; keep its lut current
            // incrementally instead of rebuilding it O(alive) per step.
            if self.lut_live {
                self.ready_lut.apply_view_delta(delta);
            } else {
                self.ready_lut.clear();
                for &(id, r) in view.jobs() {
                    self.ready_lut.set(id, r);
                }
                self.lut_live = true;
            }
        }
        let left = self.standard_pass(view.m, out);
        if self.work_conserving && left > 0 {
            self.backfill_with_lut(left, out);
        }
        self.cache_live = true;
        true
    }

    fn allocation_stable_between_events(&self) -> bool {
        // S re-decides only on events: `allocate` (and the optional
        // work-conserving backfill) is a pure walk over the density-ordered
        // queues, which change exclusively in the arrival / completion /
        // expiry hooks. Nothing reads `view.now`.
        true
    }

    fn group_aware(&self) -> bool {
        // S emits its running queue in density order; fastest-first
        // placement puts the densest jobs' nodes on the fastest groups.
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }

    fn reset(&mut self) -> bool {
        // Everything run-dependent goes; the construction parameters
        // (params, m, speed_hint, work_conserving, check_invariants) and the
        // scratch buffers stay. `bands.clear()` restarts its priority
        // stream, so queue shapes replay identically.
        self.jobs.clear();
        self.q.clear();
        self.p.clear();
        self.bands.clear();
        self.metrics = SchedulerSMetrics::default();
        self.report = None;
        self.ready_lut.clear();
        self.lut_live = false;
        self.cache_live = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::{Speed, Work};
    use dagsched_dag::gen;
    use dagsched_engine::{simulate, JobStatus, NodePick, SimConfig};
    use dagsched_workload::{
        DeadlinePolicy, Instance, JobSpec, ProfitPolicy, StepProfitFn, WorkloadGen,
    };

    fn info(id: u32, arrival: u64, w: u64, l: u64, d: u64, p: u64) -> JobInfo {
        JobInfo {
            id: JobId(id),
            arrival: Time(arrival),
            work: Work(w),
            span: Work(l),
            profit: StepProfitFn::deadline(Time(d), p),
        }
    }

    fn sched(m: u32) -> SchedulerS {
        SchedulerS::with_epsilon(m, 1.0).with_invariant_checks()
    }

    #[test]
    fn slack_job_is_admitted_and_allocated() {
        let mut s = sched(8);
        // W=64, L=4, m=8: brent = 11.5; Theorem-2 deadline (eps=1): 23.
        s.on_arrival(&info(0, 0, 64, 4, 23, 10), Time(0));
        assert!(s.in_q(JobId(0)));
        assert_eq!(s.metrics().started_count, 1);
        assert_eq!(s.metrics().started_profit, 10);
        let jobs = [(JobId(0), 5u32)];
        let view = TickView::new(8, Time(0), &jobs);
        let alloc = s.allocate(&view);
        assert_eq!(alloc.len(), 1);
        assert_eq!(alloc[0].0, JobId(0));
        let n = alloc[0].1;
        // Lemma 1 (+1 integrality): n ≤ b²m + 1.
        let p = s.params();
        assert!(n as f64 <= p.b() * p.b() * 8.0 + 1.0, "allot {n}");
        assert!(n >= 1);
    }

    #[test]
    fn tight_deadline_job_parks_in_p_forever() {
        let mut s = sched(8);
        // Deadline below L: infeasible for any scheduler.
        s.on_arrival(&info(0, 0, 64, 16, 10, 10), Time(0));
        assert!(!s.in_q(JobId(0)));
        assert_eq!(s.p_len(), 1);
        assert_eq!(s.metrics().inadmissible, 1);
        let view_jobs = [(JobId(0), 64u32)];
        assert!(s
            .allocate(&TickView::new(8, Time(0), &view_jobs))
            .is_empty());
    }

    #[test]
    fn band_overflow_parks_then_completion_admits() {
        let p = AlgoParams::from_epsilon(1.0).unwrap();
        let m = 8u32;
        let mut s = SchedulerS::new(m, p).with_invariant_checks();
        // Fill the band: several equal-density jobs, each of allotment ~4.
        // W=60, L=1, D=24 -> n = ceil(59/(24/1.5 - 1)) = ceil(3.93) = 4.
        let cap = p.b() * m as f64; // ~6.9
        s.on_arrival(&info(0, 0, 60, 1, 24, 60), Time(0));
        assert!(s.in_q(JobId(0)));
        // Same shape again: 4 + 4 = 8 > b*m ≈ 6.93 -> parked.
        s.on_arrival(&info(1, 0, 60, 1, 24, 60), Time(0));
        assert!(!s.in_q(JobId(1)), "band capacity {cap} must reject");
        assert_eq!(s.metrics().band_rejections, 1);
        // Job 0 completes early: job 1 is δ-fresh and must now be admitted
        // (Lemma 7's mechanism).
        s.on_completion(JobId(0), Time(2));
        assert!(s.in_q(JobId(1)));
        assert_eq!(s.metrics().admitted_from_p, 1);
        assert_eq!(s.metrics().started_count, 2);
    }

    #[test]
    fn stale_job_in_p_is_not_admitted() {
        let mut s = sched(8);
        s.on_arrival(&info(0, 0, 60, 1, 24, 60), Time(0));
        s.on_arrival(&info(1, 0, 60, 1, 24, 60), Time(0));
        assert!(!s.in_q(JobId(1)));
        // Completion happens so late that job 1 is no longer δ-fresh:
        // x ≈ 15.75, fresh threshold (1+δ)x ≈ 19.7, deadline 24 → any
        // completion after t = 4.3 leaves it stale.
        s.on_completion(JobId(0), Time(10));
        assert!(!s.in_q(JobId(1)), "stale job must stay in P");
        // And a completion after its deadline drops it entirely.
        s.on_completion(JobId(99), Time(30)); // unknown id: only triggers scan
        assert_eq!(s.p_len(), 0);
    }

    #[test]
    fn allocation_is_density_ordered_and_capacity_bounded() {
        let mut s = sched(8);
        // Three admitted jobs with distinct densities (profit varies).
        s.on_arrival(&info(0, 0, 30, 1, 30, 10), Time(0)); // low density
        s.on_arrival(&info(1, 0, 30, 1, 30, 90), Time(0)); // high
        s.on_arrival(&info(2, 0, 30, 1, 30, 40), Time(0)); // mid
        let jobs = [(JobId(0), 9u32), (JobId(1), 9), (JobId(2), 9)];
        let alloc = s.allocate(&TickView::new(8, Time(0), &jobs));
        // Highest density first.
        assert_eq!(alloc[0].0, JobId(1));
        let total: u32 = alloc.iter().map(|(_, k)| *k).sum();
        assert!(total <= 8);
    }

    #[test]
    fn allocate_into_reuses_the_buffer() {
        let mut s = sched(8);
        s.on_arrival(&info(0, 0, 64, 4, 23, 10), Time(0));
        let jobs = [(JobId(0), 5u32)];
        let view = TickView::new(8, Time(0), &jobs);
        let mut buf = vec![(JobId(77), 99u32)]; // stale content must vanish
        s.allocate_into(&view, &mut buf);
        assert_eq!(buf, s.allocate(&view), "into-variant matches allocate");
        let before_ptr = buf.as_ptr();
        s.allocate_into(&view, &mut buf);
        assert_eq!(buf.as_ptr(), before_ptr, "no reallocation on reuse");
    }

    #[test]
    fn single_slack_job_completes_via_engine() {
        // Theorem-2-conformant single job must complete by its deadline.
        let dag = gen::fork_join(3, 6, 2).into_shared();
        let (w, l) = (dag.total_work(), dag.span());
        let m = 8u32;
        let brent = (w.as_f64() - l.as_f64()) / m as f64 + l.as_f64();
        let d = (2.0 * brent).ceil() as u64; // slack factor 1+eps = 2
        let inst = Instance::new(
            m,
            vec![JobSpec::new(
                JobId(0),
                Time(0),
                dag,
                StepProfitFn::deadline(Time(d), 5),
            )],
        )
        .unwrap();
        let mut s = sched(m);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(
            matches!(r.outcomes[0], JobStatus::Completed { .. }),
            "outcome: {:?}",
            r.outcomes[0]
        );
        assert_eq!(r.total_profit, 5);
    }

    #[test]
    fn engine_run_respects_observation3_and_makes_profit() {
        // A loaded random workload with Theorem-2 slack; S must earn a
        // nontrivial fraction and never trip the invariant checker.
        let gen = WorkloadGen {
            deadlines: DeadlinePolicy::SlackFactor(2.0),
            profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 4.0 },
            ..WorkloadGen::standard(16, 120, 7)
        };
        let inst = gen.generate().unwrap();
        let mut s = SchedulerS::with_epsilon(16, 1.0).with_invariant_checks();
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(r.total_profit > 0, "S earned nothing");
        assert!(s.metrics().started_count > 0);
        // ‖C‖ ≤ ‖R‖ by definition.
        assert!(r.total_profit <= s.metrics().started_profit);
    }

    #[test]
    fn completed_profit_only_counts_started_jobs() {
        // Every completion the engine reports must be a job S started
        // (jobs in P are never allocated processors).
        let gen = WorkloadGen::standard(8, 60, 21);
        let inst = gen.generate().unwrap();
        let mut s = SchedulerS::with_epsilon(8, 1.0);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        let completed: usize = r.outcomes.iter().filter(|o| o.is_completed()).count();
        assert!(completed <= s.metrics().started_count);
    }

    #[test]
    fn works_under_speed_augmentation() {
        // Corollary 1 setting: tight-ish deadlines, engine at speed 2+eps.
        let gen = WorkloadGen {
            deadlines: DeadlinePolicy::SlackFactor(1.05),
            ..WorkloadGen::standard(8, 80, 3)
        };
        let inst = gen.generate().unwrap();
        let cfg_fast = SimConfig {
            speed: Speed::new(5, 2).unwrap(), // 2.5x
            pick: NodePick::Fifo,
            ..SimConfig::default()
        };
        let mut s_fast = SchedulerS::with_epsilon(8, 1.0);
        let fast = simulate(&inst, &mut s_fast, &cfg_fast).unwrap();
        let mut s_slow = SchedulerS::with_epsilon(8, 1.0);
        let slow = simulate(&inst, &mut s_slow, &SimConfig::default()).unwrap();
        assert!(
            fast.total_profit >= slow.total_profit,
            "speed augmentation cannot hurt: fast {} < slow {}",
            fast.total_profit,
            slow.total_profit
        );
    }

    #[test]
    fn work_conserving_backfill_tops_up_and_runs_p_jobs() {
        let mut s = sched(8).work_conserving();
        // One admitted wide job with allotment ~4 but 8 ready nodes, and one
        // band-rejected job parked in P.
        s.on_arrival(&info(0, 0, 60, 1, 24, 60), Time(0));
        s.on_arrival(&info(1, 0, 60, 1, 24, 60), Time(0));
        assert!(s.in_q(JobId(0)));
        assert!(!s.in_q(JobId(1)));
        let jobs = [(JobId(0), 8u32), (JobId(1), 8u32)];
        let alloc = s.allocate(&TickView::new(8, Time(0), &jobs));
        let total: u32 = alloc.iter().map(|(_, k)| *k).sum();
        assert_eq!(
            total, 8,
            "work-conserving: no idle processors, got {alloc:?}"
        );
        // Job 0 got topped up beyond its allotment; job 1 got the rest.
        let k0 = alloc.iter().find(|(j, _)| *j == JobId(0)).unwrap().1;
        let k1 = alloc.iter().find(|(j, _)| *j == JobId(1)).map(|(_, k)| *k);
        assert!(k0 > 4 || k1.is_some(), "spare capacity must go somewhere");
        assert!(s.name().starts_with("S-wc"));
    }

    #[test]
    fn work_conserving_never_hurts_on_batch_workloads() {
        // Same instance, S vs S-wc: backfill only adds progress, so profit
        // cannot drop on these batch workloads (priorities are identical).
        for seed in [3u64, 9, 27] {
            let gen = WorkloadGen {
                arrivals: dagsched_workload::ArrivalProcess::AllAtOnce,
                deadlines: DeadlinePolicy::SlackFactor(2.0),
                ..WorkloadGen::standard(8, 40, seed)
            };
            let inst = gen.generate().unwrap();
            let mut plain = SchedulerS::with_epsilon(8, 1.0);
            let p = simulate(&inst, &mut plain, &SimConfig::default()).unwrap();
            let mut wc = SchedulerS::with_epsilon(8, 1.0).work_conserving();
            let w = simulate(&inst, &mut wc, &SimConfig::default()).unwrap();
            assert!(
                w.total_profit >= p.total_profit,
                "seed {seed}: wc {} < plain {}",
                w.total_profit,
                p.total_profit
            );
        }
    }

    #[test]
    fn work_conserving_preserves_observation3() {
        // Backfill must not touch the band structure.
        let gen = WorkloadGen::standard(8, 60, 5);
        let inst = gen.generate().unwrap();
        let mut s = SchedulerS::with_epsilon(8, 1.0)
            .work_conserving()
            .with_invariant_checks();
        simulate(&inst, &mut s, &SimConfig::default()).unwrap();
    }

    #[test]
    fn admitted_jobs_satisfy_lemma_bounds() {
        // Run a batch and check Lemma 1 / Lemma 2 / Lemma 3 on every job S
        // actually computed parameters for.
        let gen = WorkloadGen {
            deadlines: DeadlinePolicy::SlackFactor(2.0),
            ..WorkloadGen::standard(12, 80, 11)
        };
        let inst = gen.generate().unwrap();
        let params = AlgoParams::from_epsilon(1.0).unwrap();
        let m = 12u32;
        for j in inst.jobs() {
            let w = j.work().as_f64();
            let l = j.span().as_f64();
            let d = j.rel_deadline().unwrap().as_f64();
            let Some(frac) = params.raw_allotment(w, l, d) else {
                panic!("Theorem-2 slack deadlines are always feasible");
            };
            let n = (frac.ceil() as u32).max(1);
            // Lemma 1 with integrality slack.
            assert!(n as f64 <= params.b().powi(2) * m as f64 + 1.0);
            let x = AlgoParams::x_time(w, l, n);
            // Lemma 2: δ-good (rounding n *up* only shrinks x).
            assert!(x * params.good_factor() <= d + 1e-9);
            // Lemma 3 with integrality slack: x·n ≤ aW + x (one extra
            // processor for at most x steps).
            assert!(x * n as f64 <= params.a() * w + x + 1e-9);
        }
    }
}
