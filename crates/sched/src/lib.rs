//! # dagsched-sched
//!
//! The paper's contribution — scheduler **S** — plus the baselines it is
//! compared against.
//!
//! * [`bands`] — the density-band admission structure implementing
//!   condition (2): for every job `J_j` in the running queue, the total
//!   allotment of jobs with density in `[v_j, c·v_j)` stays ≤ `b·m`
//!   (Observation 3 is an invariant of this structure);
//! * [`deadline`] — [`SchedulerS`]: the throughput algorithm of Section 3
//!   (jobs with deadlines and fixed profits);
//! * [`profit`] — [`SchedulerSProfit`]: the general-profit algorithm of
//!   Section 5 (slot assignment + smallest valid deadline search);
//! * [`baselines`] — EDF, highest-density-first, FIFO, least-laxity and
//!   random work-conserving schedulers, and an admission-less ablation of S;
//! * [`federated`] — federated scheduling of sporadic DAG task sets (the
//!   related-work real-time substrate), with its schedulability test;
//! * [`slab`] — dense `JobId`-indexed storage used by the allocation-free
//!   scheduler hot paths;
//! * [`oracle`] — frozen pre-optimization reference schedulers, kept only
//!   for differential testing of the hot-path rewrites.
//!
//! All schedulers implement
//! [`OnlineScheduler`](dagsched_engine::OnlineScheduler) and are therefore
//! semi-non-clairvoyant by construction — they can only see what the engine
//! shows them.

#![warn(missing_docs)]

pub mod bands;
pub mod baselines;
pub mod deadline;
pub mod edf_ac;
pub mod federated;
pub mod oracle;
pub mod profit;
pub mod slab;

pub use baselines::{
    AggregateBlind, Edf, EquiPartition, Fifo, GreedyDensity, LeastLaxity, MoldableList,
    RandomOrder, SNoAdmission,
};
pub use deadline::{SchedulerS, SchedulerSMetrics};
pub use edf_ac::EdfAc;
pub use federated::{federated_assignment, FederatedAssignment, FederatedScheduler};
pub use profit::SchedulerSProfit;
