//! Scheduler **S** for general profit functions (Section 5).
//!
//! For arbitrary non-increasing step profits `p_i(t)` there is no given
//! deadline — the scheduler *assigns* one. On arrival of `J_i` it computes
//! an allotment from the flat prefix `x_i*` of the profit function,
//!
//! > `n_i = (W_i−L_i) / (x_i*/(1+2δ) − L_i)`,
//!
//! and then searches for the **smallest valid deadline** `D`: scanning
//! candidate completion times in profit order (one candidate per profit
//! step — within a step the profit is constant, so only the step boundary
//! matters), it collects *time slots* `I_i ⊆ [r_i, r_i+D)` in which adding
//! `J_i` at density `v = p_i(D)/(x_i n_i)` keeps every per-slot density band
//! `[v_j, c·v_j)` within `b·m` processors. A deadline is valid once
//! `|I_i| = ⌈(1+δ) x_i⌉` slots fit. The job may then run **only** in its
//! assigned slots; each tick executes the highest-density jobs assigned to
//! it.
//!
//! ## The segment slot plan
//!
//! The plan is stored as maximal runs of consecutive ticks sharing one
//! population — a [`BTreeMap`] from run start to [`Segment`], each holding
//! its population sorted by density with a prefix-sum table of allotments.
//! Within a run every tick has the same population, so the admission scan
//! checks each run **once** (per-band loads by prefix-sum subtraction,
//! `O(log)` per band) instead of rebuilding a population `Vec` per tick,
//! and the per-tick allocation is *piecewise constant*: it can only change
//! at a run boundary or a job event. That is exactly the engine's
//! bounded-stability contract
//! ([`bounded_stability`](OnlineScheduler::bounded_stability) /
//! [`stable_until`](OnlineScheduler::stable_until)), so the fast-forward
//! kernel bulk-advances this scheduler between slot boundaries. Runs are
//! split on insert, never merged; past runs are retired incrementally at
//! each allocate (amortized `O(1)`, replacing the old per-call
//! `split_off` rebuild). The pre-rewrite per-tick implementation is frozen
//! as [`OracleSProfit`](crate::oracle::OracleSProfit) and the
//! `profit_differential` suite holds the two byte-identical.
//!
//! Deviations from the paper text, documented per DESIGN.md:
//!
//! * `x_i*` is clamped up to `(1+ε)((W−L)/m + L)` when the input violates
//!   Theorem 3's assumption, so allotments stay within Lemma 11's bound;
//! * completed/expired jobs release their future slots (the paper leaves
//!   this unspecified; releasing is never worse for the remaining jobs);
//! * a job whose profit reaches zero before any valid deadline is rejected
//!   outright (it could never earn anything anyway).

use dagsched_core::{AlgoParams, JobId, Time};
use dagsched_engine::{Allocation, JobInfo, OnlineScheduler, TickView, ViewDelta};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// One job's presence in one run of time slots.
#[derive(Debug, Clone, Copy)]
struct SlotEntry {
    density: f64,
    allot: u32,
    id: JobId,
}

/// A maximal run of consecutive ticks sharing one slot population.
///
/// The run's start is its key in the plan map; `end` is exclusive. The
/// population is kept sorted ascending by `(density, id)` with a parallel
/// prefix-sum table of allotments, so any band load `Σ allot` over a
/// density range `[lo, hi)` is two binary searches and a subtraction.
#[derive(Debug, Clone)]
struct Segment {
    /// Exclusive end of the run.
    end: Time,
    /// Population, sorted ascending by `(density, id)`.
    entries: Vec<SlotEntry>,
    /// `prefix[i]` = Σ allot over `entries[..i]`; `len == entries.len()+1`.
    prefix: Vec<u64>,
}

impl Segment {
    fn single(end: Time, e: SlotEntry) -> Segment {
        Segment {
            end,
            entries: vec![e],
            prefix: vec![0, e.allot as u64],
        }
    }

    fn rebuild_prefix(&mut self) {
        self.prefix.clear();
        self.prefix.push(0);
        let mut acc = 0u64;
        for e in &self.entries {
            acc += e.allot as u64;
            self.prefix.push(acc);
        }
    }

    fn insert(&mut self, e: SlotEntry) {
        let at = self.entries.partition_point(|x| {
            x.density
                .total_cmp(&e.density)
                .then(x.id.0.cmp(&e.id.0))
                .is_lt()
        });
        self.entries.insert(at, e);
        self.rebuild_prefix();
    }

    fn remove(&mut self, id: JobId) {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        if self.entries.len() != before {
            self.rebuild_prefix();
        }
    }

    /// Σ allot over entries with density in `[lo, hi)` (plain `f64`
    /// comparisons, exactly as [`fits_population`]'s scan).
    ///
    /// [`fits_population`]: crate::bands::fits_population
    fn band_load(&self, lo: f64, hi: f64) -> u64 {
        let a = self.entries.partition_point(|e| e.density < lo);
        let b = self.entries.partition_point(|e| e.density < hi);
        self.prefix[b] - self.prefix[a]
    }
}

/// Verdict of [`fits_population`](crate::bands::fits_population) for adding
/// `(v, allot)` to this run's population, computed incrementally.
///
/// Only bands that *gain* the candidate can newly exceed capacity — the
/// population already satisfies every band by the insert-only-after-fits
/// invariant (Lemma 15). Those are the candidate's own band `[v, c·v)` and
/// the bands of distinct member anchors `α < v` with `v < c·α`, walked
/// downward from `v` (the product `c·α` is monotone in `α`, so the walk
/// stops at the first anchor whose band misses `v`). Duplicate anchors are
/// subsumed by their first occurrence, whose band load is maximal.
fn seg_fits(seg: &Segment, v: f64, allot: u32, c: f64, capacity: f64) -> bool {
    let load = seg.band_load(v, c * v) + allot as u64;
    if load as f64 > capacity {
        return false;
    }
    let mut i = seg.entries.partition_point(|e| e.density < v);
    while i > 0 {
        let anchor = seg.entries[i - 1].density;
        if v >= c * anchor {
            break;
        }
        let load = seg.band_load(anchor, c * anchor) + allot as u64;
        if load as f64 > capacity {
            return false;
        }
        i = seg.entries.partition_point(|e| e.density < anchor);
    }
    true
}

/// The run containing tick `t`, if any.
fn segment_at(plan: &BTreeMap<Time, Segment>, t: Time) -> Option<&Segment> {
    plan.range(..=t)
        .next_back()
        .map(|(_, s)| s)
        .filter(|s| s.end > t)
}

/// The start of the first run strictly after `t`.
fn next_start_after(plan: &BTreeMap<Time, Segment>, t: Time) -> Option<Time> {
    plan.range((Bound::Excluded(t), Bound::Unbounded))
        .next()
        .map(|(s, _)| *s)
}

/// Assignment state for one job: the slot ranges `I_i` it may run in, as
/// disjoint ascending half-open intervals. The deadline and slot count live
/// in `history`; the per-slot density/allotment live in the run entries.
#[derive(Debug, Clone)]
struct PJob {
    ranges: Vec<(Time, Time)>,
}

/// Counters for the general-profit experiments.
#[derive(Debug, Clone, Default)]
pub struct SchedulerSProfitMetrics {
    /// Jobs that received an assignment.
    pub scheduled: usize,
    /// Jobs rejected (no valid deadline with positive profit).
    pub rejected: usize,
    /// Σ `p_i(D_i)` over scheduled jobs — the profit S *plans* to earn.
    pub planned_profit: u64,
    /// Σ over scheduled jobs of `D_i / x_i*` (deadline stretch); divide by
    /// `scheduled` for the mean.
    pub stretch_sum: f64,
}

/// The Section 5 scheduler. See module docs.
#[derive(Debug)]
pub struct SchedulerSProfit {
    params: AlgoParams,
    m: u32,
    /// The segment slot plan: run start → run.
    plan: BTreeMap<Time, Segment>,
    /// Slab of per-job slot ranges, indexed by `JobId`.
    jobs: Vec<Option<PJob>>,
    /// Persistent record of every assignment made: `(abs deadline, |I_i|)`.
    history: HashMap<JobId, (Time, usize)>,
    metrics: SchedulerSProfitMetrics,
    /// Allocate-order scratch (density desc, id asc).
    order: Vec<SlotEntry>,
    /// Release scratch: starts of runs emptied by the removal.
    empties: Vec<Time>,
    /// Cached-replay interval for `allocate_delta`: the allocation decided
    /// at `.0` stays valid for `now ∈ [.0, .1)` (`None` end = until the
    /// next event). Invalidated by every hook.
    cache: Option<(Time, Option<Time>)>,
}

impl SchedulerSProfit {
    /// Create the scheduler for `m` processors with the given constants.
    pub fn new(m: u32, params: AlgoParams) -> SchedulerSProfit {
        assert!(m >= 1);
        SchedulerSProfit {
            params,
            m,
            plan: BTreeMap::new(),
            jobs: Vec::new(),
            history: HashMap::new(),
            metrics: SchedulerSProfitMetrics::default(),
            order: Vec::new(),
            empties: Vec::new(),
            cache: None,
        }
    }

    /// Convenience: recommended constants for `ε`.
    pub fn with_epsilon(m: u32, epsilon: f64) -> SchedulerSProfit {
        SchedulerSProfit::new(m, AlgoParams::from_epsilon(epsilon).expect("valid epsilon"))
    }

    /// Analysis counters.
    pub fn metrics(&self) -> &SchedulerSProfitMetrics {
        &self.metrics
    }

    /// The assigned deadline of a scheduled job (survives completion).
    pub fn assigned_deadline(&self, id: JobId) -> Option<Time> {
        self.history.get(&id).map(|(d, _)| *d)
    }

    /// The assigned slot count of a scheduled job (survives completion).
    pub fn assigned_slots(&self, id: JobId) -> Option<usize> {
        self.history.get(&id).map(|(_, k)| *k)
    }

    /// Try to find the smallest valid deadline for density `v` and segment
    /// bound `bound` (relative): returns `(D, ranges)` on success.
    ///
    /// `k_needed` slots must lie in `[arrival, arrival + D)` with
    /// `D ≤ bound`; `min_d` enforces both the `(1+ε)L` floor and the
    /// previous segment's bound (for profit-value consistency). The scan
    /// walks whole runs and gaps — one band check per run — and returns the
    /// accepted ticks as ranges; tick for tick it accepts exactly what the
    /// per-tick oracle accepts, because every tick of a run shares its
    /// population (and every gap tick trivially fits once
    /// `allot ≤ capacity`).
    fn search_segment(
        &self,
        arrival: Time,
        bound: u64,
        min_d: u64,
        v: f64,
        allot: u32,
        k_needed: usize,
    ) -> Option<(u64, Vec<(Time, Time)>)> {
        if min_d > bound {
            return None;
        }
        let capacity = self.params.b() * self.m as f64;
        // Even an empty slot must accommodate the allotment.
        if allot as f64 > capacity {
            return None;
        }
        let c = self.params.c();
        let mut found: Vec<(Time, Time)> = Vec::new();
        let mut count = 0usize;
        let mut t = arrival;
        let end = arrival.saturating_add(bound);
        while t < end && count < k_needed {
            let (stop, usable) = match segment_at(&self.plan, t) {
                Some(seg) => (seg.end.min(end), seg_fits(seg, v, allot, c, capacity)),
                None => (
                    next_start_after(&self.plan, t).unwrap_or(end).min(end),
                    true,
                ),
            };
            if usable {
                let take = stop.since(t).min((k_needed - count) as u64);
                match found.last_mut() {
                    Some(last) if last.1 == t => last.1 = t.after(take),
                    _ => found.push((t, t.after(take))),
                }
                count += take as usize;
                t = t.after(take);
            } else {
                t = stop;
            }
        }
        if count < k_needed {
            return None;
        }
        let last = found.last().expect("k_needed >= 1").1.ticks() - 1;
        let d = (Time(last).since(arrival) + 1).max(min_d);
        debug_assert!(d <= bound);
        Some((d, found))
    }

    /// Split the run containing `at` (if any) into `[start, at)` and
    /// `[at, end)`. Runs are split, never merged — every job's inserted
    /// ranges therefore stay unions of whole runs for their lifetime.
    fn split_at(&mut self, at: Time) {
        let Some((&start, seg)) = self.plan.range(..at).next_back() else {
            return;
        };
        if seg.end <= at {
            return;
        }
        let tail = Segment {
            end: seg.end,
            entries: seg.entries.clone(),
            prefix: seg.prefix.clone(),
        };
        self.plan.get_mut(&start).expect("just found").end = at;
        self.plan.insert(at, tail);
    }

    /// Add `(density, allot, id)` to every tick of `ranges`: split the
    /// boundary runs, extend the covered runs, and materialize runs for the
    /// covered gap portions.
    fn insert_ranges(&mut self, ranges: &[(Time, Time)], density: f64, allot: u32, id: JobId) {
        let e = SlotEntry { density, allot, id };
        for &(s, end) in ranges {
            self.split_at(s);
            self.split_at(end);
            let mut cur = s;
            while cur < end {
                match self.plan.range(cur..).next().map(|(st, sg)| (*st, sg.end)) {
                    Some((st, seg_end)) if st == cur => {
                        self.plan.get_mut(&st).expect("just seen").insert(e);
                        cur = seg_end;
                    }
                    next => {
                        let gap_end = match next {
                            Some((st, _)) => st.min(end),
                            None => end,
                        };
                        self.plan.insert(cur, Segment::single(gap_end, e));
                        cur = gap_end;
                    }
                }
            }
        }
    }

    /// Remove a job's slot reservations from every still-live run of its
    /// ranges (retired runs are simply absent). Runs emptied by the removal
    /// are dropped.
    fn release(&mut self, id: JobId, _now: Time) {
        let Some(job) = self.jobs.get_mut(id.index()).and_then(Option::take) else {
            return;
        };
        self.cache = None;
        self.empties.clear();
        for &(s, e) in &job.ranges {
            for (st, seg) in self.plan.range_mut(s..e) {
                seg.remove(id);
                if seg.entries.is_empty() {
                    self.empties.push(*st);
                }
            }
        }
        while let Some(st) = self.empties.pop() {
            self.plan.remove(&st);
        }
    }

    /// Drop runs that ended at or before `now` — nothing before `now` can
    /// execute anymore. Each run is removed exactly once over the whole
    /// simulation, so this is amortized O(1) per allocate (the seed
    /// implementation rebuilt the map via `split_off` on every call).
    fn retire(&mut self, now: Time) {
        while let Some((&start, seg)) = self.plan.iter().next() {
            if seg.end > now {
                break;
            }
            self.plan.remove(&start);
        }
    }

    /// The full allocation decision: retire past runs, rank the current
    /// run's population (density desc, id asc), fill greedily, and record
    /// the cached-replay interval.
    fn decide(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.retire(view.now);
        out.clear();
        let now = view.now;
        let plan = &self.plan;
        let order = &mut self.order;
        order.clear();
        if let Some(seg) = segment_at(plan, now) {
            order.extend(seg.entries.iter().copied());
            order.sort_by(|a, b| b.density.total_cmp(&a.density).then(a.id.0.cmp(&b.id.0)));
            let mut left = view.m;
            for e in order.iter() {
                if left == 0 {
                    break;
                }
                if view.ready_count(e.id).is_none() {
                    continue;
                }
                if e.allot <= left {
                    out.push((e.id, e.allot));
                    left -= e.allot;
                }
            }
        }
        let until = match segment_at(&self.plan, now) {
            Some(seg) => Some(seg.end),
            None => next_start_after(&self.plan, now),
        };
        self.cache = Some((now, until));
    }
}

impl OnlineScheduler for SchedulerSProfit {
    fn name(&self) -> String {
        format!("S-profit(eps={})", self.params.epsilon())
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        self.cache = None;
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let brent = AlgoParams::brent_time(w, l, self.m);
        // Theorem 3's assumption, clamped if the input violates it.
        let x_star = info
            .profit
            .flat_until()
            .as_f64()
            .max((1.0 + self.params.epsilon()) * brent);
        let denom = x_star / self.params.good_factor() - l;
        debug_assert!(denom > 0.0, "x* >= (1+eps)L makes the denominator positive");
        let allot = ((((w - l) / denom).ceil() as u32).max(1)).min(self.m);
        let x = AlgoParams::x_time(w, l, allot);
        let k_needed = ((self.params.fresh_factor() * x).ceil() as usize).max(1);
        let xn = x * allot as f64;
        let min_d_floor = ((1.0 + self.params.epsilon()) * l).floor() as u64 + 1;

        // Candidate deadlines: one per profit segment, in decreasing-profit
        // order, plus the tail if it pays.
        let mut candidates: Vec<(u64, u64)> = info
            .profit
            .segments()
            .iter()
            .map(|(b, v)| (b.ticks(), *v))
            .collect();
        if info.profit.tail_value() > 0 {
            // The tail pays forever; cap the scan generously past both the
            // current assignment horizon and the slots we need. (The last
            // run's final tick is the plan's largest assigned tick, exactly
            // the seed implementation's largest slot key.)
            let horizon = self
                .plan
                .iter()
                .next_back()
                .map(|(_, seg)| seg.end.ticks() - 1)
                .unwrap_or(0)
                .max(info.arrival.ticks());
            let cap = horizon - info.arrival.ticks().min(horizon) + k_needed as u64 + 2;
            let last = candidates.last().map(|(b, _)| *b).unwrap_or(0);
            candidates.push((last + cap, info.profit.tail_value()));
        }

        let mut prev_bound = 0u64;
        for (bound, value) in candidates {
            let v = value as f64 / xn;
            let min_d = min_d_floor.max(prev_bound + 1);
            if let Some((d, ranges)) =
                self.search_segment(info.arrival, bound, min_d, v, allot, k_needed)
            {
                let abs_deadline = info.arrival.saturating_add(d);
                self.insert_ranges(&ranges, v, allot, info.id);
                let idx = info.id.index();
                if self.jobs.len() <= idx {
                    self.jobs.resize_with(idx + 1, || None);
                }
                self.jobs[idx] = Some(PJob { ranges });
                self.history.insert(info.id, (abs_deadline, k_needed));
                self.metrics.scheduled += 1;
                self.metrics.planned_profit += info.profit.eval(Time(d));
                self.metrics.stretch_sum += d as f64 / x_star;
                return;
            }
            prev_bound = bound;
        }
        self.metrics.rejected += 1;
    }

    fn on_completion(&mut self, id: JobId, now: Time) {
        self.release(id, now);
    }

    fn on_expiry(&mut self, id: JobId, now: Time) {
        self.release(id, now);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.decide(view, &mut out);
        out
    }

    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.decide(view, out);
    }

    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        // Cached replay: no hook fired, no ready count moved, and `now` is
        // still inside the interval the last decision is constant on — the
        // previous contents of `out` are byte-identical to a recompute.
        if delta.is_empty() {
            if let Some((from, until)) = self.cache {
                if view.now >= from && until.is_none_or(|u| view.now < u) {
                    return true;
                }
            }
        }
        self.decide(view, out);
        true
    }

    fn allocation_stable_between_events(&self) -> bool {
        // The slot plan is keyed on absolute time, so the allocation is NOT
        // constant between events — but it IS piecewise constant, which is
        // what `bounded_stability` declares instead.
        false
    }

    fn bounded_stability(&self) -> bool {
        true
    }

    fn stable_until(&self, now: Time) -> Option<Time> {
        // Inside a run: constant until the run ends. In a gap: empty until
        // the next run starts. Past the last run: empty until the next
        // event, like a fully stable scheduler.
        match segment_at(&self.plan, now) {
            Some(seg) => Some(seg.end),
            None => next_start_after(&self.plan, now),
        }
    }

    fn completion_keys_stable(&self) -> bool {
        // Sound because every fast-forward window is already capped at
        // `stable_until`: within a window the allocation cannot reshuffle,
        // which is all the kernel's re-key rule needs.
        true
    }

    fn reset(&mut self) -> bool {
        // The maps are only ever probed by key (no iteration order reaches
        // the allocation), so clearing them restores fresh-construction
        // behavior exactly; `params` and `m` are construction parameters
        // and stay.
        self.plan.clear();
        self.jobs.clear();
        self.history.clear();
        self.metrics = SchedulerSProfitMetrics::default();
        self.order.clear();
        self.empties.clear();
        self.cache = None;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_dag::gen;
    use dagsched_engine::{simulate, JobStatus, SimConfig};
    use dagsched_workload::{Instance, JobSpec, ProfitShape, StepProfitFn, WorkloadGen};

    fn staircase(d: u64, p: u64) -> StepProfitFn {
        StepProfitFn::steps(
            vec![(Time(d), p), (Time(2 * d), p / 2), (Time(4 * d), p / 4)],
            0,
        )
        .unwrap()
    }

    fn info(id: u32, arrival: u64, w: u64, l: u64, profit: StepProfitFn) -> JobInfo {
        JobInfo {
            id: JobId(id),
            arrival: Time(arrival),
            work: Work(w),
            span: Work(l),
            profit,
        }
    }

    /// The ticks of a job's assigned ranges, expanded.
    fn slot_ticks(s: &SchedulerSProfit, id: JobId) -> Vec<Time> {
        let job = s.jobs[id.index()].as_ref().expect("assigned");
        job.ranges
            .iter()
            .flat_map(|&(a, b)| (a.ticks()..b.ticks()).map(Time))
            .collect()
    }

    #[test]
    fn lone_job_gets_smallest_deadline_and_exact_slots() {
        let mut s = SchedulerSProfit::with_epsilon(8, 1.0);
        // W=64, L=4: brent = 11.5, x* must be >= 23; give a generous step.
        s.on_arrival(
            &info(0, 0, 64, 4, StepProfitFn::deadline(Time(40), 10)),
            Time(0),
        );
        assert_eq!(s.metrics().scheduled, 1);
        let k = s.assigned_slots(JobId(0)).unwrap();
        // |I| = ceil((1+δ)x): with an empty machine the slots are the first
        // k ticks, so D = k (possibly raised to the (1+ε)L floor).
        let d = s.assigned_deadline(JobId(0)).unwrap();
        assert!(d.ticks() >= k as u64);
        assert!(d <= Time(40), "assigned deadline within the paying window");
    }

    #[test]
    fn impossible_profit_window_is_rejected() {
        let mut s = SchedulerSProfit::with_epsilon(4, 1.0);
        // Profit window shorter than (1+eps)L: no potential deadline.
        s.on_arrival(
            &info(0, 0, 30, 20, StepProfitFn::deadline(Time(21), 10)),
            Time(0),
        );
        assert_eq!(s.metrics().rejected, 1);
        assert_eq!(s.metrics().scheduled, 0);
    }

    #[test]
    fn band_conflict_pushes_second_job_to_later_step() {
        let m = 8u32;
        let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
        // Two identical wide jobs with a 2-step staircase. The first takes
        // the earliest slots; the second cannot share them (band capacity)
        // and lands on a later (possibly cheaper) deadline.
        let f = staircase(24, 64);
        s.on_arrival(&info(0, 0, 60, 1, f.clone()), Time(0));
        s.on_arrival(&info(1, 0, 60, 1, f), Time(0));
        assert_eq!(s.metrics().scheduled, 2, "both get assignments");
        let d0 = s.assigned_deadline(JobId(0)).unwrap();
        let d1 = s.assigned_deadline(JobId(1)).unwrap();
        assert!(d1 > d0, "second job's deadline is later: {d0} vs {d1}");
    }

    #[test]
    fn positive_tail_jobs_are_always_scheduled() {
        let mut s = SchedulerSProfit::with_epsilon(4, 1.0);
        let f = StepProfitFn::steps(vec![(Time(10), 50)], 5).unwrap();
        // Saturate the early slots with several jobs; all must still be
        // scheduled because the tail pays forever.
        for i in 0..6 {
            s.on_arrival(&info(i, 0, 40, 1, f.clone()), Time(0));
        }
        assert_eq!(s.metrics().scheduled, 6);
        assert_eq!(s.metrics().rejected, 0);
    }

    #[test]
    fn engine_run_completes_the_lone_job_by_its_assigned_deadline() {
        let dag = gen::block(32, 2).into_shared();
        let inst = Instance::new(
            8,
            vec![JobSpec::new(
                JobId(0),
                Time(0),
                dag,
                StepProfitFn::deadline(Time(40), 10),
            )],
        )
        .unwrap();
        let mut s = SchedulerSProfit::with_epsilon(8, 1.0);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        let d = s.assigned_deadline(JobId(0)).expect("scheduled");
        match r.outcomes[0] {
            JobStatus::Completed { at, profit } => {
                assert!(at <= d, "completed at {at}, assigned deadline {d}");
                assert_eq!(profit, 10);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn staircase_workload_earns_planned_or_better_per_job_count() {
        let gen = WorkloadGen {
            shape: ProfitShape::SteppedDecay {
                extra_steps: 2,
                time_factor: 2.0,
                value_factor: 0.5,
            },
            ..WorkloadGen::standard(8, 50, 31)
        };
        let inst = gen.generate().unwrap();
        let mut s = SchedulerSProfit::with_epsilon(8, 0.5);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(r.total_profit > 0);
        assert!(s.metrics().scheduled + s.metrics().rejected == 50);
        // Mean deadline stretch is finite and ≥ 1 (deadlines at or past x*
        // only when slots are contended; the floor is D ≥ |I| ≥ x).
        let mean_stretch = s.metrics().stretch_sum / s.metrics().scheduled as f64;
        assert!(mean_stretch.is_finite() && mean_stretch > 0.0);
    }

    #[test]
    fn stable_until_reports_run_and_gap_boundaries() {
        let mut s = SchedulerSProfit::with_epsilon(8, 1.0);
        s.on_arrival(
            &info(0, 5, 64, 4, StepProfitFn::deadline(Time(40), 10)),
            Time(5),
        );
        let (&start, seg) = s.plan.iter().next().expect("assigned a run");
        assert_eq!(start, Time(5), "lone job takes the first ticks");
        let end = seg.end;
        // Inside the run: stable to the run's end.
        assert_eq!(s.stable_until(Time(5)), Some(end));
        // In the gap before the run: stable (empty) to the run's start.
        assert_eq!(s.stable_until(Time(0)), Some(Time(5)));
        // Past every run: no further boundary.
        assert_eq!(s.stable_until(end), None);
    }

    #[test]
    fn allocate_delta_replays_on_empty_delta_within_the_run() {
        let m = 8u32;
        let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
        s.on_arrival(
            &info(0, 0, 64, 4, StepProfitFn::deadline(Time(40), 10)),
            Time(0),
        );
        let jobs = [(JobId(0), 8u32)];
        let empty = ViewDelta::default();
        let mut out = Allocation::new();
        let view0 = TickView::new(m, Time(0), &jobs);
        assert!(s.allocate_delta(&empty, &view0, &mut out));
        let first = out.clone();
        assert!(!first.is_empty(), "lone job runs in its first slot");
        let until = s.stable_until(Time(0)).expect("inside the first run");
        // Replay inside the run: `out` is left untouched (poison it to
        // prove the fast path never writes).
        out.push((JobId(99), 1));
        let view1 = TickView::new(m, Time(1), &jobs);
        assert!(until > Time(1), "run is longer than one tick");
        assert!(s.allocate_delta(&empty, &view1, &mut out));
        assert_eq!(out.last(), Some(&(JobId(99), 1)), "replay left out alone");
        out.pop();
        assert_eq!(out, first);
        // Past the boundary: recomputed (and identical to allocate_into).
        let view2 = TickView::new(m, until, &jobs);
        assert!(s.allocate_delta(&empty, &view2, &mut out));
        let mut fresh = Allocation::new();
        let mut twin = SchedulerSProfit::with_epsilon(m, 1.0);
        twin.on_arrival(
            &info(0, 0, 64, 4, StepProfitFn::deadline(Time(40), 10)),
            Time(0),
        );
        twin.allocate_into(&TickView::new(m, until, &jobs), &mut fresh);
        assert_eq!(out, fresh);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Lemma 15: after any arrival sequence, every run's population
            /// keeps every density band `[v, c·v)` within `b·m`.
            #[test]
            fn per_slot_band_invariant(
                seed in 0u64..500,
                n_jobs in 1usize..14,
                m in 2u32..12,
            ) {
                let mut rng = dagsched_core::Rng64::seed_from(seed);
                let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
                let mut t = 0u64;
                for i in 0..n_jobs {
                    t += rng.gen_range(8);
                    let w = 2 + rng.gen_range(40);
                    let l = 1 + rng.gen_range(w - 1);
                    let d = ((2.2 * ((w - l) as f64 / m as f64 + l as f64)).ceil()
                        as u64).max(2);
                    let p = 1 + rng.gen_range(50);
                    s.on_arrival(
                        &info(i as u32, t, w, l, StepProfitFn::deadline(Time(d), p)),
                        Time(t),
                    );
                }
                let capacity = s.params.b() * m as f64;
                let c = s.params.c();
                for (start, seg) in &s.plan {
                    prop_assert!(seg.end > *start, "runs are non-empty");
                    prop_assert!(!seg.entries.is_empty(), "empty runs are dropped");
                    for anchor in &seg.entries {
                        let band: u64 = seg
                            .entries
                            .iter()
                            .filter(|e| {
                                e.density >= anchor.density
                                    && e.density < c * anchor.density
                            })
                            .map(|e| e.allot as u64)
                            .sum();
                        prop_assert!(
                            band as f64 <= capacity + 1e-9,
                            "run at {start}: band at {} holds {band} > b*m = {capacity}",
                            anchor.density
                        );
                        // The prefix-sum band load agrees with the scan.
                        prop_assert_eq!(
                            seg.band_load(anchor.density, c * anchor.density),
                            band
                        );
                    }
                    // Prefix table is consistent with the entries.
                    let total: u64 = seg.entries.iter().map(|e| e.allot as u64).sum();
                    prop_assert_eq!(*seg.prefix.last().unwrap(), total);
                }
                // Runs are disjoint and ordered.
                let mut prev_end = Time(0);
                for (start, seg) in &s.plan {
                    prop_assert!(*start >= prev_end, "runs overlap");
                    prev_end = seg.end;
                }
            }

            /// Assigned slot sets are exactly `⌈(1+δ)x⌉` ticks inside the
            /// assigned deadline window.
            #[test]
            fn slot_sets_sized_and_bounded(seed in 0u64..200, n_jobs in 1usize..10) {
                let mut rng = dagsched_core::Rng64::seed_from(seed);
                let m = 8u32;
                let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
                let mut t = 0u64;
                for i in 0..n_jobs {
                    t += rng.gen_range(6);
                    let w = 2 + rng.gen_range(30);
                    let l = 1 + rng.gen_range(w - 1);
                    let d = ((2.5 * ((w - l) as f64 / m as f64 + l as f64)).ceil()
                        as u64).max(2);
                    let arrival = Time(t);
                    s.on_arrival(
                        &info(i as u32, t, w, l, StepProfitFn::deadline(Time(d), 10)),
                        arrival,
                    );
                    let id = dagsched_core::JobId(i as u32);
                    if s.jobs.get(id.index()).is_some_and(Option::is_some) {
                        let abs_d = s.assigned_deadline(id).expect("recorded");
                        let k = s.assigned_slots(id).expect("recorded");
                        let ticks = slot_ticks(&s, id);
                        prop_assert_eq!(ticks.len(), k);
                        for &slot in &ticks {
                            prop_assert!(slot >= arrival, "slot before arrival");
                            prop_assert!(slot < abs_d, "slot at/after deadline");
                        }
                        // Strictly increasing.
                        prop_assert!(ticks.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }
        }
    }

    #[test]
    fn plan_is_retired_as_time_advances() {
        let mut s = SchedulerSProfit::with_epsilon(4, 1.0);
        s.on_arrival(
            &info(0, 0, 40, 1, StepProfitFn::deadline(Time(60), 10)),
            Time(0),
        );
        let before = s.plan.len();
        assert!(before > 0);
        let jobs = [(JobId(0), 4u32)];
        let _ = s.allocate(&TickView::new(4, Time(10), &jobs));
        assert!(
            s.plan.values().all(|seg| seg.end > Time(10)),
            "fully past runs must be dropped"
        );
    }

    #[test]
    fn allocation_never_exceeds_m_and_only_runs_assigned_jobs() {
        let m = 8u32;
        let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
        let f = staircase(30, 64);
        for i in 0..5 {
            s.on_arrival(&info(i, 0, 60, 1, f.clone()), Time(0));
        }
        let jobs: Vec<(JobId, u32)> = (0..5).map(|i| (JobId(i), 60u32)).collect();
        for t in 0..40u64 {
            let alloc = s.allocate(&TickView::new(m, Time(t), &jobs));
            let total: u32 = alloc.iter().map(|(_, k)| k).sum();
            assert!(total <= m, "tick {t}: allocated {total} > m");
        }
    }
}
