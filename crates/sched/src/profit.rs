//! Scheduler **S** for general profit functions (Section 5).
//!
//! For arbitrary non-increasing step profits `p_i(t)` there is no given
//! deadline — the scheduler *assigns* one. On arrival of `J_i` it computes
//! an allotment from the flat prefix `x_i*` of the profit function,
//!
//! > `n_i = (W_i−L_i) / (x_i*/(1+2δ) − L_i)`,
//!
//! and then searches for the **smallest valid deadline** `D`: scanning
//! candidate completion times in profit order (one candidate per profit
//! step — within a step the profit is constant, so only the step boundary
//! matters), it collects *time slots* `I_i ⊆ [r_i, r_i+D)` in which adding
//! `J_i` at density `v = p_i(D)/(x_i n_i)` keeps every per-slot density band
//! `[v_j, c·v_j)` within `b·m` processors. A deadline is valid once
//! `|I_i| = ⌈(1+δ) x_i⌉` slots fit. The job may then run **only** in its
//! assigned slots; each tick executes the highest-density jobs assigned to
//! it.
//!
//! Deviations from the paper text, documented per DESIGN.md:
//!
//! * `x_i*` is clamped up to `(1+ε)((W−L)/m + L)` when the input violates
//!   Theorem 3's assumption, so allotments stay within Lemma 11's bound;
//! * completed/expired jobs release their future slots (the paper leaves
//!   this unspecified; releasing is never worse for the remaining jobs);
//! * a job whose profit reaches zero before any valid deadline is rejected
//!   outright (it could never earn anything anyway).

use crate::bands::fits_population;
use dagsched_core::{AlgoParams, JobId, Time};
use dagsched_engine::{Allocation, JobInfo, OnlineScheduler, TickView};
use std::collections::{BTreeMap, HashMap};

/// One job's presence in one time slot.
#[derive(Debug, Clone, Copy)]
struct SlotEntry {
    density: f64,
    allot: u32,
    id: JobId,
}

/// Assignment state for one job: the slots `I_i` it may still run in
/// (absolute ticks, ascending). The deadline and slot count live in
/// `history`; the per-slot density/allotment live in the slot entries.
#[derive(Debug, Clone)]
struct PJob {
    slots: Vec<Time>,
}

/// Counters for the general-profit experiments.
#[derive(Debug, Clone, Default)]
pub struct SchedulerSProfitMetrics {
    /// Jobs that received an assignment.
    pub scheduled: usize,
    /// Jobs rejected (no valid deadline with positive profit).
    pub rejected: usize,
    /// Σ `p_i(D_i)` over scheduled jobs — the profit S *plans* to earn.
    pub planned_profit: u64,
    /// Σ over scheduled jobs of `D_i / x_i*` (deadline stretch); divide by
    /// `scheduled` for the mean.
    pub stretch_sum: f64,
}

/// The Section 5 scheduler. See module docs.
#[derive(Debug)]
pub struct SchedulerSProfit {
    params: AlgoParams,
    m: u32,
    jobs: HashMap<JobId, PJob>,
    /// Sparse per-tick populations `J(t)` for ticks with assignments.
    slots: BTreeMap<Time, Vec<SlotEntry>>,
    /// Persistent record of every assignment made: `(abs deadline, |I_i|)`.
    history: HashMap<JobId, (Time, usize)>,
    metrics: SchedulerSProfitMetrics,
}

impl SchedulerSProfit {
    /// Create the scheduler for `m` processors with the given constants.
    pub fn new(m: u32, params: AlgoParams) -> SchedulerSProfit {
        assert!(m >= 1);
        SchedulerSProfit {
            params,
            m,
            jobs: HashMap::new(),
            slots: BTreeMap::new(),
            history: HashMap::new(),
            metrics: SchedulerSProfitMetrics::default(),
        }
    }

    /// Convenience: recommended constants for `ε`.
    pub fn with_epsilon(m: u32, epsilon: f64) -> SchedulerSProfit {
        SchedulerSProfit::new(m, AlgoParams::from_epsilon(epsilon).expect("valid epsilon"))
    }

    /// Analysis counters.
    pub fn metrics(&self) -> &SchedulerSProfitMetrics {
        &self.metrics
    }

    /// The assigned deadline of a scheduled job (survives completion).
    pub fn assigned_deadline(&self, id: JobId) -> Option<Time> {
        self.history.get(&id).map(|(d, _)| *d)
    }

    /// The assigned slot count of a scheduled job (survives completion).
    pub fn assigned_slots(&self, id: JobId) -> Option<usize> {
        self.history.get(&id).map(|(_, k)| *k)
    }

    /// Population of one tick as `(density, allot)` pairs.
    fn population(&self, t: Time) -> Vec<(f64, u32)> {
        self.slots
            .get(&t)
            .map(|v| v.iter().map(|e| (e.density, e.allot)).collect())
            .unwrap_or_default()
    }

    /// Try to find the smallest valid deadline for density `v` and segment
    /// bound `bound` (relative): returns `(D, slots)` on success.
    ///
    /// `k_needed` slots must lie in `[arrival, arrival + D)` with
    /// `D ≤ bound`; `min_d` enforces both the `(1+ε)L` floor and the
    /// previous segment's bound (for profit-value consistency).
    fn search_segment(
        &self,
        arrival: Time,
        bound: u64,
        min_d: u64,
        v: f64,
        allot: u32,
        k_needed: usize,
    ) -> Option<(u64, Vec<Time>)> {
        if min_d > bound {
            return None;
        }
        let capacity = self.params.b() * self.m as f64;
        // Even an empty slot must accommodate the allotment.
        if allot as f64 > capacity {
            return None;
        }
        let mut found: Vec<Time> = Vec::with_capacity(k_needed);
        let mut t = arrival;
        let end = arrival.saturating_add(bound);
        while t < end && found.len() < k_needed {
            // Fast path: no assignments at or after t — all remaining ticks
            // are free and usable.
            if self.slots.range(t..).next().is_none() {
                while t < end && found.len() < k_needed {
                    found.push(t);
                    t = t.after(1);
                }
                break;
            }
            if fits_population(&self.population(t), v, allot, self.params.c(), capacity) {
                found.push(t);
            }
            t = t.after(1);
        }
        if found.len() < k_needed {
            return None;
        }
        let last = *found.last().expect("k_needed >= 1");
        let d = (last.since(arrival) + 1).max(min_d);
        debug_assert!(d <= bound);
        Some((d, found))
    }
}

impl OnlineScheduler for SchedulerSProfit {
    fn name(&self) -> String {
        format!("S-profit(eps={})", self.params.epsilon())
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let brent = AlgoParams::brent_time(w, l, self.m);
        // Theorem 3's assumption, clamped if the input violates it.
        let x_star = info
            .profit
            .flat_until()
            .as_f64()
            .max((1.0 + self.params.epsilon()) * brent);
        let denom = x_star / self.params.good_factor() - l;
        debug_assert!(denom > 0.0, "x* >= (1+eps)L makes the denominator positive");
        let allot = ((((w - l) / denom).ceil() as u32).max(1)).min(self.m);
        let x = AlgoParams::x_time(w, l, allot);
        let k_needed = ((self.params.fresh_factor() * x).ceil() as usize).max(1);
        let xn = x * allot as f64;
        let min_d_floor = ((1.0 + self.params.epsilon()) * l).floor() as u64 + 1;

        // Candidate deadlines: one per profit segment, in decreasing-profit
        // order, plus the tail if it pays.
        let mut candidates: Vec<(u64, u64)> = info
            .profit
            .segments()
            .iter()
            .map(|(b, v)| (b.ticks(), *v))
            .collect();
        if info.profit.tail_value() > 0 {
            // The tail pays forever; cap the scan generously past both the
            // current assignment horizon and the slots we need.
            let horizon = self
                .slots
                .keys()
                .next_back()
                .map(|t| t.ticks())
                .unwrap_or(0)
                .max(info.arrival.ticks());
            let cap = horizon - info.arrival.ticks().min(horizon) + k_needed as u64 + 2;
            let last = candidates.last().map(|(b, _)| *b).unwrap_or(0);
            candidates.push((last + cap, info.profit.tail_value()));
        }

        let mut prev_bound = 0u64;
        for (bound, value) in candidates {
            let v = value as f64 / xn;
            let min_d = min_d_floor.max(prev_bound + 1);
            if let Some((d, slots)) =
                self.search_segment(info.arrival, bound, min_d, v, allot, k_needed)
            {
                let abs_deadline = info.arrival.saturating_add(d);
                for &t in &slots {
                    self.slots.entry(t).or_default().push(SlotEntry {
                        density: v,
                        allot,
                        id: info.id,
                    });
                }
                self.jobs.insert(info.id, PJob { slots });
                self.history.insert(info.id, (abs_deadline, k_needed));
                self.metrics.scheduled += 1;
                self.metrics.planned_profit += info.profit.eval(Time(d));
                self.metrics.stretch_sum += d as f64 / x_star;
                return;
            }
            prev_bound = bound;
        }
        self.metrics.rejected += 1;
    }

    fn on_completion(&mut self, id: JobId, now: Time) {
        self.release(id, now);
    }

    fn on_expiry(&mut self, id: JobId, now: Time) {
        self.release(id, now);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        // Drop past slots: nothing before `now` can execute anymore.
        self.slots = self.slots.split_off(&view.now);
        let Some(entries) = self.slots.get(&view.now) else {
            return Vec::new();
        };
        let mut order: Vec<SlotEntry> = entries.clone();
        order.sort_by(|a, b| b.density.total_cmp(&a.density).then(a.id.0.cmp(&b.id.0)));
        let alive: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
        let mut left = view.m;
        let mut out = Vec::new();
        for e in order {
            if left == 0 {
                break;
            }
            if !alive.contains_key(&e.id) {
                continue;
            }
            if e.allot <= left {
                out.push((e.id, e.allot));
                left -= e.allot;
            }
        }
        out
    }

    fn allocation_stable_between_events(&self) -> bool {
        // Deliberately NOT stable: the slot plan is keyed on absolute time —
        // `allocate` both reads `view.now` and mutates `self.slots` on every
        // call, so the allocation genuinely changes tick to tick even with
        // no job event in between. Must stay on the naive engine path.
        false
    }

    fn reset(&mut self) -> bool {
        // The maps are only ever probed by key (no iteration reaches the
        // allocation), so clearing them restores fresh-construction behavior
        // exactly; `params` and `m` are construction parameters and stay.
        self.jobs.clear();
        self.slots.clear();
        self.history.clear();
        self.metrics = SchedulerSProfitMetrics::default();
        true
    }
}

impl SchedulerSProfit {
    /// Remove a job's future slot reservations.
    fn release(&mut self, id: JobId, now: Time) {
        let Some(job) = self.jobs.remove(&id) else {
            return;
        };
        for t in job.slots {
            if t < now {
                continue;
            }
            if let Some(entries) = self.slots.get_mut(&t) {
                entries.retain(|e| e.id != id);
                if entries.is_empty() {
                    self.slots.remove(&t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_dag::gen;
    use dagsched_engine::{simulate, JobStatus, SimConfig};
    use dagsched_workload::{Instance, JobSpec, ProfitShape, StepProfitFn, WorkloadGen};

    fn staircase(d: u64, p: u64) -> StepProfitFn {
        StepProfitFn::steps(
            vec![(Time(d), p), (Time(2 * d), p / 2), (Time(4 * d), p / 4)],
            0,
        )
        .unwrap()
    }

    fn info(id: u32, arrival: u64, w: u64, l: u64, profit: StepProfitFn) -> JobInfo {
        JobInfo {
            id: JobId(id),
            arrival: Time(arrival),
            work: Work(w),
            span: Work(l),
            profit,
        }
    }

    #[test]
    fn lone_job_gets_smallest_deadline_and_exact_slots() {
        let mut s = SchedulerSProfit::with_epsilon(8, 1.0);
        // W=64, L=4: brent = 11.5, x* must be >= 23; give a generous step.
        s.on_arrival(
            &info(0, 0, 64, 4, StepProfitFn::deadline(Time(40), 10)),
            Time(0),
        );
        assert_eq!(s.metrics().scheduled, 1);
        let k = s.assigned_slots(JobId(0)).unwrap();
        // |I| = ceil((1+δ)x): with an empty machine the slots are the first
        // k ticks, so D = k (possibly raised to the (1+ε)L floor).
        let d = s.assigned_deadline(JobId(0)).unwrap();
        assert!(d.ticks() >= k as u64);
        assert!(d <= Time(40), "assigned deadline within the paying window");
    }

    #[test]
    fn impossible_profit_window_is_rejected() {
        let mut s = SchedulerSProfit::with_epsilon(4, 1.0);
        // Profit window shorter than (1+eps)L: no potential deadline.
        s.on_arrival(
            &info(0, 0, 30, 20, StepProfitFn::deadline(Time(21), 10)),
            Time(0),
        );
        assert_eq!(s.metrics().rejected, 1);
        assert_eq!(s.metrics().scheduled, 0);
    }

    #[test]
    fn band_conflict_pushes_second_job_to_later_step() {
        let m = 8u32;
        let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
        // Two identical wide jobs with a 2-step staircase. The first takes
        // the earliest slots; the second cannot share them (band capacity)
        // and lands on a later (possibly cheaper) deadline.
        let f = staircase(24, 64);
        s.on_arrival(&info(0, 0, 60, 1, f.clone()), Time(0));
        s.on_arrival(&info(1, 0, 60, 1, f), Time(0));
        assert_eq!(s.metrics().scheduled, 2, "both get assignments");
        let d0 = s.assigned_deadline(JobId(0)).unwrap();
        let d1 = s.assigned_deadline(JobId(1)).unwrap();
        assert!(d1 > d0, "second job's deadline is later: {d0} vs {d1}");
    }

    #[test]
    fn positive_tail_jobs_are_always_scheduled() {
        let mut s = SchedulerSProfit::with_epsilon(4, 1.0);
        let f = StepProfitFn::steps(vec![(Time(10), 50)], 5).unwrap();
        // Saturate the early slots with several jobs; all must still be
        // scheduled because the tail pays forever.
        for i in 0..6 {
            s.on_arrival(&info(i, 0, 40, 1, f.clone()), Time(0));
        }
        assert_eq!(s.metrics().scheduled, 6);
        assert_eq!(s.metrics().rejected, 0);
    }

    #[test]
    fn engine_run_completes_the_lone_job_by_its_assigned_deadline() {
        let dag = gen::block(32, 2).into_shared();
        let inst = Instance::new(
            8,
            vec![JobSpec::new(
                JobId(0),
                Time(0),
                dag,
                StepProfitFn::deadline(Time(40), 10),
            )],
        )
        .unwrap();
        let mut s = SchedulerSProfit::with_epsilon(8, 1.0);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        let d = s.assigned_deadline(JobId(0)).expect("scheduled");
        match r.outcomes[0] {
            JobStatus::Completed { at, profit } => {
                assert!(at <= d, "completed at {at}, assigned deadline {d}");
                assert_eq!(profit, 10);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn staircase_workload_earns_planned_or_better_per_job_count() {
        let gen = WorkloadGen {
            shape: ProfitShape::SteppedDecay {
                extra_steps: 2,
                time_factor: 2.0,
                value_factor: 0.5,
            },
            ..WorkloadGen::standard(8, 50, 31)
        };
        let inst = gen.generate().unwrap();
        let mut s = SchedulerSProfit::with_epsilon(8, 0.5);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(r.total_profit > 0);
        assert!(s.metrics().scheduled + s.metrics().rejected == 50);
        // Mean deadline stretch is finite and ≥ 1 (deadlines at or past x*
        // only when slots are contended; the floor is D ≥ |I| ≥ x).
        let mean_stretch = s.metrics().stretch_sum / s.metrics().scheduled as f64;
        assert!(mean_stretch.is_finite() && mean_stretch > 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Lemma 15: after any arrival sequence, every per-tick slot
            /// population keeps every density band `[v, c·v)` within `b·m`.
            #[test]
            fn per_slot_band_invariant(
                seed in 0u64..500,
                n_jobs in 1usize..14,
                m in 2u32..12,
            ) {
                let mut rng = dagsched_core::Rng64::seed_from(seed);
                let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
                let mut t = 0u64;
                for i in 0..n_jobs {
                    t += rng.gen_range(8);
                    let w = 2 + rng.gen_range(40);
                    let l = 1 + rng.gen_range(w - 1);
                    let d = ((2.2 * ((w - l) as f64 / m as f64 + l as f64)).ceil()
                        as u64).max(2);
                    let p = 1 + rng.gen_range(50);
                    s.on_arrival(
                        &info(i as u32, t, w, l, StepProfitFn::deadline(Time(d), p)),
                        Time(t),
                    );
                }
                let capacity = s.params.b() * m as f64;
                let c = s.params.c();
                for (tick, entries) in &s.slots {
                    for anchor in entries {
                        let band: u64 = entries
                            .iter()
                            .filter(|e| {
                                e.density >= anchor.density
                                    && e.density < c * anchor.density
                            })
                            .map(|e| e.allot as u64)
                            .sum();
                        prop_assert!(
                            band as f64 <= capacity + 1e-9,
                            "tick {tick}: band at {} holds {band} > b*m = {capacity}",
                            anchor.density
                        );
                    }
                }
            }

            /// Assigned slot sets are exactly `⌈(1+δ)x⌉` ticks inside the
            /// assigned deadline window.
            #[test]
            fn slot_sets_sized_and_bounded(seed in 0u64..200, n_jobs in 1usize..10) {
                let mut rng = dagsched_core::Rng64::seed_from(seed);
                let m = 8u32;
                let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
                let mut t = 0u64;
                for i in 0..n_jobs {
                    t += rng.gen_range(6);
                    let w = 2 + rng.gen_range(30);
                    let l = 1 + rng.gen_range(w - 1);
                    let d = ((2.5 * ((w - l) as f64 / m as f64 + l as f64)).ceil()
                        as u64).max(2);
                    let arrival = Time(t);
                    s.on_arrival(
                        &info(i as u32, t, w, l, StepProfitFn::deadline(Time(d), 10)),
                        arrival,
                    );
                    let id = dagsched_core::JobId(i as u32);
                    if let Some(job) = s.jobs.get(&id) {
                        let abs_d = s.assigned_deadline(id).expect("recorded");
                        let k = s.assigned_slots(id).expect("recorded");
                        prop_assert_eq!(job.slots.len(), k);
                        for &slot in &job.slots {
                            prop_assert!(slot >= arrival, "slot before arrival");
                            prop_assert!(slot < abs_d, "slot at/after deadline");
                        }
                        // Strictly increasing.
                        prop_assert!(job.slots.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }
        }
    }

    #[test]
    fn slots_map_is_pruned_as_time_advances() {
        let mut s = SchedulerSProfit::with_epsilon(4, 1.0);
        s.on_arrival(
            &info(0, 0, 40, 1, StepProfitFn::deadline(Time(60), 10)),
            Time(0),
        );
        let before = s.slots.len();
        assert!(before > 0);
        let jobs = [(JobId(0), 4u32)];
        let _ = s.allocate(&TickView::new(4, Time(10), &jobs));
        assert!(
            s.slots.keys().all(|t| *t >= Time(10)),
            "past slots must be dropped"
        );
    }

    #[test]
    fn allocation_never_exceeds_m_and_only_runs_assigned_jobs() {
        let m = 8u32;
        let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
        let f = staircase(30, 64);
        for i in 0..5 {
            s.on_arrival(&info(i, 0, 60, 1, f.clone()), Time(0));
        }
        let jobs: Vec<(JobId, u32)> = (0..5).map(|i| (JobId(i), 60u32)).collect();
        for t in 0..40u64 {
            let alloc = s.allocate(&TickView::new(m, Time(t), &jobs));
            let total: u32 = alloc.iter().map(|(_, k)| k).sum();
            assert!(total <= m, "tick {t}: allocated {total} > m");
        }
    }
}
