//! Dense, allocation-free per-job storage for the scheduler hot path.
//!
//! Engine job ids are indices into the instance (`JobId(i)` for the i-th
//! job), so a scheduler's per-job state wants a dense vector, not a
//! `HashMap`: no hashing on lookups, no rehash allocations on the event
//! path, and iteration in id order for determinism. Two containers:
//!
//! * [`JobSlab`] — `JobId`-indexed slots holding the per-job record. Slots
//!   are reused after removal; the vector grows monotonically to the
//!   highest id seen and never shrinks, so a warmed-up scheduler performs
//!   zero allocations per event. Ids are unique per simulation run (the
//!   engine never recycles them within an instance), which is the
//!   generational guarantee a free-list slab would otherwise have to carry
//!   per slot.
//! * [`DenseU32Map`] — a scratch `JobId → u32` map with O(1) set/get and
//!   O(touched) [`clear`](DenseU32Map::clear), for per-call indices such as
//!   ready counts and allocation-slot positions.

use dagsched_core::JobId;
use dagsched_engine::ViewDelta;

/// Dense `JobId`-keyed storage (see module docs).
#[derive(Debug, Clone)]
pub struct JobSlab<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> Default for JobSlab<T> {
    fn default() -> Self {
        JobSlab::new()
    }
}

impl<T> JobSlab<T> {
    /// An empty slab.
    pub fn new() -> JobSlab<T> {
        JobSlab {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drop every live entry, keeping the slot storage for reuse.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.live = 0;
    }

    /// Insert `value` under `id`, returning the previous value if any.
    pub fn insert(&mut self, id: JobId, value: T) -> Option<T> {
        let i = id.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    /// Shared access to the entry under `id`.
    pub fn get(&self, id: JobId) -> Option<&T> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to the entry under `id`.
    pub fn get_mut(&mut self, id: JobId) -> Option<&mut T> {
        self.slots.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    /// Remove and return the entry under `id`.
    pub fn remove(&mut self, id: JobId) -> Option<T> {
        let old = self.slots.get_mut(id.index()).and_then(|s| s.take());
        if old.is_some() {
            self.live -= 1;
        }
        old
    }

    /// Iterate live `(id, &value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (JobId(i as u32), v)))
    }
}

/// Scratch `JobId → u32` map with O(touched) clearing (see module docs).
///
/// Values are stored as `v + 1` so 0 means "absent"; `u32::MAX` is therefore
/// not storable, which no caller needs (ready counts and slot positions are
/// bounded by `m` and the allocation length).
#[derive(Debug, Clone, Default)]
pub struct DenseU32Map {
    vals: Vec<u32>,
    touched: Vec<u32>,
}

impl DenseU32Map {
    /// An empty map.
    pub fn new() -> DenseU32Map {
        DenseU32Map::default()
    }

    /// Remove every entry; O(entries set since the last clear).
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.vals[i as usize] = 0;
        }
        self.touched.clear();
    }

    /// Map `id` to `v`, overwriting any previous value.
    pub fn set(&mut self, id: JobId, v: u32) {
        debug_assert!(v < u32::MAX, "value encoding reserves u32::MAX");
        let i = id.index();
        if i >= self.vals.len() {
            self.vals.resize(i + 1, 0);
        }
        if self.vals[i] == 0 {
            self.touched.push(i as u32);
        }
        self.vals[i] = v + 1;
    }

    /// The value under `id`, if set since the last clear.
    pub fn get(&self, id: JobId) -> Option<u32> {
        match self.vals.get(id.index()) {
            Some(&raw) if raw != 0 => Some(raw - 1),
            _ => None,
        }
    }

    /// Unmap `id` (no-op if absent). The touched list keeps the stale
    /// entry — [`clear`](DenseU32Map::clear) zeroing an already-zero slot
    /// is harmless, and a later re-`set` of the same id just records it
    /// again. Growth stays bounded for the schedulers' persistent luts
    /// because the engine never recycles job ids within a run, so each id
    /// transitions absent→present O(1) times.
    pub fn remove(&mut self, id: JobId) {
        if let Some(v) = self.vals.get_mut(id.index()) {
            *v = 0;
        }
    }

    /// Patch a *persistent* ready-count lut with one step's view changes,
    /// in the delta contract's apply order (admitted → ready_changed →
    /// removed) so a job admitted and expired within the same step nets out
    /// to absent. After this the lut's content equals a fresh rebuild from
    /// the tick view — which is exactly what the `view_delta_differential`
    /// suite pins.
    pub fn apply_view_delta(&mut self, delta: &ViewDelta) {
        for &(id, r) in &delta.admitted {
            self.set(id, r);
        }
        for &(id, r) in &delta.ready_changed {
            self.set(id, r);
        }
        for &id in &delta.removed {
            self.remove(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_roundtrip_and_reuse() {
        let mut s: JobSlab<&str> = JobSlab::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(JobId(3), "a"), None);
        assert_eq!(s.insert(JobId(0), "b"), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(JobId(3)), Some(&"a"));
        assert_eq!(s.get(JobId(7)), None);
        assert_eq!(s.insert(JobId(3), "c"), Some("a"), "replace keeps len");
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(JobId(3)), Some("c"));
        assert_eq!(s.remove(JobId(3)), None, "double remove is a no-op");
        assert_eq!(s.len(), 1);
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all, vec![(JobId(0), &"b")]);
    }

    #[test]
    fn slab_get_mut_updates_in_place() {
        let mut s: JobSlab<u32> = JobSlab::new();
        s.insert(JobId(1), 10);
        *s.get_mut(JobId(1)).unwrap() += 5;
        assert_eq!(s.get(JobId(1)), Some(&15));
        assert_eq!(s.get_mut(JobId(9)), None);
    }

    #[test]
    fn dense_map_set_get_clear() {
        let mut m = DenseU32Map::new();
        assert_eq!(m.get(JobId(0)), None);
        m.set(JobId(4), 0);
        m.set(JobId(1), 7);
        assert_eq!(m.get(JobId(4)), Some(0), "zero values are present");
        assert_eq!(m.get(JobId(1)), Some(7));
        m.set(JobId(1), 9);
        assert_eq!(m.get(JobId(1)), Some(9), "overwrite");
        m.clear();
        assert_eq!(m.get(JobId(4)), None);
        assert_eq!(m.get(JobId(1)), None);
        // Reuse after clear.
        m.set(JobId(4), 2);
        assert_eq!(m.get(JobId(4)), Some(2));
    }

    #[test]
    fn dense_map_remove_then_reset_and_clear() {
        let mut m = DenseU32Map::new();
        m.set(JobId(2), 5);
        m.set(JobId(6), 1);
        m.remove(JobId(2));
        assert_eq!(m.get(JobId(2)), None, "removed entry is absent");
        assert_eq!(m.get(JobId(6)), Some(1), "others untouched");
        m.remove(JobId(2)); // double remove is a no-op
        m.remove(JobId(99)); // out-of-range remove is a no-op
        m.set(JobId(2), 8);
        assert_eq!(m.get(JobId(2)), Some(8), "re-set after remove");
        m.clear();
        assert_eq!(m.get(JobId(2)), None);
        assert_eq!(m.get(JobId(6)), None);
    }

    #[test]
    fn apply_view_delta_matches_a_fresh_rebuild() {
        let mut m = DenseU32Map::new();
        m.set(JobId(0), 3);
        m.set(JobId(1), 1);
        let mut d = ViewDelta::default();
        d.admitted.push((JobId(2), 2));
        d.admitted.push((JobId(3), 1)); // admitted, then expired same step
        d.ready_changed.push((JobId(0), 4));
        d.removed.push(JobId(1));
        d.removed.push(JobId(3));
        m.apply_view_delta(&d);
        assert_eq!(m.get(JobId(0)), Some(4));
        assert_eq!(m.get(JobId(1)), None);
        assert_eq!(m.get(JobId(2)), Some(2));
        assert_eq!(
            m.get(JobId(3)),
            None,
            "same-step admit+expire nets to absent"
        );
    }
}
