//! EDF with admission control — the practical strawman between plain EDF
//! (no admission: collapses under overload) and scheduler S (density-band
//! admission: worst-case guarantees).
//!
//! [`EdfAc`] admits an arriving job only if, *assuming admitted jobs are
//! ideal malleable work*, every deadline can still be met: for each
//! admitted absolute deadline `d`, the total remaining work of admitted
//! jobs due by `d` must fit in `m · (d − now)` processor-steps, and each
//! job individually needs `d_i − now ≥ L_i` (span feasibility). This is
//! the natural demand-bound admission test a practitioner would write; it
//! has **no worst-case guarantee** for DAG jobs (it ignores structure
//! beyond the span, and ignores profit entirely), which is exactly the gap
//! the paper's scheduler closes. The E7/E8 experiments quantify the
//! difference.
//!
//! Remaining work is tracked *optimistically*: the test charges each
//! admitted job its full work from admission time, and re-charges actual
//! progress via ready-count-oblivious accounting (the engine reports
//! completions, not per-tick progress, to stay semi-non-clairvoyant —
//! so the test decrements only on completion). That bias is conservative:
//! it can reject admissible jobs but never over-promises because of stale
//! optimism.
//!
//! Admitted-job records live in a dense [`JobSlab`] and both the arrival
//! test and the per-tick EDF sort run over hoisted scratch vectors, so the
//! steady-state paths do not allocate.

use crate::slab::{DenseU32Map, JobSlab};
use dagsched_core::{JobId, Time, Work};
use dagsched_engine::{
    AdmissionDecision, AdmissionEvent, AdmissionReason, Allocation, JobInfo, OnlineScheduler,
    TickView, ViewDelta,
};

/// Per-admitted-job record.
#[derive(Debug, Clone, Copy)]
struct AdmJob {
    abs_deadline: Time,
    work: Work,
    seq: u64,
}

/// EDF with a demand-bound admission test. See module docs.
#[derive(Debug)]
pub struct EdfAc {
    m: u32,
    admitted: JobSlab<AdmJob>,
    seq: u64,
    /// Rejected-at-arrival count (reporting).
    rejected: usize,
    report: Option<Vec<AdmissionEvent>>,
    /// Scratch: the sorted-deduped deadline horizon of the admission test.
    deadline_scratch: Vec<Time>,
    /// Scratch: this tick's `(deadline, seq, id, ready)` EDF order, for the
    /// rebuild path.
    order_scratch: Vec<(Time, u64, JobId, u32)>,
    /// Admitted jobs kept sorted by `(deadline, seq)` — the EDF walk order
    /// — maintained incrementally in the hooks. `(deadline, seq)` is a
    /// unique key, so this order equals what the rebuild path's
    /// `sort_unstable` produces every tick.
    live_order: Vec<(Time, u64, JobId)>,
    /// Ready counts, persistent across calls on the delta path.
    ready_lut: DenseU32Map,
    /// True while `ready_lut` mirrors the engine's maintained view.
    lut_live: bool,
    /// True while the previous allocate call's `out` is still current.
    cache_live: bool,
}

impl EdfAc {
    /// Create the scheduler for `m` processors.
    pub fn new(m: u32) -> EdfAc {
        assert!(m >= 1);
        EdfAc {
            m,
            admitted: JobSlab::new(),
            seq: 0,
            rejected: 0,
            report: None,
            deadline_scratch: Vec::new(),
            order_scratch: Vec::new(),
            live_order: Vec::new(),
            ready_lut: DenseU32Map::new(),
            lut_live: false,
            cache_live: false,
        }
    }

    /// Number of jobs turned away by the admission test.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// The admission test: with the candidate included, is every admitted
    /// deadline's demand within `m · (d − now)`? Returns the rejection
    /// reason, or `None` when the candidate passes.
    fn admission_failure(
        &mut self,
        cand: &AdmJob,
        cand_span: Work,
        now: Time,
    ) -> Option<AdmissionReason> {
        // Span feasibility for the candidate itself.
        if cand.abs_deadline.since(now) < cand_span.units() {
            return Some(AdmissionReason::SpanInfeasible);
        }
        // Demand bound at every admitted deadline ≥ the candidate's
        // relevant horizon (jobs due later don't constrain earlier ones
        // under EDF).
        let mut deadlines = std::mem::take(&mut self.deadline_scratch);
        deadlines.clear();
        deadlines.extend(self.admitted.iter().map(|(_, j)| j.abs_deadline));
        deadlines.push(cand.abs_deadline);
        deadlines.sort_unstable();
        deadlines.dedup();
        let mut failure = None;
        for &d in &deadlines {
            let window = d.since(now) as u128 * self.m as u128;
            let demand: u128 = self
                .admitted
                .iter()
                .map(|(_, j)| j)
                .chain(std::iter::once(cand))
                .filter(|j| j.abs_deadline <= d)
                .map(|j| j.work.units() as u128)
                .sum();
            if demand > window {
                failure = Some(AdmissionReason::DemandBound);
                break;
            }
        }
        self.deadline_scratch = deadlines;
        failure
    }

    /// Forget an admitted job (completion or expiry). The record is taken
    /// out of the slab first so its `(deadline, seq)` key is available for
    /// the ordered-list removal; expiry can fire for jobs the admission
    /// test rejected, which were never ordered — those are a no-op.
    fn drop_admitted(&mut self, id: JobId) {
        if let Some(j) = self.admitted.remove(id) {
            let key = (j.abs_deadline, j.seq, id);
            match self.live_order.binary_search(&key) {
                Ok(at) => {
                    self.live_order.remove(at);
                }
                Err(_) => debug_assert!(false, "admitted job is in the live order"),
            }
        }
    }
}

impl OnlineScheduler for EdfAc {
    fn name(&self) -> String {
        "EDF-AC".into()
    }

    fn on_arrival(&mut self, info: &JobInfo, now: Time) {
        let abs_deadline = info.abs_deadline().unwrap_or_else(|| {
            info.arrival
                .saturating_add(info.profit.last_useful_time().ticks())
        });
        let cand = AdmJob {
            abs_deadline,
            work: info.work,
            seq: self.seq,
        };
        self.seq += 1;
        let decision = match self.admission_failure(&cand, info.span, now) {
            None => {
                self.admitted.insert(info.id, cand);
                let key = (cand.abs_deadline, cand.seq, info.id);
                // `seq` is fresh and strictly larger than every prior one,
                // but earlier deadlines can arrive later — a real insert
                // position, not always the tail.
                let at = self.live_order.partition_point(|e| e < &key);
                self.live_order.insert(at, key);
                AdmissionDecision::Admitted
            }
            Some(reason) => {
                self.rejected += 1;
                AdmissionDecision::Rejected(reason)
            }
        };
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent {
                job: info.id,
                decision,
            });
        }
    }

    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.drop_admitted(id);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.drop_admitted(id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }

    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.lut_live = false;
        self.cache_live = false;
        out.clear();
        let mut order = std::mem::take(&mut self.order_scratch);
        order.clear();
        order.extend(view.jobs().iter().filter_map(|&(id, r)| {
            self.admitted
                .get(id)
                .map(|j| (j.abs_deadline, j.seq, id, r))
        }));
        // `(deadline, seq)` is already a unique key; the trailing ready
        // count rides along so the fill below needs no lookup table.
        order.sort_unstable();
        let mut left = view.m;
        for &(_, _, id, r) in &order {
            if left == 0 {
                break;
            }
            let k = r.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        self.order_scratch = order;
    }

    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        if self.cache_live && delta.is_empty() {
            return true;
        }
        if self.lut_live {
            self.ready_lut.apply_view_delta(delta);
        } else {
            self.ready_lut.clear();
            for &(id, r) in view.jobs() {
                self.ready_lut.set(id, r);
            }
            self.lut_live = true;
        }
        out.clear();
        // Walk the maintained `(deadline, seq)` order instead of sorting
        // the view: admitted ⊆ alive (terminal hooks always fire), so every
        // ordered job has a lut entry, and the rebuild path's sort visits
        // the same jobs in the same unique-key order.
        let mut left = view.m;
        for &(_, _, id) in &self.live_order {
            if left == 0 {
                break;
            }
            let Some(r) = self.ready_lut.get(id) else {
                continue;
            };
            let k = r.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        self.cache_live = true;
        true
    }

    fn allocation_stable_between_events(&self) -> bool {
        // Pure (deadline, seq) sort over the admitted set + work-conserving
        // fill; admission happens only in the arrival hook.
        true
    }

    fn group_aware(&self) -> bool {
        // Allocation order is (deadline, seq): fastest-first placement
        // drives the most urgent admitted jobs on the fastest groups.
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }

    fn reset(&mut self) -> bool {
        self.admitted.clear();
        self.seq = 0;
        self.rejected = 0;
        self.report = None;
        self.live_order.clear();
        self.ready_lut.clear();
        self.lut_live = false;
        self.cache_live = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Rng64;
    use dagsched_engine::{simulate, SimConfig};
    use dagsched_workload::{
        ArrivalProcess, DeadlinePolicy, ProfitPolicy, StepProfitFn, WorkloadGen,
    };

    fn info(id: u32, arrival: u64, w: u64, l: u64, d: u64) -> JobInfo {
        JobInfo {
            id: JobId(id),
            arrival: Time(arrival),
            work: Work(w),
            span: Work(l),
            profit: StepProfitFn::deadline(Time(d), 1),
        }
    }

    #[test]
    fn admits_until_demand_bound_saturates() {
        let mut s = EdfAc::new(2);
        // Window 10 on m = 2: capacity 20 work units by the deadline.
        s.on_arrival(&info(0, 0, 12, 1, 10), Time(0));
        s.on_arrival(&info(1, 0, 8, 1, 10), Time(0));
        assert_eq!(s.rejected(), 0);
        // Third job of any size due at 10 must be rejected.
        s.on_arrival(&info(2, 0, 1, 1, 10), Time(0));
        assert_eq!(s.rejected(), 1);
        // But a job with a much later deadline still fits.
        s.on_arrival(&info(3, 0, 15, 1, 100), Time(0));
        assert_eq!(s.rejected(), 1);
    }

    #[test]
    fn rejects_span_infeasible_jobs() {
        let mut s = EdfAc::new(8);
        s.on_arrival(&info(0, 0, 20, 15, 10), Time(0)); // L = 15 > D = 10
        assert_eq!(s.rejected(), 1);
    }

    #[test]
    fn earlier_deadlines_preempt_in_allocation() {
        let mut s = EdfAc::new(4);
        s.on_arrival(&info(0, 0, 8, 1, 50), Time(0));
        s.on_arrival(&info(1, 0, 8, 1, 20), Time(0));
        let jobs = [(JobId(0), 8u32), (JobId(1), 8u32)];
        let alloc = s.allocate(&TickView::new(4, Time(0), &jobs));
        assert_eq!(alloc[0].0, JobId(1), "earliest deadline first");
        assert_eq!(alloc[0].1, 4, "work-conserving");
    }

    #[test]
    fn admitted_jobs_mostly_complete_under_simulation() {
        // The point of admission control: what EDF-AC admits, it mostly
        // finishes even under heavy offered load (rejections absorb the
        // overload). Not a hard guarantee for DAGs — check a high fraction.
        let mut rng = Rng64::seed_from(3);
        for _ in 0..3 {
            let inst = WorkloadGen {
                arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, 8),
                deadlines: DeadlinePolicy::SlackFactor(2.0),
                profits: ProfitPolicy::Uniform(1),
                ..WorkloadGen::standard(8, 80, rng.next_u64())
            }
            .generate()
            .unwrap();
            let mut s = EdfAc::new(8);
            let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
            let admitted = 80 - s.rejected();
            assert!(admitted > 0);
            let frac = r.completed() as f64 / admitted as f64;
            assert!(
                frac > 0.7,
                "only {frac:.2} of admitted jobs completed ({} of {admitted})",
                r.completed()
            );
        }
    }

    #[test]
    fn beats_plain_edf_under_overload() {
        use crate::Edf;
        let mut better = 0;
        for seed in 0..5u64 {
            let inst = WorkloadGen {
                arrivals: ArrivalProcess::poisson_for_load(6.0, 60.0, 8),
                deadlines: DeadlinePolicy::SlackFactor(2.0),
                ..WorkloadGen::standard(8, 100, seed)
            }
            .generate()
            .unwrap();
            let mut ac = EdfAc::new(8);
            let ra = simulate(&inst, &mut ac, &SimConfig::default()).unwrap();
            let mut plain = Edf::new(8);
            let rp = simulate(&inst, &mut plain, &SimConfig::default()).unwrap();
            if ra.total_profit > rp.total_profit {
                better += 1;
            }
        }
        assert!(
            better >= 4,
            "admission control should usually beat plain EDF under overload ({better}/5)"
        );
    }
}
