//! Pre-refactor scheduler implementations, kept as **test oracles**.
//!
//! This PR rewrote the hot paths of [`SchedulerS`](crate::SchedulerS),
//! [`SNoAdmission`](crate::SNoAdmission) and [`EdfAc`](crate::EdfAc) to be
//! allocation-free and incrementally indexed. The versions in this module
//! are the seed implementations those rewrites must be *byte-identical* to:
//! `HashMap` job state, `BTreeSet` queues, the O(n)-sweep
//! [`ReferenceBands`], per-tick `Vec` allocations and all. They keep the
//! production `name()` strings so a [`SimResult`](dagsched_engine) or a
//! `dagsched-verify` JSONL log produced by an oracle compares equal to one
//! produced by its rewritten counterpart — which is exactly what
//! `crates/verify/tests/legacy_differential.rs` asserts over the
//! stream-equivalence corpus. They also serve as the "before" leg of the
//! `admission`/`backfill` benchmark groups.
//!
//! Do not optimize this module; its value is being frozen.

use crate::bands::reference::ReferenceBands;
use crate::deadline::OrdF64;
use dagsched_core::{AlgoParams, JobId, Time, Work};
use dagsched_engine::{
    AdmissionDecision, AdmissionEvent, AdmissionReason, Allocation, JobInfo, OnlineScheduler,
    TickView,
};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Per-job quantities S computes at arrival.
#[derive(Debug, Clone)]
struct SJob {
    allot: u32,
    x: f64,
    density: f64,
    abs_deadline: Time,
    admissible: bool,
    in_q: bool,
}

/// The seed implementation of scheduler S (metrics and invariant hooks
/// omitted — the oracle only has to *schedule* identically).
#[derive(Debug)]
pub struct OracleSchedulerS {
    params: AlgoParams,
    m: u32,
    jobs: HashMap<JobId, SJob>,
    q: BTreeSet<(OrdF64, JobId)>,
    p: BTreeSet<(OrdF64, JobId)>,
    bands: ReferenceBands,
    speed_hint: f64,
    work_conserving: bool,
    report: Option<Vec<AdmissionEvent>>,
}

impl OracleSchedulerS {
    /// Create the oracle for `m` processors with the given constants.
    pub fn new(m: u32, params: AlgoParams) -> OracleSchedulerS {
        assert!(m >= 1);
        let capacity = params.b() * m as f64;
        OracleSchedulerS {
            params,
            m,
            jobs: HashMap::new(),
            q: BTreeSet::new(),
            p: BTreeSet::new(),
            bands: ReferenceBands::new(params.c(), capacity),
            speed_hint: 1.0,
            work_conserving: false,
            report: None,
        }
    }

    /// Oracle counterpart of `SchedulerS::with_epsilon`.
    pub fn with_epsilon(m: u32, epsilon: f64) -> OracleSchedulerS {
        OracleSchedulerS::new(m, AlgoParams::from_epsilon(epsilon).expect("valid epsilon"))
    }

    /// Oracle counterpart of `SchedulerS::with_speed_hint`.
    pub fn with_speed_hint(mut self, s: f64) -> OracleSchedulerS {
        assert!(s.is_finite() && s > 0.0, "speed hint must be positive");
        self.speed_hint = s;
        self
    }

    /// Oracle counterpart of `SchedulerS::work_conserving`.
    pub fn work_conserving(mut self) -> OracleSchedulerS {
        self.work_conserving = true;
        self
    }

    fn record(&mut self, job: JobId, decision: AdmissionDecision) {
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent { job, decision });
        }
    }

    fn start_job(&mut self, id: JobId, from_p: bool) {
        let job = self.jobs.get_mut(&id).expect("known job");
        job.in_q = true;
        let key = (OrdF64(job.density), id);
        let (density, allot) = (job.density, job.allot);
        if from_p {
            self.p.remove(&key);
        }
        self.q.insert(key);
        self.bands.insert(id, density, allot);
        self.record(id, AdmissionDecision::Admitted);
    }

    fn forget(&mut self, id: JobId) {
        if let Some(job) = self.jobs.remove(&id) {
            let key = (OrdF64(job.density), id);
            if job.in_q {
                self.q.remove(&key);
                self.bands.remove(id);
            } else {
                self.p.remove(&key);
            }
        }
    }

    fn backfill(&self, view: &TickView<'_>, mut left: u32, out: &mut Allocation) -> u32 {
        let ready: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
        let mut granted: HashMap<JobId, u32> = out.iter().copied().collect();
        for &(_, id) in self.q.iter().rev() {
            if left == 0 {
                return 0;
            }
            let Some(&r) = ready.get(&id) else { continue };
            let have = granted.get(&id).copied().unwrap_or(0);
            let want = r.saturating_sub(have).min(left);
            if want == 0 {
                continue;
            }
            left -= want;
            granted.insert(id, have + want);
            match out.iter_mut().find(|(j, _)| *j == id) {
                Some(slot) => slot.1 += want,
                None => out.push((id, want)),
            }
        }
        for &(_, id) in self.p.iter().rev() {
            if left == 0 {
                return 0;
            }
            let Some(&r) = ready.get(&id) else { continue };
            let want = r.min(left);
            if want == 0 {
                continue;
            }
            left -= want;
            debug_assert!(!granted.contains_key(&id), "P and Q are disjoint");
            out.push((id, want));
        }
        left
    }

    fn admit_from_p(&mut self, now: Time) {
        let candidates: Vec<JobId> = self.p.iter().rev().map(|&(_, id)| id).collect();
        for id in candidates {
            let Some(job) = self.jobs.get(&id) else {
                continue;
            };
            if job.abs_deadline <= now {
                self.forget(id);
                self.record(
                    id,
                    AdmissionDecision::Rejected(AdmissionReason::DeadlinePassed),
                );
                continue;
            }
            if !job.admissible {
                continue;
            }
            let slack = job.abs_deadline.since(now) as f64;
            if slack < self.params.fresh_factor() * job.x {
                continue;
            }
            if self.bands.fits(job.density, job.allot) {
                self.start_job(id, true);
            }
        }
    }
}

impl OnlineScheduler for OracleSchedulerS {
    fn name(&self) -> String {
        if self.work_conserving {
            format!("S-wc(eps={})", self.params.epsilon())
        } else {
            format!("S(eps={})", self.params.epsilon())
        }
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let (d_rel, profit) = info
            .profit
            .as_deadline()
            .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
        let w = info.work.as_f64() / self.speed_hint;
        let l = info.span.as_f64() / self.speed_hint;
        let d = d_rel.as_f64();

        let (allot, admissible) = match self.params.raw_allotment(w, l, d) {
            Some(frac) => {
                let n = (frac.ceil() as u32).max(1);
                (n.min(self.m), n <= self.m)
            }
            None => (self.m, false),
        };
        let x = AlgoParams::x_time(w, l, allot);
        let density = profit as f64 / (x * allot as f64);
        let abs_deadline = info.arrival.saturating_add(d_rel.ticks());
        let delta_good = admissible && d >= self.params.good_factor() * x;

        self.jobs.insert(
            info.id,
            SJob {
                allot,
                x,
                density,
                abs_deadline,
                admissible,
                in_q: false,
            },
        );

        if delta_good && self.bands.fits(density, allot) {
            self.start_job(info.id, false);
        } else {
            let reason = if !admissible {
                AdmissionReason::Infeasible
            } else if !delta_good {
                AdmissionReason::NotDeltaGood
            } else {
                AdmissionReason::BandCapacity
            };
            self.record(info.id, AdmissionDecision::Deferred(reason));
            self.p.insert((OrdF64(density), info.id));
        }
    }

    fn on_completion(&mut self, id: JobId, now: Time) {
        self.forget(id);
        self.admit_from_p(now);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.forget(id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut left = view.m;
        let mut out = Vec::new();
        for &(_, id) in self.q.iter().rev() {
            if left == 0 {
                break;
            }
            let job = &self.jobs[&id];
            if job.allot <= left {
                out.push((id, job.allot));
                left -= job.allot;
            }
        }
        if self.work_conserving && left > 0 {
            left = self.backfill(view, left, &mut out);
        }
        let _ = left;
        out
    }

    fn allocation_stable_between_events(&self) -> bool {
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}

/// The seed implementation of the admission-less ablation of S.
#[derive(Debug)]
pub struct OracleSNoAdmission {
    m: u32,
    params: AlgoParams,
    /// (density, seq, id, allot) of alive jobs.
    alive: Vec<(f64, u64, JobId, u32)>,
    seq: u64,
    report: Option<Vec<AdmissionEvent>>,
}

impl OracleSNoAdmission {
    /// Create the oracle ablation.
    pub fn new(m: u32, params: AlgoParams) -> OracleSNoAdmission {
        OracleSNoAdmission {
            m,
            params,
            alive: Vec::new(),
            seq: 0,
            report: None,
        }
    }
}

impl OnlineScheduler for OracleSNoAdmission {
    fn name(&self) -> String {
        "S-noadmit".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let (d_rel, profit) = info
            .profit
            .as_deadline()
            .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let allot = match self.params.raw_allotment(w, l, d_rel.as_f64()) {
            Some(frac) => ((frac.ceil() as u32).max(1)).min(self.m),
            None => self.m,
        };
        let x = AlgoParams::x_time(w, l, allot);
        let density = profit as f64 / (x * allot as f64);
        self.alive.push((density, self.seq, info.id, allot));
        self.seq += 1;
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent {
                job: info.id,
                decision: AdmissionDecision::Admitted,
            });
        }
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut order = self.alive.clone();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut left = view.m;
        let mut out = Vec::new();
        for (_, _, id, allot) in order {
            if left == 0 {
                break;
            }
            if allot <= left {
                out.push((id, allot));
                left -= allot;
            }
        }
        out
    }
    fn allocation_stable_between_events(&self) -> bool {
        true
    }
    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }
    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}

/// Per-admitted-job record of the EDF-AC oracle.
#[derive(Debug, Clone, Copy)]
struct AdmJob {
    abs_deadline: Time,
    work: Work,
    seq: u64,
}

/// The seed implementation of EDF with demand-bound admission control.
#[derive(Debug)]
pub struct OracleEdfAc {
    m: u32,
    admitted: HashMap<JobId, AdmJob>,
    seq: u64,
    report: Option<Vec<AdmissionEvent>>,
}

impl OracleEdfAc {
    /// Create the oracle for `m` processors.
    pub fn new(m: u32) -> OracleEdfAc {
        assert!(m >= 1);
        OracleEdfAc {
            m,
            admitted: HashMap::new(),
            seq: 0,
            report: None,
        }
    }

    fn admission_failure(
        &self,
        cand: &AdmJob,
        cand_span: Work,
        now: Time,
    ) -> Option<AdmissionReason> {
        if cand.abs_deadline.since(now) < cand_span.units() {
            return Some(AdmissionReason::SpanInfeasible);
        }
        let mut deadlines: Vec<Time> = self
            .admitted
            .values()
            .map(|j| j.abs_deadline)
            .chain(std::iter::once(cand.abs_deadline))
            .collect();
        deadlines.sort_unstable();
        deadlines.dedup();
        for &d in &deadlines {
            let window = d.since(now) as u128 * self.m as u128;
            let demand: u128 = self
                .admitted
                .values()
                .chain(std::iter::once(cand))
                .filter(|j| j.abs_deadline <= d)
                .map(|j| j.work.units() as u128)
                .sum();
            if demand > window {
                return Some(AdmissionReason::DemandBound);
            }
        }
        None
    }
}

impl OnlineScheduler for OracleEdfAc {
    fn name(&self) -> String {
        "EDF-AC".into()
    }

    fn on_arrival(&mut self, info: &JobInfo, now: Time) {
        let abs_deadline = info.abs_deadline().unwrap_or_else(|| {
            info.arrival
                .saturating_add(info.profit.last_useful_time().ticks())
        });
        let cand = AdmJob {
            abs_deadline,
            work: info.work,
            seq: self.seq,
        };
        self.seq += 1;
        let decision = match self.admission_failure(&cand, info.span, now) {
            None => {
                self.admitted.insert(info.id, cand);
                AdmissionDecision::Admitted
            }
            Some(reason) => AdmissionDecision::Rejected(reason),
        };
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent {
                job: info.id,
                decision,
            });
        }
    }

    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.admitted.remove(&id);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.admitted.remove(&id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut order: Vec<(Time, u64, JobId)> = view
            .jobs()
            .iter()
            .filter_map(|&(id, _)| self.admitted.get(&id).map(|j| (j.abs_deadline, j.seq, id)))
            .collect();
        order.sort_unstable();
        let ready: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
        let mut left = view.m;
        let mut out = Vec::new();
        for (_, _, id) in order {
            if left == 0 {
                break;
            }
            let r = ready.get(&id).copied().unwrap_or(0);
            let k = r.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        out
    }

    fn allocation_stable_between_events(&self) -> bool {
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}
