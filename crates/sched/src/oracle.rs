//! Pre-refactor scheduler implementations, kept as **test oracles**.
//!
//! This PR rewrote the hot paths of [`SchedulerS`](crate::SchedulerS),
//! [`SNoAdmission`](crate::SNoAdmission) and [`EdfAc`](crate::EdfAc) to be
//! allocation-free and incrementally indexed. The versions in this module
//! are the seed implementations those rewrites must be *byte-identical* to:
//! `HashMap` job state, `BTreeSet` queues, the O(n)-sweep
//! [`ReferenceBands`], per-tick `Vec` allocations and all. They keep the
//! production `name()` strings so a [`SimResult`](dagsched_engine) or a
//! `dagsched-verify` JSONL log produced by an oracle compares equal to one
//! produced by its rewritten counterpart — which is exactly what
//! `crates/verify/tests/legacy_differential.rs` asserts over the
//! stream-equivalence corpus. They also serve as the "before" leg of the
//! `admission`/`backfill` benchmark groups.
//!
//! Do not optimize this module; its value is being frozen.

use crate::bands::{fits_population, reference::ReferenceBands};
use crate::deadline::OrdF64;
use dagsched_core::{AlgoParams, JobId, Rng64, Time, Work};
use dagsched_engine::{
    AdmissionDecision, AdmissionEvent, AdmissionReason, Allocation, JobInfo, OnlineScheduler,
    TickView,
};
use std::collections::HashMap;
use std::collections::{BTreeMap, BTreeSet};

/// Per-job quantities S computes at arrival.
#[derive(Debug, Clone)]
struct SJob {
    allot: u32,
    x: f64,
    density: f64,
    abs_deadline: Time,
    admissible: bool,
    in_q: bool,
}

/// The seed implementation of scheduler S (metrics and invariant hooks
/// omitted — the oracle only has to *schedule* identically).
#[derive(Debug)]
pub struct OracleSchedulerS {
    params: AlgoParams,
    m: u32,
    jobs: HashMap<JobId, SJob>,
    q: BTreeSet<(OrdF64, JobId)>,
    p: BTreeSet<(OrdF64, JobId)>,
    bands: ReferenceBands,
    speed_hint: f64,
    work_conserving: bool,
    report: Option<Vec<AdmissionEvent>>,
}

impl OracleSchedulerS {
    /// Create the oracle for `m` processors with the given constants.
    pub fn new(m: u32, params: AlgoParams) -> OracleSchedulerS {
        assert!(m >= 1);
        let capacity = params.b() * m as f64;
        OracleSchedulerS {
            params,
            m,
            jobs: HashMap::new(),
            q: BTreeSet::new(),
            p: BTreeSet::new(),
            bands: ReferenceBands::new(params.c(), capacity),
            speed_hint: 1.0,
            work_conserving: false,
            report: None,
        }
    }

    /// Oracle counterpart of `SchedulerS::with_epsilon`.
    pub fn with_epsilon(m: u32, epsilon: f64) -> OracleSchedulerS {
        OracleSchedulerS::new(m, AlgoParams::from_epsilon(epsilon).expect("valid epsilon"))
    }

    /// Oracle counterpart of `SchedulerS::with_speed_hint`.
    pub fn with_speed_hint(mut self, s: f64) -> OracleSchedulerS {
        assert!(s.is_finite() && s > 0.0, "speed hint must be positive");
        self.speed_hint = s;
        self
    }

    /// Oracle counterpart of `SchedulerS::work_conserving`.
    pub fn work_conserving(mut self) -> OracleSchedulerS {
        self.work_conserving = true;
        self
    }

    fn record(&mut self, job: JobId, decision: AdmissionDecision) {
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent { job, decision });
        }
    }

    fn start_job(&mut self, id: JobId, from_p: bool) {
        let job = self.jobs.get_mut(&id).expect("known job");
        job.in_q = true;
        let key = (OrdF64(job.density), id);
        let (density, allot) = (job.density, job.allot);
        if from_p {
            self.p.remove(&key);
        }
        self.q.insert(key);
        self.bands.insert(id, density, allot);
        self.record(id, AdmissionDecision::Admitted);
    }

    fn forget(&mut self, id: JobId) {
        if let Some(job) = self.jobs.remove(&id) {
            let key = (OrdF64(job.density), id);
            if job.in_q {
                self.q.remove(&key);
                self.bands.remove(id);
            } else {
                self.p.remove(&key);
            }
        }
    }

    fn backfill(&self, view: &TickView<'_>, mut left: u32, out: &mut Allocation) -> u32 {
        let ready: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
        let mut granted: HashMap<JobId, u32> = out.iter().copied().collect();
        for &(_, id) in self.q.iter().rev() {
            if left == 0 {
                return 0;
            }
            let Some(&r) = ready.get(&id) else { continue };
            let have = granted.get(&id).copied().unwrap_or(0);
            let want = r.saturating_sub(have).min(left);
            if want == 0 {
                continue;
            }
            left -= want;
            granted.insert(id, have + want);
            match out.iter_mut().find(|(j, _)| *j == id) {
                Some(slot) => slot.1 += want,
                None => out.push((id, want)),
            }
        }
        for &(_, id) in self.p.iter().rev() {
            if left == 0 {
                return 0;
            }
            let Some(&r) = ready.get(&id) else { continue };
            let want = r.min(left);
            if want == 0 {
                continue;
            }
            left -= want;
            debug_assert!(!granted.contains_key(&id), "P and Q are disjoint");
            out.push((id, want));
        }
        left
    }

    fn admit_from_p(&mut self, now: Time) {
        let candidates: Vec<JobId> = self.p.iter().rev().map(|&(_, id)| id).collect();
        for id in candidates {
            let Some(job) = self.jobs.get(&id) else {
                continue;
            };
            if job.abs_deadline <= now {
                self.forget(id);
                self.record(
                    id,
                    AdmissionDecision::Rejected(AdmissionReason::DeadlinePassed),
                );
                continue;
            }
            if !job.admissible {
                continue;
            }
            let slack = job.abs_deadline.since(now) as f64;
            if slack < self.params.fresh_factor() * job.x {
                continue;
            }
            if self.bands.fits(job.density, job.allot) {
                self.start_job(id, true);
            }
        }
    }
}

impl OnlineScheduler for OracleSchedulerS {
    fn name(&self) -> String {
        if self.work_conserving {
            format!("S-wc(eps={})", self.params.epsilon())
        } else {
            format!("S(eps={})", self.params.epsilon())
        }
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let (d_rel, profit) = info
            .profit
            .as_deadline()
            .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
        let w = info.work.as_f64() / self.speed_hint;
        let l = info.span.as_f64() / self.speed_hint;
        let d = d_rel.as_f64();

        let (allot, admissible) = match self.params.raw_allotment(w, l, d) {
            Some(frac) => {
                let n = (frac.ceil() as u32).max(1);
                (n.min(self.m), n <= self.m)
            }
            None => (self.m, false),
        };
        let x = AlgoParams::x_time(w, l, allot);
        let density = profit as f64 / (x * allot as f64);
        let abs_deadline = info.arrival.saturating_add(d_rel.ticks());
        let delta_good = admissible && d >= self.params.good_factor() * x;

        self.jobs.insert(
            info.id,
            SJob {
                allot,
                x,
                density,
                abs_deadline,
                admissible,
                in_q: false,
            },
        );

        if delta_good && self.bands.fits(density, allot) {
            self.start_job(info.id, false);
        } else {
            let reason = if !admissible {
                AdmissionReason::Infeasible
            } else if !delta_good {
                AdmissionReason::NotDeltaGood
            } else {
                AdmissionReason::BandCapacity
            };
            self.record(info.id, AdmissionDecision::Deferred(reason));
            self.p.insert((OrdF64(density), info.id));
        }
    }

    fn on_completion(&mut self, id: JobId, now: Time) {
        self.forget(id);
        self.admit_from_p(now);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.forget(id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut left = view.m;
        let mut out = Vec::new();
        for &(_, id) in self.q.iter().rev() {
            if left == 0 {
                break;
            }
            let job = &self.jobs[&id];
            if job.allot <= left {
                out.push((id, job.allot));
                left -= job.allot;
            }
        }
        if self.work_conserving && left > 0 {
            left = self.backfill(view, left, &mut out);
        }
        let _ = left;
        out
    }

    fn allocation_stable_between_events(&self) -> bool {
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}

/// The seed implementation of the admission-less ablation of S.
#[derive(Debug)]
pub struct OracleSNoAdmission {
    m: u32,
    params: AlgoParams,
    /// (density, seq, id, allot) of alive jobs.
    alive: Vec<(f64, u64, JobId, u32)>,
    seq: u64,
    report: Option<Vec<AdmissionEvent>>,
}

impl OracleSNoAdmission {
    /// Create the oracle ablation.
    pub fn new(m: u32, params: AlgoParams) -> OracleSNoAdmission {
        OracleSNoAdmission {
            m,
            params,
            alive: Vec::new(),
            seq: 0,
            report: None,
        }
    }
}

impl OnlineScheduler for OracleSNoAdmission {
    fn name(&self) -> String {
        "S-noadmit".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let (d_rel, profit) = info
            .profit
            .as_deadline()
            .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let allot = match self.params.raw_allotment(w, l, d_rel.as_f64()) {
            Some(frac) => ((frac.ceil() as u32).max(1)).min(self.m),
            None => self.m,
        };
        let x = AlgoParams::x_time(w, l, allot);
        let density = profit as f64 / (x * allot as f64);
        self.alive.push((density, self.seq, info.id, allot));
        self.seq += 1;
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent {
                job: info.id,
                decision: AdmissionDecision::Admitted,
            });
        }
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|e| e.2 != id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut order = self.alive.clone();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut left = view.m;
        let mut out = Vec::new();
        for (_, _, id, allot) in order {
            if left == 0 {
                break;
            }
            if allot <= left {
                out.push((id, allot));
                left -= allot;
            }
        }
        out
    }
    fn allocation_stable_between_events(&self) -> bool {
        true
    }
    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }
    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}

/// One job's presence in one time slot of the general-profit oracle.
#[derive(Debug, Clone, Copy)]
struct OracleSlotEntry {
    density: f64,
    allot: u32,
    id: JobId,
}

/// Assignment state of one job in the general-profit oracle: the absolute
/// slot ticks it may still run in, ascending.
#[derive(Debug, Clone)]
struct OraclePJob {
    slots: Vec<Time>,
}

/// The seed implementation of the Section 5 general-profit scheduler: a
/// sparse `BTreeMap<Time, Vec<_>>` slot plan rebuilt per probe via
/// `population`, pruned with `split_off` inside `allocate`, and therefore
/// deliberately *unstable* between events — byte-for-byte the scheduler the
/// crate shipped with through PR 9. The segment-plan rewrite in
/// [`profit`](crate::profit) is held byte-identical to this oracle by
/// `crates/verify/tests/profit_differential.rs`, and the `profit` bench
/// group times the two against each other.
#[derive(Debug)]
pub struct OracleSProfit {
    params: AlgoParams,
    m: u32,
    jobs: HashMap<JobId, OraclePJob>,
    /// Sparse per-tick populations `J(t)` for ticks with assignments.
    slots: BTreeMap<Time, Vec<OracleSlotEntry>>,
}

impl OracleSProfit {
    /// Create the oracle for `m` processors with the given constants.
    pub fn new(m: u32, params: AlgoParams) -> OracleSProfit {
        assert!(m >= 1);
        OracleSProfit {
            params,
            m,
            jobs: HashMap::new(),
            slots: BTreeMap::new(),
        }
    }

    /// Oracle counterpart of `SchedulerSProfit::with_epsilon`.
    pub fn with_epsilon(m: u32, epsilon: f64) -> OracleSProfit {
        OracleSProfit::new(m, AlgoParams::from_epsilon(epsilon).expect("valid epsilon"))
    }

    /// Population of one tick as `(density, allot)` pairs.
    fn population(&self, t: Time) -> Vec<(f64, u32)> {
        self.slots
            .get(&t)
            .map(|v| v.iter().map(|e| (e.density, e.allot)).collect())
            .unwrap_or_default()
    }

    fn search_segment(
        &self,
        arrival: Time,
        bound: u64,
        min_d: u64,
        v: f64,
        allot: u32,
        k_needed: usize,
    ) -> Option<(u64, Vec<Time>)> {
        if min_d > bound {
            return None;
        }
        let capacity = self.params.b() * self.m as f64;
        if allot as f64 > capacity {
            return None;
        }
        let mut found: Vec<Time> = Vec::with_capacity(k_needed);
        let mut t = arrival;
        let end = arrival.saturating_add(bound);
        while t < end && found.len() < k_needed {
            if self.slots.range(t..).next().is_none() {
                while t < end && found.len() < k_needed {
                    found.push(t);
                    t = t.after(1);
                }
                break;
            }
            if fits_population(&self.population(t), v, allot, self.params.c(), capacity) {
                found.push(t);
            }
            t = t.after(1);
        }
        if found.len() < k_needed {
            return None;
        }
        let last = *found.last().expect("k_needed >= 1");
        let d = (last.since(arrival) + 1).max(min_d);
        debug_assert!(d <= bound);
        Some((d, found))
    }

    fn release(&mut self, id: JobId, now: Time) {
        let Some(job) = self.jobs.remove(&id) else {
            return;
        };
        for t in job.slots {
            if t < now {
                continue;
            }
            if let Some(entries) = self.slots.get_mut(&t) {
                entries.retain(|e| e.id != id);
                if entries.is_empty() {
                    self.slots.remove(&t);
                }
            }
        }
    }
}

impl OnlineScheduler for OracleSProfit {
    fn name(&self) -> String {
        format!("S-profit(eps={})", self.params.epsilon())
    }

    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        let w = info.work.as_f64();
        let l = info.span.as_f64();
        let brent = AlgoParams::brent_time(w, l, self.m);
        let x_star = info
            .profit
            .flat_until()
            .as_f64()
            .max((1.0 + self.params.epsilon()) * brent);
        let denom = x_star / self.params.good_factor() - l;
        debug_assert!(denom > 0.0, "x* >= (1+eps)L makes the denominator positive");
        let allot = ((((w - l) / denom).ceil() as u32).max(1)).min(self.m);
        let x = AlgoParams::x_time(w, l, allot);
        let k_needed = ((self.params.fresh_factor() * x).ceil() as usize).max(1);
        let xn = x * allot as f64;
        let min_d_floor = ((1.0 + self.params.epsilon()) * l).floor() as u64 + 1;

        let mut candidates: Vec<(u64, u64)> = info
            .profit
            .segments()
            .iter()
            .map(|(b, v)| (b.ticks(), *v))
            .collect();
        if info.profit.tail_value() > 0 {
            let horizon = self
                .slots
                .keys()
                .next_back()
                .map(|t| t.ticks())
                .unwrap_or(0)
                .max(info.arrival.ticks());
            let cap = horizon - info.arrival.ticks().min(horizon) + k_needed as u64 + 2;
            let last = candidates.last().map(|(b, _)| *b).unwrap_or(0);
            candidates.push((last + cap, info.profit.tail_value()));
        }

        let mut prev_bound = 0u64;
        for (bound, value) in candidates {
            let v = value as f64 / xn;
            let min_d = min_d_floor.max(prev_bound + 1);
            if let Some((_, slots)) =
                self.search_segment(info.arrival, bound, min_d, v, allot, k_needed)
            {
                for &t in &slots {
                    self.slots.entry(t).or_default().push(OracleSlotEntry {
                        density: v,
                        allot,
                        id: info.id,
                    });
                }
                self.jobs.insert(info.id, OraclePJob { slots });
                return;
            }
            prev_bound = bound;
        }
    }

    fn on_completion(&mut self, id: JobId, now: Time) {
        self.release(id, now);
    }

    fn on_expiry(&mut self, id: JobId, now: Time) {
        self.release(id, now);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        self.slots = self.slots.split_off(&view.now);
        let Some(entries) = self.slots.get(&view.now) else {
            return Vec::new();
        };
        let mut order: Vec<OracleSlotEntry> = entries.clone();
        order.sort_by(|a, b| b.density.total_cmp(&a.density).then(a.id.0.cmp(&b.id.0)));
        let alive: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
        let mut left = view.m;
        let mut out = Vec::new();
        for e in order {
            if left == 0 {
                break;
            }
            if !alive.contains_key(&e.id) {
                continue;
            }
            if e.allot <= left {
                out.push((e.id, e.allot));
                left -= e.allot;
            }
        }
        out
    }

    fn allocation_stable_between_events(&self) -> bool {
        // The frozen value: the seed scheduler both reads `view.now` and
        // mutates `self.slots` on every `allocate` call, so it must stay on
        // the naive engine path.
        false
    }

    fn reset(&mut self) -> bool {
        self.jobs.clear();
        self.slots.clear();
        true
    }
}

/// The seed implementation of the random work-conserving baseline: a fresh
/// shuffle of the alive list per `allocate` call, fed through a `HashMap`
/// ready-count walk — byte-for-byte the `RandomOrder` the crate shipped with
/// through PR 9, pinned to the naive per-tick path. The width-1
/// bounded-stability rewrite in [`baselines`](crate::baselines) is held
/// byte-identical to this oracle by
/// `crates/verify/tests/profit_differential.rs`.
#[derive(Debug)]
pub struct OracleRandomOrder {
    seed: u64,
    rng: Rng64,
    /// Alive job ids in arrival order (the pre-shuffle order).
    alive: Vec<JobId>,
}

impl OracleRandomOrder {
    /// Create the oracle for the given seed (`m` comes from the view).
    pub fn new(_m: u32, seed: u64) -> OracleRandomOrder {
        OracleRandomOrder {
            seed,
            rng: Rng64::seed_from(seed),
            alive: Vec::new(),
        }
    }
}

impl OnlineScheduler for OracleRandomOrder {
    fn name(&self) -> String {
        "RANDOM".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        self.alive.push(info.id);
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut ids = self.alive.clone();
        self.rng.shuffle(&mut ids);
        let ready: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
        let mut left = view.m;
        let mut out = Vec::new();
        for id in ids {
            if left == 0 {
                break;
            }
            let Some(&r) = ready.get(&id) else { continue };
            let k = r.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        out
    }
    fn allocation_stable_between_events(&self) -> bool {
        // The frozen value: one RNG draw per call pins the oracle to the
        // naive per-tick path.
        false
    }
    fn reset(&mut self) -> bool {
        self.alive.clear();
        self.rng = Rng64::seed_from(self.seed);
        true
    }
}

/// Per-admitted-job record of the EDF-AC oracle.
#[derive(Debug, Clone, Copy)]
struct AdmJob {
    abs_deadline: Time,
    work: Work,
    seq: u64,
}

/// The seed implementation of EDF with demand-bound admission control.
#[derive(Debug)]
pub struct OracleEdfAc {
    m: u32,
    admitted: HashMap<JobId, AdmJob>,
    seq: u64,
    report: Option<Vec<AdmissionEvent>>,
}

impl OracleEdfAc {
    /// Create the oracle for `m` processors.
    pub fn new(m: u32) -> OracleEdfAc {
        assert!(m >= 1);
        OracleEdfAc {
            m,
            admitted: HashMap::new(),
            seq: 0,
            report: None,
        }
    }

    fn admission_failure(
        &self,
        cand: &AdmJob,
        cand_span: Work,
        now: Time,
    ) -> Option<AdmissionReason> {
        if cand.abs_deadline.since(now) < cand_span.units() {
            return Some(AdmissionReason::SpanInfeasible);
        }
        let mut deadlines: Vec<Time> = self
            .admitted
            .values()
            .map(|j| j.abs_deadline)
            .chain(std::iter::once(cand.abs_deadline))
            .collect();
        deadlines.sort_unstable();
        deadlines.dedup();
        for &d in &deadlines {
            let window = d.since(now) as u128 * self.m as u128;
            let demand: u128 = self
                .admitted
                .values()
                .chain(std::iter::once(cand))
                .filter(|j| j.abs_deadline <= d)
                .map(|j| j.work.units() as u128)
                .sum();
            if demand > window {
                return Some(AdmissionReason::DemandBound);
            }
        }
        None
    }
}

impl OnlineScheduler for OracleEdfAc {
    fn name(&self) -> String {
        "EDF-AC".into()
    }

    fn on_arrival(&mut self, info: &JobInfo, now: Time) {
        let abs_deadline = info.abs_deadline().unwrap_or_else(|| {
            info.arrival
                .saturating_add(info.profit.last_useful_time().ticks())
        });
        let cand = AdmJob {
            abs_deadline,
            work: info.work,
            seq: self.seq,
        };
        self.seq += 1;
        let decision = match self.admission_failure(&cand, info.span, now) {
            None => {
                self.admitted.insert(info.id, cand);
                AdmissionDecision::Admitted
            }
            Some(reason) => AdmissionDecision::Rejected(reason),
        };
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent {
                job: info.id,
                decision,
            });
        }
    }

    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.admitted.remove(&id);
    }

    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.admitted.remove(&id);
    }

    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut order: Vec<(Time, u64, JobId)> = view
            .jobs()
            .iter()
            .filter_map(|&(id, _)| self.admitted.get(&id).map(|j| (j.abs_deadline, j.seq, id)))
            .collect();
        order.sort_unstable();
        let ready: HashMap<JobId, u32> = view.jobs().iter().copied().collect();
        let mut left = view.m;
        let mut out = Vec::new();
        for (_, _, id) in order {
            if left == 0 {
                break;
            }
            let r = ready.get(&id).copied().unwrap_or(0);
            let k = r.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        out
    }

    fn allocation_stable_between_events(&self) -> bool {
        true
    }

    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }

    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}
