//! `reset()` must make scheduler reuse invisible.
//!
//! The sweep runtime reuses one scheduler value across many cells when
//! `reset()` returns `true`. The contract is byte-identity: a run on a
//! reset scheduler must equal a run on a freshly constructed one — same
//! outcomes, same profit, even the same step count. These tests run every
//! production scheduler through run → reset → run on two different
//! workloads and compare both runs against fresh-scheduler references.

use dagsched_core::AlgoParams;
use dagsched_engine::{simulate, OnlineScheduler, SimConfig, SimResult};
use dagsched_sched::{
    Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, RandomOrder, SNoAdmission, SchedulerS,
    SchedulerSProfit,
};
use dagsched_workload::{ArrivalProcess, DeadlinePolicy, Instance, WorkloadGen};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

fn factories(m: u32) -> Vec<(&'static str, SchedFactory)> {
    let params = AlgoParams::from_epsilon(1.0).unwrap();
    vec![
        (
            "S",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0)) as _),
        ),
        (
            "S-wc",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving()) as _),
        ),
        (
            "S-profit",
            Box::new(move || Box::new(SchedulerSProfit::with_epsilon(m, 1.0)) as _),
        ),
        (
            "S-noadmit",
            Box::new(move || Box::new(SNoAdmission::new(m, params)) as _),
        ),
        ("FIFO", Box::new(move || Box::new(Fifo::new(m)) as _)),
        ("EDF", Box::new(move || Box::new(Edf::new(m)) as _)),
        (
            "HDF",
            Box::new(move || Box::new(GreedyDensity::new(m)) as _),
        ),
        ("LLF", Box::new(move || Box::new(LeastLaxity::new(m)) as _)),
        (
            "RANDOM",
            Box::new(move || Box::new(RandomOrder::new(m, 77)) as _),
        ),
        ("EDF-AC", Box::new(move || Box::new(EdfAc::new(m)) as _)),
    ]
}

fn workloads(m: u32) -> (Instance, Instance) {
    let a = WorkloadGen {
        deadlines: DeadlinePolicy::SlackFactor(2.0),
        ..WorkloadGen::standard(m, 60, 13)
    }
    .generate()
    .unwrap();
    // A genuinely different shape, so leftover state from A would show.
    let b = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(3.0, 40.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.3),
        ..WorkloadGen::standard(m, 80, 29)
    }
    .generate()
    .unwrap();
    (a, b)
}

fn assert_identical(name: &str, phase: &str, got: &SimResult, want: &SimResult) {
    assert!(
        got.same_outcome(want),
        "{name}: {phase} run on a reset scheduler diverges from fresh\n\
         reset: profit {} ticks {}\nfresh: profit {} ticks {}",
        got.total_profit,
        got.ticks_simulated,
        want.total_profit,
        want.ticks_simulated,
    );
    assert_eq!(
        got.steps_executed, want.steps_executed,
        "{name}: {phase} step count differs after reset"
    );
}

#[test]
fn run_reset_run_is_byte_identical_to_fresh_schedulers() {
    let m = 8u32;
    let (a, b) = workloads(m);
    let cfg = SimConfig::default();
    for (name, mk) in factories(m) {
        let fresh_a = simulate(&a, mk().as_mut(), &cfg).unwrap();
        let fresh_b = simulate(&b, mk().as_mut(), &cfg).unwrap();

        let mut reused = mk();
        let first = simulate(&a, reused.as_mut(), &cfg).unwrap();
        assert_identical(name, "first", &first, &fresh_a);
        assert!(
            reused.reset(),
            "{name} is a production scheduler: must reset"
        );
        let second = simulate(&b, reused.as_mut(), &cfg).unwrap();
        assert_identical(name, "second", &second, &fresh_b);

        // And again on the *same* workload: the strongest leak detector.
        assert!(reused.reset());
        let third = simulate(&a, reused.as_mut(), &cfg).unwrap();
        assert_identical(name, "third", &third, &fresh_a);
    }
}

#[test]
fn reset_disables_admission_reporting() {
    // Fresh construction has reporting off; a reset must return there, so
    // an unobserved run after an observed one buffers nothing.
    let mut s = SchedulerS::with_epsilon(4, 1.0);
    s.enable_admission_reporting();
    let (a, _) = workloads(4);
    simulate(&a, &mut s, &SimConfig::default()).unwrap();
    assert!(s.reset());
    simulate(&a, &mut s, &SimConfig::default()).unwrap();
    let mut drained = Vec::new();
    s.drain_admission_events(&mut drained);
    assert!(
        drained.is_empty(),
        "reporting survived reset: {} events",
        drained.len()
    );
}

#[test]
fn default_reset_declines() {
    // The frozen oracle twins keep the default: reset() refuses, telling
    // sweep runners to build fresh.
    let mut o = dagsched_sched::oracle::OracleSchedulerS::with_epsilon(4, 1.0);
    assert!(!OnlineScheduler::reset(&mut o));
}
