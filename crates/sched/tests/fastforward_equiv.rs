//! The fast-forward path must be invisible to every production scheduler.
//!
//! The engine-side tests (`crates/engine/tests/fastforward.rs`) prove the
//! two execution paths equivalent under a toy greedy scheduler; these tests
//! repeat the differential check with the schedulers people actually run —
//! scheduler S (plain and work-conserving), the baseline family, and
//! EDF-AC — so that any opt-in whose stability contract is subtly violated
//! (a hidden dependence on `view.now`, a stateful allocate) shows up as a
//! byte-level divergence here.

use dagsched_core::Speed;
use dagsched_engine::{simulate, NodePick, OnlineScheduler, SimConfig, SimResult};
use dagsched_sched::{Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, SchedulerS};
use dagsched_workload::{ArrivalProcess, DeadlinePolicy, Instance, WorkloadGen};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

fn run_pair(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
) -> (SimResult, SimResult) {
    let fast = simulate(inst, mk().as_mut(), cfg).expect("fast path runs");
    let naive_cfg = SimConfig {
        fast_forward: false,
        ..cfg.clone()
    };
    let naive = simulate(inst, mk().as_mut(), &naive_cfg).expect("naive path runs");
    (fast, naive)
}

fn check_all(inst: &Instance, m: u32, label: &str) {
    let mks: Vec<(&str, SchedFactory)> = vec![
        (
            "S",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0))),
        ),
        (
            "S-wc",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving())),
        ),
        ("FIFO", Box::new(move || Box::new(Fifo::new(m)))),
        ("EDF", Box::new(move || Box::new(Edf::new(m)))),
        (
            "GREEDY-DENSITY",
            Box::new(move || Box::new(GreedyDensity::new(m))),
        ),
        ("LLF", Box::new(move || Box::new(LeastLaxity::new(m)))),
        ("EDF-AC", Box::new(move || Box::new(EdfAc::new(m)))),
    ];
    for speed in [
        Speed::ONE,
        Speed::new(3, 2).expect("positive"),
        Speed::integer(2).expect("positive"),
    ] {
        for pick in [NodePick::Fifo, NodePick::CriticalPathFirst] {
            let cfg = SimConfig {
                speed,
                pick: pick.clone(),
                ..SimConfig::default()
            };
            for (name, mk) in &mks {
                let (fast, naive) = run_pair(inst, mk, &cfg);
                assert!(
                    fast.same_outcome(&naive),
                    "{label}: {name} diverges at speed {speed:?} pick {pick:?}\n\
                     fast : profit {} ticks {} end {:?}\n\
                     naive: profit {} ticks {} end {:?}",
                    fast.total_profit,
                    fast.ticks_simulated,
                    fast.end_time,
                    naive.total_profit,
                    naive.ticks_simulated,
                    naive.end_time,
                );
                assert!(
                    fast.steps_executed <= naive.steps_executed,
                    "{label}: {name} fast path took more steps ({} > {})",
                    fast.steps_executed,
                    naive.steps_executed
                );
            }
        }
    }
}

#[test]
fn production_schedulers_match_on_standard_workloads() {
    for seed in [7u64, 191, 2024] {
        let m = 4 + (seed % 5) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        check_all(&inst, m, &format!("standard seed {seed}"));
    }
}

#[test]
fn production_schedulers_match_under_overload() {
    // Tight deadlines and a hot arrival process: many expiries, admission
    // rejections, and preemptions — the richest event stream for shaking
    // out window-boundary bugs.
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 50, 99)
    }
    .generate()
    .expect("valid workload");
    check_all(&inst, m, "overload");
}
