//! Guards on the fast-forward opt-in: schedulers that are *not* stable
//! between events must stay on the reference path, and trace recording must
//! force it for everyone.
//!
//! On the reference path every simulated tick is one engine step, so
//! `steps_executed == ticks_simulated` is the observable signature that no
//! bulk window was taken.

use dagsched_core::Speed;
use dagsched_engine::{simulate, OnlineScheduler, SimConfig};
use dagsched_sched::{RandomOrder, SchedulerS, SchedulerSProfit};
use dagsched_workload::{Instance, WorkloadGen};

fn workload(m: u32, seed: u64) -> Instance {
    WorkloadGen::standard(m, 25, seed)
        .generate()
        .expect("valid")
}

#[test]
fn random_order_never_fast_forwards() {
    let m = 5;
    let mut r = RandomOrder::new(m, 42);
    assert!(
        !r.allocation_stable_between_events(),
        "RandomOrder consumes RNG state per call; it must not claim stability"
    );
    let res = simulate(&workload(m, 7), &mut r, &SimConfig::default()).expect("runs");
    assert_eq!(
        res.steps_executed, res.ticks_simulated,
        "fast-forward on an unstable scheduler would skip RNG draws"
    );
}

#[test]
fn general_profit_scheduler_never_fast_forwards() {
    let m = 5;
    let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
    assert!(
        !s.allocation_stable_between_events(),
        "SProfit reassigns virtual slots per tick; it must not claim stability"
    );
    let res = simulate(&workload(m, 7), &mut s, &SimConfig::default()).expect("runs");
    assert_eq!(res.steps_executed, res.ticks_simulated);
}

#[test]
fn trace_recording_forces_reference_path() {
    let m = 5;
    let inst = workload(m, 11);
    // SchedulerS *is* stable: without a trace the engine fast-forwards...
    let plain = simulate(
        &inst,
        &mut SchedulerS::with_epsilon(m, 1.0),
        &SimConfig::default(),
    )
    .expect("runs");
    assert!(
        plain.steps_executed < plain.ticks_simulated,
        "precondition: this workload has fast-forwardable stretches"
    );
    // ...but a trace needs every tick, so recording must disable it.
    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::default()
    };
    let traced = simulate(&inst, &mut SchedulerS::with_epsilon(m, 1.0), &cfg).expect("runs");
    assert_eq!(traced.steps_executed, traced.ticks_simulated);
    let trace = traced.trace.as_ref().expect("trace recorded");
    assert_eq!(
        trace.len() as u64,
        traced.ticks_simulated,
        "one trace record per simulated tick"
    );
    // (`same_outcome` also compares the trace field itself, which only the
    // traced run carries — compare the schedule-relevant fields directly.)
    assert_eq!(
        plain.outcomes, traced.outcomes,
        "path choice changed the schedule"
    );
    assert_eq!(plain.total_profit, traced.total_profit);
    assert_eq!(plain.ticks_simulated, traced.ticks_simulated);
    assert_eq!(plain.end_time, traced.end_time);
}

#[test]
fn stability_flag_is_honored_at_other_speeds() {
    let m = 4;
    let inst = workload(m, 23);
    for speed in [
        Speed::new(3, 2).expect("positive"),
        Speed::integer(2).expect("positive"),
    ] {
        let cfg = SimConfig {
            speed,
            ..SimConfig::default()
        };
        let res = simulate(&inst, &mut RandomOrder::new(m, 9), &cfg).expect("runs");
        assert_eq!(
            res.steps_executed, res.ticks_simulated,
            "unstable scheduler fast-forwarded at speed {speed:?}"
        );
    }
}
