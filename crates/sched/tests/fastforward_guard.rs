//! Guards on the fast-forward opt-in: schedulers that are *boundedly*
//! stable run the event path with `stable_until`-capped windows, schedulers
//! with no stability claim at all stay on the reference path, and trace
//! recording must force the reference path for everyone.
//!
//! On the reference path every simulated tick is one engine step, so
//! `steps_executed == ticks_simulated` is the observable signature that no
//! bulk window was taken — and for RandomOrder, whose windows are pinned to
//! a single tick, the same equality proves the cap is honored (every tick
//! still consumes exactly one RNG draw).

use dagsched_core::{Speed, Time};
use dagsched_engine::{simulate, OnlineScheduler, SimConfig};
use dagsched_sched::{RandomOrder, SchedulerS, SchedulerSProfit};
use dagsched_workload::{Instance, WorkloadGen};

fn workload(m: u32, seed: u64) -> Instance {
    WorkloadGen::standard(m, 25, seed)
        .generate()
        .expect("valid")
}

#[test]
fn random_order_windows_are_single_ticks() {
    let m = 5;
    let r = RandomOrder::new(m, 42);
    assert!(
        !r.allocation_stable_between_events(),
        "RandomOrder consumes RNG state per call; it must not claim full stability"
    );
    assert!(r.bounded_stability(), "but it is boundedly stable");
    assert_eq!(
        r.stable_until(Time(17)),
        Some(Time(18)),
        "every window is one tick wide"
    );
    let inst = workload(m, 7);
    let res = simulate(&inst, &mut RandomOrder::new(m, 42), &SimConfig::default()).expect("runs");
    assert_eq!(
        res.steps_executed, res.ticks_simulated,
        "a wider window would skip RNG draws"
    );
    // The single-tick windows replay the reference path's RNG sequence
    // exactly: the outcome matches a run with fast-forward disabled.
    let naive_cfg = SimConfig {
        fast_forward: false,
        ..SimConfig::default()
    };
    let naive = simulate(&inst, &mut RandomOrder::new(m, 42), &naive_cfg).expect("runs");
    assert!(res.same_outcome(&naive), "window path changed the schedule");
}

#[test]
fn general_profit_scheduler_fast_forwards_between_slot_boundaries() {
    let m = 5;
    let s = SchedulerSProfit::with_epsilon(m, 1.0);
    assert!(
        !s.allocation_stable_between_events(),
        "SProfit's slot plan is keyed on absolute time; it must not claim full stability"
    );
    assert!(s.bounded_stability(), "but it is piecewise constant");
    let inst = workload(m, 7);
    let fast = simulate(
        &inst,
        &mut SchedulerSProfit::with_epsilon(m, 1.0),
        &SimConfig::default(),
    )
    .expect("runs");
    assert!(
        fast.steps_executed < fast.ticks_simulated,
        "bounded stability must unlock bulk windows ({} steps / {} ticks)",
        fast.steps_executed,
        fast.ticks_simulated
    );
    let naive_cfg = SimConfig {
        fast_forward: false,
        ..SimConfig::default()
    };
    let naive = simulate(
        &inst,
        &mut SchedulerSProfit::with_epsilon(m, 1.0),
        &naive_cfg,
    )
    .expect("runs");
    assert_eq!(
        naive.steps_executed, naive.ticks_simulated,
        "fast_forward: false pins the reference path"
    );
    assert!(
        fast.same_outcome(&naive),
        "window path changed the schedule"
    );
    assert_eq!(fast.ticks_simulated, naive.ticks_simulated);
}

#[test]
fn trace_recording_forces_reference_path() {
    let m = 5;
    let inst = workload(m, 11);
    // SchedulerS *is* stable: without a trace the engine fast-forwards...
    let plain = simulate(
        &inst,
        &mut SchedulerS::with_epsilon(m, 1.0),
        &SimConfig::default(),
    )
    .expect("runs");
    assert!(
        plain.steps_executed < plain.ticks_simulated,
        "precondition: this workload has fast-forwardable stretches"
    );
    // ...but a trace needs every tick, so recording must disable it.
    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::default()
    };
    let traced = simulate(&inst, &mut SchedulerS::with_epsilon(m, 1.0), &cfg).expect("runs");
    assert_eq!(traced.steps_executed, traced.ticks_simulated);
    let trace = traced.trace.as_ref().expect("trace recorded");
    assert_eq!(
        trace.len() as u64,
        traced.ticks_simulated,
        "one trace record per simulated tick"
    );
    // (`same_outcome` also compares the trace field itself, which only the
    // traced run carries — compare the schedule-relevant fields directly.)
    assert_eq!(
        plain.outcomes, traced.outcomes,
        "path choice changed the schedule"
    );
    assert_eq!(plain.total_profit, traced.total_profit);
    assert_eq!(plain.ticks_simulated, traced.ticks_simulated);
    assert_eq!(plain.end_time, traced.end_time);
}

#[test]
fn trace_recording_forces_reference_path_for_bounded_schedulers() {
    let m = 5;
    let inst = workload(m, 11);
    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::default()
    };
    let traced = simulate(&inst, &mut SchedulerSProfit::with_epsilon(m, 1.0), &cfg).expect("runs");
    assert_eq!(traced.steps_executed, traced.ticks_simulated);
    let plain = simulate(
        &inst,
        &mut SchedulerSProfit::with_epsilon(m, 1.0),
        &SimConfig::default(),
    )
    .expect("runs");
    assert_eq!(plain.outcomes, traced.outcomes);
    assert_eq!(plain.total_profit, traced.total_profit);
    assert_eq!(plain.ticks_simulated, traced.ticks_simulated);
}

#[test]
fn stability_flag_is_honored_at_other_speeds() {
    let m = 4;
    let inst = workload(m, 23);
    for speed in [
        Speed::new(3, 2).expect("positive"),
        Speed::integer(2).expect("positive"),
    ] {
        let cfg = SimConfig {
            speed,
            ..SimConfig::default()
        };
        let res = simulate(&inst, &mut RandomOrder::new(m, 9), &cfg).expect("runs");
        assert_eq!(
            res.steps_executed, res.ticks_simulated,
            "single-tick windows mean one step per tick at speed {speed:?}"
        );
        let naive_cfg = SimConfig {
            fast_forward: false,
            speed,
            ..SimConfig::default()
        };
        let naive = simulate(&inst, &mut RandomOrder::new(m, 9), &naive_cfg).expect("runs");
        assert!(
            res.same_outcome(&naive),
            "window path changed the schedule at speed {speed:?}"
        );
    }
}
