//! Differential proptests: the incremental (treap) [`DensityBands`] against
//! the retained pre-optimization sweep, [`reference::ReferenceBands`].
//!
//! The reference is the O(|Q|) sorted-`Vec` implementation the scheduler
//! shipped with; the treap replaces it on the hot path with O(log |Q|)
//! operations. These tests replay random interleaved
//! `insert`/`remove`/`fits`/`band_load`/`dense_load` scripts on both and
//! demand bit-identical answers after every step — with the adversarial
//! density patterns that break naive window code:
//!
//! * **equal-density ties** (duplicated base densities, so candidate order
//!   against existing members matters),
//! * **exact `c·v` band edges** (densities drawn as `base · c^k`, landing
//!   precisely on the exclusive upper boundary of other members' bands).

use dagsched_core::JobId;
use dagsched_sched::bands::{reference::ReferenceBands, DensityBands};
use proptest::prelude::*;

/// One scripted operation. `which` selects insert/remove/fits/band_load;
/// the payload indices pick densities and victims deterministically.
#[derive(Debug, Clone, Copy)]
struct Op {
    which: u8,
    dens_idx: u8,
    allot: u32,
    victim: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0u8..255, 1u32..6, 0u8..255).prop_map(|(which, dens_idx, allot, victim)| Op {
        which,
        dens_idx,
        allot,
        victim,
    })
}

/// A small pool of base densities amplified by exact powers of `c`: indexes
/// resolve to `base[i % n] * c^(i / n % 4)`, so scripts hit both duplicate
/// densities and exact band-edge relations (`d2 == c * d1`).
fn density(pool: &[f64], c: f64, idx: u8) -> f64 {
    let n = pool.len();
    let base = pool[idx as usize % n];
    let k = (idx as usize / n) % 4;
    base * c.powi(k as i32)
}

fn run_script(pool: &[f64], c: f64, cap: f64, ops: &[Op]) {
    let mut fast = DensityBands::new(c, cap);
    let mut slow = ReferenceBands::new(c, cap);
    let mut live: Vec<JobId> = Vec::new();
    let mut next_id = 0u32;
    for (step, op) in ops.iter().enumerate() {
        let d = density(pool, c, op.dens_idx);
        match op.which {
            0 => {
                // Insert — also when it violates the invariant, so agreement
                // is tested on polluted populations too.
                let id = JobId(next_id);
                next_id += 1;
                fast.insert(id, d, op.allot);
                slow.insert(id, d, op.allot);
                live.push(id);
            }
            1 => {
                if !live.is_empty() {
                    let id = live.swap_remove(op.victim as usize % live.len());
                    prop_assert_eq!(fast.remove(id), slow.remove(id));
                    prop_assert!(!fast.remove(id), "double remove must be false");
                }
            }
            2 => {
                prop_assert_eq!(
                    fast.fits(d, op.allot),
                    slow.fits(d, op.allot),
                    "fits({}, {}) diverged at step {}",
                    d,
                    op.allot,
                    step
                );
            }
            _ => {
                prop_assert_eq!(
                    fast.band_load(d, c * d),
                    slow.band_load(d, c * d),
                    "band_load diverged at step {}",
                    step
                );
                prop_assert_eq!(fast.dense_load(d), slow.dense_load(d));
            }
        }
        // Structural agreement after every mutation or query.
        prop_assert_eq!(fast.len(), slow.len());
        prop_assert_eq!(fast.check_invariant(), slow.check_invariant());
        prop_assert!(
            fast.cache_coherent(),
            "stale cached window at step {}",
            step
        );
        let a: Vec<_> = fast.iter().collect();
        let b: Vec<_> = slow.iter().collect();
        prop_assert_eq!(a, b, "membership snapshots diverged at step {}", step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random interleavings over a log-uniform density pool.
    #[test]
    fn treap_matches_reference_on_random_scripts(
        raw_pool in proptest::collection::vec(0.01f64..100.0, 2..6),
        c in 1.2f64..5.0,
        cap in 2.0f64..20.0,
        ops in proptest::collection::vec(op_strategy(), 1..64),
    ) {
        run_script(&raw_pool, c, cap, &ops);
    }

    /// A pool of a single base density: maximal tie pressure (every job
    /// shares a density or sits exactly `c^k` away).
    #[test]
    fn treap_matches_reference_under_equal_density_ties(
        base in 0.1f64..10.0,
        c in 1.2f64..4.0,
        cap in 2.0f64..12.0,
        ops in proptest::collection::vec(op_strategy(), 1..64),
    ) {
        run_script(&[base], c, cap, &ops);
    }

    /// Greedy build (insert only when `fits`), mirroring how scheduler S
    /// actually uses the structure: both sides must admit the exact same
    /// job sequence.
    #[test]
    fn greedy_admission_sequences_are_identical(
        jobs in proptest::collection::vec((0u8..255, 1u32..6), 0..48),
        c in 1.2f64..4.0,
        cap in 2.0f64..12.0,
    ) {
        let pool = [0.5, 1.0, 7.3];
        let mut fast = DensityBands::new(c, cap);
        let mut slow = ReferenceBands::new(c, cap);
        for (i, &(dens_idx, allot)) in jobs.iter().enumerate() {
            let d = density(&pool, c, dens_idx);
            let ff = fast.fits(d, allot);
            let sf = slow.fits(d, allot);
            prop_assert_eq!(ff, sf, "admission diverged on job {}", i);
            if ff {
                fast.insert(JobId(i as u32), d, allot);
                slow.insert(JobId(i as u32), d, allot);
            }
        }
        prop_assert!(fast.check_invariant());
        prop_assert!(fast.cache_coherent());
        let a: Vec<_> = fast.iter().collect();
        let b: Vec<_> = slow.iter().collect();
        prop_assert_eq!(a, b);
    }
}
