//! Boundary and agreement tests for the density-band structure.
//!
//! `DensityBands::check_invariant` and the verify crate's
//! [`band_overload`] re-derive Observation 3 by two independent
//! implementations (incremental sliding window vs. brute-force anchor
//! scan). These tests pin the boundary semantics — membership `[v, c·v)`,
//! capacity `≤ b·m` inclusive — and prove the two implementations agree on
//! random insert/remove sequences.

use dagsched_core::{AlgoParams, JobId};
use dagsched_sched::bands::{fits_population, DensityBands};
use dagsched_verify::band_overload;
use proptest::prelude::*;

/// A candidate landing *exactly* at capacity `b·m` is admitted: the paper's
/// condition (2) is `N ≤ b·m`, inclusive.
#[test]
fn candidate_exactly_at_paper_capacity_is_admitted() {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    let m = 4u32;
    let cap = params.b() * m as f64;
    let full = cap.floor() as u64; // integral allotments can only hit ⌊b·m⌋
    let mut b = DensityBands::new(params.c(), cap);
    // Fill one band to exactly ⌊b·m⌋ − 1, then offer a 1-allotment job.
    b.insert(JobId(0), 1.0, (full - 1) as u32);
    assert!(
        b.fits(1.0, 1),
        "load exactly ⌊b·m⌋ = {full} must be admitted"
    );
    b.insert(JobId(1), 1.0, 1);
    assert!(b.check_invariant());
    assert!(!b.fits(1.0, 1), "one more breaches b·m");
    // The independent checker agrees on both sides of the boundary.
    assert!(band_overload(&[(1.0, full as u32)], params.c(), cap).is_none());
    assert_eq!(
        band_overload(&[(1.0, (full + 1) as u32)], params.c(), cap),
        Some((1.0, full + 1))
    );
}

/// The band's upper edge is exclusive: a job at density exactly `c·v` is
/// outside `v`'s band for both implementations.
#[test]
fn band_upper_edge_is_exclusive_in_both_implementations() {
    let c = 2.0;
    let cap = 4.0;
    let mut b = DensityBands::new(c, cap);
    b.insert(JobId(0), 1.0, 4); // band [1, 2) is exactly full
    assert!(b.check_invariant());
    assert!(b.fits(2.0, 4), "density c·v = 2 starts a fresh band");
    assert!(!b.fits(1.999, 1), "just inside the band overflows it");
    assert!(band_overload(&[(1.0, 4), (2.0, 4)], c, cap).is_none());
    assert!(band_overload(&[(1.0, 4), (1.999, 1)], c, cap).is_some());
}

fn members_of(b: &DensityBands) -> Vec<(f64, u32)> {
    b.iter().map(|(_, d, a)| (d, a)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On random insert/remove sequences, `check_invariant` answers exactly
    /// `band_overload(members).is_none()` after every mutation.
    #[test]
    fn check_invariant_agrees_with_independent_checker(
        ops in proptest::collection::vec((0.01f64..50.0, 1u32..6, 0u32..2), 1..24),
        c in 1.5f64..6.0,
        cap in 3.0f64..15.0,
    ) {
        let mut b = DensityBands::new(c, cap);
        for (i, &(d, a, remove_first)) in ops.iter().enumerate() {
            if remove_first == 1 && !b.is_empty() {
                let victim = b.iter().next().map(|(id, _, _)| id).unwrap();
                b.remove(victim);
            }
            // Insert unconditionally — invariant-violating states included,
            // so agreement is tested on both answers.
            b.insert(JobId(i as u32), d, a);
            prop_assert_eq!(
                b.check_invariant(),
                band_overload(&members_of(&b), c, cap).is_none(),
                "disagreement after op {} on {:?}", i, members_of(&b)
            );
        }
    }

    /// `fits` answers exactly "would the independent checker stay clean".
    #[test]
    fn fits_agrees_with_independent_checker(
        jobs in proptest::collection::vec((0.01f64..50.0, 1u32..6), 0..12),
        cand_d in 0.01f64..50.0,
        cand_a in 1u32..6,
    ) {
        let c = 2.5;
        let cap = 8.0;
        let mut b = DensityBands::new(c, cap);
        // Greedy build, as scheduler S does.
        for (i, &(d, a)) in jobs.iter().enumerate() {
            if b.fits(d, a) {
                b.insert(JobId(i as u32), d, a);
            }
        }
        let mut with_cand = members_of(&b);
        with_cand.push((cand_d, cand_a));
        prop_assert_eq!(
            b.fits(cand_d, cand_a),
            band_overload(&with_cand, c, cap).is_none()
        );
        // And the standalone population check is the same predicate.
        prop_assert_eq!(
            fits_population(&members_of(&b), cand_d, cand_a, c, cap),
            band_overload(&with_cand, c, cap).is_none()
        );
    }
}
