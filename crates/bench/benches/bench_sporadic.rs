//! Criterion target regenerating the `sporadic_rt` experiment on its quick grid.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sporadic_rt");
    g.sample_size(10);
    g.bench_function("quick", |b| {
        b.iter(|| {
            let tables = dagsched_experiments::sporadic_rt::run(true);
            dagsched_bench::assert_tables(&tables);
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
