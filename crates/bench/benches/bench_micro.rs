//! Microbenchmarks for the hot paths of the simulator and the paper's
//! scheduler: engine tick throughput, the density-band admission structure,
//! DAG generation + unfolding, and the PRNG.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dagsched_bench::hotpath::{handoff_run, parked_instance, profit_instance};
use dagsched_core::{AlgoParams, JobId, Rng64, Speed, Time, Work};
use dagsched_dag::{gen, UnfoldState};
use dagsched_engine::{
    simulate, Allocation, HandoffMode, JobInfo, OnlineScheduler, SimConfig, TickView, WindowMode,
};
use dagsched_sched::oracle::OracleSProfit;
use dagsched_sched::{bands::DensityBands, GreedyDensity, SchedulerS, SchedulerSProfit};
use dagsched_workload::{DagFamily, StepProfitFn, WorkloadGen};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    let inst = WorkloadGen::standard(16, 200, 7).generate().unwrap();
    let work: u64 = inst.jobs().iter().map(|j| j.work().units()).sum();
    g.throughput(Throughput::Elements(work));
    g.bench_function("simulate/greedy/200jobs", |b| {
        b.iter(|| {
            let mut s = GreedyDensity::new(16);
            simulate(&inst, &mut s, &SimConfig::default())
                .unwrap()
                .total_profit
        })
    });
    g.bench_function("simulate/schedS/200jobs", |b| {
        b.iter(|| {
            let mut s = SchedulerS::with_epsilon(16, 1.0);
            simulate(&inst, &mut s, &SimConfig::default())
                .unwrap()
                .total_profit
        })
    });
    g.bench_function("simulate/schedS/speed3-2", |b| {
        let cfg = SimConfig::at_speed(Speed::new(3, 2).unwrap());
        b.iter(|| {
            let mut s = SchedulerS::with_epsilon(16, 1.0);
            simulate(&inst, &mut s, &cfg).unwrap().total_profit
        })
    });
    g.finish();
}

/// The tentpole comparison: an HPC-style instance whose nodes carry heavy
/// work (≥ 1000 units each), simulated tick-by-tick vs event-driven. The
/// fast-forward path must collapse each long node into O(1) engine steps;
/// the printed `steps` line quantifies the reduction alongside the timings.
fn bench_fast_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast-forward");
    g.sample_size(10);
    // 16 processors, fork-join jobs at HPC node granularity: every node is
    // 1000–2000 units of work, so the naive path grinds through
    // ~O(total work / m) ticks while the event path sees O(#nodes) events.
    let inst = WorkloadGen {
        family: DagFamily::ForkJoin {
            segments: (2, 4),
            width: (2, 8),
            node_work: (1_000, 2_000),
        },
        ..WorkloadGen::standard(16, 40, 11)
    }
    .generate()
    .unwrap();
    let ticks = {
        let mut s = GreedyDensity::new(16);
        let naive = simulate(
            &inst,
            &mut s,
            &SimConfig {
                fast_forward: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let mut s = GreedyDensity::new(16);
        let fast = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(fast.same_outcome(&naive), "paths must agree before timing");
        println!(
            "bench fast-forward: steps {} (event) vs {} (naive), {:.0}x fewer",
            fast.steps_executed,
            naive.steps_executed,
            naive.steps_executed as f64 / fast.steps_executed as f64
        );
        naive.ticks_simulated
    };
    g.throughput(Throughput::Elements(ticks));
    g.bench_function("naive/hpc-1000u-nodes", |b| {
        let cfg = SimConfig {
            fast_forward: false,
            ..SimConfig::default()
        };
        b.iter(|| {
            let mut s = GreedyDensity::new(16);
            simulate(&inst, &mut s, &cfg).unwrap().total_profit
        })
    });
    g.bench_function("event/hpc-1000u-nodes", |b| {
        b.iter(|| {
            let mut s = GreedyDensity::new(16);
            simulate(&inst, &mut s, &SimConfig::default())
                .unwrap()
                .total_profit
        })
    });
    g.finish();
}

fn bench_bands(c: &mut Criterion) {
    let mut g = c.benchmark_group("bands");
    let params = AlgoParams::from_epsilon(1.0).unwrap();
    // A realistically full structure: ~64 jobs across 4 decades of density.
    let mut bands = DensityBands::new(params.c(), 0.9 * 512.0);
    let mut rng = Rng64::seed_from(3);
    for i in 0..64u32 {
        let d = 10f64.powf(rng.gen_f64_range(-2.0, 2.0));
        bands.insert(JobId(i), d, 1 + rng.gen_range(8) as u32);
    }
    g.bench_function("fits/64jobs", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            bands.fits(0.5 + (i % 100) as f64 / 25.0, 4)
        })
    });
    g.bench_function("insert+remove/64jobs", |b| {
        b.iter_batched(
            || bands.clone(),
            |mut bd| {
                bd.insert(JobId(999), 1.5, 3);
                bd.remove(JobId(999))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The overload admission storm against the incremental band index: offer
/// ρ× more jobs than the bands can hold (multi-band log-uniform densities
/// over four decades), `fits` → greedy `insert`. The steady state is the
/// interesting one: Q is full, so almost every offer is a rejected `fits`
/// probe — O(log |Q|) on the treap, O(|Q|) on the legacy sweep it
/// replaced (`dagsched-bench` measures that ratio; this group tracks the
/// absolute cost of the new path, up to |P| = 10⁴).
fn bench_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission");
    g.sample_size(15);
    let params = AlgoParams::from_epsilon(1.0).unwrap();
    // ~400 jobs of mean allotment 4.5 saturate 4 decades at 0.9·512.
    let hold = 400usize;
    for (rho, extra) in [(2usize, 0usize), (8, 0), (8, 10_000 - 8 * hold)] {
        let n = rho * hold + extra;
        let mut rng = Rng64::seed_from(0x5EED ^ n as u64);
        let stream: Vec<(f64, u32)> = (0..n)
            .map(|_| {
                let d = 10f64.powf(rng.gen_f64_range(-2.0, 2.0));
                (d, 1 + rng.gen_range(8) as u32)
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("storm/rho{rho}/p{n}"), |b| {
            b.iter(|| {
                let mut bands = DensityBands::new(params.c(), 0.9 * 512.0);
                let mut admitted = 0u64;
                for (i, &(d, a)) in stream.iter().enumerate() {
                    if bands.fits(d, a) {
                        bands.insert(JobId(i as u32), d, a);
                        admitted += 1;
                    }
                }
                admitted
            })
        });
    }
    g.finish();
}

/// The work-conserving allocate of scheduler S on a hot state: hundreds of
/// admitted (Q) and parked (P) jobs, all with spare ready nodes, so the
/// backfill pass exercises the dense ready/slot scratch maps and the O(1)
/// grant merge on every call.
fn bench_backfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("backfill");
    g.sample_size(15);
    let m = 512u32;
    for n in [500usize, 2_000] {
        let mut sched = SchedulerS::with_epsilon(m, 1.0).work_conserving();
        let mut rng = Rng64::seed_from(0xBACF11);
        let mut view_jobs = Vec::with_capacity(n);
        for i in 0..n {
            let info = JobInfo {
                id: JobId(i as u32),
                arrival: Time(0),
                work: Work(40),
                span: Work(8),
                profit: StepProfitFn::deadline(
                    Time(600 + rng.gen_range(200)),
                    1 + rng.gen_range(1000),
                ),
            };
            sched.on_arrival(&info, Time(0));
            view_jobs.push((JobId(i as u32), 8u32));
        }
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("wc-allocate/q{n}"), |b| {
            let mut buf: Allocation = Vec::new();
            b.iter(|| {
                sched.allocate_into(&TickView::new(m, Time(1), &view_jobs), &mut buf);
                buf.len()
            })
        });
    }
    g.finish();
}

fn bench_dag(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag");
    g.bench_function("gen/fig1/m64", |b| b.iter(|| gen::fig1(64, 100, 1)));
    g.bench_function("gen/layered", |b| {
        let mut rng = Rng64::seed_from(9);
        b.iter(|| gen::layered_random(&mut rng, 8, (4, 16), (1, 9), 0.3))
    });
    let spec = gen::fig1(16, 200, 1).into_shared();
    g.throughput(Throughput::Elements(spec.total_work().units()));
    g.bench_function("unfold/fig1-drain", |b| {
        let mut nodes = Vec::new();
        b.iter_batched(
            || UnfoldState::new(spec.clone(), 1),
            |mut st| {
                while !st.is_complete() {
                    st.ready_prefix_into(16, &mut nodes);
                    for &n in &nodes {
                        st.advance(n, u64::MAX);
                    }
                }
                st.completed_nodes()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The PR8 handoff comparison: parked-majority instances where almost no
/// job changes between steps, so the delta path hands the scheduler O(1)
/// patches while the frozen rebuild re-materializes all |alive| rows every
/// step. Sized across two orders of magnitude to expose the O(alive) vs
/// O(changed) asymptotics; both sides run the event kernel so the window
/// cost is held constant.
fn bench_view_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("view-delta");
    g.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let inst = parked_instance(n, false);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("rebuild/parked-j{n}"), |b| {
            b.iter(|| handoff_run(&inst, WindowMode::EventKernel, HandoffMode::Rebuild))
        });
        g.bench_function(format!("delta/parked-j{n}"), |b| {
            b.iter(|| handoff_run(&inst, WindowMode::EventKernel, HandoffMode::Delta))
        });
    }
    g.finish();
}

/// The PR10 slot-assignment comparison: the rewritten general-profit
/// scheduler (incremental segment plan + bounded-stability fast-forward)
/// vs its frozen per-tick twin on a parked-majority two-step-profit
/// instance. The twin makes no stability claim, so the engine steps it
/// through every tick of the long plan gap the rewrite crosses in O(1)
/// windows; the printed `steps` line quantifies the reduction.
fn bench_slot_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("slot-assignment");
    g.sample_size(10);
    let inst = profit_instance(200, 10_000);
    {
        let mut s = SchedulerSProfit::with_epsilon(inst.m(), 1.0);
        let fast = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        let mut s = OracleSProfit::with_epsilon(inst.m(), 1.0);
        let frozen = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(fast.same_outcome(&frozen), "paths must agree before timing");
        println!(
            "bench slot-assignment: steps {} (plan) vs {} (frozen), {:.0}x fewer",
            fast.steps_executed,
            frozen.steps_executed,
            frozen.steps_executed as f64 / fast.steps_executed as f64
        );
    }
    g.bench_function("frozen/parked-j200", |b| {
        b.iter(|| {
            let mut s = OracleSProfit::with_epsilon(inst.m(), 1.0);
            simulate(&inst, &mut s, &SimConfig::default())
                .unwrap()
                .total_profit
        })
    });
    g.bench_function("plan/parked-j200", |b| {
        b.iter(|| {
            let mut s = SchedulerSProfit::with_epsilon(inst.m(), 1.0);
            simulate(&inst, &mut s, &SimConfig::default())
                .unwrap()
                .total_profit
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    let mut rng = Rng64::seed_from(1);
    g.bench_function("next_u64", |b| b.iter(|| rng.next_u64()));
    g.bench_function("poisson_30", |b| b.iter(|| rng.poisson(30.0)));
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_fast_forward,
    bench_bands,
    bench_admission,
    bench_backfill,
    bench_dag,
    bench_view_delta,
    bench_slot_assignment,
    bench_rng
);
criterion_main!(benches);
