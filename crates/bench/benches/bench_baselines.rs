//! Criterion target regenerating the `baselines_cmp` experiment on its quick grid.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines_cmp");
    g.sample_size(10);
    g.bench_function("quick", |b| {
        b.iter(|| {
            let tables = dagsched_experiments::baselines_cmp::run(true);
            dagsched_bench::assert_tables(&tables);
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
