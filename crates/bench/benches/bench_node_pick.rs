//! Criterion target regenerating the `node_pick` experiment on its quick grid.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_pick");
    g.sample_size(10);
    g.bench_function("quick", |b| {
        b.iter(|| {
            let tables = dagsched_experiments::node_pick::run(true);
            dagsched_bench::assert_tables(&tables);
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
