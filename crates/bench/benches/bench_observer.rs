//! Observer-overhead benchmarks: the zero-observer path must cost nothing.
//!
//! `simulate` runs the engine with a `NullObserver`, whose inactive
//! `is_active()` lets the payload-assembly branches constant-fold away —
//! so `simulate` vs `simulate_observed(NullObserver)` vs the pre-observer
//! baseline should be indistinguishable here. The suite and event-log rows
//! quantify what attaching real checkers costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dagsched_core::AlgoParams;
use dagsched_engine::{simulate, simulate_observed, NullObserver, SimConfig};
use dagsched_sched::SchedulerS;
use dagsched_verify::{EventLog, InvariantSuite};
use dagsched_workload::WorkloadGen;

fn bench_observer_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("observer");
    g.sample_size(20);
    let m = 16u32;
    let inst = WorkloadGen::standard(m, 200, 7).generate().unwrap();
    let work: u64 = inst.jobs().iter().map(|j| j.work().units()).sum();
    g.throughput(Throughput::Elements(work));
    let cfg = SimConfig::default();

    // Baseline: the plain entry point (internally a NullObserver run).
    g.bench_function("none/simulate", |b| {
        b.iter(|| {
            let mut s = SchedulerS::with_epsilon(m, 1.0);
            simulate(&inst, &mut s, &cfg).unwrap().total_profit
        })
    });

    // Explicit NullObserver through the observed entry point: the dyn
    // dispatch costs a virtual `is_active` call per emission site, but no
    // payload assembly — the gap to the row above bounds the plumbing.
    g.bench_function("none/simulate_observed", |b| {
        b.iter(|| {
            let mut s = SchedulerS::with_epsilon(m, 1.0);
            simulate_observed(&inst, &mut s, &cfg, &mut NullObserver)
                .unwrap()
                .total_profit
        })
    });

    // The full invariant suite: band + allotment + δ-good + work checkers.
    g.bench_function("suite/full-checkers", |b| {
        b.iter(|| {
            let mut s = SchedulerS::with_epsilon(m, 1.0);
            let mut suite = InvariantSuite::for_scheduler_s(AlgoParams::from_epsilon(1.0).unwrap());
            let r = simulate_observed(&inst, &mut s, &cfg, &mut suite).unwrap();
            suite.assert_clean();
            r.total_profit
        })
    });

    // JSONL serialization of the whole stream.
    g.bench_function("log/jsonl", |b| {
        b.iter(|| {
            let mut s = SchedulerS::with_epsilon(m, 1.0);
            let mut log = EventLog::new();
            simulate_observed(&inst, &mut s, &cfg, &mut log).unwrap();
            log.lines().len()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_observer_overhead);
criterion_main!(benches);
