//! Criterion target regenerating the `constants` experiment on its quick grid.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("constants");
    g.sample_size(10);
    g.bench_function("quick", |b| {
        b.iter(|| {
            let tables = dagsched_experiments::constants::run(true);
            dagsched_bench::assert_tables(&tables);
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
