//! The `dagsched bench` subcommand: a seconds-scale harness smoke run.
//!
//! `dagsched-bench` (the dedicated binary) is the perf-regression exporter;
//! this subcommand exists so the *schema* of its JSON report is exercised
//! on every CI run of the main CLI. It runs the whole harness at tiny
//! sizes ([`run_smoke`](crate::hotpath::run_smoke)), self-validates that
//! every key the regression gates read is present and numeric, and prints
//! either a short human summary or (`--json`) the raw report. Measured
//! ratios at these sizes are noise — nothing here is a perf claim or a
//! gate; schema drift, however, fails fast.

use crate::hotpath::{json_number, run_smoke, BenchReport};

/// Every JSON key the `dagsched-bench` regression gates and the CI smoke
/// job read. `dagsched bench` fails if any of them goes missing or
/// non-numeric — that is the drift this subcommand exists to catch.
pub const REQUIRED_KEYS: &[&str] = &[
    "pr",
    "quick",
    "host_cores",
    "git_rev",
    "admission_speedup",
    "backfill_speedup",
    "arrival_speedup",
    "event_kernel_speedup",
    "view_delta_speedup",
    "sprofit_speedup",
    "related_machines_gain",
    "sweep_speedup",
    "fuzz_execs_per_sec",
];

/// What `dagsched bench` should print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchCmd {
    /// Print the full JSON report to stdout.
    Json,
    /// Print a one-line-per-group human summary.
    Summary,
    /// Print the subcommand's usage text.
    Help,
}

/// Usage text for `dagsched bench help`.
pub const USAGE: &str = "\
usage: dagsched bench [--json]

Run the hot-path perf harness at smoke sizes and validate the report
schema (the keys the dagsched-bench regression gates read). Ratios at
these sizes are not perf claims; use the dagsched-bench binary for those.

options:
  --json   print the raw JSON report instead of the summary
";

/// Parse `dagsched bench` arguments (everything after the subcommand).
pub fn parse(args: &[String]) -> Result<BenchCmd, String> {
    match args {
        [] => Ok(BenchCmd::Summary),
        [a] if a == "--json" => Ok(BenchCmd::Json),
        [a] if a == "help" || a == "--help" || a == "-h" => Ok(BenchCmd::Help),
        [other, ..] => Err(format!("unknown argument {other:?}; try `bench help`")),
    }
}

/// Validate that `json` carries every [`REQUIRED_KEYS`] entry as a number.
/// (`"quick"` is the one boolean and `"git_rev"` the one string —
/// presence is checked instead.)
fn validate_schema(json: &str) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        let present = if *key == "quick" || *key == "git_rev" {
            json.contains(&format!("\"{key}\":"))
        } else {
            json_number(json, key).is_some()
        };
        if !present {
            return Err(format!("report is missing required key \"{key}\""));
        }
    }
    Ok(())
}

fn summarize(report: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "bench smoke ok (host_cores {}):\n",
        report.host_cores
    ));
    for (group, n, speedup) in [
        (
            "admission",
            report.admission.len(),
            report.admission_speedup(),
        ),
        ("backfill", report.backfill.len(), report.backfill_speedup()),
        ("arrival", report.arrival.len(), report.arrival_speedup()),
        (
            "event-kernel",
            report.event_kernel.len(),
            report.event_kernel_speedup(),
        ),
        (
            "view-delta",
            report.view_delta.len(),
            report.view_delta_speedup(),
        ),
        ("profit", report.profit.len(), report.sprofit_speedup()),
    ] {
        s.push_str(&format!(
            "  {group:<13} {n} case(s), min speedup {speedup:.2}x (not gated at smoke sizes)\n"
        ));
    }
    s.push_str(&format!(
        "  {:<13} {} case(s), min profit gain {:.2}x (group-aware vs blind)\n",
        "related",
        report.related.len(),
        report.related_machines_gain()
    ));
    s.push_str(&format!(
        "  {:<13} {} case(s), speedup {:.2}x\n",
        "sweep",
        report.sweep.len(),
        report.sweep_speedup()
    ));
    s.push_str(&format!(
        "  {:<13} {} case(s), {:.0} execs/sec (absolute, not gated)\n",
        "fuzz",
        report.fuzz.len(),
        report.fuzz_execs_per_sec()
    ));
    s.push_str("  schema: all required keys present\n");
    s
}

/// Execute a parsed [`BenchCmd`], returning what to print on stdout.
pub fn execute(cmd: &BenchCmd) -> Result<String, String> {
    if *cmd == BenchCmd::Help {
        return Ok(USAGE.to_string());
    }
    let report = run_smoke();
    let json = report.to_json();
    validate_schema(&json)?;
    Ok(match cmd {
        BenchCmd::Json => json,
        BenchCmd::Summary => summarize(&report),
        BenchCmd::Help => unreachable!("handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_forms() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse(&s(&[])), Ok(BenchCmd::Summary));
        assert_eq!(parse(&s(&["--json"])), Ok(BenchCmd::Json));
        assert_eq!(parse(&s(&["help"])), Ok(BenchCmd::Help));
        assert!(parse(&s(&["--frobnicate"])).is_err());
    }

    #[test]
    fn validate_schema_catches_a_dropped_key() {
        let report = run_smoke();
        let json = report.to_json();
        assert!(validate_schema(&json).is_ok());
        let broken = json.replace("\"event_kernel_speedup\"", "\"renamed\"");
        let err = validate_schema(&broken).expect_err("drift must be caught");
        assert!(err.contains("event_kernel_speedup"), "{err}");
    }

    #[test]
    fn execute_smoke_produces_valid_json_and_summary() {
        let json = execute(&BenchCmd::Json).expect("json run succeeds");
        for key in REQUIRED_KEYS {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        let summary = execute(&BenchCmd::Summary).expect("summary run succeeds");
        assert!(summary.contains("event-kernel"));
        assert!(summary.contains("view-delta"));
        assert!(summary.contains("profit"));
        assert!(summary.contains("group-aware vs blind"));
        assert!(summary.contains("schema: all required keys present"));
        assert_eq!(execute(&BenchCmd::Help).unwrap(), USAGE);
    }
}
