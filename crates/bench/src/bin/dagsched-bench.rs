//! Perf-regression exporter: run the hot-path harness and write
//! `BENCH_pr3.json`, optionally failing against a committed baseline.
//!
//! ```text
//! dagsched-bench [--quick] [--out PATH] [--baseline PATH] [--max-regress FRAC]
//! ```
//!
//! * `--quick` — reduced sizes/iterations (the CI smoke configuration);
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_pr3.json` in the current directory);
//! * `--baseline PATH` — compare this run's admission/backfill speedups
//!   against the ones recorded in `PATH`; exit non-zero if either fell
//!   more than `--max-regress` (default `0.25`, i.e. 25%) below it.
//!
//! Speedups are legacy-vs-optimized ratios measured in the same process,
//! so the baseline comparison is machine-independent: a regression means
//! the optimized code got slower *relative to the frozen legacy code on
//! the same box*, not that the box changed.

use dagsched_bench::hotpath::{json_number, run_all};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_pr3.json");
    let mut baseline: Option<String> = None;
    let mut max_regress = 0.25f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--max-regress" => {
                max_regress = args
                    .next()
                    .expect("--max-regress needs a fraction")
                    .parse()
                    .expect("--max-regress must be a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    eprintln!(
        "dagsched-bench: running hot-path harness ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = run_all(quick);
    let json = report.to_json();
    for c in report.admission.iter().chain(report.backfill.iter()) {
        eprintln!(
            "  {:<24} legacy {:>12.0} ns   new {:>12.0} ns   speedup {:>6.2}x",
            c.id, c.legacy_ns, c.new_ns, c.speedup
        );
    }
    let (adm, bf) = (report.admission_speedup(), report.backfill_speedup());
    eprintln!("  admission_speedup {adm:.2}x, backfill_speedup {bf:.2}x");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {out}");

    if let Some(path) = baseline {
        let base = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::from(1);
            }
        };
        let mut failed = false;
        for (key, current) in [("admission_speedup", adm), ("backfill_speedup", bf)] {
            let Some(expected) = json_number(&base, key) else {
                eprintln!("baseline {path} has no {key}");
                failed = true;
                continue;
            };
            let floor = expected * (1.0 - max_regress);
            if current < floor {
                eprintln!(
                    "REGRESSION: {key} {current:.2}x is below {floor:.2}x \
                     (baseline {expected:.2}x - {:.0}%)",
                    max_regress * 100.0
                );
                failed = true;
            } else {
                eprintln!("ok: {key} {current:.2}x >= floor {floor:.2}x (baseline {expected:.2}x)");
            }
        }
        if failed {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
