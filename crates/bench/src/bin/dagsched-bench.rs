//! Perf-regression exporter: run the hot-path harness and write
//! `BENCH_pr10.json`, optionally failing against a committed baseline.
//!
//! ```text
//! dagsched-bench [--quick] [--out PATH] [--baseline PATH]
//!                [--max-regress FRAC] [--min-sweep-speedup X]
//!                [--min-kernel-speedup X] [--min-view-delta-speedup X]
//!                [--min-sprofit-speedup X] [--min-related-gain X]
//! ```
//!
//! * `--quick` — reduced sizes/iterations (the CI smoke configuration);
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_pr10.json` in the current directory);
//! * `--baseline PATH` — compare this run's
//!   admission/backfill/arrival/event-kernel/view-delta speedups against
//!   the ones recorded in `PATH`; exit non-zero if any
//!   fell more than `--max-regress` (default `0.25`, i.e. 25%) below it. A
//!   baseline without sweep, arrival, or view-delta keys (an older
//!   `BENCH_prN.json` format) is accepted — the missing comparison is
//!   simply skipped;
//! * `--min-sweep-speedup X` — require the B1 sweep's 4-thread speedup to
//!   reach at least `X`. Only enforced when the machine has ≥ 4 cores: a
//!   parallel speedup is physically bounded by the core count, so on a
//!   smaller box the measured ratio is recorded but not gated;
//! * `--min-kernel-speedup X` — require the event-kernel group's dense-case
//!   speedup (heap windows vs the frozen horizon scan) to reach at least
//!   `X`. Unlike the sweep gate this is a same-process legacy-vs-optimized
//!   ratio, so it is enforced unconditionally;
//! * `--min-view-delta-speedup X` — require the view-delta group's gated
//!   minimum (delta handoff vs the frozen full rebuild, dense and combined
//!   cases) to reach at least `X`. Same-process ratio, enforced
//!   unconditionally;
//! * `--min-sprofit-speedup X` — require the profit group's gated minimum
//!   (the rewritten general-profit scheduler's slot-plan fast path vs the
//!   frozen per-tick twin, `parked/…` cases) to reach at least `X`.
//!   Same-process ratio, enforced unconditionally;
//! * `--min-related-gain X` — require the related-machines group's
//!   completed-profit gain (group-aware vs aggregate-blind placement on
//!   the skewed platform) to reach at least `X`. Profit is deterministic
//!   per (instance, scheduler, config), so this gate is machine-
//!   independent and enforced unconditionally.
//!
//! Admission/backfill speedups are legacy-vs-optimized ratios measured in
//! the same process, so the baseline comparison is machine-independent: a
//! regression means the optimized code got slower *relative to the frozen
//! legacy code on the same box*, not that the box changed. The sweep
//! speedup is the exception — it is hardware-bound, which is why the
//! report carries `host_cores` and the gates above are conditional.

use dagsched_bench::hotpath::{json_number, run_all};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_pr10.json");
    let mut baseline: Option<String> = None;
    let mut max_regress = 0.25f64;
    let mut min_sweep_speedup: Option<f64> = None;
    let mut min_kernel_speedup: Option<f64> = None;
    let mut min_view_delta_speedup: Option<f64> = None;
    let mut min_sprofit_speedup: Option<f64> = None;
    let mut min_related_gain: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--max-regress" => {
                max_regress = args
                    .next()
                    .expect("--max-regress needs a fraction")
                    .parse()
                    .expect("--max-regress must be a number")
            }
            "--min-sweep-speedup" => {
                min_sweep_speedup = Some(
                    args.next()
                        .expect("--min-sweep-speedup needs a number")
                        .parse()
                        .expect("--min-sweep-speedup must be a number"),
                )
            }
            "--min-kernel-speedup" => {
                min_kernel_speedup = Some(
                    args.next()
                        .expect("--min-kernel-speedup needs a number")
                        .parse()
                        .expect("--min-kernel-speedup must be a number"),
                )
            }
            "--min-view-delta-speedup" => {
                min_view_delta_speedup = Some(
                    args.next()
                        .expect("--min-view-delta-speedup needs a number")
                        .parse()
                        .expect("--min-view-delta-speedup must be a number"),
                )
            }
            "--min-sprofit-speedup" => {
                min_sprofit_speedup = Some(
                    args.next()
                        .expect("--min-sprofit-speedup needs a number")
                        .parse()
                        .expect("--min-sprofit-speedup must be a number"),
                )
            }
            "--min-related-gain" => {
                min_related_gain = Some(
                    args.next()
                        .expect("--min-related-gain needs a number")
                        .parse()
                        .expect("--min-related-gain must be a number"),
                )
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    eprintln!(
        "dagsched-bench: running hot-path harness ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = run_all(quick);
    let json = report.to_json();
    for c in report
        .admission
        .iter()
        .chain(report.backfill.iter())
        .chain(report.arrival.iter())
        .chain(report.event_kernel.iter())
        .chain(report.view_delta.iter())
        .chain(report.profit.iter())
    {
        eprintln!(
            "  {:<24} legacy {:>12.0} ns   new {:>12.0} ns   speedup {:>6.2}x",
            c.id, c.legacy_ns, c.new_ns, c.speedup
        );
    }
    for c in &report.related {
        eprintln!(
            "  {:<24} aware profit {:>8}   blind profit {:>8}   gain {:>6.2}x",
            c.id, c.aware_profit, c.blind_profit, c.gain
        );
    }
    for c in &report.sweep {
        eprintln!(
            "  {:<24} t1     {:>12.0} ns   t{} {:>12.0} ns   speedup {:>6.2}x",
            c.id, c.t1_ns, c.threads, c.tn_ns, c.speedup
        );
    }
    for c in &report.fuzz {
        eprintln!(
            "  {:<24} {:>6} execs in {:>10.0} ns   {:>7.0} execs/sec ({} features)",
            c.id, c.execs, c.elapsed_ns, c.execs_per_sec, c.features
        );
    }
    let (adm, bf, arr, ek, vd, sp, rg, sw) = (
        report.admission_speedup(),
        report.backfill_speedup(),
        report.arrival_speedup(),
        report.event_kernel_speedup(),
        report.view_delta_speedup(),
        report.sprofit_speedup(),
        report.related_machines_gain(),
        report.sweep_speedup(),
    );
    eprintln!(
        "  admission_speedup {adm:.2}x, backfill_speedup {bf:.2}x, \
         arrival_speedup {arr:.2}x, event_kernel_speedup {ek:.2}x, \
         view_delta_speedup {vd:.2}x, sprofit_speedup {sp:.2}x, \
         related_machines_gain {rg:.2}x, sweep_speedup {sw:.2}x, \
         fuzz {:.0} execs/sec (host_cores {})",
        report.fuzz_execs_per_sec(),
        report.host_cores
    );

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {out}");

    let mut failed = false;
    if let Some(path) = baseline {
        let base = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::from(1);
            }
        };
        for (key, current) in [
            ("admission_speedup", adm),
            ("backfill_speedup", bf),
            ("arrival_speedup", arr),
            ("event_kernel_speedup", ek),
            ("view_delta_speedup", vd),
            ("sprofit_speedup", sp),
            ("related_machines_gain", rg),
        ] {
            let Some(expected) = json_number(&base, key) else {
                // An older baseline simply lacks keys added after its era
                // (pre-arrival, pre-kernel, or pre-delta formats); the
                // legacy-vs-optimized keys it does carry are still gated.
                if key == "arrival_speedup"
                    || key == "event_kernel_speedup"
                    || key == "view_delta_speedup"
                    || key == "sprofit_speedup"
                    || key == "related_machines_gain"
                {
                    eprintln!("note: baseline {path} has no {key} (skipping)");
                    continue;
                }
                eprintln!("baseline {path} has no {key}");
                failed = true;
                continue;
            };
            let floor = expected * (1.0 - max_regress);
            if current < floor {
                eprintln!(
                    "REGRESSION: {key} {current:.2}x is below {floor:.2}x \
                     (baseline {expected:.2}x - {:.0}%)",
                    max_regress * 100.0
                );
                failed = true;
            } else {
                eprintln!("ok: {key} {current:.2}x >= floor {floor:.2}x (baseline {expected:.2}x)");
            }
        }
        // The sweep ratio is hardware-bound, so the baseline comparison is
        // informational only when the baseline lacks the key (pre-sweep
        // format) or either box has fewer than 4 cores.
        match json_number(&base, "sweep_speedup") {
            None => eprintln!("note: baseline {path} has no sweep_speedup (skipping)"),
            Some(expected) => {
                let base_cores = json_number(&base, "host_cores").unwrap_or(1.0);
                if report.host_cores < 4 || base_cores < 4.0 {
                    eprintln!(
                        "note: sweep_speedup {sw:.2}x vs baseline {expected:.2}x not gated \
                         (host_cores {} / baseline cores {base_cores:.0})",
                        report.host_cores
                    );
                } else {
                    let floor = expected * (1.0 - max_regress);
                    if sw < floor {
                        eprintln!(
                            "REGRESSION: sweep_speedup {sw:.2}x is below {floor:.2}x \
                             (baseline {expected:.2}x)"
                        );
                        failed = true;
                    } else {
                        eprintln!("ok: sweep_speedup {sw:.2}x >= floor {floor:.2}x");
                    }
                }
            }
        }
    }

    if let Some(min) = min_kernel_speedup {
        if ek < min {
            eprintln!("FAIL: event_kernel_speedup {ek:.2}x is below the required {min:.2}x");
            failed = true;
        } else {
            eprintln!("ok: event_kernel_speedup {ek:.2}x >= required {min:.2}x");
        }
    }

    if let Some(min) = min_view_delta_speedup {
        if vd < min {
            eprintln!("FAIL: view_delta_speedup {vd:.2}x is below the required {min:.2}x");
            failed = true;
        } else {
            eprintln!("ok: view_delta_speedup {vd:.2}x >= required {min:.2}x");
        }
    }

    if let Some(min) = min_sprofit_speedup {
        if sp < min {
            eprintln!("FAIL: sprofit_speedup {sp:.2}x is below the required {min:.2}x");
            failed = true;
        } else {
            eprintln!("ok: sprofit_speedup {sp:.2}x >= required {min:.2}x");
        }
    }

    if let Some(min) = min_related_gain {
        if rg < min {
            eprintln!("FAIL: related_machines_gain {rg:.2}x is below the required {min:.2}x");
            failed = true;
        } else {
            eprintln!("ok: related_machines_gain {rg:.2}x >= required {min:.2}x");
        }
    }

    if let Some(min) = min_sweep_speedup {
        if report.host_cores < 4 {
            eprintln!(
                "note: --min-sweep-speedup {min:.2} not enforced on a \
                 {}-core machine (need >= 4)",
                report.host_cores
            );
        } else if sw < min {
            eprintln!("FAIL: sweep_speedup {sw:.2}x is below the required {min:.2}x");
            failed = true;
        } else {
            eprintln!("ok: sweep_speedup {sw:.2}x >= required {min:.2}x");
        }
    }

    if failed {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
