//! The perf-regression harness behind `dagsched-bench` (BENCH_pr8.json).
//!
//! Five measured hot paths, each timed as *legacy vs optimized in the same
//! process and run*:
//!
//! * **admission** — an overload admission storm: a stream of jobs with
//!   multi-band log-uniform densities (four decades, `10^[-2, 2]`) is
//!   offered to the band structure, `fits` → `insert` greedily, on a
//!   machine large enough that `|Q|` reaches the hundreds. Legacy is the
//!   retained O(|Q|)-per-query sweep
//!   ([`reference::ReferenceBands`](dagsched_sched::bands::reference)),
//!   optimized is the incremental treap
//!   ([`DensityBands`](dagsched_sched::bands::DensityBands)).
//! * **backfill** — the work-conserving allocate of scheduler S on a hot
//!   state (hundreds of admitted and parked jobs, every one with spare
//!   ready nodes). Legacy is the frozen
//!   [`OracleSchedulerS`](dagsched_sched::oracle::OracleSchedulerS) (per
//!   call: two `HashMap`s plus an O(|out|) rescan per grant), optimized is
//!   the current [`SchedulerS`](dagsched_sched::SchedulerS) with its dense
//!   scratch maps and slot index.
//! * **arrival storm** — many small jobs churning through per-job runtime
//!   state. Legacy is the frozen pre-CSR path
//!   ([`dagsched_dag::reference`]): nested `Vec<Vec<NodeId>>` adjacency, a
//!   fresh-allocated unfold state plus busy buffer per arrival. Optimized
//!   is the CSR spec with one pooled [`UnfoldState`](dagsched_dag::UnfoldState)
//!   recycled through `reset_from`, as the engine lifecycle pool does.
//!
//! * **event-kernel** — full engine runs on event-dense workloads, timed
//!   with the heap-based [`WindowMode::EventKernel`] vs the frozen
//!   [`WindowMode::ReferenceScan`] twin
//!   ([`HorizonScan`](dagsched_engine::HorizonScan)). The gated cases
//!   (`dense/…`) park thousands of zero-tail deadline jobs in the alive
//!   set while a saturating foreground stream forces a step every tick, so
//!   the scan pays two O(alive) passes per step (window minimum and expiry
//!   rescan) where the kernel pays O(log n) pops; the `steady/…` case is
//!   informational — on sparse multi-node streams the scan's passes are
//!   cheap and the kernel's per-step heap traffic makes it the slower
//!   side, which is recorded, not gated.
//!
//! * **view-delta** — full engine runs on the same parked-set workloads,
//!   timed with the incremental [`HandoffMode::Delta`] scheduler handoff
//!   vs the frozen full-rebuild twin ([`HandoffMode::Rebuild`], the
//!   verbatim pre-PR8 `build_view` in
//!   [`ViewRebuild`](dagsched_engine::ViewRebuild)). The rebuild pays an
//!   O(alive) view reconstruction plus an O(alive) scheduler re-sort every
//!   step; the delta path pays O(changed) and, on event-free steps,
//!   replays the cached allocation outright. The `combined/…` cases stack
//!   both PR7+PR8 optimizations (kernel window + delta handoff) against
//!   the full legacy pipeline (horizon scan + rebuild); `steady/…` is
//!   informational, exactly as in the event-kernel group.
//!
//! * **profit** — full engine runs of the general-profit scheduler, timed
//!   as the PR-10 rewrite ([`SchedulerSProfit`]: incremental segment plan +
//!   bounded-stability fast-forward + delta cached replay) vs its frozen
//!   pre-rewrite twin ([`OracleSProfit`](dagsched_sched::oracle::OracleSProfit):
//!   per-tick BTreeMap rescan, no stability claim, so the engine steps it
//!   every tick). The gated `parked/…` cases are the slot-plan regime: a
//!   majority of long two-step-profit jobs parks unallocated while a brief
//!   foreground wave churns the plan, leaving a long plan gap the rewrite
//!   crosses in O(1) windows and the twin grinds through tick by tick. The
//!   two sides are asserted outcome-identical (`SimResult::same_outcome`,
//!   which excludes `steps_executed` — the step reduction *is* the
//!   speedup) before timing; `steady/…` is informational, as in the
//!   event-kernel group.
//!
//! * **related-machines** — full EDF engine runs on a skewed heterogeneous
//!   platform (`4x1,2x2`: four unit-speed processors declared before two
//!   double-speed ones) over a deadline-wave workload where only the fast
//!   group can meet the urgent deadlines. Group-aware placement (the
//!   default for every baseline) is compared against the same scheduler
//!   wrapped in [`AggregateBlind`], which forces declaration-order
//!   placement and therefore fills the slow half first. The headline
//!   number is the **completed-profit ratio** (aware / blind) — a
//!   deterministic quantity, gated like the legacy-vs-optimized ratios —
//!   with both runs' wall times recorded informationally.
//!
//! A further group measures **sweep throughput**: the B1 [`SweepGrid`] run
//! sequentially vs sharded over 4 workers, in the same process. Unlike the
//! legacy-vs-optimized ratios, this one is *hardware-dependent* — on a
//! single-core box the 4-thread run cannot be faster — so the report also
//! records [`host_cores`] and the CI gate only enforces a parallel-speedup
//! floor when the machine actually has ≥ 4 cores.
//!
//! A final group measures **fuzz-loop throughput**: a bounded
//! coverage-guided run of `dagsched fuzz` (fixed master seed, all five
//! oracle heads) timed end to end, reported as `fuzz_execs_per_sec`. Like
//! the sweep ratio it is *hardware-dependent* — recorded for
//! trend-watching, never gated against a baseline from a different box.
//!
//! The report records *speedup ratios* (legacy time / optimized time), not
//! absolute times, so the committed baseline stays meaningful across
//! machines; the CI smoke job re-runs the harness with `--quick` and fails
//! when a ratio falls more than the allowed fraction below the baseline.

use dagsched_core::{AlgoParams, JobId, MachineGroups, Rng64, Time, Work};
use dagsched_dag::reference::{ReferenceDag, ReferenceUnfold};
use dagsched_dag::spec::DagJobSpec;
use dagsched_dag::{gen, UnfoldState};
use dagsched_engine::{
    simulate, Allocation, HandoffMode, JobInfo, OnlineScheduler, SimConfig, TickView, WindowMode,
};
use dagsched_experiments::SweepGrid;
use dagsched_sched::bands::{reference::ReferenceBands, DensityBands};
use dagsched_sched::oracle::{OracleSProfit, OracleSchedulerS};
use dagsched_sched::{AggregateBlind, Edf, SchedulerS, SchedulerSProfit};
use dagsched_workload::{Instance, JobSpec, StepProfitFn, WorkloadGen};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Number of logical cores on this machine (1 if it cannot be queried).
/// Recorded in the report so a committed baseline from a small box is not
/// mistaken for a parallel-speedup claim.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Short git revision of the working tree (`"unknown"` outside a checkout).
/// Recorded in the report — and in every group — so a committed baseline
/// can be traced back to the exact code that produced it.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One legacy-vs-optimized measurement.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case id, e.g. `"overload/p2000"`.
    pub id: String,
    /// Median legacy time per iteration, nanoseconds.
    pub legacy_ns: f64,
    /// Median optimized time per iteration, nanoseconds.
    pub new_ns: f64,
    /// `legacy_ns / new_ns`.
    pub speedup: f64,
}

/// One sweep-throughput measurement: the same grid run sequentially and on
/// `threads` workers, in the same process. `speedup` is `t1_ns / tn_ns` —
/// it is **hardware-dependent** (bounded by `host_cores`), unlike the
/// legacy-vs-optimized ratios.
#[derive(Debug, Clone)]
pub struct SweepCase {
    /// Case id, e.g. `"sweep/b1-t4"`.
    pub id: String,
    /// Median sequential (1-thread) time per grid run, nanoseconds.
    pub t1_ns: f64,
    /// Median `threads`-worker time per grid run, nanoseconds.
    pub tn_ns: f64,
    /// Worker count of the parallel run.
    pub threads: usize,
    /// `t1_ns / tn_ns`.
    pub speedup: f64,
}

/// One related-machines placement measurement: the same scheduler run
/// group-aware and aggregate-blind on the same skewed platform and
/// workload. `gain` is `aware_profit / blind_profit` — completed profit is
/// deterministic per (instance, scheduler, config), so unlike the timing
/// ratios this one is exactly reproducible and gated as such; the wall
/// times ride along informationally.
#[derive(Debug, Clone)]
pub struct RelatedCase {
    /// Case id, e.g. `"related/waves-w40"`.
    pub id: String,
    /// Total profit with group-aware (fastest-first) placement.
    pub aware_profit: u64,
    /// Total profit with aggregate-blind (declaration-order) placement.
    pub blind_profit: u64,
    /// `aware_profit / blind_profit`.
    pub gain: f64,
    /// Median group-aware run time, nanoseconds (informational).
    pub aware_ns: f64,
    /// Median aggregate-blind run time, nanoseconds (informational).
    pub blind_ns: f64,
}

/// One fuzz-throughput measurement: a bounded coverage-guided loop under a
/// fixed master seed, timed end to end. Absolute throughput — hardware-
/// dependent, recorded but never baseline-gated.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Case id, e.g. `"fuzz/e600"`.
    pub id: String,
    /// Execs attempted.
    pub execs: u64,
    /// Wall-clock nanoseconds for the whole loop.
    pub elapsed_ns: f64,
    /// `execs / seconds`.
    pub execs_per_sec: f64,
    /// Distinct coverage features the run discovered (a sanity probe that
    /// the measured loop was doing real judging work, not spinning).
    pub features: usize,
}

/// The full harness output, serialized to `BENCH_pr8.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Whether the reduced `--quick` sizes were used.
    pub quick: bool,
    /// Logical cores of the measuring machine ([`host_cores`]).
    pub host_cores: usize,
    /// Git revision the harness ran on ([`git_rev`]).
    pub git_rev: String,
    /// Admission-storm cases, ascending size.
    pub admission: Vec<CaseResult>,
    /// Backfill cases, ascending size.
    pub backfill: Vec<CaseResult>,
    /// Arrival-storm cases (fresh-per-arrival vs pooled job state),
    /// ascending size.
    pub arrival: Vec<CaseResult>,
    /// Event-kernel cases (heap windows vs the frozen horizon scan);
    /// `legacy_ns` is the scan, `new_ns` the kernel.
    pub event_kernel: Vec<CaseResult>,
    /// View-delta cases (incremental handoff vs the frozen full rebuild);
    /// `legacy_ns` is the rebuild, `new_ns` the delta path.
    pub view_delta: Vec<CaseResult>,
    /// General-profit scheduler cases (the PR-10 slot-plan rewrite vs the
    /// frozen per-tick twin); `legacy_ns` is [`OracleSProfit`], `new_ns`
    /// the rewritten [`SchedulerSProfit`] on its default fast path.
    pub profit: Vec<CaseResult>,
    /// Related-machines placement cases (group-aware vs aggregate-blind
    /// on a skewed heterogeneous platform); the gated number is the
    /// completed-profit gain.
    pub related: Vec<RelatedCase>,
    /// Sweep-throughput cases (sequential vs sharded grid runs).
    pub sweep: Vec<SweepCase>,
    /// Fuzz-loop throughput cases (bounded coverage-guided runs).
    pub fuzz: Vec<FuzzCase>,
}

impl BenchReport {
    /// Admission speedup of record: the *minimum* over cases with at least
    /// 10³ offered jobs (the acceptance bar measures the worst large case,
    /// not a friendly small one).
    pub fn admission_speedup(&self) -> f64 {
        min_speedup(self.admission.iter().filter(|c| case_size(&c.id) >= 1_000))
    }

    /// Backfill speedup of record: minimum over all backfill cases.
    pub fn backfill_speedup(&self) -> f64 {
        min_speedup(self.backfill.iter())
    }

    /// Arrival-storm speedup of record: minimum over all arrival cases.
    pub fn arrival_speedup(&self) -> f64 {
        min_speedup(self.arrival.iter())
    }

    /// Event-kernel speedup of record: the minimum over the *dense* cases
    /// (`dense/…` ids). The `steady/…` cases are informational — on sparse
    /// event streams the scan's O(alive) passes are cheap and parity is the
    /// expected result, so they are recorded but not gated.
    pub fn event_kernel_speedup(&self) -> f64 {
        min_speedup(
            self.event_kernel
                .iter()
                .filter(|c| c.id.starts_with("dense/")),
        )
    }

    /// View-delta speedup of record: the minimum over the `dense/…` and
    /// `combined/…` cases. As in the event-kernel group, `steady/…` is
    /// informational — on sparse streams the per-step rebuild is small and
    /// parity is the expected result — so it is recorded but not gated.
    pub fn view_delta_speedup(&self) -> f64 {
        min_speedup(
            self.view_delta
                .iter()
                .filter(|c| !c.id.starts_with("steady/")),
        )
    }

    /// General-profit speedup of record: the minimum over the `parked/…`
    /// cases — the slot-plan regime the rewrite targets. `steady/…` is
    /// informational, exactly as in the event-kernel and view-delta
    /// groups: on dense mixed streams the plan is rebuilt about as often
    /// as the twin rescans, and parity is the expected result.
    pub fn sprofit_speedup(&self) -> f64 {
        min_speedup(self.profit.iter().filter(|c| !c.id.starts_with("steady/")))
    }

    /// Related-machines gain of record: the minimum completed-profit ratio
    /// (group-aware / aggregate-blind) over the group's cases. Profit is
    /// deterministic, so this gate is machine-independent.
    pub fn related_machines_gain(&self) -> f64 {
        self.related
            .iter()
            .map(|c| c.gain)
            .fold(f64::INFINITY, f64::min)
    }

    /// Sweep speedup of record: the minimum `t1/tN` ratio over sweep cases.
    /// Only meaningful as a parallel-speedup claim when `host_cores` is at
    /// least the case's thread count.
    pub fn sweep_speedup(&self) -> f64 {
        self.sweep
            .iter()
            .map(|c| c.speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Fuzz-loop throughput of record: the minimum execs/sec over fuzz
    /// cases (absolute, hardware-dependent — recorded, not gated).
    pub fn fuzz_execs_per_sec(&self) -> f64 {
        self.fuzz
            .iter()
            .map(|c| c.execs_per_sec)
            .fold(f64::INFINITY, f64::min)
    }

    /// Serialize to the committed JSON format. The top-level `host_cores`
    /// is written *before* any group so [`json_number`] (first occurrence
    /// wins) keeps reading the machine-level value; every group object
    /// repeats `host_cores` and `git_rev` so a group copied out of a report
    /// — or diffed between reports — still identifies the box and revision
    /// that produced it.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"pr\": 10,\n");
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!("  \"git_rev\": \"{}\",\n", self.git_rev));
        let group_head = |name: &str| {
            format!(
                "  \"{name}\": {{\"host_cores\": {}, \"git_rev\": \"{}\", \"cases\": [\n",
                self.host_cores, self.git_rev
            )
        };
        for (name, cases) in [
            ("admission", &self.admission),
            ("backfill", &self.backfill),
            ("arrival", &self.arrival),
            ("event_kernel", &self.event_kernel),
            ("view_delta", &self.view_delta),
            ("profit", &self.profit),
        ] {
            s.push_str(&group_head(name));
            for (i, c) in cases.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"id\": \"{}\", \"legacy_ns\": {:.0}, \"new_ns\": {:.0}, \"speedup\": {:.3}}}{}\n",
                    c.id,
                    c.legacy_ns,
                    c.new_ns,
                    c.speedup,
                    if i + 1 < cases.len() { "," } else { "" }
                ));
            }
            s.push_str("  ]},\n");
        }
        s.push_str(&group_head("related"));
        for (i, c) in self.related.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"aware_profit\": {}, \"blind_profit\": {}, \"gain\": {:.3}, \"aware_ns\": {:.0}, \"blind_ns\": {:.0}}}{}\n",
                c.id,
                c.aware_profit,
                c.blind_profit,
                c.gain,
                c.aware_ns,
                c.blind_ns,
                if i + 1 < self.related.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]},\n");
        s.push_str(&group_head("sweep"));
        for (i, c) in self.sweep.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"t1_ns\": {:.0}, \"tn_ns\": {:.0}, \"threads\": {}, \"speedup\": {:.3}}}{}\n",
                c.id,
                c.t1_ns,
                c.tn_ns,
                c.threads,
                c.speedup,
                if i + 1 < self.sweep.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]},\n");
        s.push_str(&group_head("fuzz"));
        for (i, c) in self.fuzz.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"execs\": {}, \"elapsed_ns\": {:.0}, \"execs_per_sec\": {:.0}, \"features\": {}}}{}\n",
                c.id,
                c.execs,
                c.elapsed_ns,
                c.execs_per_sec,
                c.features,
                if i + 1 < self.fuzz.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]},\n");
        s.push_str(&format!(
            "  \"admission_speedup\": {:.3},\n",
            self.admission_speedup()
        ));
        s.push_str(&format!(
            "  \"backfill_speedup\": {:.3},\n",
            self.backfill_speedup()
        ));
        s.push_str(&format!(
            "  \"arrival_speedup\": {:.3},\n",
            self.arrival_speedup()
        ));
        s.push_str(&format!(
            "  \"event_kernel_speedup\": {:.3},\n",
            self.event_kernel_speedup()
        ));
        s.push_str(&format!(
            "  \"view_delta_speedup\": {:.3},\n",
            self.view_delta_speedup()
        ));
        s.push_str(&format!(
            "  \"sprofit_speedup\": {:.3},\n",
            self.sprofit_speedup()
        ));
        s.push_str(&format!(
            "  \"related_machines_gain\": {:.3},\n",
            self.related_machines_gain()
        ));
        s.push_str(&format!(
            "  \"sweep_speedup\": {:.3},\n",
            self.sweep_speedup()
        ));
        s.push_str(&format!(
            "  \"fuzz_execs_per_sec\": {:.0}\n",
            self.fuzz_execs_per_sec()
        ));
        s.push_str("}\n");
        s
    }
}

fn min_speedup<'a>(cases: impl Iterator<Item = &'a CaseResult>) -> f64 {
    cases.map(|c| c.speedup).fold(f64::INFINITY, f64::min)
}

/// Parse the trailing integer out of a case id like `"overload/p2000"`.
fn case_size(id: &str) -> u64 {
    id.chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .chars()
        .rev()
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Extract `"key": <number>` from the harness's own JSON (used by the CI
/// regression check — no JSON dependency in this tree).
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Median wall time of `f` over `iters` runs (after one warmup), in ns.
fn time_median_ns(iters: usize, mut f: impl FnMut() -> u64) -> f64 {
    black_box(f()); // warmup
    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The multi-band overload stream: `(density, allot)` pairs, densities
/// log-uniform over four decades so the structure holds many disjoint
/// `[v, c·v)` bands at once.
fn admission_stream(n: usize, seed: u64) -> Vec<(f64, u32)> {
    let mut rng = Rng64::seed_from(seed);
    (0..n)
        .map(|_| {
            let d = 10f64.powf(rng.gen_f64_range(-2.0, 2.0));
            let a = 1 + rng.gen_range(8) as u32;
            (d, a)
        })
        .collect()
}

/// Greedy admission over the stream with the legacy sweep structure.
fn legacy_admission(stream: &[(f64, u32)], c: f64, cap: f64) -> u64 {
    let mut b = ReferenceBands::new(c, cap);
    let mut admitted = 0u64;
    for (i, &(d, a)) in stream.iter().enumerate() {
        if b.fits(d, a) {
            b.insert(JobId(i as u32), d, a);
            admitted += 1;
        }
    }
    admitted
}

/// Greedy admission over the stream with the incremental treap.
fn treap_admission(stream: &[(f64, u32)], c: f64, cap: f64) -> u64 {
    let mut b = DensityBands::new(c, cap);
    let mut admitted = 0u64;
    for (i, &(d, a)) in stream.iter().enumerate() {
        if b.fits(d, a) {
            b.insert(JobId(i as u32), d, a);
            admitted += 1;
        }
    }
    admitted
}

/// Run the admission-storm group at the given stream sizes.
pub fn run_admission(sizes: &[usize], iters: usize) -> Vec<CaseResult> {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    let (c, cap) = (params.c(), 0.9 * 512.0);
    sizes
        .iter()
        .map(|&n| {
            let stream = admission_stream(n, 0x5EED ^ n as u64);
            // Sanity: both sides must admit the same set before timing.
            assert_eq!(
                legacy_admission(&stream, c, cap),
                treap_admission(&stream, c, cap),
                "legacy and treap disagree on the stream"
            );
            let legacy_ns = time_median_ns(iters, || legacy_admission(&stream, c, cap));
            let new_ns = time_median_ns(iters, || treap_admission(&stream, c, cap));
            CaseResult {
                id: format!("overload/p{n}"),
                legacy_ns,
                new_ns,
                speedup: legacy_ns / new_ns,
            }
        })
        .collect()
}

/// Build a hot scheduler-S state: `n` jobs offered on an `m = 512` machine
/// with ample deadlines, so a few hundred are admitted into Q (allotment 1,
/// spread densities) and the band-capacity rest parks in P. Every job has 8
/// ready nodes in the view, so the work-conserving pass both tops up Q jobs
/// and backfills P jobs — the exact shape the grant-merge fix targets.
fn backfill_state<S: OnlineScheduler>(mut sched: S, n: usize) -> (S, Vec<(JobId, u32)>) {
    let mut rng = Rng64::seed_from(0xBACF11);
    let mut view = Vec::with_capacity(n);
    for i in 0..n {
        let profit = 1 + rng.gen_range(1000);
        let info = JobInfo {
            id: JobId(i as u32),
            arrival: Time(0),
            work: Work(40),
            span: Work(8),
            // Deadline far out: allotment 1, every job δ-good.
            profit: StepProfitFn::deadline(Time(600 + rng.gen_range(200)), profit),
        };
        sched.on_arrival(&info, Time(0));
        view.push((JobId(i as u32), 8u32));
    }
    (sched, view)
}

/// Run the backfill group at the given alive-set sizes.
pub fn run_backfill(sizes: &[usize], iters: usize) -> Vec<CaseResult> {
    let m = 512u32;
    sizes
        .iter()
        .map(|&n| {
            let (mut legacy, view_jobs) =
                backfill_state(OracleSchedulerS::with_epsilon(m, 1.0).work_conserving(), n);
            let (mut new, _) =
                backfill_state(SchedulerS::with_epsilon(m, 1.0).work_conserving(), n);
            let view = TickView::new(m, Time(1), &view_jobs);
            // Sanity: identical allocations before timing.
            assert_eq!(legacy.allocate(&view), new.allocate(&view));
            let legacy_ns = time_median_ns(iters, || {
                let a = legacy.allocate(&view);
                a.len() as u64
            });
            let mut buf: Allocation = Vec::new();
            let new_ns = time_median_ns(iters, || {
                new.allocate_into(&view, &mut buf);
                buf.len() as u64
            });
            CaseResult {
                id: format!("wc-allocate/q{n}"),
                legacy_ns,
                new_ns,
                speedup: legacy_ns / new_ns,
            }
        })
        .collect()
}

/// The many-small-jobs mix for the arrival storm: the shapes an overloaded
/// deadline stream is made of — short chains and small diamonds, a handful
/// of nodes each, so per-arrival state setup dominates per-node work.
fn storm_specs() -> Vec<Arc<DagJobSpec>> {
    vec![
        gen::chain(3, 2).into_shared(),
        gen::diamond(4, 2).into_shared(),
        gen::chain(5, 1).into_shared(),
        gen::diamond(6, 1).into_shared(),
    ]
}

/// Per-node budget large enough to finish any storm node in one `advance`.
const STORM_BUDGET: u64 = 1 << 30;

/// The pre-PR5 arrival path: every arrival heap-allocates a fresh unfold
/// state (plus the engine's busy buffer) over the nested-`Vec` adjacency,
/// unfolds the job to completion, and drops it all.
fn legacy_storm(dags: &[ReferenceDag], arrivals: usize) -> u64 {
    let mut consumed = 0u64;
    for i in 0..arrivals {
        let dag = &dags[i % dags.len()];
        let mut st = ReferenceUnfold::new(dag, 1);
        let busy = vec![false; dag.num_nodes()];
        black_box(&busy);
        while let Some(n) = st.first_ready() {
            consumed += st.advance(dag, n, STORM_BUDGET).0;
        }
    }
    consumed
}

/// The pooled CSR path: one `UnfoldState` and one busy buffer recycled
/// through `reset_from` across every arrival, as the lifecycle pool does.
fn pooled_storm(specs: &[Arc<DagJobSpec>], arrivals: usize) -> u64 {
    let mut consumed = 0u64;
    let mut st = UnfoldState::new(specs[0].clone(), 1);
    let mut busy: Vec<bool> = Vec::new();
    for i in 0..arrivals {
        let spec = &specs[i % specs.len()];
        st.reset_from(spec.clone(), 1);
        busy.clear();
        busy.resize(spec.num_nodes(), false);
        black_box(&busy);
        loop {
            let Some(n) = st.ready_iter().next() else {
                break;
            };
            consumed += st.advance(n, STORM_BUDGET).0;
        }
    }
    consumed
}

/// Run the arrival-storm group at the given arrival counts.
pub fn run_arrival_storm(sizes: &[usize], iters: usize) -> Vec<CaseResult> {
    let specs = storm_specs();
    let dags: Vec<ReferenceDag> = specs.iter().map(|s| ReferenceDag::from_spec(s)).collect();
    sizes
        .iter()
        .map(|&n| {
            // Sanity: both sides must consume identical total work before
            // timing (same jobs, same FIFO unfold order).
            assert_eq!(
                legacy_storm(&dags, n),
                pooled_storm(&specs, n),
                "legacy and pooled storms diverged"
            );
            let legacy_ns = time_median_ns(iters, || legacy_storm(&dags, n));
            let new_ns = time_median_ns(iters, || pooled_storm(&specs, n));
            CaseResult {
                id: format!("arrival-storm/j{n}"),
                legacy_ns,
                new_ns,
                speedup: legacy_ns / new_ns,
            }
        })
        .collect()
}

/// A parked-set instance, the regime the event kernel targets: `n`
/// *background* deadline jobs arrive at `t = 0` with huge work and a
/// far-out deadline, so under EDF they sit alive — and zero-tail — for the
/// whole run without being scheduled, while a *foreground* stream of tiny
/// tight-deadline jobs saturates the `m = 4` machine and drives a
/// completion-and-arrival event every tick. Every step, the scan walks the
/// whole parked set twice (window minimum over zero-tail jobs, expiry
/// rescan) even though none of those jobs is anywhere near its boundary;
/// the kernel holds each as one armed far-future entry and pays O(log n).
/// The run ends with the parked set expiring in one wave, which both modes
/// process as a single batch.
///
/// `chains` picks the foreground shape: `false` is two single-node jobs of
/// work 2 per tick; `true` is one 2-node chain of work 4 per tick, adding
/// intra-job ready-count events at node boundaries. Both keep the
/// foreground load exactly at `m`.
pub fn parked_instance(n: usize, chains: bool) -> Instance {
    let far = Time(500_000);
    let mut jobs: Vec<JobSpec> = (0..n)
        .map(|i| {
            JobSpec::new(
                JobId(i as u32),
                Time(0),
                gen::single(10_000).into_shared(),
                StepProfitFn::deadline(far, 1),
            )
        })
        .collect();
    let per_tick = if chains { 1 } else { 2 };
    for i in 0..n {
        let dag = if chains {
            gen::chain(2, 2).into_shared()
        } else {
            gen::single(2).into_shared()
        };
        jobs.push(JobSpec::new(
            JobId((n + i) as u32),
            Time((i / per_tick) as u64),
            dag,
            StepProfitFn::deadline(Time(60), 3),
        ));
    }
    Instance::new(4, jobs).expect("valid parked instance")
}

/// One full EDF engine run under the given window and handoff modes; the
/// checksum keeps the run from being optimized away and doubles as an
/// equivalence probe. EDF (not FIFO) so the parked cases' background jobs —
/// earliest ids, latest deadlines — yield the machine to the foreground
/// stream.
pub fn handoff_run(inst: &Instance, window: WindowMode, handoff: HandoffMode) -> u64 {
    let cfg = SimConfig {
        window,
        handoff,
        ..SimConfig::default()
    };
    let mut sched = Edf::new(inst.m());
    let r = simulate(inst, &mut sched, &cfg).expect("bench run succeeds");
    r.total_profit
        .wrapping_mul(1_000_003)
        .wrapping_add(r.steps_executed)
}

fn kernel_run(inst: &Instance, mode: WindowMode) -> u64 {
    handoff_run(inst, mode, HandoffMode::default())
}

/// Run the event-kernel group: each case times complete engine runs with
/// heap windows (`new_ns`) vs the frozen horizon scan (`legacy_ns`). The
/// two modes are asserted step-identical before timing. `dense/…` cases
/// are the gated ones; `steady/…` is informational (sparse events).
pub fn run_event_kernel(
    dense_sizes: &[usize],
    steady_jobs: usize,
    iters: usize,
) -> Vec<CaseResult> {
    let mut cases: Vec<(String, Instance)> = Vec::new();
    for &n in dense_sizes {
        cases.push((format!("dense/parked-j{n}"), parked_instance(n, false)));
        cases.push((format!("dense/chains-j{n}"), parked_instance(n, true)));
    }
    cases.push((
        format!("steady/standard-j{steady_jobs}"),
        WorkloadGen::standard(8, steady_jobs, 11)
            .generate()
            .expect("valid steady workload"),
    ));
    cases
        .into_iter()
        .map(|(id, inst)| {
            assert_eq!(
                kernel_run(&inst, WindowMode::ReferenceScan),
                kernel_run(&inst, WindowMode::EventKernel),
                "kernel and scan diverged on {id}"
            );
            let legacy_ns = time_median_ns(iters, || kernel_run(&inst, WindowMode::ReferenceScan));
            let new_ns = time_median_ns(iters, || kernel_run(&inst, WindowMode::EventKernel));
            CaseResult {
                id,
                legacy_ns,
                new_ns,
                speedup: legacy_ns / new_ns,
            }
        })
        .collect()
}

/// Run the view-delta group: each case times complete engine runs with the
/// incremental delta handoff (`new_ns`) vs the frozen full-rebuild twin
/// (`legacy_ns`). `dense/…` cases hold both runs on the event kernel so
/// the handoff is the only variable; the `combined/…` cases stack the PR7
/// and PR8 optimizations (kernel + delta) against the full legacy pipeline
/// (horizon scan + rebuild); `steady/…` is informational. All four
/// window×handoff combinations are asserted checksum-identical before
/// timing.
pub fn run_view_delta(dense_sizes: &[usize], steady_jobs: usize, iters: usize) -> Vec<CaseResult> {
    let mut cases: Vec<(String, Instance, WindowMode)> = Vec::new();
    for &n in dense_sizes {
        cases.push((
            format!("dense/parked-j{n}"),
            parked_instance(n, false),
            WindowMode::EventKernel,
        ));
        cases.push((
            format!("dense/chains-j{n}"),
            parked_instance(n, true),
            WindowMode::EventKernel,
        ));
        cases.push((
            format!("combined/parked-j{n}"),
            parked_instance(n, false),
            WindowMode::ReferenceScan,
        ));
    }
    cases.push((
        format!("steady/standard-j{steady_jobs}"),
        WorkloadGen::standard(8, steady_jobs, 11)
            .generate()
            .expect("valid steady workload"),
        WindowMode::EventKernel,
    ));
    cases
        .into_iter()
        .map(|(id, inst, legacy_window)| {
            let reference = handoff_run(&inst, WindowMode::EventKernel, HandoffMode::Delta);
            for window in [WindowMode::EventKernel, WindowMode::ReferenceScan] {
                for handoff in [HandoffMode::Delta, HandoffMode::Rebuild] {
                    assert_eq!(
                        handoff_run(&inst, window, handoff),
                        reference,
                        "handoff/window combinations diverged on {id}"
                    );
                }
            }
            let legacy_ns = time_median_ns(iters, || {
                handoff_run(&inst, legacy_window, HandoffMode::Rebuild)
            });
            let new_ns = time_median_ns(iters, || {
                handoff_run(&inst, WindowMode::EventKernel, HandoffMode::Delta)
            });
            CaseResult {
                id,
                legacy_ns,
                new_ns,
                speedup: legacy_ns / new_ns,
            }
        })
        .collect()
}

/// The slot-plan regime the general-profit rewrite targets: `n` long
/// background jobs (work 5 000, a two-step profit whose cliffs sit at
/// `horizon / 2` and `horizon`) arrive at `t = 0` on an `m = 4` machine, so
/// the band capacity admits a handful and parks the rest until their
/// segments lapse; a brief foreground wave of small two-step chain jobs
/// (one every other tick, cliffs at 40 and 90) churns the plan early on.
/// Once the wave drains, the remaining run is one long plan gap: the
/// rewritten scheduler declares it stable and the engine crosses it in
/// O(1) bulk windows, while the frozen twin — no stability claim — is
/// stepped through every tick of it.
pub fn profit_instance(n: usize, horizon: u64) -> Instance {
    let mid = (horizon / 2).max(2);
    let background = StepProfitFn::steps(vec![(Time(mid), 4), (Time(horizon), 2)], 0)
        .expect("valid background profit");
    let wave =
        StepProfitFn::steps(vec![(Time(40), 3), (Time(90), 1)], 0).expect("valid wave profit");
    let mut jobs: Vec<JobSpec> = (0..n)
        .map(|i| {
            JobSpec::new(
                JobId(i as u32),
                Time(0),
                gen::single(5_000).into_shared(),
                background.clone(),
            )
        })
        .collect();
    for i in 0..n / 2 {
        jobs.push(JobSpec::new(
            JobId((n + i) as u32),
            Time(2 * i as u64),
            gen::chain(3, 2).into_shared(),
            wave.clone(),
        ));
    }
    Instance::new(4, jobs).expect("valid profit instance")
}

/// One full general-profit run, rewritten (`frozen = false`, the default
/// fast path) or on the frozen pre-rewrite twin (`frozen = true`, stepped
/// every tick). The checksum folds in `ticks_simulated` — identical on
/// both sides by `same_outcome` — but deliberately not `steps_executed`,
/// which differs by design.
fn sprofit_run(inst: &Instance, frozen: bool) -> u64 {
    let cfg = SimConfig::default();
    let r = if frozen {
        let mut sched = OracleSProfit::with_epsilon(inst.m(), 1.0);
        simulate(inst, &mut sched, &cfg)
    } else {
        let mut sched = SchedulerSProfit::with_epsilon(inst.m(), 1.0);
        simulate(inst, &mut sched, &cfg)
    }
    .expect("bench run succeeds");
    r.total_profit
        .wrapping_mul(1_000_003)
        .wrapping_add(r.ticks_simulated)
}

/// Run the general-profit group: each case times complete engine runs of
/// the rewritten [`SchedulerSProfit`] (`new_ns`) vs the frozen
/// [`OracleSProfit`] twin (`legacy_ns`). Both sides are asserted
/// outcome-identical before timing — `same_outcome` compares every
/// `SimResult` field except `steps_executed`, the one the rewrite exists
/// to shrink. `parked/…` cases are the gated ones; `steady/…` is
/// informational (dense mixed streams, no long gaps to skip).
pub fn run_profit(
    sizes: &[usize],
    horizon: u64,
    steady_jobs: usize,
    iters: usize,
) -> Vec<CaseResult> {
    let mut cases: Vec<(String, Instance)> = sizes
        .iter()
        .map(|&n| (format!("parked/j{n}"), profit_instance(n, horizon)))
        .collect();
    cases.push((
        format!("steady/standard-j{steady_jobs}"),
        WorkloadGen::standard(6, steady_jobs, 7)
            .generate()
            .expect("valid steady workload"),
    ));
    cases
        .into_iter()
        .map(|(id, inst)| {
            {
                let cfg = SimConfig::default();
                let mut fast = SchedulerSProfit::with_epsilon(inst.m(), 1.0);
                let mut twin = OracleSProfit::with_epsilon(inst.m(), 1.0);
                let fast = simulate(&inst, &mut fast, &cfg).expect("bench run succeeds");
                let twin = simulate(&inst, &mut twin, &cfg).expect("bench run succeeds");
                assert!(
                    fast.same_outcome(&twin),
                    "rewrite and frozen twin diverged on {id} \
                     (rewrite profit {}, twin profit {})",
                    fast.total_profit,
                    twin.total_profit
                );
            }
            let legacy_ns = time_median_ns(iters, || sprofit_run(&inst, true));
            let new_ns = time_median_ns(iters, || sprofit_run(&inst, false));
            CaseResult {
                id,
                legacy_ns,
                new_ns,
                speedup: legacy_ns / new_ns,
            }
        })
        .collect()
}

/// The skewed platform the related-machines group runs on: four unit-speed
/// processors declared *before* two double-speed ones, so a placement
/// cursor that ignores groups fills the slow half first.
fn skewed_platform() -> MachineGroups {
    "4x1,2x2".parse().expect("valid platform spec")
}

/// The deadline-wave workload for the related-machines group: every 15
/// ticks, two *hard* single-node jobs (work 20, deadline 12 ticks out,
/// profit 3) and two *easy* ones (work 5, deadline 30 ticks out, profit 1)
/// arrive. A double-speed processor finishes a hard job in 10 ticks; a
/// unit-speed one needs 20 and misses the deadline — so the urgent jobs are
/// worth their profit only on the fast group, and every wave is worth 8
/// profit to fastest-first placement versus 2 to slow-first.
pub fn related_instance(waves: usize) -> Instance {
    let mut jobs = Vec::with_capacity(waves * 4);
    for i in 0..waves {
        let t = (i as u64) * 15;
        for j in 0..4u64 {
            let (work, slack, profit) = if j < 2 { (20, 12, 3) } else { (5, 30, 1) };
            jobs.push(JobSpec::new(
                JobId((i * 4) as u32 + j as u32),
                Time(t),
                gen::single(work).into_shared(),
                StepProfitFn::deadline(Time(slack), profit),
            ));
        }
    }
    Instance::new(6, jobs).expect("valid related-machines instance")
}

/// One full EDF run on the skewed platform, group-aware or wrapped in
/// [`AggregateBlind`] (same allocations, declaration-order placement).
fn related_run(inst: &Instance, blind: bool) -> u64 {
    let cfg = SimConfig::on_groups(skewed_platform());
    if blind {
        let mut sched = AggregateBlind(Edf::new(inst.m()));
        simulate(inst, &mut sched, &cfg)
    } else {
        let mut sched = Edf::new(inst.m());
        simulate(inst, &mut sched, &cfg)
    }
    .expect("bench run succeeds")
    .total_profit
}

/// Run the related-machines group at the given wave counts. The profit
/// ratio is asserted strictly above 1 before anything is timed — a blind
/// run matching the aware one would mean group-aware placement stopped
/// doing its job, which is a correctness bug, not a perf result.
pub fn run_related(wave_counts: &[usize], iters: usize) -> Vec<RelatedCase> {
    wave_counts
        .iter()
        .map(|&waves| {
            let inst = related_instance(waves);
            let aware_profit = related_run(&inst, false);
            let blind_profit = related_run(&inst, true);
            assert!(
                blind_profit > 0 && aware_profit > blind_profit,
                "group-aware placement must beat aggregate-blind \
                 (aware {aware_profit}, blind {blind_profit})"
            );
            let aware_ns = time_median_ns(iters, || related_run(&inst, false));
            let blind_ns = time_median_ns(iters, || related_run(&inst, true));
            RelatedCase {
                id: format!("related/waves-w{waves}"),
                aware_profit,
                blind_profit,
                gain: aware_profit as f64 / blind_profit as f64,
                aware_ns,
                blind_ns,
            }
        })
        .collect()
}

/// Run the sweep-throughput group: the given grid sequentially vs sharded
/// over `threads` workers, median over `iters` runs each. The two runs are
/// asserted byte-identical before timing (sharding must be invisible).
pub fn run_sweep_grid(grid: &SweepGrid, threads: usize, iters: usize) -> Vec<SweepCase> {
    assert_eq!(
        grid.run(1),
        grid.run(threads),
        "sharded sweep diverged from sequential"
    );
    let checksum = |threads: usize| {
        grid.run(threads)
            .cells
            .iter()
            .map(|c| c.profit)
            .fold(0u64, u64::wrapping_add)
    };
    let t1_ns = time_median_ns(iters, || checksum(1));
    let tn_ns = time_median_ns(iters, || checksum(threads));
    vec![SweepCase {
        id: format!("sweep/{}-t{threads}", grid.name),
        t1_ns,
        tn_ns,
        threads,
        speedup: t1_ns / tn_ns,
    }]
}

/// Run the fuzz-throughput group: one bounded coverage-guided loop per
/// exec budget, fixed master seed, all five oracle heads, minimization
/// off (a clean scheduler never reaches the minimizer anyway — keeping it
/// off makes the timed work identical even if a future regression trips an
/// oracle). The loop must find failures *never*: a failure here is a
/// correctness bug, not a perf result, so it aborts the harness.
pub fn run_fuzz_throughput(budgets: &[u64]) -> Vec<FuzzCase> {
    use dagsched_fuzz::{FuzzConfig, FuzzSession};
    budgets
        .iter()
        .map(|&execs| {
            let report = FuzzSession::new(FuzzConfig {
                master_seed: 0x0DA6_5EED,
                max_execs: execs,
                minimize: false,
                ..FuzzConfig::default()
            })
            .run();
            assert!(
                report.failures.is_empty(),
                "fuzz throughput run found real failures: {:?}",
                report
                    .failures
                    .iter()
                    .map(|f| (&f.oracle, &f.detail))
                    .collect::<Vec<_>>()
            );
            FuzzCase {
                id: format!("fuzz/e{execs}"),
                execs: report.execs,
                elapsed_ns: report.elapsed.as_nanos() as f64,
                execs_per_sec: report.execs_per_sec(),
                features: report.features,
            }
        })
        .collect()
}

/// Run the whole harness. `quick` shrinks sizes and iteration counts for
/// the CI smoke job; the full run is what gets committed as
/// `BENCH_pr8.json`.
pub fn run_all(quick: bool) -> BenchReport {
    let (adm_sizes, bf_sizes, storm_sizes, iters): (&[usize], &[usize], &[usize], usize) = if quick
    {
        (&[1_000], &[500], &[10_000], 9)
    } else {
        (
            &[1_000, 4_000, 10_000],
            &[500, 2_000],
            &[10_000, 50_000],
            21,
        )
    };
    // Full engine runs are the unit of one event-kernel iteration, so this
    // group uses its own (smaller) iteration count.
    let (ek_sizes, ek_steady, ek_iters): (&[usize], usize, usize) = if quick {
        (&[1_000], 150, 5)
    } else {
        (&[1_000, 3_000], 400, 9)
    };
    // One frozen-twin profit iteration grinds the whole horizon tick by
    // tick, so quick mode drops the large case — but keeps the full
    // horizon: the measured ratio scales with the plan-gap length, so a
    // shorter quick horizon would make the baseline comparison a workload
    // mismatch, not a regression signal.
    let profit_sizes: &[usize] = if quick { &[40] } else { &[40, 160] };
    let profit_horizon = 50_000;
    // The B1 grid takes ~50 ms sequentially, so even the full sweep group
    // stays under a second.
    let sweep_iters = if quick { 5 } else { 11 };
    BenchReport {
        quick,
        host_cores: host_cores(),
        git_rev: git_rev(),
        admission: run_admission(adm_sizes, iters),
        backfill: run_backfill(bf_sizes, iters),
        arrival: run_arrival_storm(storm_sizes, iters),
        event_kernel: run_event_kernel(ek_sizes, ek_steady, ek_iters),
        view_delta: run_view_delta(ek_sizes, ek_steady, ek_iters),
        profit: run_profit(profit_sizes, profit_horizon, ek_steady, ek_iters),
        related: run_related(if quick { &[40] } else { &[40, 120] }, ek_iters),
        sweep: run_sweep_grid(&SweepGrid::b1(), 4, sweep_iters),
        fuzz: run_fuzz_throughput(if quick { &[200] } else { &[1_000] }),
    }
}

/// A seconds-scale harness pass at tiny sizes for the `dagsched bench` CLI
/// smoke command: every report group and JSON key is exercised, but the
/// measured ratios are *not* perf claims and must not be gated.
pub fn run_smoke() -> BenchReport {
    BenchReport {
        quick: true,
        host_cores: host_cores(),
        git_rev: git_rev(),
        // 1000 offered jobs: the smallest size admission_speedup() counts
        // (smaller cases are filtered out, which would leave the key `inf`).
        admission: run_admission(&[1_000], 3),
        backfill: run_backfill(&[150], 3),
        arrival: run_arrival_storm(&[1_000], 3),
        event_kernel: run_event_kernel(&[300], 60, 3),
        view_delta: run_view_delta(&[300], 60, 3),
        profit: run_profit(&[12], 3_000, 40, 3),
        related: run_related(&[10], 3),
        sweep: run_sweep_grid(&SweepGrid::smoke(), 2, 3),
        fuzz: run_fuzz_throughput(&[60]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_the_speedups() {
        let report = BenchReport {
            quick: true,
            host_cores: 8,
            git_rev: "abc1234".into(),
            admission: vec![CaseResult {
                id: "overload/p1000".into(),
                legacy_ns: 4000.0,
                new_ns: 1000.0,
                speedup: 4.0,
            }],
            backfill: vec![CaseResult {
                id: "wc-allocate/q500".into(),
                legacy_ns: 900.0,
                new_ns: 300.0,
                speedup: 3.0,
            }],
            arrival: vec![CaseResult {
                id: "arrival-storm/j10000".into(),
                legacy_ns: 5000.0,
                new_ns: 2500.0,
                speedup: 2.0,
            }],
            event_kernel: vec![
                CaseResult {
                    id: "dense/parked-j1000".into(),
                    legacy_ns: 3000.0,
                    new_ns: 2000.0,
                    speedup: 1.5,
                },
                CaseResult {
                    id: "steady/standard-j400".into(),
                    legacy_ns: 1000.0,
                    new_ns: 1250.0,
                    speedup: 0.8,
                },
            ],
            view_delta: vec![
                CaseResult {
                    id: "dense/parked-j1000".into(),
                    legacy_ns: 4200.0,
                    new_ns: 2000.0,
                    speedup: 2.1,
                },
                CaseResult {
                    id: "combined/parked-j1000".into(),
                    legacy_ns: 9000.0,
                    new_ns: 2000.0,
                    speedup: 4.5,
                },
                CaseResult {
                    id: "steady/standard-j400".into(),
                    legacy_ns: 1000.0,
                    new_ns: 1100.0,
                    speedup: 0.9,
                },
            ],
            profit: vec![
                CaseResult {
                    id: "parked/j40".into(),
                    legacy_ns: 9000.0,
                    new_ns: 3000.0,
                    speedup: 3.0,
                },
                CaseResult {
                    id: "steady/standard-j400".into(),
                    legacy_ns: 1000.0,
                    new_ns: 1050.0,
                    speedup: 0.95,
                },
            ],
            related: vec![RelatedCase {
                id: "related/waves-w40".into(),
                aware_profit: 320,
                blind_profit: 80,
                gain: 4.0,
                aware_ns: 1500.0,
                blind_ns: 1400.0,
            }],
            sweep: vec![SweepCase {
                id: "sweep/b1-t4".into(),
                t1_ns: 7000.0,
                tn_ns: 2000.0,
                threads: 4,
                speedup: 3.5,
            }],
            fuzz: vec![FuzzCase {
                id: "fuzz/e600".into(),
                execs: 600,
                elapsed_ns: 2_000_000_000.0,
                execs_per_sec: 300.0,
                features: 80,
            }],
        };
        let json = report.to_json();
        assert_eq!(json_number(&json, "admission_speedup"), Some(4.0));
        assert_eq!(json_number(&json, "backfill_speedup"), Some(3.0));
        assert_eq!(json_number(&json, "arrival_speedup"), Some(2.0));
        assert_eq!(
            json_number(&json, "event_kernel_speedup"),
            Some(1.5),
            "steady cases must not drag the gated dense minimum"
        );
        assert_eq!(
            json_number(&json, "view_delta_speedup"),
            Some(2.1),
            "the gated minimum spans dense and combined, never steady"
        );
        assert_eq!(
            json_number(&json, "sprofit_speedup"),
            Some(3.0),
            "the gated profit minimum covers parked cases, never steady"
        );
        assert_eq!(json_number(&json, "related_machines_gain"), Some(4.0));
        assert_eq!(json_number(&json, "sweep_speedup"), Some(3.5));
        assert_eq!(json_number(&json, "fuzz_execs_per_sec"), Some(300.0));
        assert_eq!(
            json_number(&json, "host_cores"),
            Some(8.0),
            "the first host_cores occurrence stays the top-level one"
        );
        assert!(json.contains("\"git_rev\": \"abc1234\""));
        assert_eq!(
            json.matches("\"host_cores\": 8").count(),
            10,
            "top level plus one per group"
        );
        assert_eq!(json.matches("\"git_rev\": \"abc1234\"").count(), 10);
        assert!(json.contains("\"overload/p1000\""));
        assert!(json.contains("\"parked/j40\""));
        assert!(json.contains("\"arrival-storm/j10000\""));
        assert!(json.contains("\"dense/parked-j1000\""));
        assert!(json.contains("\"combined/parked-j1000\""));
        assert!(json.contains("\"related/waves-w40\""));
        assert!(json.contains("\"sweep/b1-t4\""));
    }

    #[test]
    fn admission_speedup_ignores_small_cases() {
        let mk = |id: &str, speedup: f64| CaseResult {
            id: id.into(),
            legacy_ns: speedup,
            new_ns: 1.0,
            speedup,
        };
        let report = BenchReport {
            quick: true,
            host_cores: 1,
            git_rev: "abc1234".into(),
            admission: vec![mk("overload/p100", 0.5), mk("overload/p1000", 3.0)],
            backfill: vec![mk("wc-allocate/q500", 2.0)],
            arrival: vec![
                mk("arrival-storm/j10000", 2.5),
                mk("arrival-storm/j50000", 1.8),
            ],
            event_kernel: vec![
                mk("dense/parked-j1000", 2.2),
                mk("dense/chains-j1000", 2.6),
                mk("steady/standard-j400", 0.9),
            ],
            view_delta: vec![
                mk("dense/parked-j1000", 1.9),
                mk("combined/parked-j1000", 3.4),
                mk("steady/standard-j400", 0.8),
            ],
            profit: vec![mk("parked/j40", 7.5), mk("steady/standard-j400", 0.9)],
            related: vec![],
            sweep: vec![],
            fuzz: vec![],
        };
        assert_eq!(report.admission_speedup(), 3.0);
        assert_eq!(report.backfill_speedup(), 2.0);
        assert_eq!(report.arrival_speedup(), 1.8);
        assert_eq!(report.event_kernel_speedup(), 2.2);
        assert_eq!(
            report.view_delta_speedup(),
            1.9,
            "steady cases are informational, not gated"
        );
        assert_eq!(
            report.sprofit_speedup(),
            7.5,
            "the profit gate tracks the parked cases only"
        );
        assert_eq!(report.sweep_speedup(), f64::INFINITY);
        assert_eq!(report.related_machines_gain(), f64::INFINITY);
    }

    /// The related-machines harness case: group-aware placement must beat
    /// the aggregate-blind wrapper on profit, and by the designed margin —
    /// each wave is worth 8 profit to fastest-first placement and 2 to
    /// slow-first, so the gain is exactly 4.
    #[test]
    fn related_harness_shows_group_aware_beating_blind() {
        let cases = run_related(&[10], 1);
        assert_eq!(cases.len(), 1);
        let c = &cases[0];
        assert_eq!(c.id, "related/waves-w10");
        assert_eq!(c.aware_profit, 80, "8 profit per wave, all deadlines met");
        assert_eq!(c.blind_profit, 20, "only the easy jobs survive slow-first");
        assert!((c.gain - 4.0).abs() < 1e-9, "{c:?}");
        assert!(c.aware_ns > 0.0 && c.blind_ns > 0.0);
    }

    #[test]
    fn both_admission_implementations_admit_identically() {
        let params = AlgoParams::from_epsilon(1.0).unwrap();
        let stream = admission_stream(600, 42);
        assert_eq!(
            legacy_admission(&stream, params.c(), 0.9 * 512.0),
            treap_admission(&stream, params.c(), 0.9 * 512.0)
        );
    }

    #[test]
    fn harness_smoke_runs_and_reports_positive_ratios() {
        // Tiny sizes: correctness of the harness, not perf claims.
        let adm = run_admission(&[200], 3);
        let bf = run_backfill(&[100], 3);
        let storm = run_arrival_storm(&[500], 3);
        for c in adm.iter().chain(bf.iter()).chain(storm.iter()) {
            assert!(
                c.legacy_ns > 0.0 && c.new_ns > 0.0 && c.speedup > 0.0,
                "{c:?}"
            );
        }
    }

    #[test]
    fn event_kernel_harness_runs_and_covers_both_case_families() {
        // Tiny sizes: the embedded kernel-vs-scan equivalence assert is the
        // point here, not the measured ratio.
        let cases = run_event_kernel(&[200], 40, 1);
        assert_eq!(cases.len(), 3);
        assert!(cases[0].id.starts_with("dense/parked-"));
        assert!(cases[1].id.starts_with("dense/chains-"));
        assert!(cases[2].id.starts_with("steady/"));
        for c in &cases {
            assert!(
                c.legacy_ns > 0.0 && c.new_ns > 0.0 && c.speedup > 0.0,
                "{c:?}"
            );
        }
    }

    #[test]
    fn view_delta_harness_runs_and_covers_the_case_families() {
        // Tiny sizes: the embedded delta-vs-rebuild equivalence assert is
        // the point here, not the measured ratio.
        let cases = run_view_delta(&[200], 40, 1);
        assert_eq!(cases.len(), 4);
        assert!(cases[0].id.starts_with("dense/parked-"));
        assert!(cases[1].id.starts_with("dense/chains-"));
        assert!(cases[2].id.starts_with("combined/parked-"));
        assert!(cases[3].id.starts_with("steady/"));
        for c in &cases {
            assert!(
                c.legacy_ns > 0.0 && c.new_ns > 0.0 && c.speedup > 0.0,
                "{c:?}"
            );
        }
    }

    /// The general-profit harness at tiny sizes: the embedded
    /// rewrite-vs-twin `same_outcome` assert is the point, and even on a
    /// short horizon the parked case must show the rewrite strictly
    /// ahead — the frozen twin steps every tick of the plan gap.
    #[test]
    fn profit_harness_runs_and_covers_both_case_families() {
        let cases = run_profit(&[12], 2_000, 30, 1);
        assert_eq!(cases.len(), 2);
        assert!(cases[0].id.starts_with("parked/"));
        assert!(cases[1].id.starts_with("steady/"));
        for c in &cases {
            assert!(
                c.legacy_ns > 0.0 && c.new_ns > 0.0 && c.speedup > 0.0,
                "{c:?}"
            );
        }
        assert!(
            cases[0].speedup > 1.0,
            "the parked case must favor the fast path: {:?}",
            cases[0]
        );
    }

    #[test]
    fn storm_paths_consume_identical_work() {
        let specs = storm_specs();
        let dags: Vec<ReferenceDag> = specs.iter().map(|s| ReferenceDag::from_spec(s)).collect();
        for n in [1, 7, 100] {
            assert_eq!(legacy_storm(&dags, n), pooled_storm(&specs, n));
        }
    }

    #[test]
    fn fuzz_harness_reports_real_throughput() {
        let cases = run_fuzz_throughput(&[20]);
        assert_eq!(cases.len(), 1);
        let c = &cases[0];
        assert_eq!(c.id, "fuzz/e20");
        assert_eq!(c.execs, 20);
        assert!(c.elapsed_ns > 0.0 && c.execs_per_sec > 0.0, "{c:?}");
        assert!(c.features > 0, "the timed loop must be doing real work");
    }

    #[test]
    fn sweep_harness_times_the_smoke_grid() {
        // The smoke grid keeps this a harness-correctness test, not a perf
        // claim; run_all uses B1.
        let cases = run_sweep_grid(&SweepGrid::smoke(), 2, 1);
        assert_eq!(cases.len(), 1);
        let c = &cases[0];
        assert_eq!(c.id, "sweep/smoke-t2");
        assert!(c.t1_ns > 0.0 && c.tn_ns > 0.0 && c.speedup > 0.0, "{c:?}");
        assert!(host_cores() >= 1);
    }
}
