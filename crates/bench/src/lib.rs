//! # dagsched-bench
//!
//! Criterion benchmark harness. One bench target per paper artifact
//! (`bench_fig1` … `bench_ablation` run the quick-grid experiment end to
//! end, so `cargo bench` regenerates a reduced version of every table), plus
//! `bench_micro` for the hot paths: engine ticks, the density-band admission
//! structure, DAG generation/unfolding and the PRNG.

#![warn(missing_docs)]

pub mod cli;
pub mod hotpath;

/// Convenience used by the per-experiment benches: assert the experiment
/// produced at least one non-empty table (so a benchmark cannot silently
/// measure a no-op).
pub fn assert_tables(tables: &[dagsched_metrics::Table]) {
    assert!(!tables.is_empty());
    for t in tables {
        assert!(!t.is_empty(), "{} is empty", t.title());
    }
}
