//! # dagsched-fuzz
//!
//! Coverage-guided adversarial workload fuzzing with the invariant suite
//! as oracle (ROADMAP item 5; DESIGN.md §4.7).
//!
//! The PR2 checkers and the PR6 differential suites are only as strong as
//! the workloads that exercise them, and the adversarial shapes that
//! matter — Section 4's lower-bound families, density-band boundary ties,
//! Brent-tight chains, arrival/expiry collisions on fast-forward window
//! edges — are vanishingly rare under random generation. This crate
//! searches for them deliberately:
//!
//! * [`ir`] — a mutable, always-repairable instance representation;
//! * [`mutate`] — structural mutators biased toward the adversarial
//!   families;
//! * [`coverage`] — cheap execution features (bands touched, admission
//!   reasons fired, event-collision masks, expiry-batch and window-width
//!   buckets) driving corpus retention;
//! * [`oracle`] — the five heads: invariant suite, kernel-vs-scan byte
//!   equality, paused-vs-one-shot differential, delta-vs-rebuild handoff
//!   differential, grouped-vs-scalar platform twin differential;
//! * [`minimize`] — bounded delta-debugging of failing instances;
//! * [`run`] — the deterministic fuzz loop (fixed master seed ⇒
//!   byte-identical corpus trajectory);
//! * [`cli`] — the `dagsched fuzz` / `dagsched fuzz --replay` subcommand;
//! * [`corpus`] — the fixed seed corpus, one entry per family.
//!
//! The loop doubles as a perf workload (it hammers the arrival-storm and
//! admission hot paths); `BENCH_pr7.json` records its execs/sec.

#![warn(missing_docs)]

pub mod cli;
pub mod corpus;
pub mod coverage;
pub mod ir;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod run;

pub use corpus::{collision_instances, seed_corpus};
pub use coverage::{CoverageMap, CoverageObserver};
pub use ir::{FuzzInstance, FuzzJob};
pub use minimize::minimize;
pub use mutate::{mutate, Mutator};
pub use oracle::{
    run_exec, run_exec_with, ExecOutcome, InvariantProfile, OracleFailure, OracleSet, Subject,
};
pub use run::{FailureReport, FuzzConfig, FuzzReport, FuzzSession};
