//! The five-headed oracle: what "the fuzzer found something" means.
//!
//! Every candidate instance is judged by up to five independent checks,
//! in order, stopping at the first failure:
//!
//! 1. **Invariants** — the `dagsched-verify` suite (band capacity per
//!    Observation 3, allotment discipline per Lemma 1, δ-goodness, work
//!    conservation) attached to a full run. The suite is built lenient so
//!    the loop collects violations rather than unwinding; under the
//!    `verify-strict` feature the semantics are identical, only the
//!    failure transport differs.
//! 2. **Kernel vs scan** — the run repeated under
//!    [`WindowMode::EventKernel`] and [`WindowMode::ReferenceScan`] must
//!    produce the same outcome, the same step count, and byte-identical
//!    JSONL event streams.
//! 3. **Paused vs one-shot** — a [`SimDriver`] paused at several
//!    deterministically-derived horizons must finish byte-identical to the
//!    one-shot kernel run (the pacing-invisibility contract).
//! 4. **Delta vs rebuild** — the run repeated under
//!    [`HandoffMode::Delta`] and [`HandoffMode::Rebuild`] must produce the
//!    same outcome, step count and JSONL stream (the incremental-handoff
//!    contract from DESIGN.md §4.8).
//! 5. **Grouped vs scalar** — a uniform single-group
//!    [`MachineGroups`] platform at the base config's speed must be
//!    byte-identical (outcome, step count, JSONL) to the frozen
//!    [`PlatformMode::Scalar`] twin — the related-machines refactor's
//!    scalar-twin contract (DESIGN.md §4.9). This head always compares the
//!    *uniform* platform, whatever group shape the candidate is judged
//!    under elsewhere.
//!
//! A simulation error from any head is itself a failure (`sim-error`) —
//! that is how scheduler mutants that emit invalid allocations are caught.
//!
//! The coverage features of head 1's run are returned alongside the
//! verdict, so one exec yields both signals with at most eight simulations.
//!
//! All heads run over a caller-supplied *base* [`SimConfig`]
//! ([`run_exec_with`]) so the fuzz loop can judge candidates under the
//! mutated window/handoff configuration axis; the differential heads
//! override only the knob they are comparing.

use crate::coverage::CoverageObserver;
use dagsched_core::{AlgoParams, MachineGroups, Rng64, Time};
use dagsched_engine::{
    simulate_observed, HandoffMode, Observers, OnlineScheduler, PlatformMode, SimConfig, SimDriver,
    SimObserver, SimResult, WindowMode,
};
use dagsched_sched::{SchedulerS, SchedulerSProfit};
use dagsched_verify::{EventLog, InvariantSuite, WorkConservationChecker};
use dagsched_workload::Instance;
use std::collections::BTreeSet;

/// Which invariant checkers apply to a subject scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantProfile {
    /// The full scheduler-S suite (band, allotment, δ-good, work).
    SchedulerS {
        /// Relax the exact-allotment discipline (the S-wc variant).
        backfill: bool,
    },
    /// Only the universal work-conservation checker (baseline schedulers).
    WorkOnly,
    /// No invariant head (differential oracles only).
    Off,
}

/// The scheduler under test plus the invariant vocabulary that applies to
/// it. The default subject is the paper's scheduler S; the mutant-kill
/// tests substitute deliberately broken schedulers.
pub struct Subject {
    name: String,
    profile: InvariantProfile,
    make: Box<dyn Fn(u32) -> Box<dyn OnlineScheduler>>,
}

impl Subject {
    /// A subject from a factory closure (called once per simulation with
    /// the instance's machine count).
    pub fn new(
        name: impl Into<String>,
        profile: InvariantProfile,
        make: impl Fn(u32) -> Box<dyn OnlineScheduler> + 'static,
    ) -> Subject {
        Subject {
            name: name.into(),
            profile,
            make: Box::new(make),
        }
    }

    /// The default subject: scheduler S at ε = 1 with the full suite.
    pub fn scheduler_s() -> Subject {
        Subject::new("S", InvariantProfile::SchedulerS { backfill: false }, |m| {
            Box::new(SchedulerS::with_epsilon(m, 1.0))
        })
    }

    /// The general-profit subject: S-profit at ε = 1. Its slot-assignment
    /// admission deliberately breaks S's exact-allotment discipline, so only
    /// the universal work-conservation invariant applies; the differential
    /// heads (kernel/pause/handoff/twin) carry the byte-equality burden —
    /// which is exactly where the slot-plan fast path would show a crack.
    pub fn scheduler_s_profit() -> Subject {
        Subject::new("S-profit", InvariantProfile::WorkOnly, |m| {
            Box::new(SchedulerSProfit::with_epsilon(m, 1.0))
        })
    }

    /// The subject's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiate the scheduler for `m` machines.
    pub fn instantiate(&self, m: u32) -> Box<dyn OnlineScheduler> {
        (self.make)(m)
    }
}

/// Which oracle heads run. All on by default; the mutant-kill tests switch
/// the differential heads off for speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleSet {
    /// Head 1: the invariant suite.
    pub invariants: bool,
    /// Head 2: kernel-vs-scan byte equality.
    pub kernel_diff: bool,
    /// Head 3: paused-vs-one-shot byte equality.
    pub pause_diff: bool,
    /// Head 4: delta-vs-rebuild handoff byte equality.
    pub handoff_diff: bool,
    /// Head 5: uniform-grouped-vs-scalar-twin byte equality.
    pub twin_diff: bool,
}

impl Default for OracleSet {
    fn default() -> OracleSet {
        OracleSet {
            invariants: true,
            kernel_diff: true,
            pause_diff: true,
            handoff_diff: true,
            twin_diff: true,
        }
    }
}

/// A failed oracle head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// Which head failed: `invariants`, `kernel-vs-scan`,
    /// `paused-vs-oneshot`, `delta-vs-rebuild`, `grouped-vs-scalar`, or
    /// `sim-error`.
    pub oracle: &'static str,
    /// Human-readable evidence (violation list or first diverging line).
    pub detail: String,
}

/// The result of one fuzz exec: coverage features plus an optional failure.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Feature ids from the invariant head's run.
    pub features: BTreeSet<u32>,
    /// The first failing oracle head, if any.
    pub failure: Option<OracleFailure>,
}

fn first_diff(label: &str, a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("{label}: line {i}: {la:.120} != {lb:.120}");
        }
    }
    format!(
        "{label}: streams are a prefix of each other ({} vs {} lines)",
        a.lines().count(),
        b.lines().count()
    )
}

fn run_under(
    inst: &Instance,
    subject: &Subject,
    cfg: &SimConfig,
    label: &str,
) -> Result<(SimResult, String), OracleFailure> {
    let mut log = EventLog::new();
    let mut sched = subject.instantiate(inst.m());
    match simulate_observed(inst, sched.as_mut(), cfg, &mut log) {
        Ok(r) => Ok((r, log.to_jsonl())),
        Err(e) => Err(OracleFailure {
            oracle: "sim-error",
            detail: format!("{label}: {e}"),
        }),
    }
}

fn run_windowed(
    inst: &Instance,
    subject: &Subject,
    cfg: &SimConfig,
    window: WindowMode,
) -> Result<(SimResult, String), OracleFailure> {
    let cfg = SimConfig {
        window,
        ..cfg.clone()
    };
    run_under(inst, subject, &cfg, &format!("{window:?}"))
}

/// Run one candidate through the enabled oracle heads under the default
/// [`SimConfig`] (event kernel, delta handoff). See [`run_exec_with`].
pub fn run_exec(
    inst: &Instance,
    subject: &Subject,
    set: &OracleSet,
    pause_salt: u64,
    replay_seed: Option<u64>,
) -> ExecOutcome {
    run_exec_with(
        inst,
        subject,
        set,
        pause_salt,
        replay_seed,
        &SimConfig::default(),
    )
}

/// Run one candidate through the enabled oracle heads over `base`.
///
/// `base` is the engine configuration the candidate is judged under — the
/// fuzz loop passes [`FuzzInstance::base_config`](crate::ir::FuzzInstance)
/// so the mutated window/handoff axis actually takes effect. Heads 2 and 4
/// override the knob they compare (window resp. handoff) and inherit the
/// rest.
///
/// `pause_salt` seeds head 3's pause schedule; the caller derives it
/// deterministically (from the master RNG in the fuzz loop, from the
/// instance's content hash on replay). `replay_seed`, when given, is
/// published to `dagsched-verify`'s panic context so a strict-mode unwind
/// prints a reproduction command.
pub fn run_exec_with(
    inst: &Instance,
    subject: &Subject,
    set: &OracleSet,
    pause_salt: u64,
    replay_seed: Option<u64>,
    base: &SimConfig,
) -> ExecOutcome {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    let cfg = base.clone();
    if let Some(seed) = replay_seed {
        dagsched_verify::context::set_replay_seed(seed);
    }

    // Head 1 (always simulated — it carries the coverage signal).
    let mut cov = CoverageObserver::new(params.c());
    let mut failure: Option<OracleFailure>;
    {
        let mut sched = subject.instantiate(inst.m());
        let run_with =
            |obs: &mut dyn SimObserver, sched: &mut dyn OnlineScheduler| -> Option<OracleFailure> {
                match simulate_observed(inst, sched, &cfg, obs) {
                    Ok(_) => None,
                    Err(e) => Some(OracleFailure {
                        oracle: "sim-error",
                        detail: e.to_string(),
                    }),
                }
            };
        match subject.profile {
            InvariantProfile::SchedulerS { backfill } if set.invariants => {
                let mut suite = InvariantSuite::for_scheduler_s(params);
                if backfill {
                    suite = suite.allow_backfill();
                }
                let mut suite = suite.lenient();
                {
                    let mut fan = Observers::new(vec![&mut suite, &mut cov]);
                    failure = run_with(&mut fan, sched.as_mut());
                }
                if failure.is_none() {
                    let vs = suite.violations();
                    if !vs.is_empty() {
                        let mut lines: Vec<String> =
                            vs.iter().take(4).map(|v| v.to_string()).collect();
                        if vs.len() > 4 {
                            lines.push(format!("... and {} more", vs.len() - 4));
                        }
                        failure = Some(OracleFailure {
                            oracle: "invariants",
                            detail: lines.join("; "),
                        });
                    }
                }
            }
            InvariantProfile::WorkOnly if set.invariants => {
                let mut work = WorkConservationChecker::new().lenient();
                {
                    let mut fan = Observers::new(vec![&mut work, &mut cov]);
                    failure = run_with(&mut fan, sched.as_mut());
                }
                if failure.is_none() && !work.violations().is_empty() {
                    failure = Some(OracleFailure {
                        oracle: "invariants",
                        detail: work.violations()[0].to_string(),
                    });
                }
            }
            _ => {
                failure = run_with(&mut cov, sched.as_mut());
            }
        }
    }
    if failure.is_some() {
        return ExecOutcome {
            features: cov.into_features(),
            failure,
        };
    }

    // Head 2: kernel vs scan byte equality.
    let mut one_shot: Option<(SimResult, String)> = None;
    if set.kernel_diff {
        let kernel = run_windowed(inst, subject, &cfg, WindowMode::EventKernel);
        let scan = run_windowed(inst, subject, &cfg, WindowMode::ReferenceScan);
        match (kernel, scan) {
            (Ok(k), Ok(s)) => {
                if !k.0.same_outcome(&s.0) || k.0.steps_executed != s.0.steps_executed {
                    failure =
                        Some(OracleFailure {
                            oracle: "kernel-vs-scan",
                            detail: format!(
                            "outcome diverges: kernel profit {} steps {}, scan profit {} steps {}",
                            k.0.total_profit, k.0.steps_executed, s.0.total_profit,
                            s.0.steps_executed
                        ),
                        });
                } else if k.1 != s.1 {
                    failure = Some(OracleFailure {
                        oracle: "kernel-vs-scan",
                        detail: first_diff("kernel != scan", &k.1, &s.1),
                    });
                } else {
                    one_shot = Some(k);
                }
            }
            (Err(f), _) | (_, Err(f)) => failure = Some(f),
        }
    }
    if failure.is_some() {
        return ExecOutcome {
            features: cov.into_features(),
            failure,
        };
    }

    // Head 3: paused driver vs one-shot, kernel mode.
    if set.pause_diff {
        let one_shot = match one_shot {
            Some(k) => Ok(k),
            None => run_windowed(inst, subject, &cfg, WindowMode::EventKernel),
        };
        match one_shot {
            Ok(base) => {
                let span = inst.stats().horizon.ticks() + 8;
                let mut prng = Rng64::seed_from(pause_salt);
                let n_pauses = 1 + prng.gen_range(6) as usize;
                let mut log = EventLog::new();
                let mut sched = subject.instantiate(inst.m());
                let mut driver = SimDriver::with_observer(
                    inst,
                    sched.as_mut(),
                    &cfg,
                    &mut log as &mut dyn SimObserver,
                );
                let mut pause_err: Option<OracleFailure> = None;
                for _ in 0..n_pauses {
                    if let Err(e) = driver.run_until(Time(prng.gen_range(span.max(1)))) {
                        pause_err = Some(OracleFailure {
                            oracle: "sim-error",
                            detail: format!("paused run: {e}"),
                        });
                        break;
                    }
                }
                let paused = match pause_err {
                    Some(f) => Err(f),
                    None => driver.finish().map_err(|e| OracleFailure {
                        oracle: "sim-error",
                        detail: format!("paused finish: {e}"),
                    }),
                };
                match paused {
                    Ok(r) => {
                        let jsonl = log.to_jsonl();
                        if !r.same_outcome(&base.0)
                            || r.steps_executed != base.0.steps_executed
                            || jsonl != base.1
                        {
                            failure = Some(OracleFailure {
                                oracle: "paused-vs-oneshot",
                                detail: first_diff("paused != one-shot", &jsonl, &base.1),
                            });
                        }
                    }
                    Err(f) => failure = Some(f),
                }
            }
            Err(f) => failure = Some(f),
        }
    }
    if failure.is_some() {
        return ExecOutcome {
            features: cov.into_features(),
            failure,
        };
    }

    // Head 4: delta vs rebuild handoff byte equality.
    if set.handoff_diff {
        let run_handoff = |handoff: HandoffMode, label: &str| {
            let cfg = SimConfig {
                handoff,
                ..cfg.clone()
            };
            run_under(inst, subject, &cfg, label)
        };
        let delta = run_handoff(HandoffMode::Delta, "delta handoff");
        let rebuild = run_handoff(HandoffMode::Rebuild, "rebuild handoff");
        match (delta, rebuild) {
            (Ok(d), Ok(r)) => {
                if !d.0.same_outcome(&r.0) || d.0.steps_executed != r.0.steps_executed {
                    failure = Some(OracleFailure {
                        oracle: "delta-vs-rebuild",
                        detail: format!(
                            "outcome diverges: delta profit {} steps {}, rebuild profit {} steps {}",
                            d.0.total_profit, d.0.steps_executed, r.0.total_profit,
                            r.0.steps_executed
                        ),
                    });
                } else if d.1 != r.1 {
                    failure = Some(OracleFailure {
                        oracle: "delta-vs-rebuild",
                        detail: first_diff("delta != rebuild", &d.1, &r.1),
                    });
                }
            }
            (Err(f), _) | (_, Err(f)) => failure = Some(f),
        }
    }
    if failure.is_some() {
        return ExecOutcome {
            features: cov.into_features(),
            failure,
        };
    }

    // Head 5: uniform grouped platform vs the frozen scalar twin. Always
    // compares the uniform platform at `cfg.speed` — a candidate judged
    // under a heterogeneous shape elsewhere still pins the twin contract
    // here, which is what keeps the refactored arithmetic honest on every
    // exec.
    if set.twin_diff {
        let uniform = MachineGroups::uniform(inst.m(), cfg.speed).expect("m >= 1");
        let grouped_cfg = SimConfig {
            groups: Some(uniform),
            platform: PlatformMode::Grouped,
            ..cfg.clone()
        };
        let scalar_cfg = SimConfig {
            groups: None,
            platform: PlatformMode::Scalar,
            ..cfg.clone()
        };
        let grouped = run_under(inst, subject, &grouped_cfg, "uniform grouped");
        let scalar = run_under(inst, subject, &scalar_cfg, "scalar twin");
        match (grouped, scalar) {
            (Ok(g), Ok(s)) => {
                if !g.0.same_outcome(&s.0) || g.0.steps_executed != s.0.steps_executed {
                    failure = Some(OracleFailure {
                        oracle: "grouped-vs-scalar",
                        detail: format!(
                            "outcome diverges: grouped profit {} steps {}, scalar profit {} steps {}",
                            g.0.total_profit, g.0.steps_executed, s.0.total_profit,
                            s.0.steps_executed
                        ),
                    });
                } else if g.1 != s.1 {
                    failure = Some(OracleFailure {
                        oracle: "grouped-vs-scalar",
                        detail: first_diff("grouped != scalar", &g.1, &s.1),
                    });
                }
            }
            (Err(f), _) | (_, Err(f)) => failure = Some(f),
        }
    }

    ExecOutcome {
        features: cov.into_features(),
        failure,
    }
}
