//! The coverage signal: cheap execution features driving corpus retention.
//!
//! Classic fuzzers use branch coverage; here the interesting "branches" are
//! semantic and already surface on the [`SimObserver`] stream, so coverage
//! is a set of small integer *feature ids* derived from it:
//!
//! * which admission verdict × reason combinations fired;
//! * which density bands (powers of `c` of the density) admitted jobs
//!   landed in — Observation 3's unit of accounting;
//! * expiry-batch sizes (log₂ buckets) — the kernel's sorted batch pops;
//! * execution-window widths (log₂ buckets) — fast-forward horizon shapes;
//! * which event kinds collided on one tick (arrival/expiry/completion
//!   masks) — the kernel's tie-break cases as seen from the stream;
//! * end-time and peak-alive-set buckets.
//!
//! A candidate that produces any feature id the corpus has not produced
//! before is retained. The feature space is a few hundred ids, so the
//! corpus saturates quickly on boring mutations and only structurally new
//! behavior survives — which is the point.

use dagsched_core::{JobId, NodeId, Speed, Time};
use dagsched_engine::{AdmissionDecision, AdmissionEvent, AdmissionReason, JobInfo, SimObserver};
use std::collections::BTreeSet;

/// `floor(log2(x)) + 1` for x > 0, else 0 — a stable small bucket index.
fn log2_bucket(x: u64) -> u32 {
    64 - x.leading_zeros()
}

fn reason_index(r: AdmissionReason) -> u32 {
    match r {
        AdmissionReason::BandCapacity => 0,
        AdmissionReason::NotDeltaGood => 1,
        AdmissionReason::Infeasible => 2,
        AdmissionReason::DemandBound => 3,
        AdmissionReason::SpanInfeasible => 4,
        AdmissionReason::DeadlinePassed => 5,
        AdmissionReason::Unconditional => 6,
    }
}

const ARRIVED: u8 = 1;
const EXPIRED: u8 = 2;
const COMPLETED: u8 = 4;

/// Observer that folds one run's event stream into a feature-id set.
#[derive(Debug)]
pub struct CoverageObserver {
    /// Band base `c` (densities are bucketed by `floor(log_c v)`).
    c: f64,
    /// Density per job id, recorded at arrival.
    density: Vec<f64>,
    features: BTreeSet<u32>,
    // Per-tick collision mask state.
    cur_t: u64,
    cur_mask: u8,
    // Run-length state for expiry batches.
    expiry_t: u64,
    expiry_run: u64,
}

impl CoverageObserver {
    /// A fresh observer bucketing densities by powers of `c`.
    pub fn new(c: f64) -> CoverageObserver {
        CoverageObserver {
            c,
            density: Vec::new(),
            features: BTreeSet::new(),
            cur_t: u64::MAX,
            cur_mask: 0,
            expiry_t: u64::MAX,
            expiry_run: 0,
        }
    }

    /// The feature ids this run produced. Call after the run (flushing of
    /// per-tick state happens in [`SimObserver::on_end`]).
    pub fn features(&self) -> &BTreeSet<u32> {
        &self.features
    }

    /// Consume the observer, returning its feature set.
    pub fn into_features(self) -> BTreeSet<u32> {
        self.features
    }

    fn flush_tick(&mut self) {
        if self.cur_mask.count_ones() >= 2 {
            // Feature block 152..160: event kinds colliding on one tick.
            self.features.insert(152 + self.cur_mask as u32);
        }
        self.cur_mask = 0;
    }

    fn flush_expiry_run(&mut self) {
        if self.expiry_run > 0 {
            // Feature block 96..112: expiry-batch size buckets.
            self.features
                .insert(96 + log2_bucket(self.expiry_run).min(15));
            self.expiry_run = 0;
        }
    }

    fn note(&mut self, t: Time, bit: u8) {
        if t.ticks() != self.cur_t {
            self.flush_tick();
            self.cur_t = t.ticks();
        }
        self.cur_mask |= bit;
    }
}

impl SimObserver for CoverageObserver {
    fn on_job_arrival(&mut self, now: Time, info: &JobInfo) {
        let idx = info.id.index();
        if self.density.len() <= idx {
            self.density.resize(idx + 1, 0.0);
        }
        self.density[idx] = info.profit.max_profit() as f64 / info.work.units().max(1) as f64;
        self.note(now, ARRIVED);
    }

    fn on_admission(&mut self, _now: Time, event: AdmissionEvent) {
        // Feature block 0..24: verdict × reason.
        let id = match event.decision {
            AdmissionDecision::Admitted => 7,
            AdmissionDecision::Deferred(r) => 8 + reason_index(r),
            AdmissionDecision::Rejected(r) => 16 + reason_index(r),
        };
        self.features.insert(id);
        if matches!(event.decision, AdmissionDecision::Admitted) {
            // Feature block 32..96: the density band the admitted job
            // occupies, `floor(log_c v)` clamped to ±31.
            let v = self
                .density
                .get(event.job.index())
                .copied()
                .unwrap_or(1.0)
                .max(f64::MIN_POSITIVE);
            let band = (v.ln() / self.c.ln()).floor().clamp(-31.0, 32.0) as i32;
            self.features.insert(32 + (band + 31) as u32);
        }
    }

    fn on_window(
        &mut self,
        _at: Time,
        ticks: u64,
        jobs: &[(JobId, u32)],
        _alloc: &[(JobId, u32)],
        _progress: &[(JobId, u64)],
    ) {
        // Feature block 112..152: window-width buckets.
        self.features.insert(112 + log2_bucket(ticks).min(39));
        // Feature block 200..232: alive-set size buckets.
        self.features
            .insert(200 + log2_bucket(jobs.len() as u64).min(31));
        self.flush_expiry_run();
    }

    fn on_node_complete(&mut self, _at: Time, _job: JobId, _node: NodeId) {}

    fn on_job_complete(&mut self, at: Time, _job: JobId, _profit: u64) {
        self.note(at, COMPLETED);
        self.flush_expiry_run();
    }

    fn on_job_expired(&mut self, at: Time, job: JobId) {
        let _ = job;
        self.note(at, EXPIRED);
        if at.ticks() == self.expiry_t {
            self.expiry_run += 1;
        } else {
            self.flush_expiry_run();
            self.expiry_t = at.ticks();
            self.expiry_run = 1;
        }
    }

    fn on_end(&mut self, at: Time) {
        self.flush_tick();
        self.flush_expiry_run();
        // Feature block 160..200: end-time buckets.
        self.features.insert(160 + log2_bucket(at.ticks()).min(39));
    }

    fn on_start(&mut self, _m: u32, _speed: Speed, _horizon: Time) {}
}

/// The accumulated corpus-wide feature set.
#[derive(Debug, Default)]
pub struct CoverageMap {
    seen: BTreeSet<u32>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Merge one run's features; returns how many were new.
    pub fn merge(&mut self, features: &BTreeSet<u32>) -> usize {
        let before = self.seen.len();
        self.seen.extend(features.iter().copied());
        self.seen.len() - before
    }

    /// Total distinct features observed so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_engine::{simulate_observed, SimConfig};
    use dagsched_sched::SchedulerS;
    use dagsched_workload::WorkloadGen;

    #[test]
    fn expiry_batches_and_collisions_bucket() {
        let mut cov = CoverageObserver::new(2.0);
        cov.on_job_expired(Time(5), JobId(0));
        cov.on_job_expired(Time(5), JobId(1));
        cov.on_job_expired(Time(5), JobId(2));
        cov.on_job_complete(Time(5), JobId(3), 1);
        cov.on_end(Time(6));
        // Batch of 3 -> bucket 2; expiry+completion collided at t=5.
        assert!(cov.features().contains(&(96 + 2)));
        assert!(cov
            .features()
            .contains(&(152 + (EXPIRED | COMPLETED) as u32)));
    }

    #[test]
    fn a_real_run_produces_stable_features() {
        let inst = WorkloadGen::standard(3, 12, 5).generate().unwrap();
        let run = || {
            let mut cov = CoverageObserver::new(1.5);
            let mut s = SchedulerS::with_epsilon(3, 1.0);
            simulate_observed(&inst, &mut s, &SimConfig::default(), &mut cov).unwrap();
            cov.into_features()
        };
        let f = run();
        assert!(!f.is_empty());
        assert_eq!(f, run(), "features are deterministic");
        // At least one admission verdict and one window width fired.
        assert!(f.iter().any(|&id| id < 24));
        assert!(f.iter().any(|&id| (112..152).contains(&id)));
    }

    #[test]
    fn coverage_map_counts_new_features_only() {
        let mut map = CoverageMap::new();
        let a: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
        let b: BTreeSet<u32> = [3, 4].into_iter().collect();
        assert_eq!(map.merge(&a), 3);
        assert_eq!(map.merge(&b), 1);
        assert_eq!(map.merge(&b), 0);
        assert_eq!(map.len(), 4);
    }
}
