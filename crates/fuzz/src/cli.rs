//! The `dagsched fuzz` subcommand.
//!
//! Two modes:
//!
//! * `dagsched fuzz [--seed N] [--execs N] [--json]` — run the bounded
//!   coverage-guided loop. With `--json`, stdout carries only the
//!   deterministic report (two runs with the same seed diff clean) and the
//!   timing line goes to stderr — this is what the CI `fuzz-smoke` job
//!   diffs. Failures are minimized and written as replay fixtures
//!   (`fuzz-min-<i>.txt`) next to the working directory, each with its
//!   one-line replay command.
//! * `dagsched fuzz --replay <path|seed>` — re-judge a fixture file
//!   through all five oracle heads (exit non-zero on failure), or, given
//!   a bare integer, re-run the bounded loop under that master seed.

use crate::oracle::{run_exec, OracleSet, Subject};
use crate::run::{FuzzConfig, FuzzReport, FuzzSession};
use dagsched_workload::codec;
use std::fmt::Write as _;

/// Usage text for `dagsched fuzz help`.
pub const USAGE: &str = "\
usage: dagsched fuzz [--seed N] [--execs N] [--json]
       dagsched fuzz --replay <path|seed>

Coverage-guided adversarial workload fuzzing with five oracle heads:
the invariant suite, kernel-vs-scan byte equality, the
paused-vs-one-shot differential, the delta-vs-rebuild handoff
differential, and the grouped-vs-scalar platform twin
differential. A fixed --seed reproduces the exact
corpus trajectory; failures are delta-debugged and written as replay
fixtures (fuzz-min-<i>.txt).

options:
  --seed N       master seed (default 0xDA65EED)
  --execs N      exec budget (default 1000)
  --json         deterministic JSON report on stdout, timing on stderr
  --replay T     re-judge a fixture file, or re-run a master seed
";

/// A parsed `dagsched fuzz` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzCmd {
    /// Run the bounded loop.
    Run {
        /// Master seed.
        seed: u64,
        /// Exec budget.
        execs: u64,
        /// Deterministic JSON to stdout instead of the human summary.
        json: bool,
    },
    /// Replay a fixture path or a master seed.
    Replay {
        /// Path to a `dagsched-instance v1` file, or a bare integer seed.
        target: String,
    },
    /// Print usage.
    Help,
}

/// Parse `dagsched fuzz` arguments (everything after the subcommand).
pub fn parse(args: &[String]) -> Result<FuzzCmd, String> {
    let mut seed = FuzzConfig::default().master_seed;
    let mut execs = FuzzConfig::default().max_execs;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "help" | "--help" | "-h" => return Ok(FuzzCmd::Help),
            "--json" => json = true,
            "--seed" | "--execs" => {
                let flag = args[i].clone();
                i += 1;
                let v = args.get(i).ok_or_else(|| format!("{flag} needs a value"))?;
                let n: u64 = parse_u64(v).ok_or_else(|| format!("{flag}: bad number {v:?}"))?;
                if flag == "--seed" {
                    seed = n;
                } else {
                    execs = n.max(1);
                }
            }
            "--replay" => {
                i += 1;
                let target = args
                    .get(i)
                    .ok_or_else(|| "--replay needs a path or seed".to_string())?;
                return Ok(FuzzCmd::Replay {
                    target: target.clone(),
                });
            }
            other => return Err(format!("unknown argument {other:?}; try `fuzz help`")),
        }
        i += 1;
    }
    Ok(FuzzCmd::Run { seed, execs, json })
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn fixture_text(f: &crate::run::FailureReport, i: usize, seed: u64) -> String {
    format!(
        "# minimized fuzz counterexample {i}\n\
         # oracle: {}\n\
         # detail: {}\n\
         # found at exec {} of master seed {seed:#x}\n\
         # replay: dagsched fuzz --replay fuzz-min-{i}.txt\n\
         {}",
        f.oracle,
        f.detail.replace('\n', " "),
        f.exec_index,
        f.minimized
    )
}

fn run_summary(report: &FuzzReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{}", report.timing_line());
    let _ = writeln!(
        s,
        "  seed {:#x}, trajectory {:#018x}, {} invalid candidate(s)",
        report.master_seed, report.trajectory, report.invalid
    );
    for (i, f) in report.failures.iter().enumerate() {
        let _ = writeln!(
            s,
            "  FAILURE {i}: [{}] {}\n    fixture: fuzz-min-{i}.txt\n    replay: dagsched fuzz --replay fuzz-min-{i}.txt",
            f.oracle, f.detail
        );
    }
    if report.failures.is_empty() {
        let _ = writeln!(s, "  no oracle failures");
    }
    s
}

/// Judge one decoded instance through all five oracle heads; the replay
/// verdict text lists each head. Used by `--replay <path>` and the fixture
/// regression test. Fixtures carry no engine-configuration axis, so replay
/// always judges under the defaults (event kernel, delta handoff,
/// carry-over on, FIFO pick, uniform platform).
pub fn replay_instance(text: &str) -> Result<String, String> {
    let inst = codec::decode(text).map_err(|e| format!("cannot decode fixture: {e}"))?;
    let salt = crate::ir::fnv1a(text.as_bytes());
    let subject = Subject::scheduler_s();
    let off = OracleSet {
        invariants: false,
        kernel_diff: false,
        pause_diff: false,
        handoff_diff: false,
        twin_diff: false,
    };
    let heads: [(&str, OracleSet); 5] = [
        (
            "invariants",
            OracleSet {
                invariants: true,
                ..off
            },
        ),
        (
            "kernel-vs-scan",
            OracleSet {
                kernel_diff: true,
                ..off
            },
        ),
        (
            "paused-vs-oneshot",
            OracleSet {
                pause_diff: true,
                ..off
            },
        ),
        (
            "delta-vs-rebuild",
            OracleSet {
                handoff_diff: true,
                ..off
            },
        ),
        (
            "grouped-vs-scalar",
            OracleSet {
                twin_diff: true,
                ..off
            },
        ),
    ];
    let mut out = String::new();
    let mut failed = false;
    for (name, set) in &heads {
        let outcome = run_exec(&inst, &subject, set, salt, None);
        match outcome.failure {
            None => {
                let _ = writeln!(out, "  {name:<18} PASS");
            }
            Some(f) => {
                failed = true;
                let _ = writeln!(out, "  {name:<18} FAIL [{}] {}", f.oracle, f.detail);
            }
        }
    }
    if failed {
        Err(format!("replay failed:\n{out}"))
    } else {
        Ok(format!("replay clean under all five oracles:\n{out}"))
    }
}

/// Execute a parsed command. `Ok` text goes to stdout; `Err` text to stderr
/// with a failing exit code. Side effects: `Run` writes one
/// `fuzz-min-<i>.txt` fixture per failure, and in `--json` mode prints the
/// timing line to stderr itself (stdout must stay deterministic).
pub fn execute(cmd: &FuzzCmd) -> Result<String, String> {
    match cmd {
        FuzzCmd::Help => Ok(USAGE.to_string()),
        FuzzCmd::Replay { target } => {
            if std::path::Path::new(target).is_file() {
                let text = std::fs::read_to_string(target)
                    .map_err(|e| format!("cannot read {target:?}: {e}"))?;
                replay_instance(&text).map(|ok| format!("{target}: {ok}"))
            } else if let Some(seed) = parse_u64(target) {
                execute(&FuzzCmd::Run {
                    seed,
                    execs: FuzzConfig::default().max_execs,
                    json: false,
                })
            } else {
                Err(format!(
                    "--replay target {target:?} is neither a file nor a seed"
                ))
            }
        }
        FuzzCmd::Run { seed, execs, json } => {
            let cfg = FuzzConfig {
                master_seed: *seed,
                max_execs: *execs,
                ..FuzzConfig::default()
            };
            let report = FuzzSession::new(cfg).run();
            for (i, f) in report.failures.iter().enumerate() {
                let path = format!("fuzz-min-{i}.txt");
                std::fs::write(&path, fixture_text(f, i, *seed))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            let out = if *json {
                eprintln!("{}", report.timing_line());
                report.to_json()
            } else {
                run_summary(&report)
            };
            if report.failures.is_empty() {
                Ok(out)
            } else {
                Err(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_covers_the_grammar() {
        assert_eq!(
            parse(&s(&[])),
            Ok(FuzzCmd::Run {
                seed: FuzzConfig::default().master_seed,
                execs: FuzzConfig::default().max_execs,
                json: false
            })
        );
        assert_eq!(
            parse(&s(&["--seed", "0x2A", "--execs", "9", "--json"])),
            Ok(FuzzCmd::Run {
                seed: 42,
                execs: 9,
                json: true
            })
        );
        assert_eq!(
            parse(&s(&["--replay", "some/file.txt"])),
            Ok(FuzzCmd::Replay {
                target: "some/file.txt".into()
            })
        );
        assert_eq!(parse(&s(&["help"])), Ok(FuzzCmd::Help));
        assert!(parse(&s(&["--seed"])).is_err());
        assert!(parse(&s(&["--what"])).is_err());
    }

    #[test]
    fn replay_of_a_clean_instance_passes_all_heads() {
        let inst = crate::corpus::seed_corpus()[0].to_instance().unwrap();
        let text = codec::encode(&inst);
        let verdict = replay_instance(&text).expect("clean replay");
        assert_eq!(verdict.matches("PASS").count(), 5);
        assert!(verdict.contains("delta-vs-rebuild"));
        assert!(verdict.contains("grouped-vs-scalar"));
    }

    #[test]
    fn replay_rejects_garbage() {
        assert!(replay_instance("not an instance").is_err());
    }

    #[test]
    fn replay_target_falls_back_to_seed() {
        // A bare number that is not a file re-runs the loop; use a tiny
        // budget via parse-level Run instead to keep the test fast — here
        // just check the classification error for non-numeric non-files.
        let r = execute(&FuzzCmd::Replay {
            target: "no-such-file-and-not-a-number".into(),
        });
        assert!(r.is_err());
    }
}
