//! The coverage-guided fuzz loop.
//!
//! One *exec* = pick a corpus entry, apply a few weighted mutators, repair
//! into an [`Instance`](dagsched_workload::Instance), and judge it with the
//! oracle heads. Candidates that light up new coverage features join the
//! corpus; failing candidates are minimized and recorded. Everything —
//! corpus selection, mutator choice, pause schedules — draws from one
//! master [`Rng64`], so a fixed master seed reproduces the exact corpus
//! trajectory, exec count and failure list, byte for byte. The
//! [`FuzzReport::trajectory`] digest folds the per-exec coverage deltas
//! into one u64 precisely so "byte-identical trajectory" is one comparison.

use crate::corpus::seed_corpus;
use crate::coverage::CoverageMap;
use crate::ir::{fnv1a, FuzzInstance};
use crate::minimize::minimize;
use crate::mutate::mutate;
use crate::oracle::{run_exec_with, OracleSet, Subject};
use dagsched_core::Rng64;
use dagsched_engine::SimConfig;
use dagsched_workload::codec;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Fuzz loop configuration. `Default` is the `dagsched fuzz` default:
/// master seed `0xDA65EED`, 1000 execs, full oracle set, minimization on.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// The master seed; the whole trajectory is a pure function of it.
    pub master_seed: u64,
    /// Exec budget (attempted candidates, valid or not).
    pub max_execs: u64,
    /// Stop after this many failures.
    pub max_failures: usize,
    /// Which oracle heads run.
    pub oracles: OracleSet,
    /// Delta-debug failing instances before reporting.
    pub minimize: bool,
    /// Oracle-call budget per minimization.
    pub minimize_budget: u32,
    /// Corpus size cap (retention stops when full).
    pub max_corpus: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            master_seed: 0x0DA6_5EED,
            max_execs: 1000,
            max_failures: 3,
            oracles: OracleSet::default(),
            minimize: true,
            minimize_budget: 400,
            max_corpus: 256,
        }
    }
}

/// One recorded failure: the judging head, the evidence, and both the
/// original and minimized instances in the replay text format.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The failing oracle head.
    pub oracle: String,
    /// Evidence string from the oracle.
    pub detail: String,
    /// Exec index at which the failure surfaced.
    pub exec_index: u64,
    /// The failing instance, `dagsched-instance v1` encoded.
    pub instance: String,
    /// The minimized instance (equals `instance` when minimization is off).
    pub minimized: String,
}

/// The outcome of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Master seed the run used.
    pub master_seed: u64,
    /// Execs attempted (always reaches the budget unless failures stop it).
    pub execs: u64,
    /// Candidates that could not be repaired into a valid instance.
    pub invalid: u64,
    /// Final corpus size (seeds + retained mutants).
    pub corpus_len: usize,
    /// Distinct coverage features discovered.
    pub features: usize,
    /// FNV-1a digest of the per-exec (index, new-features, corpus-size,
    /// failed) sequence: equal digests ⇔ identical corpus trajectories.
    pub trajectory: u64,
    /// Failures found, in discovery order.
    pub failures: Vec<FailureReport>,
    /// Wall-clock duration of the loop (excluded from [`to_json`]
    /// determinism).
    pub elapsed: Duration,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl FuzzReport {
    /// Fuzz-loop throughput.
    pub fn execs_per_sec(&self) -> f64 {
        self.execs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Deterministic JSON: every field is a pure function of the config, so
    /// two runs with the same seed diff clean (timing is reported
    /// separately — see [`FuzzReport::timing_line`]).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"master_seed\": {},\n  \"execs\": {},\n  \"invalid\": {},\n  \
             \"corpus_len\": {},\n  \"features\": {},\n  \"trajectory\": \"{:#018x}\",\n  \
             \"failures\": [",
            self.master_seed,
            self.execs,
            self.invalid,
            self.corpus_len,
            self.features,
            self.trajectory
        );
        for (i, f) in self.failures.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"oracle\": \"{}\", \"exec\": {}, \"detail\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                json_escape(&f.oracle),
                f.exec_index,
                json_escape(&f.detail)
            );
        }
        if !self.failures.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// One human-readable line with the (non-deterministic) timing.
    pub fn timing_line(&self) -> String {
        format!(
            "fuzz: {} execs in {:.3}s ({:.0} execs/sec), {} features, corpus {}, {} failure(s)",
            self.execs,
            self.elapsed.as_secs_f64(),
            self.execs_per_sec(),
            self.features,
            self.corpus_len,
            self.failures.len()
        )
    }
}

/// A configured fuzzing session: config + subject scheduler(s).
pub struct FuzzSession {
    cfg: FuzzConfig,
    subject: Subject,
    /// The alternate subject candidates flagged `sprofit_subject` are
    /// judged against; `None` (custom-subject sessions) makes the flag
    /// inert so mutant-kill tests always judge their mutant.
    sprofit: Option<Subject>,
}

impl FuzzSession {
    /// A session against the default subjects: scheduler S (full suite),
    /// with candidates on the S-profit configuration axis judged against
    /// the general-profit scheduler instead.
    pub fn new(cfg: FuzzConfig) -> FuzzSession {
        FuzzSession {
            cfg,
            subject: Subject::scheduler_s(),
            sprofit: Some(Subject::scheduler_s_profit()),
        }
    }

    /// A session against a custom subject (the mutant-kill tests).
    pub fn with_subject(cfg: FuzzConfig, subject: Subject) -> FuzzSession {
        FuzzSession {
            cfg,
            subject,
            sprofit: None,
        }
    }

    /// The subject a candidate selects via its configuration axis.
    fn subject_for(&self, fi: &FuzzInstance) -> &Subject {
        match &self.sprofit {
            Some(alt) if fi.sprofit_subject => alt,
            _ => &self.subject,
        }
    }

    /// Run the loop to its exec or failure budget.
    pub fn run(&self) -> FuzzReport {
        let start = Instant::now();
        let cfg = &self.cfg;
        let mut rng = Rng64::seed_from(cfg.master_seed);
        let mut coverage = CoverageMap::new();
        let mut corpus: Vec<FuzzInstance> = seed_corpus();
        let mut failures: Vec<FailureReport> = Vec::new();
        let mut trajectory: u64 = fnv1a(&cfg.master_seed.to_le_bytes());
        let mut execs: u64 = 0;
        let mut invalid: u64 = 0;

        let judge = |inst: &dagsched_workload::Instance,
                     subject: &Subject,
                     base: &SimConfig,
                     exec_index: u64,
                     pause_salt: u64,
                     coverage: &mut CoverageMap,
                     failures: &mut Vec<FailureReport>|
         -> usize {
            let outcome = run_exec_with(
                inst,
                subject,
                &cfg.oracles,
                pause_salt,
                Some(cfg.master_seed),
                base,
            );
            let new = coverage.merge(&outcome.features);
            if let Some(f) = outcome.failure {
                let text = codec::encode(inst);
                let minimized = if cfg.minimize {
                    codec::encode(&minimize(
                        inst,
                        subject,
                        &cfg.oracles,
                        pause_salt,
                        cfg.minimize_budget,
                        base,
                    ))
                } else {
                    text.clone()
                };
                failures.push(FailureReport {
                    oracle: f.oracle.to_string(),
                    detail: f.detail,
                    exec_index,
                    instance: text,
                    minimized,
                });
            }
            new
        };

        // Establish baseline coverage from the seed corpus (each counts as
        // one exec).
        for i in 0..corpus.len() {
            if execs >= cfg.max_execs || failures.len() >= cfg.max_failures {
                break;
            }
            let pause_salt = rng.next_u64();
            let inst = corpus[i].to_instance().expect("seed corpus is valid");
            let base = corpus[i].base_config();
            let new = judge(
                &inst,
                self.subject_for(&corpus[i]),
                &base,
                execs,
                pause_salt,
                &mut coverage,
                &mut failures,
            );
            let failed = !failures.is_empty() && failures.last().unwrap().exec_index == execs;
            trajectory = step_digest(trajectory, execs, new, corpus.len(), failed);
            execs += 1;
        }

        // The mutation loop.
        while execs < cfg.max_execs && failures.len() < cfg.max_failures {
            let pick = rng.gen_range(corpus.len() as u64) as usize;
            let mut cand = corpus[pick].clone();
            let n_mut = 1 + rng.gen_range(3);
            for _ in 0..n_mut {
                mutate(&mut rng, &mut cand);
            }
            let pause_salt = rng.next_u64();
            let exec_index = execs;
            execs += 1;
            let (new, failed) = match cand.to_instance() {
                Ok(inst) => {
                    let base = cand.base_config();
                    let new = judge(
                        &inst,
                        self.subject_for(&cand),
                        &base,
                        exec_index,
                        pause_salt,
                        &mut coverage,
                        &mut failures,
                    );
                    let failed = failures.last().is_some_and(|f| f.exec_index == exec_index);
                    if new > 0 && corpus.len() < cfg.max_corpus {
                        corpus.push(cand);
                    }
                    (new, failed)
                }
                Err(_) => {
                    invalid += 1;
                    (0, false)
                }
            };
            trajectory = step_digest(trajectory, exec_index, new, corpus.len(), failed);
        }

        FuzzReport {
            master_seed: cfg.master_seed,
            execs,
            invalid,
            corpus_len: corpus.len(),
            features: coverage.len(),
            trajectory,
            failures,
            elapsed: start.elapsed(),
        }
    }
}

fn step_digest(acc: u64, exec: u64, new: usize, corpus_len: usize, failed: bool) -> u64 {
    let mut bytes = [0u8; 25];
    bytes[..8].copy_from_slice(&exec.to_le_bytes());
    bytes[8..16].copy_from_slice(&(new as u64).to_le_bytes());
    bytes[16..24].copy_from_slice(&(corpus_len as u64).to_le_bytes());
    bytes[24] = failed as u8;
    fnv1a(&bytes) ^ acc.rotate_left(13)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> FuzzConfig {
        FuzzConfig {
            master_seed: seed,
            max_execs: 40,
            ..FuzzConfig::default()
        }
    }

    /// The acceptance bar: same seed ⇒ same exec count, corpus trajectory
    /// and feature set, byte for byte.
    #[test]
    fn fixed_seed_is_byte_deterministic() {
        let a = FuzzSession::new(quick_cfg(77)).run();
        let b = FuzzSession::new(quick_cfg(77)).run();
        assert_eq!(a.execs, b.execs);
        assert_eq!(a.invalid, b.invalid);
        assert_eq!(a.corpus_len, b.corpus_len);
        assert_eq!(a.features, b.features);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.to_json(), b.to_json());
    }

    /// Different seeds take different trajectories (the digest isn't
    /// constant).
    #[test]
    fn different_seeds_diverge() {
        let a = FuzzSession::new(quick_cfg(1)).run();
        let b = FuzzSession::new(quick_cfg(2)).run();
        assert_ne!(a.trajectory, b.trajectory);
    }

    /// Scheduler S survives a healthy bounded run: no failures, and the
    /// loop discovers features beyond the seed corpus baseline.
    #[test]
    fn scheduler_s_survives_a_bounded_run() {
        let report = FuzzSession::new(FuzzConfig {
            master_seed: 0x0DA6_5EED,
            max_execs: 120,
            ..FuzzConfig::default()
        })
        .run();
        assert_eq!(report.execs, 120);
        assert!(
            report.failures.is_empty(),
            "unexpected failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (&f.oracle, &f.detail))
                .collect::<Vec<_>>()
        );
        assert!(report.features > 10, "coverage signal is alive");
        assert!(
            report.corpus_len > seed_corpus().len(),
            "retention keeps feature-discovering mutants"
        );
    }

    /// The general-profit scheduler survives a bounded run as the sole
    /// subject — every candidate (including general-profit mutants grown by
    /// the profit mutators) is judged against S-profit's slot-plan fast
    /// path under all five heads.
    #[test]
    fn general_profit_subject_survives_a_bounded_run() {
        let report = FuzzSession::with_subject(
            FuzzConfig {
                master_seed: 0x5E65,
                max_execs: 80,
                ..FuzzConfig::default()
            },
            crate::oracle::Subject::scheduler_s_profit(),
        )
        .run();
        assert_eq!(report.execs, 80);
        assert!(
            report.failures.is_empty(),
            "unexpected failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (&f.oracle, &f.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let r = FuzzSession::new(quick_cfg(5)).run();
        let j = r.to_json();
        assert!(j.contains("\"master_seed\": 5"));
        assert!(j.contains("\"trajectory\": \"0x"));
        assert!(!r.timing_line().is_empty());
    }
}
