//! Mutable intermediate representation of a workload instance.
//!
//! [`Instance`] and `DagJobSpec` are validated, immutable values — every
//! construction re-checks sortedness, acyclicity and id density. Mutators
//! need the opposite: a representation that tolerates any intermediate
//! state and can always be *repaired* into a valid instance. [`FuzzInstance`]
//! is that representation. Edges are kept forward-only (`from < to` in node
//! index order), which makes every reachable edge set acyclic by
//! construction, and [`FuzzInstance::to_instance`] clamps, sorts and
//! re-labels so that the conversion cannot fail on any sanitizable state.

use dagsched_core::{JobId, MachineGroups, NodeId, Result, SchedError, Speed, Time, Work};
use dagsched_dag::{DagBuilder, DagJobSpec};
use dagsched_engine::{HandoffMode, NodePick, SimConfig, WindowMode};
use dagsched_workload::{Instance, JobSpec, StepProfitFn};

/// Upper bounds keeping mutated instances small enough that one fuzz exec
/// stays in the microsecond-to-millisecond range. Values past a bound are
/// clamped, not rejected — mutators never have to check.
pub mod limits {
    /// Maximum machine count.
    pub const MAX_M: u32 = 8;
    /// Maximum number of jobs per instance.
    pub const MAX_JOBS: usize = 24;
    /// Maximum DAG nodes per job.
    pub const MAX_NODES: usize = 24;
    /// Maximum work per node.
    pub const MAX_WORK: u64 = 64;
    /// Maximum arrival time.
    pub const MAX_ARRIVAL: u64 = 400;
    /// Maximum relative deadline.
    pub const MAX_DEADLINE: u64 = 600;
    /// Maximum per-job profit.
    pub const MAX_PROFIT: u64 = 1 << 20;
    /// Maximum *extra* profit steps past the first (general profit
    /// functions; the first step is the deadline/profit pair).
    pub const MAX_PROFIT_STEPS: usize = 4;
    /// Maximum machine groups on the platform axis.
    pub const MAX_GROUPS: usize = 3;
    /// Maximum speed numerator/denominator on the platform axis (keeps the
    /// group lcm scale small).
    pub const MAX_SPEED: u32 = 4;
}

/// One job in mutable form: a general-profit job with a forward-edge DAG.
///
/// The common case is a pure deadline job (`extra_steps` empty, `tail`
/// zero). The profit mutators grow a general step function from it: each
/// `(bound, value)` in `extra_steps` is a later, lower profit step, and a
/// nonzero `tail` keeps the job worth something forever (so it never
/// expires). Sanitization in [`FuzzInstance::to_instance`] repairs any
/// intermediate state into a valid strictly-decreasing step function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzJob {
    /// Arrival time.
    pub arrival: u64,
    /// Relative deadline (the first profit step, at `arrival + deadline`).
    pub deadline: u64,
    /// Profit for completing by the deadline.
    pub profit: u64,
    /// Later profit steps `(relative bound, value)`; repaired to strictly
    /// increasing bounds and strictly decreasing values below `profit`.
    pub extra_steps: Vec<(u64, u64)>,
    /// Profit for completing after the last step (0 = the job expires).
    pub tail: u64,
    /// Node works, indexed by node id.
    pub works: Vec<u64>,
    /// DAG edges; only pairs with `from < to` survive sanitization, so any
    /// edge list denotes an acyclic graph.
    pub edges: Vec<(u32, u32)>,
}

impl FuzzJob {
    /// Total work `W` (after clamping node works to the limits).
    pub fn total_work(&self) -> u64 {
        self.works
            .iter()
            .take(limits::MAX_NODES)
            .map(|&w| w.clamp(1, limits::MAX_WORK))
            .sum()
    }

    /// Span `L`: the longest path in clamped work, computed by a forward DP
    /// (valid because sanitized edges always point forward).
    pub fn span(&self) -> u64 {
        let n = self.works.len().min(limits::MAX_NODES);
        if n == 0 {
            return 1;
        }
        let w = |i: usize| -> u64 { self.works[i].clamp(1, limits::MAX_WORK) };
        let mut height: Vec<u64> = (0..n).map(w).collect();
        let mut edges: Vec<(u32, u32)> = self
            .edges
            .iter()
            .copied()
            .filter(|&(u, v)| (u as usize) < n && (v as usize) < n && u < v)
            .collect();
        edges.sort_unstable();
        for &(u, v) in &edges {
            let via = height[u as usize] + w(v as usize);
            if via > height[v as usize] {
                height[v as usize] = via;
            }
        }
        height.iter().copied().max().unwrap_or(1)
    }

    /// Absolute instant of the *first* profit step `arrival + deadline`
    /// (clamped) — the expiry for pure deadline jobs, and the cliff the
    /// collision mutators aim at for general-profit jobs.
    pub fn expiry(&self) -> u64 {
        self.arrival.min(limits::MAX_ARRIVAL) + self.deadline.clamp(1, limits::MAX_DEADLINE)
    }
}

/// The deterministic [`NodePick`] policies the configuration axis cycles
/// through. [`NodePick::Random`] is deliberately excluded — it forces the
/// naive path, which would silently disable the differential heads'
/// fast-forward coverage.
pub const PICKS: &[NodePick] = &[
    NodePick::Fifo,
    NodePick::Lifo,
    NodePick::CriticalPathFirst,
    NodePick::AdversarialLowHeight,
];

/// A whole instance in mutable form, plus the engine-configuration axis
/// the candidate is judged under. The axis fields are *not* part of the
/// workload — the codec neither writes nor reads them, so promoted replay
/// fixtures always re-judge under the defaults (event kernel + delta
/// handoff, carry-over on, FIFO pick, uniform platform) — but they are
/// mutable state the config mutators toggle, which lets the coverage loop
/// explore the scan window, the rebuild handoff, carry-over, node-pick
/// policies, related-machines group shapes and the general-profit subject
/// without a separate fuzzing harness per configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzInstance {
    /// Machine count.
    pub m: u32,
    /// The jobs, in no particular order (sorted at conversion).
    pub jobs: Vec<FuzzJob>,
    /// Judge under [`WindowMode::ReferenceScan`] instead of the kernel.
    pub scan_window: bool,
    /// Judge under [`HandoffMode::Rebuild`] instead of the delta path.
    pub rebuild_handoff: bool,
    /// Judge with mid-tick carry-over disabled (node-granular progress).
    pub no_carryover: bool,
    /// Index into [`PICKS`]: the node-pick policy the candidate is judged
    /// under (taken modulo the table length).
    pub pick_idx: u8,
    /// The related-machines platform shape as `(count, num, den)` triples;
    /// empty means the legacy uniform platform. Sanitized by
    /// [`FuzzInstance::platform_groups`] — counts are fit to `m`, speeds
    /// clamped to [`limits::MAX_SPEED`].
    pub speed_groups: Vec<(u32, u32, u32)>,
    /// Judge the general-profit scheduler S-profit instead of scheduler S —
    /// a configuration-axis flag selecting the subject, so the differential
    /// heads cover the slot-plan fast path without a separate harness.
    pub sprofit_subject: bool,
}

/// Extract `(works, edges)` from a built DAG, re-labeling nodes into
/// topological order so every edge points forward.
pub fn dag_to_ir(dag: &DagJobSpec) -> (Vec<u64>, Vec<(u32, u32)>) {
    let n = dag.num_nodes();
    let topo = dag.topo_order();
    let mut pos = vec![0u32; n];
    for (rank, &node) in topo.iter().enumerate() {
        pos[node.0 as usize] = rank as u32;
    }
    let mut works = vec![0u64; n];
    for (i, w) in dag.node_works().iter().enumerate() {
        works[pos[i] as usize] = w.units();
    }
    let mut edges = Vec::with_capacity(dag.num_edges());
    for u in 0..n as u32 {
        for &v in dag.successors(NodeId(u)) {
            edges.push((pos[u as usize], pos[v.0 as usize]));
        }
    }
    edges.sort_unstable();
    (works, edges)
}

impl FuzzInstance {
    /// A fresh IR under the default configuration axis (kernel + delta,
    /// carry-over on, FIFO pick, uniform platform).
    pub fn new(m: u32, jobs: Vec<FuzzJob>) -> FuzzInstance {
        FuzzInstance {
            m,
            jobs,
            scan_window: false,
            rebuild_handoff: false,
            no_carryover: false,
            pick_idx: 0,
            speed_groups: Vec::new(),
            sprofit_subject: false,
        }
    }

    /// The sanitized platform for the current axis state, or `None` for the
    /// legacy uniform platform (empty shape list).
    ///
    /// Repair mirrors [`to_instance`](FuzzInstance::to_instance)'s `m`
    /// clamp so the group total always matches the converted instance:
    /// counts are clamped into the remaining machine budget, speeds into
    /// `1..=MAX_SPEED` on both sides of the fraction, and any leftover
    /// machines become a trailing unit-speed group.
    pub fn platform_groups(&self) -> Option<MachineGroups> {
        if self.speed_groups.is_empty() {
            return None;
        }
        let m = self.m.clamp(1, limits::MAX_M);
        let mut remaining = m;
        let mut pairs: Vec<(u32, Speed)> = Vec::new();
        for &(count, num, den) in self.speed_groups.iter().take(limits::MAX_GROUPS) {
            if remaining == 0 {
                break;
            }
            let count = count.clamp(1, remaining);
            let num = num.clamp(1, limits::MAX_SPEED);
            let den = den.clamp(1, limits::MAX_SPEED);
            pairs.push((count, Speed::new(num, den).expect("clamped positive")));
            remaining -= count;
        }
        if remaining > 0 {
            pairs.push((remaining, Speed::ONE));
        }
        Some(MachineGroups::new(pairs).expect("sanitized groups are valid"))
    }

    /// The [`SimConfig`] this candidate is judged under: the instance's
    /// configuration axis applied over the engine defaults.
    pub fn base_config(&self) -> SimConfig {
        SimConfig {
            window: if self.scan_window {
                WindowMode::ReferenceScan
            } else {
                WindowMode::EventKernel
            },
            handoff: if self.rebuild_handoff {
                HandoffMode::Rebuild
            } else {
                HandoffMode::Delta
            },
            carryover: !self.no_carryover,
            pick: PICKS[self.pick_idx as usize % PICKS.len()].clone(),
            groups: self.platform_groups(),
            ..SimConfig::default()
        }
    }

    /// Build the IR from a validated instance. The full general profit
    /// function is preserved: the first segment becomes the
    /// (deadline, profit) pair, later segments become `extra_steps`, and
    /// the tail carries over — so the minimizer's IR round-trip is faithful
    /// on general-profit failures, not just deadline ones.
    pub fn from_instance(inst: &Instance) -> FuzzInstance {
        let jobs = inst
            .jobs()
            .iter()
            .map(|j| {
                let (works, edges) = dag_to_ir(&j.dag);
                let segs = j.profit.segments();
                FuzzJob {
                    arrival: j.arrival.ticks(),
                    deadline: segs[0].0.ticks().max(1),
                    profit: segs[0].1.max(1),
                    extra_steps: segs[1..].iter().map(|&(b, v)| (b.ticks(), v)).collect(),
                    tail: j.profit.tail_value(),
                    works,
                    edges,
                }
            })
            .collect();
        FuzzInstance::new(inst.m(), jobs)
    }

    /// Repair and convert into a validated [`Instance`].
    ///
    /// Sanitization: clamp `m`, truncate the job list, clamp every numeric
    /// field, keep only in-range forward edges (deduplicated), then sort
    /// jobs by arrival and assign dense ids. The only unrepairable state is
    /// an empty job list.
    ///
    /// # Errors
    /// [`SchedError::InvalidInstance`] when there are no jobs.
    pub fn to_instance(&self) -> Result<Instance> {
        if self.jobs.is_empty() {
            return Err(SchedError::InvalidInstance(
                "fuzz instance has no jobs".into(),
            ));
        }
        let m = self.m.clamp(1, limits::MAX_M);
        let mut jobs: Vec<&FuzzJob> = self.jobs.iter().take(limits::MAX_JOBS).collect();
        jobs.sort_by_key(|j| j.arrival.min(limits::MAX_ARRIVAL));
        let specs: Vec<JobSpec> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let n = j.works.len().clamp(1, limits::MAX_NODES);
                let mut builder = DagBuilder::with_capacity(n, j.edges.len());
                for k in 0..n {
                    let w = j.works.get(k).copied().unwrap_or(1);
                    builder.add_node(Work(w.clamp(1, limits::MAX_WORK)));
                }
                let mut edges: Vec<(u32, u32)> = j
                    .edges
                    .iter()
                    .copied()
                    .filter(|&(u, v)| u < v && (v as usize) < n)
                    .collect();
                edges.sort_unstable();
                edges.dedup();
                for (u, v) in edges {
                    builder
                        .add_edge(NodeId(u), NodeId(v))
                        .expect("forward in-range edges are valid");
                }
                let dag = builder
                    .build()
                    .expect("forward edges cannot form a cycle")
                    .into_shared();
                let deadline = j.deadline.clamp(1, limits::MAX_DEADLINE);
                let top = j.profit.clamp(1, limits::MAX_PROFIT);
                let profit = if j.extra_steps.is_empty() && j.tail == 0 {
                    StepProfitFn::deadline(Time(deadline), top)
                } else {
                    // Repair the extra steps into a strictly-decreasing step
                    // function: each bound is forced past the previous one
                    // (capped at twice the deadline limit so horizons stay
                    // small), each value strictly below the previous, and
                    // steps stop once the value floor of 1 is reached.
                    let mut segs = vec![(Time(deadline), top)];
                    let (mut pb, mut pv) = (deadline, top);
                    for &(b, v) in j.extra_steps.iter().take(limits::MAX_PROFIT_STEPS) {
                        if pv <= 1 {
                            break;
                        }
                        let b = b.clamp(pb + 1, (2 * limits::MAX_DEADLINE).max(pb + 1));
                        let v = v.clamp(1, pv - 1);
                        segs.push((Time(b), v));
                        (pb, pv) = (b, v);
                    }
                    let tail = j.tail.min(pv - 1);
                    StepProfitFn::steps(segs, tail).expect("sanitized steps are valid")
                };
                JobSpec::new(
                    JobId(i as u32),
                    Time(j.arrival.min(limits::MAX_ARRIVAL)),
                    dag,
                    profit,
                )
            })
            .collect();
        Instance::new(m, specs)
    }
}

/// FNV-1a over a byte slice; the fuzzer's cheap deterministic content hash
/// (used to derive per-instance pause schedules and trajectory digests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_workload::WorkloadGen;

    #[test]
    fn round_trip_preserves_shape() {
        let inst = WorkloadGen::standard(4, 12, 7).generate().unwrap();
        let ir = FuzzInstance::from_instance(&inst);
        let back = ir.to_instance().unwrap();
        assert_eq!(back.m(), inst.m());
        assert_eq!(back.len(), inst.len());
        for (a, b) in inst.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.work(), b.work());
            assert_eq!(a.span(), b.span(), "topo relabeling preserves the span");
            assert_eq!(a.dag.num_edges(), b.dag.num_edges());
        }
    }

    #[test]
    fn hostile_states_are_repaired() {
        let fi = FuzzInstance::new(
            999,
            vec![FuzzJob {
                arrival: u64::MAX,
                deadline: 0,
                profit: 0,
                extra_steps: vec![],
                tail: 0,
                works: vec![0, u64::MAX, 3],
                // Backward, self-loop, out-of-range and duplicate edges.
                edges: vec![(2, 1), (1, 1), (0, 40), (0, 2), (0, 2), (1, 2)],
            }],
        );
        let inst = fi.to_instance().expect("repairable");
        assert_eq!(inst.m(), limits::MAX_M);
        let j = &inst.jobs()[0];
        assert_eq!(j.arrival, Time(limits::MAX_ARRIVAL));
        assert_eq!(j.rel_deadline(), Some(Time(1)));
        assert_eq!(j.max_profit(), 1);
        assert_eq!(j.dag.num_nodes(), 3);
        assert_eq!(j.dag.num_edges(), 2, "only 0->2 and 1->2 survive");
    }

    #[test]
    fn empty_job_list_is_the_only_failure() {
        assert!(FuzzInstance::new(2, vec![]).to_instance().is_err());
    }

    /// General profit functions survive the IR round-trip segment for
    /// segment (the minimizer depends on this being faithful).
    #[test]
    fn general_profit_round_trips() {
        use dagsched_dag::gen;
        let profit = StepProfitFn::steps(vec![(Time(10), 9), (Time(30), 4)], 1).unwrap();
        let spec = JobSpec::new(JobId(0), Time(2), gen::single(6).into_shared(), profit);
        let inst = Instance::new(2, vec![spec]).unwrap();
        let ir = FuzzInstance::from_instance(&inst);
        assert_eq!(ir.jobs[0].deadline, 10);
        assert_eq!(ir.jobs[0].profit, 9);
        assert_eq!(ir.jobs[0].extra_steps, vec![(30, 4)]);
        assert_eq!(ir.jobs[0].tail, 1);
        let back = ir.to_instance().unwrap();
        assert_eq!(
            back.jobs()[0].profit.segments(),
            inst.jobs()[0].profit.segments()
        );
        assert_eq!(back.jobs()[0].profit.tail_value(), 1);
    }

    /// Hostile profit steps (non-increasing bounds, non-decreasing values,
    /// oversized tails) are repaired into a valid strictly-decreasing step
    /// function.
    #[test]
    fn hostile_profit_steps_are_repaired() {
        let fi = FuzzInstance::new(
            2,
            vec![FuzzJob {
                arrival: 0,
                deadline: 20,
                profit: 5,
                // Bound before the deadline, value above the top, a
                // duplicate bound, and a tail above everything.
                extra_steps: vec![(3, 99), (3, 99), (u64::MAX, 0)],
                tail: u64::MAX,
                works: vec![2],
                edges: vec![],
            }],
        );
        let inst = fi.to_instance().expect("repairable");
        let p = &inst.jobs()[0].profit;
        let segs = p.segments();
        assert_eq!(segs[0], (Time(20), 5));
        for w in segs.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds strictly increase: {segs:?}");
            assert!(w[0].1 > w[1].1, "values strictly decrease: {segs:?}");
        }
        assert!(p.tail_value() < segs.last().unwrap().1);
    }

    #[test]
    fn span_matches_built_dag() {
        let fi = FuzzJob {
            arrival: 0,
            deadline: 10,
            profit: 1,
            extra_steps: vec![],
            tail: 0,
            works: vec![2, 3, 4, 5],
            edges: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        };
        // Longest path 2 -> (3|4) -> 5 = 2 + 4 + 5.
        assert_eq!(fi.span(), 11);
        assert_eq!(fi.total_work(), 14);
        let inst = FuzzInstance::new(2, vec![fi]).to_instance().unwrap();
        assert_eq!(inst.jobs()[0].span().units(), 11);
    }

    #[test]
    fn config_axis_maps_onto_the_sim_config() {
        use dagsched_engine::{HandoffMode, WindowMode};
        let mut fi = FuzzInstance::new(2, vec![]);
        let cfg = fi.base_config();
        assert_eq!(cfg.window, WindowMode::EventKernel);
        assert_eq!(cfg.handoff, HandoffMode::Delta);
        assert!(cfg.carryover);
        assert_eq!(cfg.pick, NodePick::Fifo);
        assert_eq!(cfg.groups, None);
        fi.scan_window = true;
        fi.rebuild_handoff = true;
        fi.no_carryover = true;
        fi.pick_idx = 2;
        let cfg = fi.base_config();
        assert_eq!(cfg.window, WindowMode::ReferenceScan);
        assert_eq!(cfg.handoff, HandoffMode::Rebuild);
        assert!(!cfg.carryover);
        assert_eq!(cfg.pick, NodePick::CriticalPathFirst);
        // The pick index wraps around the table.
        fi.pick_idx = PICKS.len() as u8;
        assert_eq!(fi.base_config().pick, NodePick::Fifo);
    }

    #[test]
    fn platform_axis_is_repaired_to_fit_m() {
        let mut fi = FuzzInstance::new(4, vec![]);
        assert_eq!(fi.platform_groups(), None, "empty shape is uniform");
        // Oversized count, oversized speed, leftover machines.
        fi.speed_groups = vec![(99, 200, 0), (1, 2, 1)];
        let g = fi.platform_groups().expect("non-empty shape");
        assert_eq!(g.total(), 4, "group total matches the clamped m");
        assert_eq!(
            g.groups()[0].speed,
            Speed::new(limits::MAX_SPEED, 1).unwrap()
        );
        // First group swallowed the budget; the rest were dropped.
        assert_eq!(g.len(), 1);
        // A partial shape is padded with a unit-speed remainder group.
        fi.speed_groups = vec![(1, 2, 1)];
        let g = fi.platform_groups().expect("non-empty shape");
        assert_eq!(g.total(), 4);
        assert_eq!(g.len(), 2);
        assert_eq!(g.groups()[1].count, 3);
        assert_eq!(g.groups()[1].speed, Speed::ONE);
        // The judged config carries the platform.
        assert_eq!(fi.base_config().groups, fi.platform_groups());
    }
}
