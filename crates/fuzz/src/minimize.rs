//! Delta-debugging minimizer for failing instances.
//!
//! Classic ddmin over the job list, then structure shrinking inside each
//! surviving job: clear or drop edges, drop nodes, collapse node works to
//! 1, zero arrivals, and shrink deadlines, profits and the machine count.
//! Every candidate is re-judged by the *same* oracle configuration that
//! found the failure; a shrink step is kept only if some head still fails.
//! The pass loop repeats to a fixpoint under a hard budget of oracle calls,
//! so minimization cost is bounded even on pathological instances.

use crate::ir::{FuzzInstance, FuzzJob};
use crate::oracle::{run_exec_with, OracleSet, Subject};
use dagsched_engine::SimConfig;
use dagsched_workload::Instance;

/// Minimization driver state: the oracle configuration plus a shrinking
/// budget of oracle calls.
struct Shrinker<'a> {
    subject: &'a Subject,
    set: &'a OracleSet,
    base: &'a SimConfig,
    pause_salt: u64,
    budget: u32,
}

impl Shrinker<'_> {
    /// Whether the candidate still fails some oracle head. Consumes budget;
    /// with the budget exhausted every candidate counts as passing, which
    /// freezes the current (already-failing) state.
    fn fails(&mut self, fi: &FuzzInstance) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        match fi.to_instance() {
            Ok(inst) => run_exec_with(
                &inst,
                self.subject,
                self.set,
                self.pause_salt,
                None,
                self.base,
            )
            .failure
            .is_some(),
            Err(_) => false,
        }
    }

    /// Try a transformation; keep it if the result still fails.
    fn try_keep(&mut self, cur: &mut FuzzInstance, cand: FuzzInstance) -> bool {
        if cand != *cur && self.fails(&cand) {
            *cur = cand;
            true
        } else {
            false
        }
    }
}

/// Drop node `node` from a job, remapping edges past it.
fn drop_node(job: &FuzzJob, node: usize) -> FuzzJob {
    let mut out = job.clone();
    out.works.remove(node);
    out.edges = job
        .edges
        .iter()
        .filter(|&&(u, v)| u as usize != node && v as usize != node)
        .map(|&(u, v)| {
            let shift = |x: u32| if x as usize > node { x - 1 } else { x };
            (shift(u), shift(v))
        })
        .collect();
    out
}

/// Shrink `inst` while the oracle configuration keeps failing.
///
/// `base` is the engine configuration the failure was found under — every
/// shrink candidate is re-judged under the same configuration, so a
/// failure specific to (say) the scan window or the rebuild handoff does
/// not silently vanish during minimization.
///
/// Returns the smallest failing instance found within `max_checks` oracle
/// calls (the original instance if nothing could be removed).
pub fn minimize(
    inst: &Instance,
    subject: &Subject,
    set: &OracleSet,
    pause_salt: u64,
    max_checks: u32,
    base: &SimConfig,
) -> Instance {
    let mut cur = FuzzInstance::from_instance(inst);
    let mut sh = Shrinker {
        subject,
        set,
        base,
        pause_salt,
        budget: max_checks,
    };
    // The IR round-trip can itself perturb behavior (node relabeling,
    // profit-envelope projection); only minimize if the round-tripped
    // instance still fails, otherwise return the original untouched.
    if !sh.fails(&cur) {
        return inst.clone();
    }

    for _round in 0..4 {
        let mut changed = false;

        // 1. ddmin over jobs: remove chunks, halving granularity.
        let mut chunk = (cur.jobs.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.jobs.len() && cur.jobs.len() > 1 {
                let mut cand = cur.clone();
                let hi = (i + chunk).min(cand.jobs.len());
                cand.jobs.drain(i..hi);
                if !cand.jobs.is_empty() && sh.try_keep(&mut cur, cand) {
                    changed = true;
                } else {
                    i = hi;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // 2. Edges: clear whole jobs' edge sets, then individual edges.
        for j in 0..cur.jobs.len() {
            if !cur.jobs[j].edges.is_empty() {
                let mut cand = cur.clone();
                cand.jobs[j].edges.clear();
                changed |= sh.try_keep(&mut cur, cand);
            }
            let mut e = 0;
            while e < cur.jobs[j].edges.len() {
                let mut cand = cur.clone();
                cand.jobs[j].edges.remove(e);
                if sh.try_keep(&mut cur, cand) {
                    changed = true;
                } else {
                    e += 1;
                }
            }
        }

        // 3. Nodes: drop each, then collapse works to 1.
        for j in 0..cur.jobs.len() {
            let mut k = 0;
            while k < cur.jobs[j].works.len() && cur.jobs[j].works.len() > 1 {
                let mut cand = cur.clone();
                cand.jobs[j] = drop_node(&cand.jobs[j], k);
                if sh.try_keep(&mut cur, cand) {
                    changed = true;
                } else {
                    k += 1;
                }
            }
            for k in 0..cur.jobs[j].works.len() {
                if cur.jobs[j].works[k] > 1 {
                    let mut cand = cur.clone();
                    cand.jobs[j].works[k] = 1;
                    changed |= sh.try_keep(&mut cur, cand);
                }
            }
        }

        // 4. Scalars: zero arrivals, halve deadlines and profits, shrink m.
        for j in 0..cur.jobs.len() {
            if cur.jobs[j].arrival > 0 {
                let mut cand = cur.clone();
                cand.jobs[j].arrival = 0;
                changed |= sh.try_keep(&mut cur, cand);
            }
            while cur.jobs[j].deadline > 1 {
                let mut cand = cur.clone();
                cand.jobs[j].deadline /= 2;
                cand.jobs[j].deadline = cand.jobs[j].deadline.max(1);
                if !sh.try_keep(&mut cur, cand) {
                    break;
                }
                changed = true;
            }
            if cur.jobs[j].profit > 1 {
                let mut cand = cur.clone();
                cand.jobs[j].profit = 1;
                changed |= sh.try_keep(&mut cur, cand);
            }
        }
        while cur.m > 1 {
            let mut cand = cur.clone();
            cand.m /= 2;
            if !sh.try_keep(&mut cur, cand) {
                break;
            }
            changed = true;
        }

        if !changed || sh.budget == 0 {
            break;
        }
    }

    cur.to_instance().unwrap_or_else(|_| inst.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InvariantProfile;
    use dagsched_core::{JobId, Time};
    use dagsched_engine::{Allocation, JobInfo, OnlineScheduler, TickView};
    use dagsched_workload::WorkloadGen;

    /// A scheduler that allocates a job it never admitted — every instance
    /// with at least one alive job fails the allotment checker, so the
    /// minimizer should be able to shrink hard.
    struct AlwaysBroken;
    impl OnlineScheduler for AlwaysBroken {
        fn name(&self) -> String {
            "always-broken".into()
        }
        fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
        fn on_completion(&mut self, _id: JobId, _now: Time) {}
        fn on_expiry(&mut self, _id: JobId, _now: Time) {}
        fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
            view.jobs()
                .first()
                .map(|&(id, _)| (id, 1))
                .into_iter()
                .collect()
        }
    }

    #[test]
    fn minimizer_shrinks_a_universally_failing_instance() {
        let inst = WorkloadGen::standard(4, 14, 3).generate().unwrap();
        let subject = Subject::new(
            "always-broken",
            InvariantProfile::SchedulerS { backfill: false },
            |_m| Box::new(AlwaysBroken),
        );
        let set = OracleSet {
            invariants: true,
            kernel_diff: false,
            pause_diff: false,
            handoff_diff: false,
            twin_diff: false,
        };
        let base = SimConfig::default();
        assert!(
            run_exec_with(&inst, &subject, &set, 0, None, &base)
                .failure
                .is_some(),
            "precondition: the mutant fails"
        );
        let min = minimize(&inst, &subject, &set, 0, 400, &base);
        assert!(
            run_exec_with(&min, &subject, &set, 0, None, &base)
                .failure
                .is_some(),
            "minimized instance still fails"
        );
        assert_eq!(min.len(), 1, "shrinks to a single job");
        assert_eq!(min.jobs()[0].dag.num_nodes(), 1, "and a single node");
    }
}
