//! The deterministic seed corpus: one starting point per adversarial family.
//!
//! Each entry is a small instance already *near* a family the mutators are
//! biased toward, so the loop spends its budget at the interesting
//! boundaries instead of random-walking toward them. Entries are fixed —
//! no randomness beyond hard-coded seeds — so the corpus trajectory is a
//! pure function of the master seed.

use crate::ir::{dag_to_ir, FuzzInstance, FuzzJob};
use crate::mutate::{self, Mutator};
use dagsched_core::Rng64;
use dagsched_dag::gen;
use dagsched_workload::{Instance, WorkloadGen};

/// The hand-built triple-tie nest from the kernel differential suite: on 2
/// processors, tick 10 carries a completion frontier, an expiry boundary
/// and an arrival at once.
fn triple_tie() -> FuzzInstance {
    FuzzInstance::new(
        2,
        vec![
            FuzzJob {
                arrival: 0,
                deadline: 100,
                profit: 7,
                extra_steps: vec![],
                tail: 0,
                works: vec![11],
                edges: vec![],
            },
            FuzzJob {
                arrival: 0,
                deadline: 10,
                profit: 5,
                extra_steps: vec![],
                tail: 0,
                works: vec![25, 25, 25, 25],
                edges: vec![(0, 1), (1, 2), (2, 3)],
            },
            FuzzJob {
                arrival: 10,
                deadline: 20,
                profit: 3,
                extra_steps: vec![],
                tail: 0,
                works: vec![3],
                edges: vec![],
            },
        ],
    )
}

/// Collision-dense: single-digit arrivals, works and deadlines, so
/// simultaneous events are the norm.
fn collisions() -> FuzzInstance {
    let mut rng = Rng64::seed_from(11);
    let jobs = (0..8)
        .map(|_| {
            let work = 1 + rng.gen_range(6);
            let chain = rng.gen_range(2) == 1;
            FuzzJob {
                arrival: rng.gen_range(8),
                deadline: 1 + rng.gen_range(9),
                profit: 1 + rng.gen_range(5),
                extra_steps: vec![],
                tail: 0,
                works: if chain { vec![work, work] } else { vec![work] },
                edges: if chain { vec![(0, 1)] } else { vec![] },
            }
        })
        .collect();
    FuzzInstance::new(2, jobs)
}

/// Two Figure 1 lower-bound jobs with near-Brent deadlines.
fn fig1_family() -> FuzzInstance {
    let m = 3;
    let (works, edges) = dag_to_ir(&gen::fig1(m, 6, 2));
    let mk = |arrival: u64| {
        let mut job = FuzzJob {
            arrival,
            deadline: 1,
            profit: 4,
            extra_steps: vec![],
            tail: 0,
            works: works.clone(),
            edges: edges.clone(),
        };
        job.deadline = (job.total_work() - job.span()).div_ceil(m as u64) + job.span();
        job
    };
    FuzzInstance::new(m, vec![mk(0), mk(1)])
}

/// An arrival burst of identical work with densities in three bands.
fn band_burst() -> FuzzInstance {
    let profits = [4u64, 4, 6, 6, 9, 9];
    let jobs = profits
        .iter()
        .map(|&p| FuzzJob {
            arrival: 3,
            deadline: 6,
            profit: p,
            extra_steps: vec![],
            tail: 0,
            works: vec![4],
            edges: vec![],
        })
        .collect();
    FuzzInstance::new(2, jobs)
}

/// General-profit cliffs: step functions whose later, lower values and
/// tails put the slot-assignment search (Section 5) under pressure — one
/// job per shape: two-step, step+tail, and tail-only-survivor.
fn profit_cliff() -> FuzzInstance {
    FuzzInstance {
        sprofit_subject: true,
        ..FuzzInstance::new(
            2,
            vec![
                FuzzJob {
                    arrival: 0,
                    deadline: 10,
                    profit: 9,
                    extra_steps: vec![(30, 4)],
                    tail: 0,
                    works: vec![10, 10],
                    edges: vec![(0, 1)],
                },
                FuzzJob {
                    arrival: 0,
                    deadline: 5,
                    profit: 8,
                    extra_steps: vec![(12, 5)],
                    tail: 1,
                    works: vec![6],
                    edges: vec![],
                },
                FuzzJob {
                    arrival: 4,
                    deadline: 6,
                    profit: 3,
                    extra_steps: vec![],
                    tail: 2,
                    works: vec![40],
                    edges: vec![],
                },
            ],
        )
    }
}

/// A plain generated workload, to keep one unbiased starting point.
fn standard() -> FuzzInstance {
    let inst = WorkloadGen::standard(3, 10, 42)
        .generate()
        .expect("valid workload");
    FuzzInstance::from_instance(&inst)
}

/// The full seed corpus, in fixed order.
pub fn seed_corpus() -> Vec<FuzzInstance> {
    vec![
        triple_tie(),
        collisions(),
        fig1_family(),
        band_burst(),
        profit_cliff(),
        standard(),
    ]
}

/// Generate `count` valid collision-dense instances by running the
/// collision mutators over the seed corpus — the helper the triple-tie
/// pause tests use to get event-coincidence-heavy workloads cheaply.
pub fn collision_instances(seed: u64, count: usize) -> Vec<Instance> {
    let mut rng = Rng64::seed_from(seed);
    let seeds = seed_corpus();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let mut fi = seeds[rng.gen_range(seeds.len() as u64) as usize].clone();
        for _ in 0..4 {
            let m = match rng.gen_range(4) {
                0 => Mutator::CollideArrival,
                1 => Mutator::CollideExpiry,
                2 => Mutator::Burst,
                _ => Mutator::TightenDeadline,
            };
            mutate::apply(m, &mut rng, &mut fi);
        }
        if let Ok(inst) = fi.to_instance() {
            out.push(inst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_converts() {
        let seeds = seed_corpus();
        assert_eq!(seeds.len(), 6);
        for (i, s) in seeds.iter().enumerate() {
            let inst = s.to_instance().unwrap_or_else(|e| panic!("seed {i}: {e}"));
            assert!(inst.len() >= 2, "seed {i} too small");
        }
    }

    #[test]
    fn collision_instances_are_deterministic_and_collide() {
        let a = collision_instances(9, 6);
        let b = collision_instances(9, 6);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                dagsched_workload::codec::encode(x),
                dagsched_workload::codec::encode(y)
            );
        }
        // At least one instance has two jobs sharing an arrival tick.
        let shared = a
            .iter()
            .any(|inst| inst.jobs().windows(2).any(|w| w[0].arrival == w[1].arrival));
        assert!(shared, "collision mutators should produce shared instants");
    }
}
