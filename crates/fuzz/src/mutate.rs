//! Structural mutators biased toward the paper's adversarial families.
//!
//! Random workload generation almost never produces the instances that
//! stress the scheduler's correctness argument: Section 4's lower-bound
//! constructions (Figure 1/2 shapes), jobs whose densities tie exactly at a
//! band boundary `v · c^k`, deadlines tightened to the Brent bound where
//! δ-goodness flips, and arrival/expiry collisions landing on fast-forward
//! window edges. Each mutator here is one deliberate step toward one of
//! those families; the fuzz loop composes a few per candidate and lets the
//! coverage signal decide what was worth keeping.
//!
//! All randomness flows through the caller's [`Rng64`], so a fixed master
//! seed reproduces the exact mutation trajectory.

use crate::ir::{dag_to_ir, limits, FuzzInstance, FuzzJob};
use dagsched_core::{AlgoParams, Rng64};
use dagsched_dag::gen;

/// The mutator taxonomy (see DESIGN.md §4.7). Weights in [`MUTATORS`] bias
/// selection toward the adversarial families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutator {
    /// Pull a job's deadline to the Brent bound `(W−L)/m + L` ± a tick —
    /// the δ-goodness boundary.
    TightenDeadline,
    /// Set a job's density to `v_j · c^k` (k ∈ {−1, 0, 1}) of another job's,
    /// landing exactly on a density-band boundary.
    DensityTie,
    /// Move a job's arrival onto another job's arrival or expiry instant
    /// (± 1 for window-edge off-by-ones).
    CollideArrival,
    /// Move a job's *expiry* onto another job's arrival or expiry instant.
    CollideExpiry,
    /// Nudge an arrival by ± 1.
    JitterArrival,
    /// Collapse several arrivals onto one instant (an arrival storm).
    Burst,
    /// Replace a job's DAG with a sequential chain and tighten its deadline
    /// near the span — the unstartable-chain family.
    Chainify,
    /// Replace a job's DAG with the Figure 1 lower-bound shape for the
    /// current machine count.
    Fig1ify,
    /// Duplicate a job verbatim (identical arrival and density: maximal
    /// tie pressure).
    DupJob,
    /// Remove a job.
    DropJob,
    /// Insert a fresh small job near an existing arrival.
    AddJob,
    /// Change one node's work by ± 1.
    PerturbWork,
    /// Split a node into two chained halves (same work, longer span).
    SplitNode,
    /// Add a random forward edge.
    AddEdge,
    /// Remove a random edge.
    DropEdge,
    /// Change the machine count.
    ScaleM,
    /// Toggle the window mode the candidate is judged under (event kernel
    /// vs reference scan) — a configuration-axis mutator.
    FlipWindowMode,
    /// Toggle the scheduler-handoff mode (delta vs full rebuild) — the
    /// other configuration axis.
    FlipHandoff,
    /// Toggle mid-tick carry-over (Observation 1's chain-progress knob) —
    /// a configuration-axis mutator.
    FlipCarryover,
    /// Cycle to the next deterministic node-pick policy
    /// ([`crate::ir::PICKS`]) — a configuration-axis mutator.
    CyclePick,
    /// Replace the platform shape with a random 2-way related-machines
    /// split of `m` (distinct speeds) — a platform-axis mutator.
    SplitSpeedGroup,
    /// Perturb one platform group's speed; a no-op on a uniform platform.
    PerturbGroupSpeed,
    /// Collapse the platform back to the legacy uniform shape.
    UniformizeGroups,
    /// Append a later, lower profit step past a job's deadline — grows a
    /// general step function (Section 5's setting) out of a deadline job.
    AddProfitStep,
    /// Nudge one extra profit step's bound or value by ± 1 (step-boundary
    /// off-by-ones for the slot-assignment search).
    PerturbProfitStep,
    /// Give a job a nonzero tail value: it never expires, so parked it
    /// stresses the plan-gap bulk-skip instead of the expiry machinery.
    RaiseTail,
    /// Collapse a job's profit back to the pure deadline form.
    FlattenProfit,
    /// Toggle which scheduler the candidate is judged against (S vs the
    /// general-profit S-profit) — a configuration-axis mutator.
    FlipSProfitSubject,
}

/// All mutators with selection weights; the adversarial-family mutators
/// dominate.
pub const MUTATORS: &[(u32, Mutator)] = &[
    (3, Mutator::TightenDeadline),
    (3, Mutator::DensityTie),
    (3, Mutator::CollideArrival),
    (2, Mutator::CollideExpiry),
    (2, Mutator::JitterArrival),
    (2, Mutator::Burst),
    (2, Mutator::Chainify),
    (2, Mutator::Fig1ify),
    (1, Mutator::DupJob),
    (1, Mutator::DropJob),
    (1, Mutator::AddJob),
    (1, Mutator::PerturbWork),
    (1, Mutator::SplitNode),
    (1, Mutator::AddEdge),
    (1, Mutator::DropEdge),
    (1, Mutator::ScaleM),
    (1, Mutator::FlipWindowMode),
    (1, Mutator::FlipHandoff),
    (1, Mutator::FlipCarryover),
    (1, Mutator::CyclePick),
    (1, Mutator::SplitSpeedGroup),
    (1, Mutator::PerturbGroupSpeed),
    (1, Mutator::UniformizeGroups),
    (2, Mutator::AddProfitStep),
    (1, Mutator::PerturbProfitStep),
    (1, Mutator::RaiseTail),
    (1, Mutator::FlattenProfit),
    (1, Mutator::FlipSProfitSubject),
];

/// Pick a weighted random mutator and apply it in place.
pub fn mutate(rng: &mut Rng64, fi: &mut FuzzInstance) -> Mutator {
    let total: u32 = MUTATORS.iter().map(|&(w, _)| w).sum();
    let mut roll = rng.gen_range(total as u64) as u32;
    let mut picked = MUTATORS[0].1;
    for &(w, m) in MUTATORS {
        if roll < w {
            picked = m;
            break;
        }
        roll -= w;
    }
    apply(picked, rng, fi);
    picked
}

/// Apply one specific mutator in place. No-ops harmlessly when the instance
/// lacks the needed structure (e.g. [`Mutator::DropEdge`] with no edges).
pub fn apply(mutator: Mutator, rng: &mut Rng64, fi: &mut FuzzInstance) {
    if fi.jobs.is_empty() {
        return;
    }
    let n = fi.jobs.len();
    let pick = rng.gen_range(n as u64) as usize;
    match mutator {
        Mutator::TightenDeadline => {
            let m = fi.m.clamp(1, limits::MAX_M) as u64;
            let job = &mut fi.jobs[pick];
            let (w, l) = (job.total_work(), job.span());
            let brent = (w - l).div_ceil(m) + l;
            // Land on, just under, or just over the bound.
            job.deadline = (brent + rng.gen_range(3)).saturating_sub(1).max(1);
        }
        Mutator::DensityTie => {
            let other = rng.gen_range(n as u64) as usize;
            let c = AlgoParams::from_epsilon(1.0).expect("valid epsilon").c();
            let v = fi.jobs[other].profit.max(1) as f64 / fi.jobs[other].total_work() as f64;
            let k = rng.gen_range(3) as i32 - 1;
            let target = v * c.powi(k);
            let job = &mut fi.jobs[pick];
            job.profit = ((target * job.total_work() as f64).round() as u64).max(1);
        }
        Mutator::CollideArrival => {
            let other = rng.gen_range(n as u64) as usize;
            let target = match rng.gen_range(4) {
                0 => fi.jobs[other].arrival,
                1 => fi.jobs[other].expiry(),
                2 => fi.jobs[other].expiry().saturating_sub(1),
                _ => fi.jobs[other].arrival + 1,
            };
            fi.jobs[pick].arrival = target.min(limits::MAX_ARRIVAL);
        }
        Mutator::CollideExpiry => {
            let other = rng.gen_range(n as u64) as usize;
            let target = if rng.gen_range(2) == 0 {
                fi.jobs[other].arrival
            } else {
                fi.jobs[other].expiry()
            };
            let job = &mut fi.jobs[pick];
            job.deadline = target.saturating_sub(job.arrival).max(1);
        }
        Mutator::JitterArrival => {
            let job = &mut fi.jobs[pick];
            job.arrival = if rng.gen_range(2) == 0 {
                job.arrival.saturating_sub(1)
            } else {
                (job.arrival + 1).min(limits::MAX_ARRIVAL)
            };
        }
        Mutator::Burst => {
            let t = fi.jobs[rng.gen_range(n as u64) as usize].arrival;
            let k = 2 + rng.gen_range(3) as usize;
            for _ in 0..k {
                let j = rng.gen_range(n as u64) as usize;
                fi.jobs[j].arrival = t;
            }
        }
        Mutator::Chainify => {
            let len = 2 + rng.gen_range(5) as u32;
            let grain = 1 + rng.gen_range(4);
            let (works, edges) = dag_to_ir(&gen::chain(len, grain));
            let job = &mut fi.jobs[pick];
            job.works = works;
            job.edges = edges;
            // A chain's span is its work: deadline near the span is the
            // tight-chain family.
            job.deadline = (job.span() + rng.gen_range(3)).saturating_sub(1).max(1);
        }
        Mutator::Fig1ify => {
            // fig1 needs at least 2 machines to have a block part.
            let m = fi.m.clamp(2, limits::MAX_M);
            let chain_len = 2 + rng.gen_range(5) as u32;
            let grain = 1 + rng.gen_range(3);
            let (works, edges) = dag_to_ir(&gen::fig1(m, chain_len, grain));
            let job = &mut fi.jobs[pick];
            job.works = works;
            job.edges = edges;
        }
        Mutator::DupJob => {
            if n < limits::MAX_JOBS {
                let clone = fi.jobs[pick].clone();
                fi.jobs.push(clone);
            }
        }
        Mutator::DropJob => {
            if n > 1 {
                fi.jobs.remove(pick);
            }
        }
        Mutator::AddJob => {
            if n < limits::MAX_JOBS {
                let near = fi.jobs[pick].arrival;
                fi.jobs.push(FuzzJob {
                    arrival: (near + rng.gen_range(3)).min(limits::MAX_ARRIVAL),
                    deadline: 1 + rng.gen_range(12),
                    profit: 1 + rng.gen_range(9),
                    extra_steps: vec![],
                    tail: 0,
                    works: vec![1 + rng.gen_range(8)],
                    edges: vec![],
                });
            }
        }
        Mutator::PerturbWork => {
            let job = &mut fi.jobs[pick];
            if !job.works.is_empty() {
                let i = rng.gen_range(job.works.len() as u64) as usize;
                job.works[i] = if rng.gen_range(2) == 0 {
                    job.works[i].saturating_sub(1).max(1)
                } else {
                    (job.works[i] + 1).min(limits::MAX_WORK)
                };
            }
        }
        Mutator::SplitNode => {
            let job = &mut fi.jobs[pick];
            if job.works.is_empty() || job.works.len() >= limits::MAX_NODES {
                return;
            }
            let i = rng.gen_range(job.works.len() as u64) as usize;
            let w = job.works[i].clamp(1, limits::MAX_WORK);
            if w < 2 {
                return;
            }
            let first = 1 + rng.gen_range(w - 1);
            job.works[i] = first;
            job.works.push(w - first);
            job.edges.push((i as u32, (job.works.len() - 1) as u32));
        }
        Mutator::AddEdge => {
            let job = &mut fi.jobs[pick];
            let nn = job.works.len().min(limits::MAX_NODES);
            if nn < 2 {
                return;
            }
            let u = rng.gen_range((nn - 1) as u64) as u32;
            let v = u + 1 + rng.gen_range((nn as u64 - 1) - u as u64) as u32;
            job.edges.push((u, v));
        }
        Mutator::DropEdge => {
            let job = &mut fi.jobs[pick];
            if !job.edges.is_empty() {
                let i = rng.gen_range(job.edges.len() as u64) as usize;
                job.edges.remove(i);
            }
        }
        Mutator::ScaleM => {
            fi.m = 1 + rng.gen_range(limits::MAX_M as u64) as u32;
        }
        Mutator::FlipWindowMode => {
            fi.scan_window = !fi.scan_window;
        }
        Mutator::FlipHandoff => {
            fi.rebuild_handoff = !fi.rebuild_handoff;
        }
        Mutator::FlipCarryover => {
            fi.no_carryover = !fi.no_carryover;
        }
        Mutator::CyclePick => {
            fi.pick_idx = (fi.pick_idx + 1) % crate::ir::PICKS.len() as u8;
        }
        Mutator::SplitSpeedGroup => {
            let m = fi.m.clamp(1, limits::MAX_M);
            if m < 2 {
                return;
            }
            let fast = 1 + rng.gen_range((m - 1) as u64) as u32;
            let mut num = 2 + rng.gen_range((limits::MAX_SPEED - 1) as u64) as u32;
            let den = 1 + rng.gen_range(2) as u32;
            if num == den {
                // Keep the "fast" group genuinely faster than unit speed.
                num += 1;
            }
            // Fast group first or last: both placements stress the
            // fastest-first vs declaration-order distinction.
            let fast_group = (fast, num, den);
            let slow_group = (m - fast, 1, 1);
            fi.speed_groups = if rng.gen_range(2) == 0 {
                vec![fast_group, slow_group]
            } else {
                vec![slow_group, fast_group]
            };
        }
        Mutator::PerturbGroupSpeed => {
            if fi.speed_groups.is_empty() {
                return;
            }
            let i = rng.gen_range(fi.speed_groups.len() as u64) as usize;
            let (_, num, den) = &mut fi.speed_groups[i];
            if rng.gen_range(2) == 0 {
                *num = (*num % limits::MAX_SPEED) + 1;
            } else {
                *den = (*den % limits::MAX_SPEED) + 1;
            }
        }
        Mutator::UniformizeGroups => {
            fi.speed_groups.clear();
        }
        Mutator::AddProfitStep => {
            let job = &mut fi.jobs[pick];
            if job.extra_steps.len() >= limits::MAX_PROFIT_STEPS {
                return;
            }
            // Past the current last step, at a fraction of the current
            // floor value; to_instance repairs whatever lands out of order.
            let last_b = job
                .extra_steps
                .last()
                .map_or(job.deadline, |&(b, _)| b.max(job.deadline));
            let floor = job.extra_steps.last().map_or(job.profit, |&(_, v)| v);
            job.extra_steps.push((
                last_b + 1 + rng.gen_range(40),
                1 + rng.gen_range(floor.max(2) - 1),
            ));
        }
        Mutator::PerturbProfitStep => {
            let job = &mut fi.jobs[pick];
            if job.extra_steps.is_empty() {
                return;
            }
            let i = rng.gen_range(job.extra_steps.len() as u64) as usize;
            let (b, v) = &mut job.extra_steps[i];
            match rng.gen_range(4) {
                0 => *b = b.saturating_sub(1),
                1 => *b += 1,
                2 => *v = v.saturating_sub(1).max(1),
                _ => *v += 1,
            }
        }
        Mutator::RaiseTail => {
            let job = &mut fi.jobs[pick];
            job.tail = 1 + rng.gen_range(job.profit.max(2) - 1);
        }
        Mutator::FlattenProfit => {
            let job = &mut fi.jobs[pick];
            job.extra_steps.clear();
            job.tail = 0;
        }
        Mutator::FlipSProfitSubject => {
            fi.sprofit_subject = !fi.sprofit_subject;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::seed_corpus;

    /// Every mutator, applied repeatedly to every seed, keeps the instance
    /// convertible (the IR's repair contract).
    #[test]
    fn mutators_preserve_convertibility() {
        let mut rng = Rng64::seed_from(42);
        for entry in seed_corpus() {
            for &(_, m) in MUTATORS {
                let mut fi = entry.clone();
                for _ in 0..8 {
                    apply(m, &mut rng, &mut fi);
                    fi.to_instance()
                        .unwrap_or_else(|e| panic!("{m:?} broke convertibility: {e}"));
                }
            }
        }
    }

    /// A fixed seed yields a fixed mutation trajectory.
    #[test]
    fn mutation_trajectory_is_deterministic() {
        let run = || {
            let mut rng = Rng64::seed_from(7);
            let mut fi = seed_corpus().swap_remove(0);
            let mut picks = Vec::new();
            for _ in 0..64 {
                picks.push(mutate(&mut rng, &mut fi));
            }
            (picks, fi)
        };
        assert_eq!(run(), run());
    }

    /// The deadline-tightening mutator lands within a tick of the Brent
    /// bound.
    #[test]
    fn tighten_deadline_targets_brent_bound() {
        let mut rng = Rng64::seed_from(1);
        let mut fi = FuzzInstance::new(
            3,
            vec![FuzzJob {
                arrival: 0,
                deadline: 500,
                profit: 5,
                extra_steps: vec![],
                tail: 0,
                works: vec![4, 4, 4, 4, 4],
                edges: vec![(0, 1), (1, 2)],
            }],
        );
        for _ in 0..32 {
            apply(Mutator::TightenDeadline, &mut rng, &mut fi);
            let job = &fi.jobs[0];
            let brent = (job.total_work() - job.span()).div_ceil(3) + job.span();
            assert!(job.deadline + 1 >= brent, "far below the bound");
            assert!(job.deadline <= brent + 1, "far above the bound");
        }
    }

    /// The configuration-axis mutators toggle their flag and touch nothing
    /// else, so a double application is the identity.
    #[test]
    fn flip_mutators_toggle_only_the_config_axis() {
        let mut rng = Rng64::seed_from(9);
        let base = seed_corpus().swap_remove(0);
        for (m, read) in [
            (
                Mutator::FlipWindowMode,
                (|fi: &FuzzInstance| fi.scan_window) as fn(&FuzzInstance) -> bool,
            ),
            (Mutator::FlipHandoff, |fi: &FuzzInstance| fi.rebuild_handoff),
            (Mutator::FlipCarryover, |fi: &FuzzInstance| fi.no_carryover),
            (Mutator::FlipSProfitSubject, |fi: &FuzzInstance| {
                fi.sprofit_subject
            }),
        ] {
            let mut fi = base.clone();
            apply(m, &mut rng, &mut fi);
            assert!(read(&fi), "{m:?} sets its flag");
            assert_eq!(fi.jobs, base.jobs, "{m:?} leaves the workload alone");
            apply(m, &mut rng, &mut fi);
            assert_eq!(fi, base, "{m:?} twice is the identity");
        }
    }

    /// The pick mutator cycles through the whole deterministic policy table
    /// and returns to the start, touching nothing else.
    #[test]
    fn cycle_pick_visits_every_policy() {
        let mut rng = Rng64::seed_from(3);
        let base = seed_corpus().swap_remove(0);
        let mut fi = base.clone();
        let n = crate::ir::PICKS.len() as u8;
        for step in 1..=n {
            apply(Mutator::CyclePick, &mut rng, &mut fi);
            assert_eq!(fi.pick_idx, step % n);
            assert_eq!(fi.jobs, base.jobs, "workload untouched");
        }
        assert_eq!(fi, base, "a full cycle is the identity");
    }

    /// The profit mutators grow valid general step functions: every state
    /// they reach converts, and the converted profit is genuinely general
    /// (multi-step or tailed) after an `AddProfitStep`/`RaiseTail`, while
    /// `FlattenProfit` restores the pure deadline form.
    #[test]
    fn profit_mutators_grow_and_flatten_step_functions() {
        let mut rng = Rng64::seed_from(13);
        let mut fi = seed_corpus().swap_remove(0);
        for _ in 0..16 {
            apply(Mutator::AddProfitStep, &mut rng, &mut fi);
            apply(Mutator::PerturbProfitStep, &mut rng, &mut fi);
            apply(Mutator::RaiseTail, &mut rng, &mut fi);
            let inst = fi.to_instance().expect("profit mutants convert");
            assert!(
                inst.jobs()
                    .iter()
                    .any(|j| j.profit.segments().len() > 1 || j.profit.tail_value() > 0),
                "some job carries a general profit function"
            );
        }
        for j in 0..fi.jobs.len() {
            // FlattenProfit picks a random job; force-flatten all of them.
            fi.jobs[j].extra_steps.clear();
            fi.jobs[j].tail = 0;
        }
        let inst = fi.to_instance().expect("flattened converts");
        assert!(
            inst.jobs().iter().all(|j| j.rel_deadline().is_some()),
            "flattened jobs are pure deadline jobs again"
        );
    }

    /// The platform-shape mutators always leave a shape the repair contract
    /// can fit to `m`, and `UniformizeGroups` restores the legacy platform.
    #[test]
    fn group_mutators_produce_valid_platforms() {
        let mut rng = Rng64::seed_from(11);
        let mut fi = seed_corpus().swap_remove(0);
        apply(Mutator::PerturbGroupSpeed, &mut rng, &mut fi);
        assert!(fi.speed_groups.is_empty(), "perturb on uniform is a no-op");
        for _ in 0..32 {
            apply(Mutator::SplitSpeedGroup, &mut rng, &mut fi);
            let g = fi.platform_groups().expect("split produces a shape");
            assert_eq!(g.total(), fi.m.clamp(1, limits::MAX_M));
            assert!(!g.is_uniform(), "split yields distinct speeds");
            apply(Mutator::PerturbGroupSpeed, &mut rng, &mut fi);
            let g = fi.platform_groups().expect("still shaped");
            assert_eq!(g.total(), fi.m.clamp(1, limits::MAX_M));
        }
        apply(Mutator::UniformizeGroups, &mut rng, &mut fi);
        assert_eq!(fi.platform_groups(), None);
        assert_eq!(fi.base_config().groups, None);
    }
}
