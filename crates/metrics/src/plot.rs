//! Minimal ASCII line/scatter plots for the figure-shaped experiments.
//!
//! Terminal-native "figures": the F1b speed sweep and the E4 ramp are
//! genuinely curves, and a picture of the knee communicates more than rows.
//! One character column per x sample, `height` rows of resolution.

use std::fmt::Write as _;

/// A named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Sample points (x ascending is conventional but not required).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Render one or more series as an ASCII chart with the given plot-area
/// size. Each series draws with its own glyph (`*`, `o`, `x`, `+`, …).
pub fn render(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let glyphs = ['*', 'o', 'x', '+', '@', '#'];
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() || width < 2 || height < 2 {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let (mut x_lo, mut x_hi) = (f64::MAX, f64::MIN);
    let (mut y_lo, mut y_hi) = (f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if (x_hi - x_lo).abs() < f64::EPSILON {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < f64::EPSILON {
        y_hi = y_lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = g;
        }
    }
    let _ = writeln!(out, "{y_hi:>10.2} +{}", "-".repeat(width));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == height - 1 {
            format!("{y_lo:>10.2}")
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "{:>11} {x_lo:<.2}{}{x_hi:>.2}",
        "",
        " ".repeat(width.saturating_sub(8))
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", glyphs[si % glyphs.len()], s.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_at_extremes() {
        let s = Series::new("line", vec![(0.0, 0.0), (10.0, 10.0)]);
        let out = render("t", &[s], 21, 11);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("== t =="));
        // Top-right and bottom-left of the plot area carry the glyph.
        assert!(lines[2].ends_with('*') || lines[2].contains('*'), "{out}");
        assert!(out.contains("* = line"));
        // Axis labels present.
        assert!(out.contains("10.00"));
        assert!(out.contains("0.00"));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.0)]);
        let b = Series::new("b", vec![(1.0, 1.0)]);
        let out = render("t", &[a, b], 10, 5);
        assert!(out.contains("* = a"));
        assert!(out.contains("o = b"));
    }

    #[test]
    fn empty_and_degenerate_input() {
        assert!(render("t", &[], 10, 5).contains("no data"));
        let s = Series::new("p", vec![(5.0, 5.0)]);
        // Single point (degenerate ranges) must not panic.
        let out = render("t", &[s], 10, 5);
        assert!(out.contains('*'));
    }
}
