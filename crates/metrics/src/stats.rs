//! Summary statistics over repeated experiment runs.

/// Five-number-style summary of a sample (mean, standard deviation,
/// min/median/max), computed once at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (midpoint-interpolated for even n).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice or any
    /// non-finite value (which would silently poison every statistic).
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[n - 1],
        })
    }

    /// Summarize integer samples.
    pub fn of_u64(values: &[u64]) -> Option<Summary> {
        let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }

    /// A `mean ± std` display string with the given precision.
    pub fn mean_pm(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.std_dev, p = precision)
    }
}

/// A mergeable running aggregate: count, sum, min, max.
///
/// [`Summary`] wants the whole sample at once; sharded sweeps instead
/// produce one aggregate per cell and fold them afterwards. `merge` is
/// exact for `n`, `min` and `max`; the sum is floating-point, so callers
/// that need byte-identical output across thread counts must fold partials
/// in a fixed order (the sweep runtime folds in grid order) — under that
/// discipline every derived statistic is bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        RunningStats::new()
    }
}

impl RunningStats {
    /// An empty aggregate.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorb one observation. Non-finite values are ignored (they would
    /// silently poison every statistic, as in [`Summary::of`]).
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Absorb another aggregate (fold partials in a fixed order for
    /// bit-reproducible sums).
    pub fn merge(&mut self, other: &RunningStats) {
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Pairwise ratio `a[i] / b[i]`, skipping pairs with `b[i] == 0`.
/// Used for per-seed competitive ratios (algorithm vs bound on the *same*
/// instance — never ratio-of-means, which would mix instances).
pub fn pairwise_ratios(num: &[f64], den: &[f64]) -> Vec<f64> {
    num.iter()
        .zip(den)
        .filter(|(_, d)| **d != 0.0)
        .map(|(n, d)| n / d)
        .collect()
}

/// Geometric mean (for aggregating ratios); `None` on empty or non-positive
/// input.
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    Some((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // sample std of 1..4 = sqrt(5/3)
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_odd_median_and_single() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert_eq!(Summary::of(&[]), None);
        assert_eq!(Summary::of(&[1.0, f64::NAN]), None);
        assert_eq!(Summary::of(&[f64::INFINITY]), None);
    }

    #[test]
    fn of_u64_and_display() {
        let s = Summary::of_u64(&[10, 20, 30]).unwrap();
        assert_eq!(s.mean, 20.0);
        assert!(s.mean_pm(1).starts_with("20.0 ± 10.0"));
    }

    #[test]
    fn ratios_skip_zero_denominators() {
        let r = pairwise_ratios(&[4.0, 9.0, 5.0], &[2.0, 3.0, 0.0]);
        assert_eq!(r, vec![2.0, 3.0]);
    }

    #[test]
    fn running_stats_push_and_merge_match_whole_sample() {
        let sample = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut whole = RunningStats::new();
        for v in sample {
            whole.push(v);
        }
        // Two shards folded in order must equal the sequential aggregate.
        let (a, b) = sample.split_at(3);
        let mut left = RunningStats::new();
        a.iter().for_each(|&v| left.push(v));
        let mut right = RunningStats::new();
        b.iter().for_each(|&v| right.push(v));
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(whole.count(), 8);
        assert_eq!(whole.min(), Some(1.0));
        assert_eq!(whole.max(), Some(9.0));
        assert_eq!(whole.mean(), Some(sample.iter().sum::<f64>() / 8.0));
    }

    #[test]
    fn running_stats_empty_and_nonfinite() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        assert_eq!(s.count(), 0, "non-finite observations are dropped");
        let mut other = RunningStats::new();
        other.push(2.0);
        s.merge(&other);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn geo_mean_of_ratios() {
        let g = geo_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, 0.0]), None);
        assert_eq!(geo_mean(&[-1.0]), None);
    }
}
