//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints one or more [`Table`]s: a title, column
//! headers and rows of strings. `render()` produces an aligned monospace
//! table (what you read in the terminal); `to_csv()` produces the
//! machine-readable form EXPERIMENTS.md numbers are extracted from.

use std::fmt::Write as _;

/// A titled table with fixed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; its arity must match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row, column) for tests and post-processing.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Render as an aligned monospace table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 < cols { "  " } else { "\n" };
                let _ = write!(out, "{cell:>w$}{sep}", w = widths[i]);
            }
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as a GitHub-flavoured Markdown table (with the title as a
    /// heading), for generated reports.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (no quoting — cells are numbers and identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Format a float cell with fixed precision.
pub fn f(v: f64, precision: usize) -> String {
    format!("{v:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["eps", "ratio"]);
        t.row(vec!["0.5".into(), "3.20".into()]);
        t.row(vec!["1".into(), "2.10".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5, "{r}");
        // Right-aligned: the header and rows end consistently.
        assert!(lines[1].ends_with("ratio"));
        assert!(lines[3].ends_with("3.20"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines, vec!["eps,ratio", "0.5,3.20", "1,2.10"]);
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
        assert_eq!(t.cell(1, 1), "2.10");
        assert!(Table::new("x", &["a"]).is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        Table::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "### demo");
        assert_eq!(lines[2], "| eps | ratio |");
        assert_eq!(lines[3], "|---|---|");
        assert_eq!(lines[4], "| 0.5 | 3.20 |");
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(f(2.0, 0), "2");
    }
}
