//! Fixed-bucket and logarithmic histograms for distribution reporting
//! (response times, job sizes, deadline slacks).

use std::fmt::Write as _;

/// A histogram over `u64` samples with geometric (powers-of-`base`)
/// buckets: bucket `k` covers `[base^k, base^{k+1})`, with a dedicated
/// zero bucket. Suits the heavy-tailed quantities this workspace measures.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    base: f64,
    zero: u64,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Create with the given bucket base (> 1); base 2 is the usual choice.
    pub fn new(base: f64) -> LogHistogram {
        assert!(base > 1.0, "bucket base must exceed 1");
        LogHistogram {
            base,
            zero: 0,
            counts: Vec::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value == 0 {
            self.zero += 1;
            return;
        }
        let bucket = (value as f64).log(self.base).floor() as usize;
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
    }

    /// Record many samples.
    pub fn extend(&mut self, values: impl IntoIterator<Item = u64>) {
        for v in values {
            self.record(v);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest / largest recorded sample (`None` if empty).
    pub fn range(&self) -> Option<(u64, u64)> {
        (self.total > 0).then_some((self.min, self.max))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) approximated at bucket resolution:
    /// returns the *lower bound* of the bucket holding the quantile sample.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = self.zero;
        if rank <= seen {
            return Some(0);
        }
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(self.base.powi(k as i32) as u64);
            }
        }
        Some(self.max)
    }

    /// Render as an ASCII bar chart, widest bucket normalized to `width`
    /// characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        if self.total == 0 {
            let _ = writeln!(out, "(empty histogram)");
            return out;
        }
        let peak = self
            .counts
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.zero);
        let bar = |count: u64| {
            let len = if peak == 0 {
                0
            } else {
                (count as f64 / peak as f64 * width as f64).round() as usize
            };
            "#".repeat(len)
        };
        if self.zero > 0 {
            let _ = writeln!(out, "{:>12} {:>7} {}", "0", self.zero, bar(self.zero));
        }
        for (k, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = self.base.powi(k as i32) as u64;
            let _ = writeln!(out, "{lo:>12} {c:>7} {}", bar(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ranges() {
        let mut h = LogHistogram::new(2.0);
        h.extend([0, 1, 2, 3, 4, 100]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.range(), Some((0, 100)));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new(2.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.range(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.render(20).contains("empty"));
    }

    #[test]
    fn quantiles_at_bucket_resolution() {
        let mut h = LogHistogram::new(2.0);
        // 50 samples at 1, 50 at 64.
        h.extend(std::iter::repeat_n(1u64, 50));
        h.extend(std::iter::repeat_n(64u64, 50));
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.75), Some(64));
        assert_eq!(h.quantile(1.0), Some(64));
        assert_eq!(h.quantile(2.0), None, "out-of-range q");
    }

    #[test]
    fn zero_bucket_and_quantile() {
        let mut h = LogHistogram::new(2.0);
        h.extend([0, 0, 0, 8]);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(8));
    }

    #[test]
    fn render_shows_buckets_with_bars() {
        let mut h = LogHistogram::new(2.0);
        h.extend([1, 1, 1, 1, 16]);
        let out = h.render(8);
        assert!(out.contains("########"), "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[1].trim_start().starts_with("16"));
    }

    #[test]
    #[should_panic(expected = "base must exceed")]
    fn rejects_base_one() {
        let _ = LogHistogram::new(1.0);
    }
}
