//! # dagsched-metrics
//!
//! Reporting utilities for the experiment harness: summary statistics over
//! repeated runs ([`stats`]) and plain-text table / series rendering
//! ([`table`]) so every experiment binary prints the rows a paper table or
//! figure would contain, plus machine-readable CSV.

#![warn(missing_docs)]

pub mod histogram;
pub mod plot;
pub mod stats;
pub mod table;

pub use histogram::LogHistogram;
pub use plot::Series;
pub use stats::{RunningStats, Summary};
pub use table::Table;
