//! **E9** — node-pick sensitivity: "S arbitrarily picks ready nodes".
//!
//! The analysis of scheduler S is oblivious to *which* ready nodes execute
//! — Observation 2 only needs `n_i` processors for `x_i` steps. This
//! experiment quantifies that robustness: the same workload runs under
//! every engine node-pick policy, from the friendly clairvoyant
//! (critical-path-first) to the clairvoyant adversary (low-height-first),
//! for both S and the work-conserving HDF baseline.
//!
//! Expected shape: S's profit varies only mildly across policies (its
//! allotments already budget for the worst order), while a work-conserving
//! baseline shows a wider spread — it implicitly relies on lucky unfolding.

use crate::common::{over_seeds, run_on_cfg, seeds, SchedKind};
use dagsched_engine::{NodePick, SimConfig};
use dagsched_metrics::{table::f, Table};
use dagsched_workload::{
    ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen,
};

/// One instance of the E9 family: DAGs with pronounced critical paths (so
/// node order matters) and moderate deadline slack.
pub fn instance(m: u32, n_jobs: usize, seed: u64) -> dagsched_workload::Instance {
    WorkloadGen {
        m,
        n_jobs,
        seed,
        arrivals: ArrivalProcess::poisson_for_load(1.5, 80.0, m),
        // Mix with a Fig.1-like member: chain-beside-block is exactly the
        // shape where picking order matters most.
        family: DagFamily::Mixed(vec![
            (
                1.0,
                DagFamily::Fig1 {
                    m,
                    chain_len: (6, 14),
                    grain: 1,
                },
            ),
            (
                1.0,
                DagFamily::ForkJoin {
                    segments: (2, 4),
                    width: (3, 8),
                    node_work: (1, 4),
                },
            ),
            (
                1.0,
                DagFamily::Layered {
                    layers: (3, 6),
                    width: (1, 5),
                    node_work: (1, 6),
                    p_edge: 0.3,
                },
            ),
        ]),
        deadlines: DeadlinePolicy::SlackFactor(1.8),
        profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 4.0 },
        shape: ProfitShape::Deadline,
    }
    .generate()
    .expect("valid workload")
}

/// The pick policies compared.
pub fn policies() -> Vec<(&'static str, NodePick)> {
    vec![
        ("critical-path", NodePick::CriticalPathFirst),
        ("fifo", NodePick::Fifo),
        ("lifo", NodePick::Lifo),
        ("random", NodePick::Random(7)),
        ("adversarial", NodePick::AdversarialLowHeight),
    ]
}

/// Build the E9 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let n_jobs = if quick { 50 } else { 120 };
    let seed_list = seeds(quick);

    let mut t = Table::new(
        "E9: node-pick sensitivity (m=8, slack 1.8)",
        &[
            "pick policy",
            "S profit",
            "S completed",
            "HDF profit",
            "HDF completed",
        ],
    );
    for (name, pick) in policies() {
        let cfg = SimConfig {
            pick: pick.clone(),
            ..SimConfig::default()
        };
        let rows = over_seeds(&seed_list, |seed| {
            let inst = instance(m, n_jobs, seed);
            let rs = run_on_cfg(&inst, &SchedKind::S { epsilon: 1.0 }, &cfg);
            let rh = run_on_cfg(&inst, &SchedKind::Hdf, &cfg);
            (
                rs.total_profit,
                rs.completed(),
                rh.total_profit,
                rh.completed(),
            )
        });
        let n = rows.len() as f64;
        t.row(vec![
            name.into(),
            f(rows.iter().map(|r| r.0 as f64).sum::<f64>() / n, 1),
            f(rows.iter().map(|r| r.1 as f64).sum::<f64>() / n, 1),
            f(rows.iter().map(|r| r.2 as f64).sum::<f64>() / n, 1),
            f(rows.iter().map(|r| r.3 as f64).sum::<f64>() / n, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_run_and_friendly_dominates_adversarial() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.len(), policies().len());
        let profit = |row: usize, col: usize| -> f64 { t.cell(row, col).parse().unwrap() };
        // Row 0 is critical-path-first, last row is adversarial.
        let last = t.len() - 1;
        for col in [1usize, 3] {
            assert!(
                profit(0, col) >= profit(last, col),
                "col {col}: friendly {} < adversarial {}",
                profit(0, col),
                profit(last, col)
            );
        }
        // Every cell is positive: no policy starves anyone completely.
        for i in 0..t.len() {
            assert!(profit(i, 1) > 0.0 && profit(i, 3) > 0.0);
        }
    }

    #[test]
    fn s_is_less_sensitive_than_hdf_relative_spread() {
        let tables = run(true);
        let t = &tables[0];
        let col: Vec<f64> = (0..t.len())
            .map(|i| t.cell(i, 1).parse().unwrap())
            .collect();
        let hdf: Vec<f64> = (0..t.len())
            .map(|i| t.cell(i, 3).parse().unwrap())
            .collect();
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / max
        };
        // Not a hard theorem — but on this family S's relative spread should
        // not be wildly larger than HDF's.
        assert!(
            spread(&col) <= spread(&hdf) + 0.25,
            "S spread {} vs HDF spread {}",
            spread(&col),
            spread(&hdf)
        );
    }
}
