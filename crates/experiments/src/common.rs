//! Shared experiment machinery: a scheduler factory and sweep helpers.

use dagsched_core::{AlgoParams, Speed};
use dagsched_engine::{parallel_map, simulate, OnlineScheduler, SimConfig, SimResult};
use dagsched_sched::{
    baselines::SNoAdmission, Edf, EquiPartition, Fifo, GreedyDensity, LeastLaxity, MoldableList,
    RandomOrder, SchedulerS, SchedulerSProfit,
};
use dagsched_workload::Instance;

/// A constructible scheduler description (plain data, so sweeps are lists).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedKind {
    /// The paper's Section 3 scheduler with the recommended constants.
    S {
        /// Deadline-slack constant ε.
        epsilon: f64,
    },
    /// S with a speed hint (Corollary 1's reduction): the engine runs it at
    /// that speed and S computes allotments from `W/s`, `L/s`.
    SHinted {
        /// Deadline-slack constant ε.
        epsilon: f64,
        /// The engine speed S should assume.
        hint: f64,
    },
    /// The paper's Section 5 general-profit scheduler.
    SProfit {
        /// Deadline-slack constant ε.
        epsilon: f64,
    },
    /// The work-conserving extension of S (paper future work): identical
    /// admission and priorities, spare processors backfilled.
    SWc {
        /// Deadline-slack constant ε.
        epsilon: f64,
    },
    /// Ablation: S without admission control.
    SNoAdmit {
        /// Deadline-slack constant ε.
        epsilon: f64,
    },
    /// Ablation: S with explicit constants (δ, c overrides).
    SCustom {
        /// Deadline-slack constant ε.
        epsilon: f64,
        /// Freshness constant override.
        delta: f64,
        /// Band width override.
        c: f64,
    },
    /// Earliest-deadline-first.
    Edf,
    /// EDF with demand-bound admission control.
    EdfAc,
    /// First-in-first-out.
    Fifo,
    /// Highest density (p/W) first.
    Hdf,
    /// Least laxity first.
    Llf,
    /// Random priority order per tick.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Moldable list scheduling (Perotin–Sun–Raghavan style): fixed
    /// arrival-time allotments capped at `⌈m/2⌉`, arrival-order list.
    MoldList,
    /// Non-clairvoyant equipartition (Garg–Gupta–Kumar–Singla style).
    Equi,
}

impl SchedKind {
    /// Short label for table rows.
    pub fn label(&self) -> String {
        match self {
            SchedKind::S { epsilon } => format!("S(e={epsilon})"),
            SchedKind::SHinted { epsilon, hint } => format!("S(e={epsilon},s={hint:.2})"),
            SchedKind::SProfit { epsilon } => format!("S-prof(e={epsilon})"),
            SchedKind::SWc { epsilon } => format!("S-wc(e={epsilon})"),
            SchedKind::SNoAdmit { .. } => "S-noadmit".into(),
            SchedKind::SCustom { delta, c, .. } => format!("S(d={delta:.3},c={c:.1})"),
            SchedKind::Edf => "EDF".into(),
            SchedKind::EdfAc => "EDF-AC".into(),
            SchedKind::Fifo => "FIFO".into(),
            SchedKind::Hdf => "HDF".into(),
            SchedKind::Llf => "LLF".into(),
            SchedKind::Random { .. } => "RANDOM".into(),
            SchedKind::MoldList => "MOLD-LIST".into(),
            SchedKind::Equi => "EQUI".into(),
        }
    }

    /// Instantiate for a machine of `m` processors.
    pub fn build(&self, m: u32) -> Box<dyn OnlineScheduler> {
        match *self {
            SchedKind::S { epsilon } => Box::new(SchedulerS::with_epsilon(m, epsilon)),
            SchedKind::SHinted { epsilon, hint } => {
                Box::new(SchedulerS::with_epsilon(m, epsilon).with_speed_hint(hint))
            }
            SchedKind::SProfit { epsilon } => Box::new(SchedulerSProfit::with_epsilon(m, epsilon)),
            SchedKind::SWc { epsilon } => {
                Box::new(SchedulerS::with_epsilon(m, epsilon).work_conserving())
            }
            SchedKind::SNoAdmit { epsilon } => Box::new(SNoAdmission::new(
                m,
                AlgoParams::from_epsilon(epsilon).expect("valid epsilon"),
            )),
            SchedKind::SCustom { epsilon, delta, c } => Box::new(SchedulerS::new(
                m,
                AlgoParams::new(epsilon, delta, c).expect("valid custom params"),
            )),
            SchedKind::Edf => Box::new(Edf::new(m)),
            SchedKind::EdfAc => Box::new(dagsched_sched::EdfAc::new(m)),
            SchedKind::Fifo => Box::new(Fifo::new(m)),
            SchedKind::Hdf => Box::new(GreedyDensity::new(m)),
            SchedKind::Llf => Box::new(LeastLaxity::new(m)),
            SchedKind::Random { seed } => Box::new(RandomOrder::new(m, seed)),
            SchedKind::MoldList => Box::new(MoldableList::new(m)),
            SchedKind::Equi => Box::new(EquiPartition::new(m)),
        }
    }
}

/// Run one scheduler on one instance (unit speed, default engine config).
pub fn run_on(inst: &Instance, kind: &SchedKind) -> SimResult {
    run_on_cfg(inst, kind, &SimConfig::default())
}

/// Run one scheduler on one instance with an explicit engine config.
pub fn run_on_cfg(inst: &Instance, kind: &SchedKind, cfg: &SimConfig) -> SimResult {
    let mut sched = kind.build(inst.m());
    simulate(inst, sched.as_mut(), cfg).expect("schedulers in this crate emit valid allocations")
}

/// Run one scheduler at a given speed.
pub fn run_at_speed(inst: &Instance, kind: &SchedKind, speed: Speed) -> SimResult {
    run_on_cfg(inst, kind, &SimConfig::at_speed(speed))
}

/// Parallel map over seeds (the basic sweep building block).
pub fn over_seeds<R: Send>(seeds: &[u64], f: impl Fn(u64) -> R + Sync) -> Vec<R> {
    parallel_map(
        seeds.to_vec(),
        dagsched_engine::runner::default_threads(),
        |s| f(*s),
    )
}

/// The seed list for an experiment: `quick` keeps tests fast.
pub fn seeds(quick: bool) -> Vec<u64> {
    if quick {
        vec![1, 2, 3]
    } else {
        (1..=12).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_workload::WorkloadGen;

    #[test]
    fn every_kind_builds_and_runs() {
        let inst = WorkloadGen::standard(4, 20, 5).generate().unwrap();
        for kind in [
            SchedKind::S { epsilon: 1.0 },
            SchedKind::SWc { epsilon: 1.0 },
            SchedKind::SProfit { epsilon: 1.0 },
            SchedKind::SNoAdmit { epsilon: 1.0 },
            SchedKind::SCustom {
                epsilon: 1.0,
                delta: 0.25,
                c: 40.0,
            },
            SchedKind::Edf,
            SchedKind::EdfAc,
            SchedKind::Fifo,
            SchedKind::Hdf,
            SchedKind::Llf,
            SchedKind::Random { seed: 7 },
            SchedKind::MoldList,
            SchedKind::Equi,
        ] {
            let r = run_on(&inst, &kind);
            assert_eq!(r.outcomes.len(), 20, "{}", kind.label());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn over_seeds_matches_sequential() {
        let par = over_seeds(&[1, 2, 3, 4], |s| s * s);
        assert_eq!(par, vec![1, 4, 9, 16]);
    }

    #[test]
    fn seed_lists() {
        assert_eq!(seeds(true).len(), 3);
        assert_eq!(seeds(false).len(), 12);
    }
}
