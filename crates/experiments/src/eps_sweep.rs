//! **E3** — Theorem 2: empirical competitiveness vs deadline slack `ε`.
//!
//! Workloads whose deadlines satisfy `D_i ≥ (1+ε)((W−L)/m + L)` are run
//! through scheduler S at unit speed; the earned profit is compared, per
//! seed, against the exact subset upper bound on OPT (so the reported ratio
//! is conservative — the true competitive ratio can only be smaller).
//!
//! Expected shape: the measured ratio is a *small constant* (single digits)
//! across the whole sweep and grows mildly as `ε` shrinks or overload rises,
//! while the worst-case guarantee `O(1/ε⁶)` is astronomically larger —
//! i.e. the algorithm is far better in the average case than its bound,
//! but the bound's direction (worse for small `ε`) is visible.

use crate::common::{over_seeds, run_on, seeds, SchedKind};
use dagsched_core::Speed;
use dagsched_metrics::{stats::geo_mean, table::f, Table};
use dagsched_opt::exact_subset_ub;
use dagsched_workload::{
    ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen,
};

/// One instance of the E3 family.
pub fn instance(
    m: u32,
    n_jobs: usize,
    eps: f64,
    load: f64,
    seed: u64,
) -> dagsched_workload::Instance {
    let family = DagFamily::standard_mix((1, 6));
    // Mean work of the standard mix is roughly 60; load control is
    // approximate, which is fine — the UB comparison is per-instance.
    let gen = WorkloadGen {
        m,
        n_jobs,
        seed,
        arrivals: ArrivalProcess::poisson_for_load(load, 60.0, m),
        family,
        deadlines: DeadlinePolicy::SlackFactor(1.0 + eps),
        profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 4.0 },
        shape: ProfitShape::Deadline,
    };
    gen.generate().expect("valid workload")
}

/// Build the E3 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let n_jobs = 18; // small enough for the exact OPT bound
    let eps_grid = [0.25, 0.5, 1.0, 2.0];
    let loads = if quick {
        vec![2.0]
    } else {
        vec![1.0, 2.0, 4.0]
    };
    let seed_list = seeds(quick);

    let mut t = Table::new(
        "E3: S vs exact OPT upper bound, by deadline slack eps and load (m=8)",
        &[
            "eps",
            "load",
            "profit_S (mean)",
            "OPT_UB (mean)",
            "ratio UB/S (geo)",
            "worst ratio",
            "theory O(1/e^6)",
        ],
    );
    for &eps in &eps_grid {
        for &load in &loads {
            let rows = over_seeds(&seed_list, |seed| {
                let inst = instance(m, n_jobs, eps, load, seed);
                let r = run_on(&inst, &SchedKind::S { epsilon: eps });
                let ub = exact_subset_ub(&inst, Speed::ONE, 24).expect("n_jobs <= 24");
                (r.total_profit, ub)
            });
            let profits: Vec<f64> = rows.iter().map(|(p, _)| *p as f64).collect();
            let ubs: Vec<f64> = rows.iter().map(|(_, u)| *u as f64).collect();
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|(p, u)| *p > 0 && *u > 0)
                .map(|(p, u)| *u as f64 / *p as f64)
                .collect();
            let geo = geo_mean(&ratios).unwrap_or(f64::NAN);
            let worst = ratios.iter().cloned().fold(0.0f64, f64::max);
            let theory = dagsched_core::AlgoParams::from_epsilon(eps)
                .expect("valid eps")
                .throughput_competitive_ratio();
            t.row(vec![
                f(eps, 2),
                f(load, 1),
                f(profits.iter().sum::<f64>() / profits.len() as f64, 1),
                f(ubs.iter().sum::<f64>() / ubs.len() as f64, 1),
                f(geo, 2),
                f(worst, 2),
                format!("{theory:.0}"),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_small_constants_and_below_theory() {
        let tables = run(true);
        let t = &tables[0];
        assert!(t.len() >= 4);
        for i in 0..t.len() {
            let geo: f64 = t.cell(i, 4).parse().unwrap();
            let worst: f64 = t.cell(i, 5).parse().unwrap();
            let theory: f64 = t.cell(i, 6).parse().unwrap();
            assert!(geo >= 1.0 - 1e-9, "UB/S cannot be below 1");
            assert!(
                worst <= 25.0,
                "row {i}: empirical ratio {worst} implausibly large"
            );
            assert!(
                worst <= theory,
                "row {i}: measured {worst} exceeds the worst-case bound {theory}"
            );
        }
    }

    #[test]
    fn instances_satisfy_theorem2_condition() {
        let inst = instance(8, 18, 0.5, 2.0, 1);
        for j in inst.jobs() {
            let brent = j.brent_bound(8);
            let d = j.rel_deadline().unwrap().as_f64();
            assert!(d >= 1.5 * brent - 1.0);
        }
    }
}
