//! The sharded parallel sweep runtime.
//!
//! A [`SweepGrid`] is the cross product *workload seed × scheduler × speed ×
//! platform*. The platform axis is the uniform machine sizes in
//! [`SweepGrid::ms`] followed by the heterogeneous [`MachineGroups`] shapes
//! in [`SweepGrid::groups`] (e.g. `4x1,2x2`); a shaped cell runs the engine
//! on that related-machines platform with the speed axis applied as a
//! whole-platform augmentation factor ([`MachineGroups::scaled`]), while
//! uniform cells keep the legacy scalar-speed configuration byte-for-byte.
//! Workload seeds are keyed on the platform's **total processor count**, so
//! a shape is paired — identical generated instances — with any uniform
//! entry or other shape of the same total.
//! [`SweepGrid::run`] shards the cells over `threads` workers
//! (scoped threads pulling cells from an atomic cursor) and merges the
//! per-cell results back **in grid order**, so the output is byte-identical
//! regardless of thread count or OS scheduling:
//!
//! * every cell is self-seeding — its workload seed is derived from the
//!   grid's base seed and the cell coordinates via [`Rng64::child`] chains,
//!   never from which worker ran it or in what order;
//! * the engine is deterministic per (instance, scheduler, config);
//! * workers return `(cell index, result)` pairs and the merge step writes
//!   them into a dense grid-ordered vector; summary statistics fold
//!   [`RunningStats`] partials in that same fixed order.
//!
//! Generated instances live in a **grid-owned slab** of
//! `OnceLock<Arc<Instance>>` cells shared by all workers — `get_or_init`
//! runs its closure exactly once per `(seed, m)` no matter how many workers
//! race to the same cell, so every workload is generated once per run
//! regardless of thread count (the workload axis is shared across schedulers
//! and speeds, so comparisons are paired). Each worker additionally keeps
//! one scheduler value per `(scheduler, m)` in a dense index-keyed slab,
//! reused across cells when [`OnlineScheduler::reset`] reports the scheduler
//! restored itself — otherwise a fresh one is built, so reuse is purely an
//! allocation saving, never a semantic one. Neither cache does any string
//! formatting or hashing on the per-cell path.
//!
//! The module also carries the `dagsched sweep` CLI (parse + execute,
//! unit-tested here; `src/main.rs` at the workspace root is a thin wrapper).

use crate::common::SchedKind;
use dagsched_core::{MachineGroups, Rng64, SchedError, Speed};
use dagsched_engine::{simulate, OnlineScheduler, SimConfig};
use dagsched_metrics::RunningStats;
use dagsched_workload::{Instance, WorkloadGen};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A sweep over workload seeds × schedulers × speeds × platforms.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Grid name (reported in the output header).
    pub name: String,
    /// Workload-seed axis (one generated instance per `(seed, total)`).
    pub seeds: Vec<u64>,
    /// Scheduler axis.
    pub scheds: Vec<SchedKind>,
    /// Engine-speed axis. Applied as the scalar speed on uniform platforms
    /// and as a whole-platform augmentation factor on shaped ones.
    pub speeds: Vec<Speed>,
    /// Uniform machine sizes: the leading entries of the platform axis.
    pub ms: Vec<u32>,
    /// Heterogeneous platform shapes appended after [`ms`](SweepGrid::ms)
    /// on the platform axis. A shape with the same total processor count as
    /// a uniform entry shares its generated workloads (paired comparison).
    pub groups: Vec<MachineGroups>,
    /// Jobs per generated instance.
    pub n_jobs: usize,
    /// Base seed the per-cell workload seeds are derived from.
    pub base_seed: u64,
}

/// One entry of the combined platform axis.
#[derive(Debug, Clone)]
enum PlatformEntry {
    /// `m` processors at the cell's axis speed (the legacy scalar path).
    Uniform(u32),
    /// A related-machines shape; the cell's axis speed scales every group.
    Shaped(MachineGroups),
}

impl PlatformEntry {
    fn total(&self) -> u32 {
        match self {
            PlatformEntry::Uniform(m) => *m,
            PlatformEntry::Shaped(g) => g.total(),
        }
    }

    /// The CSV label: `-` for uniform entries (the `m` column already says
    /// everything), the shape spec with the CSV-friendly `+` separator
    /// otherwise.
    fn label(&self) -> String {
        match self {
            PlatformEntry::Uniform(_) => "-".into(),
            PlatformEntry::Shaped(g) => g.to_string().replace(',', "+"),
        }
    }
}

/// One cell's coordinates: axis values plus the dense axis indices the
/// instance slab and scheduler cache are keyed by.
#[derive(Debug, Clone, Copy)]
struct Cell {
    seed: u64,
    seed_idx: usize,
    sched_idx: usize,
    speed: Speed,
    m: u32,
    /// Index into the combined platform axis (`ms` then `groups`).
    platform_idx: usize,
    /// Index into the deduplicated totals list — the workload-slab and
    /// scheduler-cache key, shared by equal-total platforms.
    total_idx: usize,
}

/// The outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scheduler label ([`SchedKind::label`]).
    pub sched: String,
    /// Platform label: `-` for uniform cells, the shape spec (with `+`
    /// separating groups, e.g. `4x1+2x2`) for shaped ones.
    pub platform: String,
    /// Total processor count.
    pub m: u32,
    /// Engine speed.
    pub speed: Speed,
    /// Workload-axis seed.
    pub seed: u64,
    /// Total profit earned.
    pub profit: u64,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs expired.
    pub expired: usize,
    /// Jobs unfinished at the horizon.
    pub unfinished: usize,
    /// Ticks of simulated time.
    pub ticks: u64,
    /// Engine steps executed (events on the fast-forward path).
    pub steps: u64,
}

/// A completed sweep: the grid's cells in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The grid's name.
    pub grid: String,
    /// Per-cell results, in grid order (seed-major, then scheduler, speed,
    /// machine size) — identical for every thread count.
    pub cells: Vec<CellResult>,
    /// How many workload instances were generated during the run. The
    /// shared `OnceLock` slab guarantees exactly one generation per
    /// distinct `(seed, total processor count)` pair, so this equals
    /// `seeds.len() ×` the number of distinct platform totals at every
    /// thread count — a deterministic field, safe for the
    /// cross-thread-count equality checks. Equal-total platform shapes
    /// share instances by construction (paired comparison).
    pub instances_generated: usize,
}

/// Derive the workload seed of one `(axis seed, total)` pair. Independent
/// of the scheduler, speed, and platform-*shape* axes so those comparisons
/// are paired, and independent of sharding by construction. Keying on the
/// total (not the shape) is what makes a `4x1,2x2` cell directly
/// comparable to a uniform `m = 6` cell: both run the same instances.
fn workload_seed(base: u64, axis_seed: u64, m: u32) -> u64 {
    Rng64::seed_from(base)
        .child(axis_seed)
        .child(m as u64)
        .next_u64()
}

impl SweepGrid {
    /// The tiny grid the CI smoke job diffs across thread counts.
    pub fn smoke() -> SweepGrid {
        SweepGrid {
            name: "smoke".into(),
            seeds: vec![1, 2],
            scheds: vec![
                SchedKind::S { epsilon: 1.0 },
                SchedKind::Edf,
                SchedKind::Fifo,
            ],
            speeds: vec![Speed::ONE],
            ms: vec![4],
            groups: vec![],
            n_jobs: 16,
            base_seed: 0xDA65_C4ED,
        }
    }

    /// The benchmark grid (B1): the production schedulers over two machine
    /// sizes and two speeds, six seeds each.
    pub fn b1() -> SweepGrid {
        SweepGrid {
            name: "b1".into(),
            seeds: (1..=6).collect(),
            scheds: vec![
                SchedKind::S { epsilon: 1.0 },
                SchedKind::SWc { epsilon: 1.0 },
                SchedKind::Edf,
                SchedKind::EdfAc,
                SchedKind::Fifo,
                SchedKind::Hdf,
                SchedKind::Llf,
                SchedKind::MoldList,
                SchedKind::Equi,
            ],
            speeds: vec![Speed::ONE, Speed::new(3, 2).expect("positive")],
            ms: vec![8, 16],
            groups: vec![],
            n_jobs: 60,
            base_seed: 0xDA65_C4ED,
        }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.seeds.len()
            * self.scheds.len()
            * self.speeds.len()
            * (self.ms.len() + self.groups.len())
    }

    /// True iff any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The combined platform axis: uniform `ms` entries first, then the
    /// heterogeneous shapes, each in declaration order.
    fn platform_axis(&self) -> Vec<PlatformEntry> {
        self.ms
            .iter()
            .map(|&m| PlatformEntry::Uniform(m))
            .chain(self.groups.iter().cloned().map(PlatformEntry::Shaped))
            .collect()
    }

    /// Map each platform-axis entry to an index into the deduplicated list
    /// of processor totals. Equal-total platforms map to the same index and
    /// therefore share a workload-slab cell — that sharing *is* the paired
    /// comparison between a shape and its uniform twin.
    fn total_index(platforms: &[PlatformEntry]) -> (usize, Vec<usize>) {
        let mut totals: Vec<u32> = Vec::new();
        let map = platforms
            .iter()
            .map(|p| {
                let t = p.total();
                totals.iter().position(|&x| x == t).unwrap_or_else(|| {
                    totals.push(t);
                    totals.len() - 1
                })
            })
            .collect();
        (totals.len(), map)
    }

    /// The cell list in grid order.
    fn cells(&self, platforms: &[PlatformEntry], total_of: &[usize]) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.len());
        for (seed_idx, &seed) in self.seeds.iter().enumerate() {
            for sched_idx in 0..self.scheds.len() {
                for &speed in &self.speeds {
                    for (platform_idx, p) in platforms.iter().enumerate() {
                        out.push(Cell {
                            seed,
                            seed_idx,
                            sched_idx,
                            speed,
                            m: p.total(),
                            platform_idx,
                            total_idx: total_of[platform_idx],
                        });
                    }
                }
            }
        }
        out
    }

    /// Run one cell against the shared instance slab and the worker's
    /// scheduler cache. No string formatting or hashing happens on the slab
    /// path: the instance is a dense `(seed_idx, total_idx)` lookup and the
    /// scheduler a dense `(sched_idx, total_idx)` one (equal-total
    /// platforms deliberately share both — same workload, and schedulers
    /// only depend on `m`).
    fn run_cell(
        &self,
        cell: &Cell,
        platforms: &[PlatformEntry],
        n_totals: usize,
        instances: &[OnceLock<Arc<Instance>>],
        generated: &AtomicUsize,
        scheds: &mut [Option<Box<dyn OnlineScheduler>>],
    ) -> CellResult {
        let inst = instances[cell.seed_idx * n_totals + cell.total_idx].get_or_init(|| {
            // `get_or_init` runs this closure exactly once per cell even
            // when workers race, so the counter is exact, not a sample.
            generated.fetch_add(1, Ordering::Relaxed);
            let wseed = workload_seed(self.base_seed, cell.seed, cell.m);
            Arc::new(
                WorkloadGen::standard(cell.m, self.n_jobs, wseed)
                    .generate()
                    .expect("standard workloads generate"),
            )
        });
        let kind = &self.scheds[cell.sched_idx];
        let entry = &mut scheds[cell.sched_idx * n_totals + cell.total_idx];
        let reusable = entry.as_mut().is_some_and(|s| s.reset());
        if !reusable {
            *entry = Some(kind.build(cell.m));
        }
        let sched = entry.as_mut().expect("present by construction");
        let platform = &platforms[cell.platform_idx];
        let cfg = match platform {
            PlatformEntry::Uniform(_) => SimConfig::at_speed(cell.speed),
            PlatformEntry::Shaped(g) => SimConfig::on_groups(
                g.scaled(cell.speed)
                    .expect("grid speeds keep platform speeds in range"),
            ),
        };
        let r = simulate(inst, sched.as_mut(), &cfg)
            .expect("production schedulers emit valid allocations");
        CellResult {
            sched: kind.label(),
            platform: platform.label(),
            m: cell.m,
            speed: cell.speed,
            seed: cell.seed,
            profit: r.total_profit,
            completed: r.completed(),
            expired: r.expired(),
            unfinished: r.unfinished(),
            ticks: r.ticks_simulated,
            steps: r.steps_executed,
        }
    }

    /// Run the whole grid on `threads` workers (0 is treated as 1).
    ///
    /// Workers pull cell indices from a shared cursor and return
    /// `(index, result)` pairs; the merge writes them into a grid-ordered
    /// vector, so the returned [`SweepResult`] is byte-identical for every
    /// thread count.
    pub fn run(&self, threads: usize) -> SweepResult {
        let platforms = self.platform_axis();
        let (n_totals, total_of) = SweepGrid::total_index(&platforms);
        let cells = self.cells(&platforms, &total_of);
        let workers = threads.max(1).min(cells.len().max(1));
        let cursor = AtomicUsize::new(0);
        // The instance slab is grid-owned and shared by every worker: one
        // `OnceLock` cell per distinct (seed, total), so each workload is
        // generated exactly once per run regardless of thread count — and
        // equal-total platform shapes run the very same instances.
        let instances: Vec<OnceLock<Arc<Instance>>> = (0..self.seeds.len() * n_totals)
            .map(|_| OnceLock::new())
            .collect();
        let generated = AtomicUsize::new(0);
        let mut merged: Vec<Option<CellResult>> = vec![None; cells.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scheds: Vec<Option<Box<dyn OnlineScheduler>>> =
                            (0..self.scheds.len() * n_totals).map(|_| None).collect();
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = cells.get(i) else { break };
                            local.push((
                                i,
                                self.run_cell(
                                    cell,
                                    &platforms,
                                    n_totals,
                                    &instances,
                                    &generated,
                                    &mut scheds,
                                ),
                            ));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("sweep worker panicked") {
                    merged[i] = Some(r);
                }
            }
        });
        SweepResult {
            grid: self.name.clone(),
            cells: merged
                .into_iter()
                .map(|c| c.expect("every cell index was claimed exactly once"))
                .collect(),
            instances_generated: generated.load(Ordering::Relaxed),
        }
    }
}

impl SweepResult {
    /// Render the sweep as CSV: one row per cell in grid order, then a
    /// `# summary` section aggregating profit over the seed axis with
    /// [`RunningStats`] folded in grid order. The string is identical for
    /// every thread count.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# sweep grid: {}", self.grid);
        let _ = writeln!(
            out,
            "sched,platform,m,speed,seed,profit,completed,expired,unfinished,ticks,steps"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{},{},{},{}/{},{},{},{},{},{},{},{}",
                c.sched,
                c.platform,
                c.m,
                c.speed.num(),
                c.speed.den(),
                c.seed,
                c.profit,
                c.completed,
                c.expired,
                c.unfinished,
                c.ticks,
                c.steps
            );
        }
        let _ = writeln!(out, "# instances generated: {}", self.instances_generated);
        let _ = writeln!(out, "# summary (profit over seeds)");
        let _ = writeln!(out, "sched,platform,m,speed,n,mean,min,max");
        // Fold per (sched, platform, speed, m) group in grid order: the
        // cell list is seed-major, so walking it once in order feeds each
        // group's RunningStats its seeds in ascending-axis order.
        let mut order: Vec<(String, String, u32, Speed)> = Vec::new();
        let mut groups: HashMap<(String, String, u32, Speed), RunningStats> = HashMap::new();
        for c in &self.cells {
            let key = (c.sched.clone(), c.platform.clone(), c.m, c.speed);
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    order.push(key);
                    RunningStats::new()
                })
                .push(c.profit as f64);
        }
        for key in order {
            let s = &groups[&key];
            let _ = writeln!(
                out,
                "{},{},{},{}/{},{},{:.3},{:.3},{:.3}",
                key.0,
                key.1,
                key.2,
                key.3.num(),
                key.3.den(),
                s.count(),
                s.mean().unwrap_or(0.0),
                s.min().unwrap_or(0.0),
                s.max().unwrap_or(0.0)
            );
        }
        out
    }
}

/// A parsed `sweep` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepCommand {
    /// Run a named grid.
    Run {
        /// Which grid (`smoke` or `b1`).
        grid: String,
        /// Worker-thread count.
        threads: usize,
        /// Heterogeneous platform shapes appended to the grid's platform
        /// axis (`--groups`).
        groups: Vec<MachineGroups>,
    },
    /// Print usage.
    Help,
}

/// The `sweep` usage text.
pub const USAGE: &str = "\
usage: dagsched sweep [options]

options:
  --grid smoke|b1   which grid to run      (default smoke)
  --threads N       worker threads         (default: available parallelism)
  --groups SPEC     append related-machines platform shapes to the grid's
                    platform axis; a shape is <count>x<speed> groups joined
                    by commas (e.g. 4x1,2x2 = four unit-speed plus two
                    double-speed processors), multiple shapes joined by ';'.
                    Shapes with the same processor total as a uniform entry
                    run the exact same workloads (paired comparison).

The output (CSV rows in grid order plus a summary section) is byte-identical
for every --threads value.
";

fn take_val<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parse `sweep` arguments (without the `sweep` word itself).
pub fn parse(args: &[String]) -> Result<SweepCommand, SchedError> {
    if args
        .first()
        .is_some_and(|a| a == "help" || a == "--help" || a == "-h")
    {
        return Ok(SweepCommand::Help);
    }
    let grid = take_val(args, "--grid").unwrap_or("smoke");
    if grid != "smoke" && grid != "b1" {
        return Err(SchedError::Unsupported(format!("unknown --grid {grid:?}")));
    }
    let threads = match take_val(args, "--threads") {
        Some(t) => t.parse::<usize>().ok().filter(|&t| t >= 1).ok_or_else(|| {
            SchedError::Unsupported("--threads expects a positive integer".into())
        })?,
        None => dagsched_engine::runner::default_threads(),
    };
    let groups = match take_val(args, "--groups") {
        Some(spec) => spec
            .split(';')
            .map(|s| s.parse::<MachineGroups>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| SchedError::Unsupported(format!("--groups: {e}")))?,
        None => Vec::new(),
    };
    Ok(SweepCommand::Run {
        grid: grid.to_string(),
        threads,
        groups,
    })
}

/// Execute a parsed `sweep` command, returning the report.
pub fn execute(cmd: &SweepCommand) -> Result<String, SchedError> {
    match cmd {
        SweepCommand::Help => Ok(USAGE.to_string()),
        SweepCommand::Run {
            grid,
            threads,
            groups,
        } => {
            let mut grid = match grid.as_str() {
                "smoke" => SweepGrid::smoke(),
                "b1" => SweepGrid::b1(),
                other => return Err(SchedError::Unsupported(format!("unknown grid {other:?}"))),
            };
            grid.groups.extend(groups.iter().cloned());
            Ok(grid.run(*threads).to_csv())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_variants() {
        assert_eq!(parse(&argv("help")).unwrap(), SweepCommand::Help);
        assert_eq!(
            parse(&argv("--grid b1 --threads 4")).unwrap(),
            SweepCommand::Run {
                grid: "b1".into(),
                threads: 4,
                groups: vec![]
            }
        );
        match parse(&[]).unwrap() {
            SweepCommand::Run {
                grid,
                threads,
                groups,
            } => {
                assert_eq!(grid, "smoke");
                assert!(threads >= 1);
                assert!(groups.is_empty());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("--grid nope")).is_err());
        assert!(parse(&argv("--threads 0")).is_err());
        assert!(parse(&argv("--threads x")).is_err());
    }

    #[test]
    fn parse_groups_axis() {
        match parse(&argv("--grid b1 --groups 4x1,2x2 --threads 2")).unwrap() {
            SweepCommand::Run { grid, groups, .. } => {
                assert_eq!(grid, "b1");
                assert_eq!(groups, vec!["4x1,2x2".parse().unwrap()]);
            }
            other => panic!("{other:?}"),
        }
        // Multiple shapes are ';'-separated (',' separates groups inside
        // one shape).
        match parse(&argv("--groups 4x1,2x2;6x1")).unwrap() {
            SweepCommand::Run { groups, .. } => {
                assert_eq!(groups.len(), 2);
                assert_eq!(groups[1], MachineGroups::uniform(6, Speed::ONE).unwrap());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("--groups 4xfast")).is_err());
        assert!(parse(&argv("--groups 0x1")).is_err());
    }

    #[test]
    fn smoke_grid_runs_and_reports_every_cell() {
        let grid = SweepGrid::smoke();
        let r = grid.run(1);
        assert_eq!(r.cells.len(), grid.len());
        let csv = r.to_csv();
        assert!(csv.starts_with("# sweep grid: smoke"));
        assert!(csv.contains("# summary"));
        // One row per cell plus headers and summary rows.
        let rows = csv.lines().filter(|l| l.contains(",1/1,")).count();
        assert!(rows >= grid.len());
    }

    #[test]
    fn workload_axis_is_shared_across_schedulers() {
        // Same (seed, m): every scheduler must see the same instance, which
        // shows as identical tick counts being *possible*; assert directly
        // on the derivation.
        assert_eq!(workload_seed(7, 1, 4), workload_seed(7, 1, 4));
        assert_ne!(workload_seed(7, 1, 4), workload_seed(7, 2, 4));
        assert_ne!(workload_seed(7, 1, 4), workload_seed(7, 1, 8));
        assert_ne!(workload_seed(7, 1, 4), workload_seed(8, 1, 4));
    }

    #[test]
    fn thread_counts_do_not_change_the_output() {
        let grid = SweepGrid::smoke();
        let one = grid.run(1).to_csv();
        let three = grid.run(3).to_csv();
        assert_eq!(one, three, "sharding leaked into the results");
    }

    #[test]
    fn every_workload_is_generated_exactly_once_per_run() {
        let grid = SweepGrid::smoke();
        let distinct = grid.seeds.len() * grid.ms.len();
        for threads in [1, 8] {
            let r = grid.run(threads);
            assert_eq!(
                r.instances_generated, distinct,
                "expected one generation per (seed, m) at {threads} threads"
            );
            assert!(r
                .to_csv()
                .contains(&format!("# instances generated: {distinct}")));
        }
    }

    #[test]
    fn execute_help_and_run() {
        assert!(execute(&SweepCommand::Help).unwrap().contains("--grid"));
        let out = execute(&SweepCommand::Run {
            grid: "smoke".into(),
            threads: 2,
            groups: vec![],
        })
        .unwrap();
        assert!(out.contains("sched,platform,m,speed,seed"));
    }

    /// A shape whose total equals a uniform entry runs the exact same
    /// workloads and — when the shape is itself uniform at speed 1 — must
    /// reproduce the uniform cells' results number for number, at every
    /// point of the speed axis (the axis scales the whole shape).
    #[test]
    fn single_speed_shape_is_paired_with_its_uniform_twin() {
        let mut grid = SweepGrid::smoke();
        grid.ms = vec![6];
        grid.groups = vec![MachineGroups::uniform(6, Speed::ONE).unwrap()];
        grid.speeds = vec![Speed::ONE, Speed::new(3, 2).unwrap()];
        let r = grid.run(2);
        assert_eq!(r.cells.len(), grid.len());
        // One generation per (seed, total): the shape shares the slab.
        assert_eq!(r.instances_generated, grid.seeds.len());
        for pair in r.cells.chunks(2) {
            let (uni, shaped) = (&pair[0], &pair[1]);
            assert_eq!(uni.platform, "-");
            assert_eq!(shaped.platform, "6x1");
            assert_eq!(
                (uni.profit, uni.completed, uni.expired, uni.ticks, uni.steps),
                (
                    shaped.profit,
                    shaped.completed,
                    shaped.expired,
                    shaped.ticks,
                    shaped.steps
                ),
                "shaped cell diverged from its uniform twin: {uni:?} vs {shaped:?}"
            );
        }
    }

    /// A genuinely heterogeneous shape sweeps cleanly, shows up in the CSV
    /// under its `+`-separated label, and stays thread-count invariant.
    #[test]
    fn heterogeneous_shape_sweeps_and_is_thread_invariant() {
        let mut grid = SweepGrid::smoke();
        grid.groups = vec!["3x1,1x2".parse().unwrap()];
        let one = grid.run(1);
        assert_eq!(one, grid.run(3), "sharding leaked into shaped cells");
        let csv = one.to_csv();
        assert!(csv.contains(",3x1+1x2,4,"), "shape label missing:\n{csv}");
        // Shape total 4 equals the uniform m=4 entry: one instance per seed.
        assert_eq!(one.instances_generated, grid.seeds.len());
    }
}
