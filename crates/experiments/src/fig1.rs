//! **F1** — Figure 1 / Theorem 1: the semi-non-clairvoyant lower bound.
//!
//! The Figure 1 job is a chain of length `L = W/m` in parallel with an
//! independent block of `W − L` work. Two tables:
//!
//! 1. *Makespan gap vs m*: clairvoyant LPF achieves `W/m`; the adversarial
//!    semi-non-clairvoyant execution takes `(W−L)/m + L`, a ratio of exactly
//!    `2 − 1/m`.
//! 2. *Speed sweep*: the augmentation at which the adversarial execution
//!    meets the clairvoyant deadline `D = W/m` — it crosses precisely at
//!    `s = 2 − 1/m` (Theorem 1's threshold).

use dagsched_core::Speed;
use dagsched_dag::gen;
use dagsched_metrics::{plot, table::f, Series, Table};
use dagsched_opt::{adversarial_makespan, lpf_makespan};

/// Machine sizes for the gap table.
pub fn m_grid(quick: bool) -> Vec<u32> {
    if quick {
        vec![2, 8]
    } else {
        vec![2, 4, 8, 16, 32, 64]
    }
}

/// Build both Figure-1 tables.
pub fn run(quick: bool) -> Vec<Table> {
    let chain_len = if quick { 40 } else { 120 };

    let mut gap = Table::new(
        "F1a: Figure 1 makespan gap (clairvoyant W/m vs adversarial (W-L)/m+L)",
        &[
            "m",
            "W",
            "L",
            "clairvoyant",
            "adversarial",
            "ratio",
            "theory 2-1/m",
        ],
    );
    for m in m_grid(quick) {
        let dag = gen::fig1(m, chain_len, 1).into_shared();
        let w = dag.total_work().units();
        let l = dag.span().units();
        let friendly = lpf_makespan(dag.clone(), m, Speed::ONE).expect("valid run");
        let adv = adversarial_makespan(dag, m, Speed::ONE).expect("valid run");
        gap.row(vec![
            m.to_string(),
            w.to_string(),
            l.to_string(),
            friendly.to_string(),
            adv.to_string(),
            f(adv.as_f64() / friendly.as_f64(), 4),
            f(2.0 - 1.0 / m as f64, 4),
        ]);
    }

    // Speed sweep at a fixed m: find where the adversarial execution meets
    // the clairvoyant deadline W/m.
    let m = 8u32;
    let dag = gen::fig1(m, chain_len, 1).into_shared();
    let deadline = dag.total_work().units() / m as u64; // = W/m = clairvoyant
    let mut sweep = Table::new(
        "F1b: adversarial Fig.1 vs speed (deadline = clairvoyant W/m, m=8)",
        &[
            "speed",
            "adversarial_makespan",
            "meets_deadline",
            "theory_needs",
        ],
    );
    let theory = 2.0 - 1.0 / m as f64;
    for (num, den) in [(1u32, 1u32), (5, 4), (3, 2), (7, 4), (15, 8), (2, 1)] {
        let s = Speed::new(num, den).expect("positive");
        let adv = adversarial_makespan(dag.clone(), m, s).expect("valid run");
        sweep.row(vec![
            format!("{:.3}", s.as_f64()),
            adv.to_string(),
            (adv.ticks() <= deadline).to_string(),
            f(theory, 3),
        ]);
    }

    vec![gap, sweep]
}

/// An ASCII rendition of Figure F1b: adversarial makespan vs speed, with
/// the deadline marked as a second (flat) series.
pub fn speed_plot(quick: bool) -> String {
    let m = 8u32;
    let chain_len = if quick { 40 } else { 120 };
    let dag = gen::fig1(m, chain_len, 1).into_shared();
    let deadline = (dag.total_work().units() / m as u64) as f64;
    let mut pts = Vec::new();
    for i in 0..=20u32 {
        let s = Speed::new(100 + 5 * i, 100).expect("positive");
        let adv = adversarial_makespan(dag.clone(), m, s).expect("valid run");
        pts.push((s.as_f64(), adv.as_f64()));
    }
    let lo = pts.first().expect("non-empty").0;
    let hi = pts.last().expect("non-empty").0;
    plot::render(
        "F1b: adversarial Fig.1 makespan vs speed (flat line = deadline W/m)",
        &[
            Series::new("adversarial makespan", pts),
            Series::new("deadline W/m", vec![(lo, deadline), (hi, deadline)]),
        ],
        64,
        16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_table_matches_theory_exactly() {
        let tables = run(true);
        let gap = &tables[0];
        for i in 0..gap.len() {
            let ratio: f64 = gap.cell(i, 5).parse().unwrap();
            let theory: f64 = gap.cell(i, 6).parse().unwrap();
            assert!(
                (ratio - theory).abs() < 1e-3,
                "row {i}: measured {ratio} vs theory {theory}"
            );
        }
    }

    #[test]
    fn speed_plot_renders_both_series() {
        let p = speed_plot(true);
        assert!(p.contains("adversarial makespan"));
        assert!(p.contains("deadline W/m"));
        assert!(p.contains('*') && p.contains('o'));
    }

    #[test]
    fn speed_sweep_crosses_at_theorem1_threshold() {
        let tables = run(true);
        let sweep = &tables[1];
        // Below 15/8 = 1.875 = 2 - 1/8: misses; at and above: meets.
        let mut last_below = None;
        let mut first_meet = None;
        for i in 0..sweep.len() {
            let s: f64 = sweep.cell(i, 0).parse().unwrap();
            let meets: bool = sweep.cell(i, 2).parse().unwrap();
            if meets && first_meet.is_none() {
                first_meet = Some(s);
            }
            if !meets {
                last_below = Some(s);
            }
        }
        let threshold = 2.0 - 1.0 / 8.0;
        assert!(last_below.expect("some speed misses") < threshold + 1e-9);
        assert!(first_meet.expect("some speed meets") >= threshold - 1e-9);
    }
}
