//! **E11** — sporadic DAG task sets: the related-work bridge.
//!
//! The real-time literature the paper departs from asks "can *all*
//! deadlines be met?" (schedulability); the paper asks "how much profit
//! can be earned when they can't?" (throughput). This experiment sweeps
//! total utilization and shows both regimes on the same task sets:
//!
//! * the **federated** schedulability test's acceptance rate, and the
//!   deadline-miss count of accepted sets in simulation (must be zero);
//! * the completion rate of **S** and **EDF** on *every* set, including
//!   the ones federated scheduling rejects — where throughput scheduling
//!   keeps earning while hard-real-time simply declines.

use crate::common::{over_seeds, seeds};
use dagsched_core::{Rng64, Time};
use dagsched_dag::gen;
use dagsched_engine::{simulate, SimConfig};
use dagsched_metrics::{table::f, Table};
use dagsched_sched::{federated_assignment, Edf, FederatedScheduler, SchedulerS};
use dagsched_workload::sporadic::{SporadicTask, SporadicTaskSet};

/// Build a random task set with total utilization near `target_util·m`.
pub fn task_set(m: u32, target_util: f64, seed: u64) -> SporadicTaskSet {
    let mut rng = Rng64::seed_from(seed);
    let mut tasks = Vec::new();
    let mut util = 0.0;
    let budget = target_util * m as f64;
    while util < budget && tasks.len() < 40 {
        // Mix of light blocks/fork-joins and occasional heavy wide jobs.
        let heavy = rng.gen_bool(0.25);
        let dag = if heavy {
            gen::block(rng.gen_range_inclusive(16, 40) as u32, 2).into_shared()
        } else {
            gen::fork_join(
                rng.gen_range_inclusive(1, 2) as u32,
                rng.gen_range_inclusive(2, 5) as u32,
                rng.gen_range_inclusive(1, 3),
            )
            .into_shared()
        };
        let w = dag.total_work().as_f64();
        let l = dag.span().as_f64();
        // Deadline: between the greedy bound and 3x it; period ≥ deadline.
        let brent = (w - l) / m as f64 + l;
        let d = (rng.gen_f64_range(1.2, 3.0) * brent).ceil() as u64;
        let period = d + rng.gen_range_inclusive(0, d);
        util += w / period as f64;
        tasks.push(SporadicTask {
            dag,
            period,
            rel_deadline: Time(d),
            profit: w as u64,
            jitter: period / 8,
        });
    }
    SporadicTaskSet {
        m,
        tasks,
        horizon: Time(1_500),
        seed: seed ^ 0xABCD,
    }
}

/// Build the E11 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let utils: Vec<f64> = if quick {
        vec![0.3, 0.9]
    } else {
        vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.4]
    };
    let seed_list = seeds(quick);

    let mut t = Table::new(
        "E11: sporadic DAG task sets by normalized utilization (m=8)",
        &[
            "util/m",
            "fed accepts",
            "fed misses",
            "S completion %",
            "EDF completion %",
        ],
    );
    for &u in &utils {
        let rows = over_seeds(&seed_list, |seed| {
            let set = task_set(m, u, seed);
            let (inst, task_of_job) = set.generate().expect("valid set");
            let n = inst.len();
            let fed = federated_assignment(&set).map(|a| {
                let mut sched = FederatedScheduler::new(a, task_of_job.clone());
                let r = simulate(&inst, &mut sched, &SimConfig::default()).expect("valid");
                n - r.completed() // misses
            });
            let mut s = SchedulerS::with_epsilon(m, 1.0).work_conserving();
            let rs = simulate(&inst, &mut s, &SimConfig::default()).expect("valid");
            let mut e = Edf::new(m);
            let re = simulate(&inst, &mut e, &SimConfig::default()).expect("valid");
            (
                fed,
                rs.completed() as f64 / n as f64,
                re.completed() as f64 / n as f64,
            )
        });
        let n = rows.len() as f64;
        let accepted = rows.iter().filter(|(f, _, _)| f.is_some()).count();
        let misses: usize = rows.iter().filter_map(|(f, _, _)| *f).sum();
        t.row(vec![
            f(u, 1),
            format!("{accepted}/{}", rows.len()),
            misses.to_string(),
            f(100.0 * rows.iter().map(|r| r.1).sum::<f64>() / n, 1),
            f(100.0 * rows.iter().map(|r| r.2).sum::<f64>() / n, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federated_accepts_low_util_and_never_misses() {
        let tables = run(true);
        let t = &tables[0];
        // Low-utilization row: everything accepted, zero misses.
        let accepts: &str = t.cell(0, 1);
        let misses: usize = t.cell(0, 2).parse().unwrap();
        assert_eq!(misses, 0, "accepted sets must not miss deadlines");
        assert!(
            accepts.starts_with("3/"),
            "low util should be accepted: {accepts}"
        );
        // High-utilization row: acceptance drops, throughput schedulers
        // still complete a meaningful fraction.
        let last = t.len() - 1;
        let s_rate: f64 = t.cell(last, 3).parse().unwrap();
        assert!(s_rate > 20.0, "S completion collapsed: {s_rate}%");
    }

    #[test]
    fn task_set_utilization_tracks_target() {
        for u in [0.3, 0.8] {
            let set = task_set(8, u, 5);
            let total = set.total_utilization() / 8.0;
            assert!(
                total >= u * 0.8 && total <= u * 1.6,
                "target {u}, got {total}"
            );
        }
    }
}
