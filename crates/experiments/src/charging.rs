//! **E5** — Lemma 5: completed vs started profit.
//!
//! Lemma 5's charging argument guarantees `‖C‖ ≥ margin · ‖R‖`: the profit
//! of jobs S *completes* is at least a constant fraction of the profit of
//! all jobs it ever *starts*, where `margin = (1−b)/b − 1/((c−1)δ)`
//! (see `AlgoParams::charge_margin`). This experiment stresses S with
//! overloaded workloads and reports the measured `‖C‖/‖R‖` next to the
//! guaranteed margin — the measurement must dominate the guarantee, usually
//! by a wide margin (the lemma is a worst-case bound).

use crate::common::{over_seeds, seeds};
use dagsched_core::AlgoParams;
use dagsched_engine::{simulate, SimConfig};
use dagsched_metrics::{stats::Summary, table::f, Table};
use dagsched_sched::SchedulerS;
use dagsched_workload::{
    ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen,
};

/// Build the E5 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let n_jobs = if quick { 60 } else { 150 };
    let seed_list = seeds(quick);
    let eps_grid = if quick {
        vec![0.5, 1.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0]
    };
    let loads = [2.0, 6.0];

    let mut t = Table::new(
        "E5: Lemma 5 charging — completed/started profit vs guaranteed margin (m=8)",
        &[
            "eps",
            "load",
            "||C||/||R|| (mean±std)",
            "min",
            "margin (guar.)",
            "started (mean)",
            "started_unfinished",
        ],
    );
    for &eps in &eps_grid {
        let margin = AlgoParams::from_epsilon(eps)
            .expect("valid eps")
            .charge_margin();
        for &load in &loads {
            let rows = over_seeds(&seed_list, |seed| {
                let inst = WorkloadGen {
                    m,
                    n_jobs,
                    seed,
                    arrivals: ArrivalProcess::poisson_for_load(load, 60.0, m),
                    family: DagFamily::standard_mix((1, 6)),
                    deadlines: DeadlinePolicy::SlackFactor(1.0 + eps),
                    // Densities spanning ~5 decades put several [v, c·v)
                    // bands in play at once: started low-density jobs can
                    // now actually starve and ||C|| < ||R|| is observable.
                    profits: ProfitPolicy::LogUniformDensity { lo: 1.0, hi: 1e5 },
                    shape: ProfitShape::Deadline,
                }
                .generate()
                .expect("valid workload");
                let mut s = SchedulerS::with_epsilon(m, eps);
                let r = simulate(&inst, &mut s, &SimConfig::default()).expect("valid run");
                let started = s.metrics().started_profit;
                let failed = s.metrics().started_count.saturating_sub(r.completed());
                (r.total_profit, started, failed)
            });
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|(_, r, _)| *r > 0)
                .map(|(c, r, _)| *c as f64 / *r as f64)
                .collect();
            let started_mean =
                rows.iter().map(|(_, r, _)| *r as f64).sum::<f64>() / rows.len() as f64;
            let failed_mean =
                rows.iter().map(|(_, _, u)| *u as f64).sum::<f64>() / rows.len() as f64;
            let s = Summary::of(&ratios).expect("non-empty");
            t.row(vec![
                f(eps, 2),
                f(load, 1),
                s.mean_pm(3),
                f(s.min, 3),
                f(margin, 4),
                f(started_mean, 0),
                f(failed_mean, 1),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratio_dominates_the_guaranteed_margin() {
        let tables = run(true);
        let t = &tables[0];
        for i in 0..t.len() {
            let min_ratio: f64 = t.cell(i, 3).parse().unwrap();
            let margin: f64 = t.cell(i, 4).parse().unwrap();
            assert!(margin > 0.0, "row {i}: margin must be positive");
            assert!(
                min_ratio >= margin - 1e-9,
                "row {i}: measured min {min_ratio} below guarantee {margin}"
            );
        }
    }
}
