//! **E6** — Theorem 3: general (step) profit functions.
//!
//! Workloads carry decaying-staircase profit functions (full value up to a
//! first bound `x*`, then geometrically decaying steps). Three schedulers
//! compete:
//!
//! * the Section 5 scheduler `S-profit` (slot assignment, minimal valid
//!   deadline per profit step);
//! * plain S treating each job's flat prefix as a hard deadline (ignoring
//!   the cheaper later steps);
//! * the HDF baseline (work-conserving, profit-density greedy).
//!
//! Profit is compared against the fractional OPT upper bound (staircase
//! maxima). Expected shape: S-profit ≥ S on staircase workloads (it can
//! still monetize jobs whose best step is unreachable), and both are a
//! solid fraction of the bound; the mean assigned-deadline stretch
//! `D_i/x_i*` stays modest.

use crate::common::{over_seeds, run_on, seeds, SchedKind};
use dagsched_core::Speed;
use dagsched_engine::{simulate, SimConfig};
use dagsched_metrics::{table::f, Table};
use dagsched_opt::fractional_ub;
use dagsched_sched::SchedulerSProfit;
use dagsched_workload::{
    ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen,
};

/// One instance of the E6 family.
pub fn instance(m: u32, n_jobs: usize, eps: f64, seed: u64) -> dagsched_workload::Instance {
    WorkloadGen {
        m,
        n_jobs,
        seed,
        arrivals: ArrivalProcess::poisson_for_load(2.0, 60.0, m),
        family: DagFamily::standard_mix((1, 6)),
        deadlines: DeadlinePolicy::SlackFactor(1.0 + eps),
        profits: ProfitPolicy::UniformDensity { lo: 2.0, hi: 8.0 },
        shape: ProfitShape::SteppedDecay {
            extra_steps: 3,
            time_factor: 1.8,
            value_factor: 0.45,
        },
    }
    .generate()
    .expect("valid workload")
}

/// Build the E6 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let n_jobs = if quick { 40 } else { 100 };
    let seed_list = seeds(quick);
    let eps = 1.0;

    let mut t = Table::new(
        "E6: general profit functions — S-profit vs S vs HDF (m=8, eps=1)",
        &[
            "scheduler",
            "profit (mean)",
            "frac of UB (mean)",
            "completed (mean)",
            "stretch D/x* (mean)",
        ],
    );

    // Per-seed instances and bounds.
    let cases: Vec<(dagsched_workload::Instance, u64)> = seed_list
        .iter()
        .map(|&seed| {
            let inst = instance(m, n_jobs, eps, seed);
            let ub = fractional_ub(&inst, Speed::ONE);
            (inst, ub)
        })
        .collect();

    // S-profit, with its extra metrics.
    let sp_rows = over_seeds(&seed_list, |seed| {
        let idx = seed_list.iter().position(|&x| x == seed).unwrap();
        let (inst, ub) = &cases[idx];
        let mut s = SchedulerSProfit::with_epsilon(m, eps);
        let r = simulate(inst, &mut s, &SimConfig::default()).expect("valid run");
        let stretch = if s.metrics().scheduled > 0 {
            s.metrics().stretch_sum / s.metrics().scheduled as f64
        } else {
            0.0
        };
        (r.total_profit, *ub, r.completed(), stretch)
    });
    let n = sp_rows.len() as f64;
    t.row(vec![
        "S-profit".into(),
        f(sp_rows.iter().map(|r| r.0 as f64).sum::<f64>() / n, 1),
        f(
            sp_rows
                .iter()
                .filter(|r| r.1 > 0)
                .map(|r| r.0 as f64 / r.1 as f64)
                .sum::<f64>()
                / n,
            3,
        ),
        f(sp_rows.iter().map(|r| r.2 as f64).sum::<f64>() / n, 1),
        f(sp_rows.iter().map(|r| r.3).sum::<f64>() / n, 2),
    ]);

    // Plain S and HDF.
    for kind in [SchedKind::S { epsilon: eps }, SchedKind::Hdf] {
        let rows = over_seeds(&seed_list, |seed| {
            let idx = seed_list.iter().position(|&x| x == seed).unwrap();
            let (inst, ub) = &cases[idx];
            let r = run_on(inst, &kind);
            (r.total_profit, *ub, r.completed())
        });
        t.row(vec![
            kind.label(),
            f(rows.iter().map(|r| r.0 as f64).sum::<f64>() / n, 1),
            f(
                rows.iter()
                    .filter(|r| r.1 > 0)
                    .map(|r| r.0 as f64 / r.1 as f64)
                    .sum::<f64>()
                    / n,
                3,
            ),
            f(rows.iter().map(|r| r.2 as f64).sum::<f64>() / n, 1),
            "-".into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schedulers_earn_and_stay_below_the_bound() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.len(), 3);
        for i in 0..t.len() {
            let profit: f64 = t.cell(i, 1).parse().unwrap();
            let frac: f64 = t.cell(i, 2).parse().unwrap();
            assert!(profit > 0.0, "row {i} earned nothing");
            assert!(frac > 0.0 && frac <= 1.0 + 1e-9, "row {i}: frac {frac}");
        }
        // Deadline stretch is sane: within the staircase (≤ ~6x of x*).
        let stretch: f64 = t.cell(0, 4).parse().unwrap();
        assert!(stretch > 0.0 && stretch < 8.0, "stretch {stretch}");
    }
}
