//! **E10** — HPC kernel task graphs: the workloads the paper's introduction
//! motivates (Cilk/TBB/OpenMP programs) realized as tiled Cholesky/LU
//! factorizations, stencils and wavefronts.
//!
//! A stream of such jobs (mixed shapes/sizes, Poisson arrivals, moderate
//! deadline slack) runs under S, its work-conserving extension and the
//! baselines. These DAGs have *structured* parallelism profiles — narrow
//! wavefront ramps, wide update phases — so they exercise the allotment
//! machinery differently from the synthetic mixes: `n_i` dedicated
//! processors is a poor fit for a job whose parallelism varies 1→T²
//! over its lifetime.

use crate::common::{over_seeds, run_on_cfg, seeds, SchedKind};
use dagsched_core::{JobId, Rng64, Speed, Time};
use dagsched_dag::hpc::{self, KernelCosts};
use dagsched_engine::SimConfig;
use dagsched_metrics::{table::f, Table};
use dagsched_opt::fractional_ub;
use dagsched_workload::{Instance, JobSpec, StepProfitFn};

/// Build one HPC job stream: `n_jobs` kernels sampled uniformly from the
/// four families, arrivals Poisson at the given load, deadline slack 2.0,
/// profit proportional to work.
pub fn instance(m: u32, n_jobs: usize, load: f64, seed: u64) -> Instance {
    let mut rng = Rng64::seed_from(seed);
    let mean_work = 150.0; // rough; load control is approximate
    let rate = load * m as f64 / mean_work;
    let mut t = 0.0f64;
    let mut jobs = Vec::with_capacity(n_jobs);
    for i in 0..n_jobs {
        t += rng.exponential(rate);
        let dag = match rng.gen_range(4) {
            0 => hpc::cholesky(rng.gen_range_inclusive(3, 7) as u32, KernelCosts::default()),
            1 => hpc::lu(rng.gen_range_inclusive(2, 5) as u32, KernelCosts::default()),
            2 => hpc::stencil(
                rng.gen_range_inclusive(4, 12) as u32,
                rng.gen_range_inclusive(3, 8) as u32,
                2,
            ),
            _ => hpc::wavefront(
                rng.gen_range_inclusive(3, 8) as u32,
                rng.gen_range_inclusive(3, 8) as u32,
                2,
            ),
        }
        .into_shared();
        let w = dag.total_work().as_f64();
        let l = dag.span().as_f64();
        let brent = (w - l) / m as f64 + l;
        let d = Time((2.0 * brent).ceil() as u64);
        // Density varies per job so profit-aware and arrival-order policies
        // genuinely differ.
        let p = (rng.gen_f64_range(1.0, 4.0) * w).ceil() as u64;
        jobs.push(JobSpec::new(
            JobId(i as u32),
            Time(t as u64),
            dag,
            StepProfitFn::deadline(d, p),
        ));
    }
    Instance::new(m, jobs).expect("valid instance")
}

/// Build the E10 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 16u32;
    let n_jobs = if quick { 40 } else { 100 };
    let load = 2.0;
    let seed_list = seeds(quick);

    let mut t = Table::new(
        "E10: HPC kernel task graphs (cholesky/lu/stencil/wavefront, m=16, load 2)",
        &[
            "scheduler",
            "profit (mean)",
            "frac of UB",
            "completed",
            "expired",
        ],
    );
    let cases: Vec<(Instance, u64)> = seed_list
        .iter()
        .map(|&seed| {
            let inst = instance(m, n_jobs, load, seed);
            let ub = fractional_ub(&inst, Speed::ONE);
            (inst, ub)
        })
        .collect();
    for kind in [
        SchedKind::S { epsilon: 1.0 },
        SchedKind::SWc { epsilon: 1.0 },
        SchedKind::Hdf,
        SchedKind::Edf,
        SchedKind::Fifo,
    ] {
        let rows = over_seeds(&seed_list, |seed| {
            let idx = seed_list.iter().position(|&x| x == seed).unwrap();
            let (inst, ub) = &cases[idx];
            let r = run_on_cfg(inst, &kind, &SimConfig::default());
            (r.total_profit, *ub, r.completed(), r.expired())
        });
        let n = rows.len() as f64;
        t.row(vec![
            kind.label(),
            f(rows.iter().map(|r| r.0 as f64).sum::<f64>() / n, 1),
            f(
                rows.iter()
                    .filter(|r| r.1 > 0)
                    .map(|r| r.0 as f64 / r.1 as f64)
                    .sum::<f64>()
                    / n,
                3,
            ),
            f(rows.iter().map(|r| r.2 as f64).sum::<f64>() / n, 1),
            f(rows.iter().map(|r| r.3 as f64).sum::<f64>() / n, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpc_stream_is_valid_and_diverse() {
        let inst = instance(16, 60, 2.0, 3);
        assert_eq!(inst.len(), 60);
        // Parallelism diversity: some nearly-sequential (small wavefronts)
        // and some wide jobs.
        let ps: Vec<f64> = inst.jobs().iter().map(|j| j.dag.parallelism()).collect();
        let max = ps.iter().cloned().fold(f64::MIN, f64::max);
        let min = ps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 3.0, "no wide jobs (max parallelism {max})");
        assert!(min < 2.5, "no narrow jobs (min parallelism {min})");
    }

    #[test]
    fn all_schedulers_earn_on_hpc_streams() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.len(), 5);
        for i in 0..t.len() {
            let frac: f64 = t.cell(i, 2).parse().unwrap();
            assert!(frac > 0.0 && frac <= 1.0, "{}: frac {frac}", t.cell(i, 0));
        }
        // The work-conserving extension dominates plain S here too.
        let s: f64 = t.cell(0, 1).parse().unwrap();
        let swc: f64 = t.cell(1, 1).parse().unwrap();
        assert!(swc >= s, "S-wc {swc} < S {s}");
    }
}
