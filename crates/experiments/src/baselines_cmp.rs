//! **E7** — positioning: scheduler S vs classic online policies.
//!
//! The introduction's motivation for density-based admission control is
//! overload: deterministic policies without admission (EDF in particular)
//! collapse when more work arrives than can finish, because they keep
//! starting jobs they will never complete. The sweep raises the offered
//! load `ρ` from underload to heavy overload with mixed-density profits and
//! reports each policy's profit as a fraction of the fractional OPT bound.
//!
//! Expected shape: near `ρ ≤ 1` everyone is fine (work-conserving policies
//! often slightly ahead — admission control has nothing to protect);
//! as `ρ` grows the admission-controlled S degrades gracefully while
//! FIFO/EDF fall off; HDF (density greedy) sits between.

use crate::common::{over_seeds, run_on, seeds, SchedKind};
use dagsched_core::Speed;
use dagsched_metrics::{table::f, Table};
use dagsched_opt::fractional_ub;
use dagsched_workload::{
    ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen,
};

/// One instance of the E7 family.
pub fn instance(m: u32, n_jobs: usize, load: f64, seed: u64) -> dagsched_workload::Instance {
    WorkloadGen {
        m,
        n_jobs,
        seed,
        arrivals: ArrivalProcess::poisson_for_load(load, 60.0, m),
        family: DagFamily::standard_mix((1, 6)),
        deadlines: DeadlinePolicy::SlackFactor(2.0),
        // Wide density spread: admission control has something to choose.
        profits: ProfitPolicy::ZipfDensity {
            classes: 16,
            s: 1.1,
            base: 16.0,
        },
        shape: ProfitShape::Deadline,
    }
    .generate()
    .expect("valid workload")
}

/// The scheduler lineup.
pub fn lineup() -> Vec<SchedKind> {
    vec![
        SchedKind::S { epsilon: 1.0 },
        SchedKind::SWc { epsilon: 1.0 },
        SchedKind::SNoAdmit { epsilon: 1.0 },
        SchedKind::Edf,
        SchedKind::EdfAc,
        SchedKind::Hdf,
        SchedKind::Llf,
        SchedKind::Fifo,
        SchedKind::Random { seed: 99 },
    ]
}

/// Build the E7 table: one row per (load, scheduler).
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let n_jobs = if quick { 60 } else { 150 };
    let loads: Vec<f64> = if quick {
        vec![1.0, 6.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let seed_list = seeds(quick);

    let mut t = Table::new(
        "E7: profit as fraction of OPT bound, by offered load (m=8, slack 2.0)",
        &[
            "load",
            "scheduler",
            "profit (mean)",
            "frac of UB",
            "completed",
            "expired",
        ],
    );
    for &load in &loads {
        let cases: Vec<(dagsched_workload::Instance, u64)> = seed_list
            .iter()
            .map(|&seed| {
                let inst = instance(m, n_jobs, load, seed);
                let ub = fractional_ub(&inst, Speed::ONE);
                (inst, ub)
            })
            .collect();
        for kind in lineup() {
            let rows = over_seeds(&seed_list, |seed| {
                let idx = seed_list.iter().position(|&x| x == seed).unwrap();
                let (inst, ub) = &cases[idx];
                let r = run_on(inst, &kind);
                (r.total_profit, *ub, r.completed(), r.expired())
            });
            let n = rows.len() as f64;
            t.row(vec![
                f(load, 1),
                kind.label(),
                f(rows.iter().map(|r| r.0 as f64).sum::<f64>() / n, 1),
                f(
                    rows.iter()
                        .filter(|r| r.1 > 0)
                        .map(|r| r.0 as f64 / r.1 as f64)
                        .sum::<f64>()
                        / n,
                    3,
                ),
                f(rows.iter().map(|r| r.2 as f64).sum::<f64>() / n, 1),
                f(rows.iter().map(|r| r.3 as f64).sum::<f64>() / n, 1),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Extract the "frac of UB" cell for a given load and scheduler label.
    fn frac(t: &dagsched_metrics::Table, load: f64, label: &str) -> f64 {
        for i in 0..t.len() {
            if t.cell(i, 0).parse::<f64>().unwrap() == load && t.cell(i, 1) == label {
                return t.cell(i, 3).parse().unwrap();
            }
        }
        panic!("row not found: {load} {label}");
    }

    #[test]
    fn everyone_earns_at_low_load_and_s_degrades_gracefully() {
        let tables = run(true);
        let t = &tables[0];
        // At load 1.0 every policy captures a decent fraction.
        for kind in lineup() {
            let v = frac(t, 1.0, &kind.label());
            assert!(v > 0.15, "{} at load 1: {v}", kind.label());
        }
        // At heavy overload the deadline-chasing and blind policies
        // collapse while S degrades gracefully.
        let s = frac(t, 6.0, "S(e=1)");
        for loser in ["EDF", "LLF", "RANDOM"] {
            let v = frac(t, 6.0, loser);
            assert!(
                s > v,
                "S must beat {loser} under overload: S {s} vs {loser} {v}"
            );
        }
    }
}
