//! **T1** — Tables 1–3: the algorithm constants and derived ratios.
//!
//! The paper's notation tables define `δ, c, b, a` from `ε`. This experiment
//! materializes them for a sweep of `ε` together with the derived charging
//! margin (Lemma 5) and the end-to-end competitive ratios (Lemma 10 /
//! Theorem 2 and Lemma 22 / Theorem 3), plus the `ratio·ε⁶` column that
//! exhibits the `O(1/ε⁶)` shape: it must stay bounded as `ε → 0`.

use dagsched_core::AlgoParams;
use dagsched_metrics::{table::f, Table};

/// The ε values reported.
pub fn eps_grid(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.5, 1.0, 2.0]
    } else {
        vec![0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0]
    }
}

/// Build the constants table.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T1: algorithm constants per epsilon (paper Tables 1-3)",
        &[
            "eps",
            "delta",
            "c",
            "b",
            "a",
            "margin",
            "thr_ratio",
            "prof_ratio",
            "thr_ratio*eps^6",
        ],
    );
    for eps in eps_grid(quick) {
        let p = AlgoParams::from_epsilon(eps).expect("grid epsilons are valid");
        let ratio = p.throughput_competitive_ratio();
        t.row(vec![
            f(eps, 2),
            f(p.delta(), 4),
            f(p.c(), 1),
            f(p.b(), 4),
            f(p.a(), 3),
            f(p.charge_margin(), 4),
            f(ratio, 1),
            f(p.profit_competitive_ratio(), 1),
            f(ratio * eps.powi(6), 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_eps_and_bounded_scaled_ratio() {
        let tables = run(false);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.len(), eps_grid(false).len());
        // ratio * eps^6 stays bounded: max/min within two orders of
        // magnitude across a 40x range of eps (the O(1/eps^6) shape).
        let scaled: Vec<f64> = (0..t.len())
            .map(|i| t.cell(i, 8).parse::<f64>().unwrap())
            .collect();
        let max = scaled.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max.is_finite() && max > 0.0);
        // Ratios are monotone decreasing in eps.
        let ratios: Vec<f64> = (0..t.len())
            .map(|i| t.cell(i, 6).parse::<f64>().unwrap())
            .collect();
        assert!(ratios.windows(2).all(|w| w[0] >= w[1]));
    }
}
