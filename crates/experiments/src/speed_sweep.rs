//! **E4** — Corollary 1: `(2+ε)`-speed competitiveness with *no* deadline
//! slack assumption.
//!
//! Deadlines here are tight — slack factor 1.0, i.e. `D_i ≈ (W−L)/m + L`,
//! violating Theorem 2's condition at unit speed. S runs at increasing
//! speeds `s` and its profit is compared against the exact OPT upper bound
//! at speed 1.
//!
//! Expected shape: around `s ≈ 1` the ratio is poor (the paper's lower
//! bound territory: even completing a single adversarial job is hard), it
//! improves steeply through `s ∈ (1, 2]`, and by `s ≥ 2 + ε` it flattens at
//! a small constant — Corollary 1's regime.

use crate::common::{over_seeds, run_at_speed, seeds, SchedKind};
use dagsched_core::Speed;
use dagsched_metrics::{stats::geo_mean, table::f, Table};
use dagsched_opt::exact_subset_ub;
use dagsched_workload::{
    ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen,
};

/// One instance of the E4 family (tight deadlines).
pub fn instance(m: u32, n_jobs: usize, seed: u64) -> dagsched_workload::Instance {
    WorkloadGen {
        m,
        n_jobs,
        seed,
        arrivals: ArrivalProcess::poisson_for_load(1.5, 60.0, m),
        family: DagFamily::standard_mix((1, 6)),
        deadlines: DeadlinePolicy::SlackFactor(1.0),
        profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 4.0 },
        shape: ProfitShape::Deadline,
    }
    .generate()
    .expect("valid workload")
}

/// The speed grid.
pub fn speed_grid(quick: bool) -> Vec<Speed> {
    let fracs: &[(u32, u32)] = if quick {
        &[(1, 1), (2, 1), (5, 2), (3, 1)]
    } else {
        &[
            (1, 1),
            (5, 4),
            (3, 2),
            (7, 4),
            (2, 1),
            (9, 4),
            (5, 2),
            (11, 4),
            (3, 1),
            (7, 2),
        ]
    };
    fracs
        .iter()
        .map(|&(n, d)| Speed::new(n, d).expect("positive"))
        .collect()
}

/// Build the E4 table. The scheduler's `ε` is fixed at 1 — the *engine
/// speed* provides the augmentation, exactly as in Corollary 1's proof
/// (scaling every node's work is equivalent to giving the algorithm speed).
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let n_jobs = 18;
    let seed_list = seeds(quick);

    let mut t = Table::new(
        "E4: S at speed s vs 1-speed OPT upper bound, tight deadlines (m=8)",
        &[
            "speed",
            "profit_S (mean)",
            "OPT_UB@1 (mean)",
            "S/UB (geo)",
            "completed (mean)",
        ],
    );
    // Per-seed UBs are speed-independent: compute once.
    let base: Vec<(dagsched_workload::Instance, u64)> = seed_list
        .iter()
        .map(|&seed| {
            let inst = instance(m, n_jobs, seed);
            let ub = exact_subset_ub(&inst, Speed::ONE, 24).expect("small n");
            (inst, ub)
        })
        .collect();

    for s in speed_grid(quick) {
        let rows = over_seeds(&seed_list, |seed| {
            let (inst, ub) = &base[seed_list.iter().position(|&x| x == seed).unwrap()];
            let r = run_at_speed(
                inst,
                &SchedKind::SHinted {
                    epsilon: 1.0,
                    hint: s.as_f64(),
                },
                s,
            );
            (r.total_profit, *ub, r.completed())
        });
        let profits: Vec<f64> = rows.iter().map(|(p, _, _)| *p as f64).collect();
        let fracs: Vec<f64> = rows
            .iter()
            .filter(|(_, u, _)| *u > 0)
            .map(|(p, u, _)| (*p as f64).max(1e-9) / *u as f64)
            .collect();
        let completed: f64 =
            rows.iter().map(|(_, _, c)| *c as f64).sum::<f64>() / rows.len() as f64;
        let ub_mean: f64 = rows.iter().map(|(_, u, _)| *u as f64).sum::<f64>() / rows.len() as f64;
        t.row(vec![
            f(s.as_f64(), 3),
            f(profits.iter().sum::<f64>() / profits.len() as f64, 1),
            f(ub_mean, 1),
            f(geo_mean(&fracs).unwrap_or(0.0), 3),
            f(completed, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profit_fraction_improves_with_speed_and_is_substantial_past_two() {
        let tables = run(true);
        let t = &tables[0];
        let fracs: Vec<f64> = (0..t.len())
            .map(|i| t.cell(i, 3).parse().unwrap())
            .collect();
        // Directional: the fastest speed beats unit speed clearly.
        assert!(
            fracs.last().unwrap() > fracs.first().unwrap(),
            "speed must help: {fracs:?}"
        );
        // Corollary-1 regime: at s >= 2.5 the fraction is a healthy constant.
        assert!(
            *fracs.last().unwrap() > 0.4,
            "at 3x speed S should capture a solid fraction: {fracs:?}"
        );
    }
}
