//! # dagsched-experiments
//!
//! The per-figure / per-table experiment harness (DESIGN.md §5). Each module
//! exposes `run(quick) -> Vec<Table>`; the binaries in `src/bin/` print the
//! rendered tables and their CSV form. `quick = true` shrinks seeds and
//! instance sizes for tests and Criterion benches; `quick = false` is the
//! configuration whose numbers are recorded in EXPERIMENTS.md.
//!
//! | id | module | paper artifact |
//! |----|--------|----------------|
//! | T1 | [`constants`] | Tables 1–3: δ, c, b, a and the derived ratios |
//! | F1 | [`fig1`] | Figure 1 / Theorem 1: the 2−1/m lower bound |
//! | F2 | [`fig2`] | Figure 2: the (W−L)/m + L deadline floor |
//! | E3 | [`eps_sweep`] | Theorem 2: competitiveness vs deadline slack ε |
//! | E4 | [`speed_sweep`] | Corollary 1: (2+ε)-speed competitiveness |
//! | E5 | [`charging`] | Lemma 5: completed vs started profit |
//! | E6 | [`profit_general`] | Theorem 3: general profit functions |
//! | E7 | [`baselines_cmp`] | §1 positioning: S vs EDF/HDF/FIFO/LLF/random |
//! | E8 | [`ablation`] | design-choice ablations (admission, δ, c) |
//! | E9 | [`node_pick`] | node-pick ("arbitrary ready nodes") sensitivity |
//! | E10 | [`hpc_bench`] | HPC kernel task graphs (Cholesky/LU/stencil) |
//! | E11 | [`sporadic_rt`] | sporadic task sets: federated test vs throughput |

#![warn(missing_docs)]

pub mod ablation;
pub mod baselines_cmp;
pub mod charging;
pub mod cli;
pub mod common;
pub mod constants;
pub mod eps_sweep;
pub mod fig1;
pub mod fig2;
pub mod hpc_bench;
pub mod node_pick;
pub mod profit_general;
pub mod speed_sweep;
pub mod sporadic_rt;
pub mod sweep;

pub use common::SchedKind;
pub use sweep::{CellResult, SweepGrid, SweepResult};

/// Run every experiment (the `all` binary).
pub fn run_all(quick: bool) -> Vec<dagsched_metrics::Table> {
    let mut out = Vec::new();
    out.extend(constants::run(quick));
    out.extend(fig1::run(quick));
    out.extend(fig2::run(quick));
    out.extend(eps_sweep::run(quick));
    out.extend(speed_sweep::run(quick));
    out.extend(charging::run(quick));
    out.extend(profit_general::run(quick));
    out.extend(baselines_cmp::run(quick));
    out.extend(ablation::run(quick));
    out.extend(node_pick::run(quick));
    out.extend(hpc_bench::run(quick));
    out.extend(sporadic_rt::run(quick));
    out
}
