//! **E8** — ablations of S's design choices.
//!
//! DESIGN.md calls out three load-bearing pieces of scheduler S:
//!
//! 1. **Admission control** (δ-good + band condition) — removed entirely in
//!    the `S-noadmit` variant;
//! 2. **The freshness constant δ** — swept across `ε/8, ε/4, 0.45ε`
//!    (the paper only requires `δ < ε/2`);
//! 3. **The band width c** — swept across `1×, 3×, 9×` of its minimum
//!    feasible value (larger `c` means wider bands ⇒ stricter admission).
//!
//! All variants run the same overloaded mixed-density workload; the table
//! reports earned profit so the contribution of each choice is visible.

use crate::common::{over_seeds, run_on, seeds, SchedKind};
use dagsched_metrics::{table::f, Table};
use dagsched_workload::{
    ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen,
};

/// The E8 instance family: overloaded, with densities spanning ~5 decades so
/// several `[v, c·v)` bands are populated at once — the regime where the
/// band width `c` actually changes admission decisions.
pub fn instance(m: u32, n_jobs: usize, load: f64, seed: u64) -> dagsched_workload::Instance {
    WorkloadGen {
        m,
        n_jobs,
        seed,
        arrivals: ArrivalProcess::poisson_for_load(load, 60.0, m),
        family: DagFamily::standard_mix((1, 6)),
        deadlines: DeadlinePolicy::SlackFactor(2.0),
        profits: ProfitPolicy::LogUniformDensity { lo: 1.0, hi: 1e5 },
        shape: ProfitShape::Deadline,
    }
    .generate()
    .expect("valid workload")
}

/// The variant list for a given ε.
pub fn variants(eps: f64) -> Vec<SchedKind> {
    let mut out = vec![
        SchedKind::S { epsilon: eps },
        SchedKind::SWc { epsilon: eps },
        SchedKind::SNoAdmit { epsilon: eps },
    ];
    for delta_frac in [1.0 / 8.0, 1.0 / 4.0, 0.45] {
        let delta = eps * delta_frac;
        // Smallest c that both satisfies the paper's floor and keeps the
        // charging margin positive (mirrors AlgoParams::from_epsilon).
        let b = ((1.0 + 2.0 * delta) / (1.0 + eps)).sqrt();
        let c_min = (1.0 + 1.0 / (delta * eps)).max(1.0 + 2.0 * b / ((1.0 - b) * delta));
        for c_mult in [1.0, 3.0, 9.0] {
            out.push(SchedKind::SCustom {
                epsilon: eps,
                delta,
                c: c_min * c_mult,
            });
        }
    }
    out
}

/// Build the E8 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    let n_jobs = if quick { 60 } else { 150 };
    let load = 4.0;
    let eps = 1.0;
    let seed_list = seeds(quick);

    let mut t = Table::new(
        "E8: ablations of S (m=8, load 4.0, eps=1)",
        &[
            "variant",
            "profit (mean)",
            "completed (mean)",
            "expired (mean)",
        ],
    );
    for kind in variants(eps) {
        let rows = over_seeds(&seed_list, |seed| {
            let inst = instance(m, n_jobs, load, seed);
            let r = run_on(&inst, &kind);
            (r.total_profit, r.completed(), r.expired())
        });
        let n = rows.len() as f64;
        t.row(vec![
            kind.label(),
            f(rows.iter().map(|r| r.0 as f64).sum::<f64>() / n, 1),
            f(rows.iter().map(|r| r.1 as f64).sum::<f64>() / n, 1),
            f(rows.iter().map(|r| r.2 as f64).sum::<f64>() / n, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_and_earn() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.len(), variants(1.0).len());
        for i in 0..t.len() {
            let profit: f64 = t.cell(i, 1).parse().unwrap();
            assert!(profit > 0.0, "variant {} earned nothing", t.cell(i, 0));
        }
    }

    #[test]
    fn variant_list_is_well_formed() {
        let v = variants(1.0);
        assert_eq!(v.len(), 3 + 9);
        // Every custom variant constructs valid params (build() would panic
        // otherwise).
        for kind in &v {
            let _ = kind.build(8);
        }
    }
}
