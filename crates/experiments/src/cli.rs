//! The `instances` command-line tool: generate, inspect and replay workload
//! instances through the text codec, so experiments are reproducible from
//! files rather than only from seeds.
//!
//! ```text
//! instances gen  [--kind standard|cluster] [--m N] [--n N] [--seed S]
//! instances info                      # reads an instance from stdin
//! instances run  [--sched NAME] [--eps E] [--speed NUM/DEN] [--wc]
//! ```
//!
//! Parsing and execution live here (unit-tested); the binary is a thin
//! wrapper.

use crate::common::SchedKind;
use dagsched_core::{SchedError, Speed};
use dagsched_engine::{simulate, SimConfig};
use dagsched_opt::fractional_ub;
use dagsched_sched::SchedulerS;
use dagsched_workload::{codec, ClusterTraceGen, Instance, WorkloadGen};

/// A parsed `instances` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate an instance and print its text encoding.
    Gen {
        /// Which generator to use.
        kind: GenKind,
        /// Machine size.
        m: u32,
        /// Job count.
        n: usize,
        /// Master seed.
        seed: u64,
    },
    /// Print summary statistics of an instance read from stdin.
    Info,
    /// Replay an instance (from stdin) under a scheduler.
    Run {
        /// Which scheduler to run.
        sched: SchedKind,
        /// Engine speed.
        speed: Speed,
        /// Use the work-conserving extension of S.
        work_conserving: bool,
    },
    /// Print usage.
    Help,
}

/// Which generator `gen` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// [`WorkloadGen::standard`].
    Standard,
    /// [`ClusterTraceGen::new`].
    Cluster,
}

/// The usage text.
pub const USAGE: &str = "\
usage: instances <command> [options]

commands:
  gen    generate an instance, print the text format to stdout
           --kind standard|cluster   (default standard)
           --m N    processors       (default 8)
           --n N    jobs             (default 50)
           --seed S                  (default 42)
  info   read an instance from stdin, print summary statistics
  run    read an instance from stdin, simulate a scheduler
           --sched S|S-profit|EDF|HDF|FIFO|LLF|RANDOM  (default S)
           --eps E                   (default 1.0, for S variants)
           --speed NUM/DEN           (default 1/1)
           --wc                      (work-conserving S)
  help   print this message
";

fn take_val<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_speed(text: &str) -> Result<Speed, SchedError> {
    let (n, d) = match text.split_once('/') {
        Some((n, d)) => (n, d),
        None => (text, "1"),
    };
    let num: u32 = n
        .parse()
        .map_err(|_| SchedError::Unsupported(format!("bad speed numerator {n:?}")))?;
    let den: u32 = d
        .parse()
        .map_err(|_| SchedError::Unsupported(format!("bad speed denominator {d:?}")))?;
    Speed::new(num, den)
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, SchedError> {
    let bad = |m: String| Err(SchedError::Unsupported(m));
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("gen") => {
            let kind = match take_val(args, "--kind").unwrap_or("standard") {
                "standard" => GenKind::Standard,
                "cluster" => GenKind::Cluster,
                other => return bad(format!("unknown --kind {other:?}")),
            };
            let m = take_val(args, "--m")
                .unwrap_or("8")
                .parse()
                .map_err(|_| SchedError::Unsupported("--m expects a positive integer".into()))?;
            let n = take_val(args, "--n")
                .unwrap_or("50")
                .parse()
                .map_err(|_| SchedError::Unsupported("--n expects a positive integer".into()))?;
            let seed = take_val(args, "--seed")
                .unwrap_or("42")
                .parse()
                .map_err(|_| SchedError::Unsupported("--seed expects an integer".into()))?;
            Ok(Command::Gen { kind, m, n, seed })
        }
        Some("info") => Ok(Command::Info),
        Some("run") => {
            let eps: f64 = take_val(args, "--eps")
                .unwrap_or("1.0")
                .parse()
                .map_err(|_| SchedError::Unsupported("--eps expects a float".into()))?;
            let sched = match take_val(args, "--sched").unwrap_or("S") {
                "S" => SchedKind::S { epsilon: eps },
                "S-profit" => SchedKind::SProfit { epsilon: eps },
                "EDF" => SchedKind::Edf,
                "HDF" => SchedKind::Hdf,
                "FIFO" => SchedKind::Fifo,
                "LLF" => SchedKind::Llf,
                "RANDOM" => SchedKind::Random { seed: 7 },
                other => return bad(format!("unknown --sched {other:?}")),
            };
            let speed = parse_speed(take_val(args, "--speed").unwrap_or("1/1"))?;
            Ok(Command::Run {
                sched,
                speed,
                work_conserving: args.iter().any(|a| a == "--wc"),
            })
        }
        Some(other) => bad(format!("unknown command {other:?}; try `help`")),
    }
}

/// Execute a parsed command. `input` carries stdin for `info`/`run`;
/// the report is returned as a string so tests can assert on it.
pub fn execute(cmd: &Command, input: &str) -> Result<String, SchedError> {
    use std::fmt::Write as _;
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Gen { kind, m, n, seed } => {
            let inst = match kind {
                GenKind::Standard => WorkloadGen::standard(*m, *n, *seed).generate()?,
                GenKind::Cluster => ClusterTraceGen::new(*m, *n, *seed).generate()?,
            };
            Ok(codec::encode(&inst))
        }
        Command::Info => {
            let inst = codec::decode(input)?;
            let s = inst.stats();
            let mut out = String::new();
            let _ = writeln!(out, "m:                {}", inst.m());
            let _ = writeln!(out, "jobs:             {}", s.n_jobs);
            let _ = writeln!(out, "total work:       {}", s.total_work);
            let _ = writeln!(out, "total max profit: {}", s.total_profit);
            let _ = writeln!(
                out,
                "window:           [{}, {}]",
                s.first_arrival, s.horizon
            );
            let _ = writeln!(out, "offered load:     {:.3}", s.load_factor);
            let _ = writeln!(out, "mean parallelism: {:.2}", s.mean_parallelism);
            let _ = writeln!(
                out,
                "fractional OPT upper bound: {}",
                fractional_ub(&inst, Speed::ONE)
            );
            Ok(out)
        }
        Command::Run {
            sched,
            speed,
            work_conserving,
        } => {
            let inst: Instance = codec::decode(input)?;
            let cfg = SimConfig::at_speed(*speed);
            let r = if *work_conserving {
                let mut s = match sched {
                    SchedKind::S { epsilon } => {
                        SchedulerS::with_epsilon(inst.m(), *epsilon).work_conserving()
                    }
                    _ => {
                        return Err(SchedError::Unsupported(
                            "--wc only applies to --sched S".into(),
                        ))
                    }
                };
                simulate(&inst, &mut s, &cfg)?
            } else {
                let mut s = sched.build(inst.m());
                simulate(&inst, s.as_mut(), &cfg)?
            };
            let ub = fractional_ub(&inst, Speed::ONE);
            let mut out = String::new();
            let _ = writeln!(out, "scheduler:  {}", r.scheduler);
            let _ = writeln!(out, "speed:      {speed}");
            let _ = writeln!(out, "profit:     {}", r.total_profit);
            let _ = writeln!(
                out,
                "of UB@1:    {:.1}%",
                100.0 * r.total_profit as f64 / ub.max(1) as f64
            );
            let _ = writeln!(out, "completed:  {}", r.completed());
            let _ = writeln!(out, "expired:    {}", r.expired());
            let _ = writeln!(out, "unfinished: {}", r.unfinished());
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_variants() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(
            parse(&argv("gen --kind cluster --m 4 --n 10 --seed 3")).unwrap(),
            Command::Gen {
                kind: GenKind::Cluster,
                m: 4,
                n: 10,
                seed: 3
            }
        );
        assert_eq!(
            parse(&argv("gen")).unwrap(),
            Command::Gen {
                kind: GenKind::Standard,
                m: 8,
                n: 50,
                seed: 42
            }
        );
        assert_eq!(parse(&argv("info")).unwrap(), Command::Info);
        match parse(&argv("run --sched HDF --speed 3/2")).unwrap() {
            Command::Run {
                sched,
                speed,
                work_conserving,
            } => {
                assert_eq!(sched, SchedKind::Hdf);
                assert_eq!(speed, Speed::new(3, 2).unwrap());
                assert!(!work_conserving);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("gen --kind nope")).is_err());
        assert!(parse(&argv("run --speed x/y")).is_err());
    }

    #[test]
    fn gen_info_run_pipeline() {
        let gen = parse(&argv("gen --m 4 --n 12 --seed 9")).unwrap();
        let text = execute(&gen, "").unwrap();
        assert!(text.starts_with("dagsched-instance v1"));

        let info = execute(&Command::Info, &text).unwrap();
        assert!(info.contains("jobs:             12"));
        assert!(info.contains("fractional OPT upper bound"));

        let run = parse(&argv("run --sched S --eps 1.0")).unwrap();
        let report = execute(&run, &text).unwrap();
        assert!(report.contains("scheduler:  S(eps=1)"), "{report}");
        assert!(report.contains("profit:"));
    }

    #[test]
    fn run_wc_and_speed() {
        let text = execute(
            &Command::Gen {
                kind: GenKind::Standard,
                m: 4,
                n: 10,
                seed: 5,
            },
            "",
        )
        .unwrap();
        let cmd = parse(&argv("run --wc --speed 2")).unwrap();
        let report = execute(&cmd, &text).unwrap();
        assert!(report.contains("S-wc"), "{report}");
        assert!(report.contains("speed:      2x"));
        // --wc with a non-S scheduler is rejected.
        let cmd = parse(&argv("run --wc --sched EDF")).unwrap();
        assert!(execute(&cmd, &text).is_err());
    }

    #[test]
    fn cluster_gen_round_trips() {
        let text = execute(
            &Command::Gen {
                kind: GenKind::Cluster,
                m: 8,
                n: 20,
                seed: 1,
            },
            "",
        )
        .unwrap();
        let info = execute(&Command::Info, &text).unwrap();
        assert!(info.contains("jobs:             20"));
    }

    #[test]
    fn run_rejects_garbage_input() {
        let cmd = parse(&argv("run")).unwrap();
        assert!(execute(&cmd, "not an instance").is_err());
    }
}
