//! Generate, inspect and replay workload instances via the text codec.
//! See `instances help` for usage.

use std::io::Read as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match dagsched_experiments::cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n\n{}", dagsched_experiments::cli::USAGE);
            std::process::exit(2);
        }
    };
    let needs_stdin = matches!(
        cmd,
        dagsched_experiments::cli::Command::Info | dagsched_experiments::cli::Command::Run { .. }
    );
    let mut input = String::new();
    if needs_stdin {
        if let Err(e) = std::io::stdin().read_to_string(&mut input) {
            eprintln!("cannot read stdin: {e}");
            std::process::exit(2);
        }
    }
    match dagsched_experiments::cli::execute(&cmd, &input) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
