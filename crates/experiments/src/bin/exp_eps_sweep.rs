//! Binary for the `eps_sweep` experiment; pass `--quick` for the reduced grid
//! and `--csv` to print machine-readable output as well.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    for t in dagsched_experiments::eps_sweep::run(quick) {
        println!("{}", t.render());
        if csv {
            println!("{}", t.to_csv());
        }
    }
}
