//! Run every experiment in DESIGN.md §5 and print all tables (the source of
//! the numbers recorded in EXPERIMENTS.md). `--quick` shrinks the grids,
//! `--csv` adds machine-readable output.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let start = std::time::Instant::now();
    for t in dagsched_experiments::run_all(quick) {
        println!("{}", t.render());
        if csv {
            println!("{}", t.to_csv());
        }
    }
    eprintln!("[all experiments done in {:.1?}]", start.elapsed());
}
