//! **F2** — Figure 2: deadlines below `(W−L)/m + L` are unreasonable.
//!
//! The Figure 2 job is a chain followed by a parallel block that depends on
//! it, every node of size `ε` (the *grain* `g`). Its span is
//! `L = chain + g`. Even a fully clairvoyant scheduler needs
//!
//! > `(W−L)/m + L − ε(1 − 1/m)`,
//!
//! i.e. it undercuts the `(W−L)/m + L` benchmark by only `ε(1−1/m)`, which
//! vanishes with the grain. The table sweeps `g` (holding `W` and the chain
//! work fixed) and reports the clairvoyant makespan, the span-based
//! benchmark, and the gap against the paper's closed form `ε(1−1/m)` —
//! justifying Corollary 2's assumption that deadlines of at least
//! `(W−L)/m + L` are "reasonable".

use dagsched_core::Speed;
use dagsched_dag::gen;
use dagsched_metrics::{table::f, Table};
use dagsched_opt::lpf_makespan;

/// Build the Figure-2 table.
pub fn run(quick: bool) -> Vec<Table> {
    let m = 8u32;
    // Chain work 128, block work 1024, so W = 1152 regardless of grain.
    let (chain_work, block_work) = (128u64, 1024u64);
    let grains: &[u64] = if quick {
        &[32, 8, 1]
    } else {
        &[64, 32, 16, 8, 4, 2, 1]
    };

    let mut t = Table::new(
        "F2: Figure 2 clairvoyant makespan vs node grain (m=8, W=1152)",
        &[
            "grain",
            "span L",
            "makespan",
            "benchmark (W-L)/m+L",
            "gap",
            "theory gap e(1-1/m)",
        ],
    );
    for &g in grains {
        let chain_nodes = (chain_work / g) as u32;
        let block_nodes = (block_work / g) as u32;
        let dag = gen::fig2(chain_nodes, block_nodes, g).into_shared();
        let w = dag.total_work().as_f64();
        let span = dag.span().as_f64(); // chain + one block node
        let ms = lpf_makespan(dag, m, Speed::ONE).expect("valid run");
        let benchmark = (w - span) / m as f64 + span;
        let gap = benchmark - ms.as_f64();
        let theory_gap = g as f64 * (1.0 - 1.0 / m as f64);
        t.row(vec![
            g.to_string(),
            f(span, 0),
            ms.to_string(),
            f(benchmark, 1),
            f(gap, 1),
            f(theory_gap, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_matches_closed_form_and_vanishes_with_grain() {
        let tables = run(false);
        let t = &tables[0];
        let mut prev_gap = f64::INFINITY;
        for i in 0..t.len() {
            let gap: f64 = t.cell(i, 4).parse().unwrap();
            let theory: f64 = t.cell(i, 5).parse().unwrap();
            assert!(
                (gap - theory).abs() <= 0.2,
                "row {i}: gap {gap} vs closed form {theory}"
            );
            assert!(gap >= -1e-9, "clairvoyant cannot beat the adjusted bound");
            assert!(gap <= prev_gap + 1e-9, "gap must shrink with the grain");
            prev_gap = gap;
        }
        // Finest grain (g = 1): the benchmark is essentially tight.
        let last_gap: f64 = t.cell(t.len() - 1, 4).parse().unwrap();
        assert!(last_gap <= 1.0);
    }
}
