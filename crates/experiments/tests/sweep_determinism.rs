//! Sharding must be invisible: a sweep's merged output is byte-identical
//! for every thread count, including thread counts above the cell count.

use dagsched_experiments::sweep::{execute, SweepCommand, SweepGrid};

#[test]
fn merged_output_is_byte_identical_at_1_2_and_8_threads() {
    let grid = SweepGrid::smoke();
    let one = grid.run(1);
    let two = grid.run(2);
    let eight = grid.run(8);
    assert_eq!(one, two, "2 threads diverged from sequential");
    assert_eq!(one, eight, "8 threads diverged from sequential");
    assert_eq!(one.to_csv(), two.to_csv());
    assert_eq!(one.to_csv(), eight.to_csv());
}

#[test]
fn cli_execute_is_thread_count_invariant() {
    let run = |threads| {
        execute(&SweepCommand::Run {
            grid: "smoke".into(),
            threads,
            groups: vec![],
        })
        .unwrap()
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(8));
    assert!(base.contains("# summary"));
}

#[test]
fn instance_generation_counter_is_exact_at_1_and_8_threads() {
    // The shared OnceLock slab must generate each (seed, m) workload
    // exactly once per run — more would mean workers duplicated generation
    // work, fewer would mean a cell ran against a missing instance.
    let grid = SweepGrid::smoke();
    let distinct = grid.seeds.len() * grid.ms.len();
    assert_eq!(grid.run(1).instances_generated, distinct);
    assert_eq!(grid.run(8).instances_generated, distinct);
}

#[test]
fn cells_are_ordered_and_complete() {
    let grid = SweepGrid::smoke();
    let r = grid.run(4);
    assert_eq!(r.cells.len(), grid.len());
    // Grid order is seed-major: the seed column must be non-decreasing.
    let seeds: Vec<u64> = r.cells.iter().map(|c| c.seed).collect();
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    assert_eq!(seeds, sorted, "cells not merged in grid order");
}
