//! δ-goodness and δ-freshness of every admission, checked at the decision.

use crate::model::{job_model, JobModel};
use crate::violation::{Recorder, Violation};
use dagsched_core::{AlgoParams, JobId, Speed, Time};
use dagsched_engine::{AdmissionDecision, AdmissionEvent, AdmissionReason, JobInfo, SimObserver};
use std::collections::HashMap;

/// Checks that every job the scheduler starts deserved it:
///
/// * admitted **at arrival**: the job must be δ-good — feasible allotment
///   and `D ≥ (1+2δ)·x` (Lemma 2's precondition);
/// * admitted **later** (from the waiting queue `P`): the job must still be
///   δ-fresh — `d − t ≥ (1+δ)·x` at the admission time `t` (the paper's
///   freshness test, which Lemma 6's completion argument relies on);
/// * a [`Deferred`](AdmissionDecision::Deferred) verdict whose stated reason
///   contradicts the recomputed model (e.g. "not δ-good" for a job that is)
///   is also flagged — the reasons are part of the observable contract.
#[derive(Debug)]
pub struct DeltaGoodChecker {
    params: AlgoParams,
    speed_hint: f64,
    m: u32,
    models: HashMap<JobId, JobModel>,
    rec: Recorder,
}

impl DeltaGoodChecker {
    /// Create the checker; `params` must match the scheduler's.
    pub fn new(params: AlgoParams) -> DeltaGoodChecker {
        DeltaGoodChecker {
            params,
            speed_hint: 1.0,
            m: 0,
            models: HashMap::new(),
            rec: Recorder::new("delta-good"),
        }
    }

    /// Mirror the scheduler's speed hint.
    pub fn with_speed_hint(mut self, s: f64) -> DeltaGoodChecker {
        assert!(s.is_finite() && s > 0.0);
        self.speed_hint = s;
        self
    }

    /// Collect violations instead of panicking under `verify-strict`.
    pub fn lenient(mut self) -> DeltaGoodChecker {
        self.rec.lenient();
        self
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        self.rec.violations()
    }
}

impl SimObserver for DeltaGoodChecker {
    fn on_start(&mut self, m: u32, _speed: Speed, _horizon: Time) {
        self.m = m;
    }

    fn on_job_arrival(&mut self, _now: Time, info: &JobInfo) {
        self.models.insert(
            info.id,
            job_model(info, &self.params, self.m, self.speed_hint),
        );
    }

    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        let Some(jm) = self.models.get(&event.job) else {
            self.rec
                .flag(now, Some(event.job), "decision for an unknown job".into());
            return;
        };
        match event.decision {
            AdmissionDecision::Admitted => {
                if !jm.admissible {
                    self.rec.flag(
                        now,
                        Some(event.job),
                        "started an infeasible job (no allotment ≤ m meets the deadline)".into(),
                    );
                } else if now == jm.arrival {
                    if !jm.delta_good {
                        self.rec.flag(
                            now,
                            Some(event.job),
                            format!(
                                "started at arrival but not δ-good: D = {} < (1+2δ)x = {:.4}",
                                jm.rel_deadline,
                                self.params.good_factor() * jm.x
                            ),
                        );
                    }
                } else {
                    // Late admission must be δ-fresh at the decision time.
                    // (Float subtraction: a mutant may admit past the
                    // deadline, where integer `since` would underflow.)
                    let slack = jm.abs_deadline.as_f64() - now.as_f64();
                    let need = self.params.fresh_factor() * jm.x;
                    if slack < need {
                        self.rec.flag(
                            now,
                            Some(event.job),
                            format!("started stale: slack {slack} < (1+δ)x = {need:.4}"),
                        );
                    }
                }
            }
            AdmissionDecision::Deferred(AdmissionReason::Infeasible) if jm.admissible => {
                self.rec.flag(
                    now,
                    Some(event.job),
                    "deferred as infeasible, but an allotment ≤ m works".into(),
                );
            }
            AdmissionDecision::Deferred(AdmissionReason::NotDeltaGood) if jm.delta_good => {
                self.rec.flag(
                    now,
                    Some(event.job),
                    "deferred as not δ-good, but the recomputed model is δ-good".into(),
                );
            }
            _ => {}
        }
    }
}
