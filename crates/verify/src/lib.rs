//! # dagsched-verify
//!
//! Continuously-checked runtime invariants for the simulation engine.
//!
//! The paper's guarantees are *always* statements: Observation 3's band
//! capacity `N(Q, v_j, c·v_j) ≤ b·m`, Lemma 1's allotment bound, and the
//! δ-goodness of every started job must hold at every moment of a run, not
//! just in the final accounting. The post-hoc tests in
//! `tests/theory_invariants.rs` cannot see a transient mid-run violation
//! that self-corrects; the observers in this crate can, because they hook
//! the engine's event stream ([`SimObserver`]) and re-verify the invariants
//! at every event from their own independent bookkeeping.
//!
//! * [`BandCapacityChecker`] — Observation 3 from the live started set;
//! * [`AllotmentChecker`] — Lemma 1 and the exact-allotment discipline;
//! * [`DeltaGoodChecker`] — δ-goodness / δ-freshness of every admission;
//! * [`WorkConservationChecker`] — exact scaled-unit work accounting;
//! * [`EventLog`] — the full stream as JSONL, window-coalesced so that the
//!   reference and fast-forward engine paths serialize byte-identically;
//! * [`InvariantSuite`] — all four checkers bundled for scheduler S.
//!
//! With the `verify-strict` cargo feature, any violation panics at the
//! offending event (the CI mode); without it, violations accumulate and the
//! caller inspects [`violations`](BandCapacityChecker::violations). Each
//! checker's `lenient()` forces collection regardless of the feature — the
//! mutant tests use it to observe violations instead of unwinding.

#![warn(missing_docs)]

pub mod allot;
pub mod band;
pub mod context;
pub mod good;
pub mod log;
pub mod model;
pub mod violation;
pub mod work;

pub use allot::AllotmentChecker;
pub use band::{band_overload, BandCapacityChecker};
pub use good::DeltaGoodChecker;
pub use log::EventLog;
pub use model::{job_model, JobModel};
pub use violation::Violation;
pub use work::WorkConservationChecker;

use dagsched_core::{AlgoParams, JobId, MachineGroups, NodeId, Speed, Time};
use dagsched_engine::{AdmissionEvent, JobInfo, SimObserver};

/// All scheduler-S invariant checkers in one observer.
///
/// Convenience bundle for tests and sweeps: forwards every event to the
/// band, allotment, δ-good and work-conservation checkers with consistent
/// parameters. For the work-conserving variant S-wc, call
/// [`allow_backfill`](InvariantSuite::allow_backfill).
#[derive(Debug)]
pub struct InvariantSuite {
    /// Observation 3.
    pub band: BandCapacityChecker,
    /// Lemma 1 + allocation discipline.
    pub allot: AllotmentChecker,
    /// δ-goodness / δ-freshness of admissions.
    pub good: DeltaGoodChecker,
    /// Exact work accounting.
    pub work: WorkConservationChecker,
}

impl InvariantSuite {
    /// Create the suite for scheduler S with the given constants.
    pub fn for_scheduler_s(params: AlgoParams) -> InvariantSuite {
        InvariantSuite {
            band: BandCapacityChecker::new(params),
            allot: AllotmentChecker::new(params),
            good: DeltaGoodChecker::new(params),
            work: WorkConservationChecker::new(),
        }
    }

    /// Mirror the scheduler's speed hint in every model-based checker.
    pub fn with_speed_hint(mut self, s: f64) -> InvariantSuite {
        self.band = self.band.with_speed_hint(s);
        self.allot = self.allot.with_speed_hint(s);
        self.good = self.good.with_speed_hint(s);
        self
    }

    /// Relax the exact-allotment discipline for S-wc's backfill.
    pub fn allow_backfill(mut self) -> InvariantSuite {
        self.allot = self.allot.allow_backfill();
        self
    }

    /// Collect violations instead of panicking under `verify-strict`.
    pub fn lenient(mut self) -> InvariantSuite {
        self.band = self.band.lenient();
        self.allot = self.allot.lenient();
        self.good = self.good.lenient();
        self.work = self.work.lenient();
        self
    }

    /// Every violation recorded by any checker.
    pub fn violations(&self) -> Vec<&Violation> {
        self.band
            .violations()
            .iter()
            .chain(self.allot.violations())
            .chain(self.good.violations())
            .chain(self.work.violations())
            .collect()
    }

    /// Panic with a readable list if any checker recorded a violation.
    pub fn assert_clean(&self) {
        let vs = self.violations();
        assert!(
            vs.is_empty(),
            "{} invariant violation(s):\n{}",
            vs.len(),
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl SimObserver for InvariantSuite {
    fn on_start(&mut self, m: u32, speed: Speed, horizon: Time) {
        context::reset_event_index();
        context::bump_event_index();
        self.band.on_start(m, speed, horizon);
        self.allot.on_start(m, speed, horizon);
        self.good.on_start(m, speed, horizon);
        self.work.on_start(m, speed, horizon);
    }
    fn on_platform(&mut self, groups: &MachineGroups) {
        context::bump_event_index();
        self.band.on_platform(groups);
        self.allot.on_platform(groups);
        self.good.on_platform(groups);
        self.work.on_platform(groups);
    }
    fn on_job_arrival(&mut self, now: Time, info: &JobInfo) {
        context::bump_event_index();
        self.band.on_job_arrival(now, info);
        self.allot.on_job_arrival(now, info);
        self.good.on_job_arrival(now, info);
        self.work.on_job_arrival(now, info);
    }
    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        context::bump_event_index();
        self.band.on_admission(now, event);
        self.allot.on_admission(now, event);
        self.good.on_admission(now, event);
        self.work.on_admission(now, event);
    }
    fn on_window(
        &mut self,
        at: Time,
        ticks: u64,
        jobs: &[(JobId, u32)],
        alloc: &[(JobId, u32)],
        progress: &[(JobId, u64)],
    ) {
        context::bump_event_index();
        self.band.on_window(at, ticks, jobs, alloc, progress);
        self.allot.on_window(at, ticks, jobs, alloc, progress);
        self.good.on_window(at, ticks, jobs, alloc, progress);
        self.work.on_window(at, ticks, jobs, alloc, progress);
    }
    fn on_node_complete(&mut self, at: Time, job: JobId, node: NodeId) {
        context::bump_event_index();
        self.band.on_node_complete(at, job, node);
        self.allot.on_node_complete(at, job, node);
        self.good.on_node_complete(at, job, node);
        self.work.on_node_complete(at, job, node);
    }
    fn on_job_complete(&mut self, at: Time, job: JobId, profit: u64) {
        context::bump_event_index();
        self.band.on_job_complete(at, job, profit);
        self.allot.on_job_complete(at, job, profit);
        self.good.on_job_complete(at, job, profit);
        self.work.on_job_complete(at, job, profit);
    }
    fn on_job_expired(&mut self, at: Time, job: JobId) {
        context::bump_event_index();
        self.band.on_job_expired(at, job);
        self.allot.on_job_expired(at, job);
        self.good.on_job_expired(at, job);
        self.work.on_job_expired(at, job);
    }
    fn on_end(&mut self, at: Time) {
        context::bump_event_index();
        self.band.on_end(at);
        self.allot.on_end(at);
        self.good.on_end(at);
        self.work.on_end(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_workload::StepProfitFn;

    /// Regression: the suite must forward `on_platform` to its members.
    /// When it was swallowed, the work checker kept the reporting speed's
    /// scale/units (here 2/1 → scale 1, 2 units/proc) and flagged a
    /// legitimate fast-group window (4 units on the 1x2 processor, work
    /// scaled by the group lcm 2) as a violation.
    #[test]
    fn suite_forwards_on_platform_to_the_work_checker() {
        let groups: MachineGroups = "1x3/2,1x2".parse().unwrap();
        let mut suite = InvariantSuite::for_scheduler_s(AlgoParams::from_epsilon(1.0).unwrap())
            .allow_backfill()
            .lenient();
        suite.on_start(2, Speed::new(2, 1).unwrap(), Time(100));
        suite.on_platform(&groups);
        suite.on_job_arrival(
            Time(0),
            &JobInfo {
                id: JobId(0),
                arrival: Time(0),
                work: Work(3),
                span: Work(3),
                profit: StepProfitFn::deadline(Time(50), 1),
            },
        );
        suite.on_admission(
            Time(0),
            AdmissionEvent {
                job: JobId(0),
                decision: dagsched_engine::AdmissionDecision::Admitted,
            },
        );
        // One tick on the double-speed processor: 4 scaled units against a
        // scaled total of 3 · lcm = 6. Legitimate under the group rates,
        // impossible under the un-forwarded scalar ones.
        suite.on_window(
            Time(0),
            1,
            &[(JobId(0), 1)],
            &[(JobId(0), 1)],
            &[(JobId(0), 4)],
        );
        let vs: Vec<String> = suite
            .work
            .violations()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(vs.is_empty(), "work checker misfired: {vs:?}");
    }
}
