//! Observation 3 as a continuously-checked invariant.

use crate::model::{job_model, JobModel};
use crate::violation::{Recorder, Violation};
use dagsched_core::{AlgoParams, JobId, Speed, Time};
use dagsched_engine::{AdmissionDecision, AdmissionEvent, JobInfo, SimObserver};
use std::collections::HashMap;

/// Is any density band over capacity? Pure population check shared with the
/// `DensityBands` agreement tests: for every anchor `(v_j, ·)` in `members`,
/// the total allotment of members with density in `[v_j, c·v_j)` must stay
/// within `capacity`. Returns the first violating `(anchor_density, load)`.
pub fn band_overload(members: &[(f64, u32)], c: f64, capacity: f64) -> Option<(f64, u64)> {
    for &(anchor, _) in members {
        let hi = c * anchor;
        let load: u64 = members
            .iter()
            .filter(|(d, _)| *d >= anchor && *d < hi)
            .map(|(_, a)| *a as u64)
            .sum();
        if load as f64 > capacity {
            return Some((anchor, load));
        }
    }
    None
}

/// Re-derives Observation 3 — `N(Q, v_j, c·v_j) ≤ b·m` for every started
/// job `j` — from the live event stream, on every admission / completion /
/// expiry, entirely independent of `DensityBands`' own bookkeeping.
///
/// The checker tracks its own started set `Q` (jobs with an
/// [`Admitted`](AdmissionDecision::Admitted) decision that have not
/// completed or expired) and recomputes each job's density and allotment
/// from the paper's formulas ([`job_model`]). Attach it only to schedulers
/// that promise Observation 3 — S and S-wc; the no-admission ablation
/// violates it by design (which the mutant tests use as a fixture).
#[derive(Debug)]
pub struct BandCapacityChecker {
    params: AlgoParams,
    speed_hint: f64,
    m: u32,
    models: HashMap<JobId, JobModel>,
    started: Vec<JobId>,
    rec: Recorder,
}

impl BandCapacityChecker {
    /// Create the checker; `params` must match the scheduler's.
    pub fn new(params: AlgoParams) -> BandCapacityChecker {
        BandCapacityChecker {
            params,
            speed_hint: 1.0,
            m: 0,
            models: HashMap::new(),
            started: Vec::new(),
            rec: Recorder::new("band-capacity"),
        }
    }

    /// Mirror the scheduler's speed hint (see `SchedulerS::with_speed_hint`).
    pub fn with_speed_hint(mut self, s: f64) -> BandCapacityChecker {
        assert!(s.is_finite() && s > 0.0);
        self.speed_hint = s;
        self
    }

    /// Collect violations instead of panicking under `verify-strict`.
    pub fn lenient(mut self) -> BandCapacityChecker {
        self.rec.lenient();
        self
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        self.rec.violations()
    }

    /// Current started-set size (test hook).
    pub fn q_len(&self) -> usize {
        self.started.len()
    }

    fn verify(&mut self, at: Time) {
        let members: Vec<(f64, u32)> = self
            .started
            .iter()
            .filter_map(|id| self.models.get(id).map(|jm| (jm.density, jm.allot)))
            .collect();
        let capacity = self.params.b() * self.m as f64;
        if let Some((anchor, load)) = band_overload(&members, self.params.c(), capacity) {
            self.rec.flag(
                at,
                None,
                format!(
                    "Observation 3 violated: band [{anchor:.6}, {:.6}) holds \
                     {load} processors > capacity {capacity:.4}",
                    self.params.c() * anchor
                ),
            );
        }
    }
}

impl SimObserver for BandCapacityChecker {
    fn on_start(&mut self, m: u32, _speed: Speed, _horizon: Time) {
        self.m = m;
    }

    fn on_job_arrival(&mut self, _now: Time, info: &JobInfo) {
        self.models.insert(
            info.id,
            job_model(info, &self.params, self.m, self.speed_hint),
        );
    }

    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        if event.decision == AdmissionDecision::Admitted {
            if self.started.contains(&event.job) {
                self.rec.flag(now, Some(event.job), "admitted twice".into());
            } else {
                self.started.push(event.job);
            }
            self.verify(now);
        }
    }

    fn on_job_complete(&mut self, at: Time, job: JobId, _profit: u64) {
        self.started.retain(|&j| j != job);
        self.models.remove(&job);
        self.verify(at);
    }

    fn on_job_expired(&mut self, at: Time, job: JobId) {
        self.started.retain(|&j| j != job);
        self.models.remove(&job);
        self.verify(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_detects_anchor_band_excess() {
        // c = 2, capacity = 6: three allot-3 members at the same density
        // load the anchor band with 9.
        let members = [(1.0, 3u32), (1.0, 3), (1.0, 3)];
        let (anchor, load) = band_overload(&members, 2.0, 6.0).unwrap();
        assert_eq!(anchor, 1.0);
        assert_eq!(load, 9);
    }

    #[test]
    fn overload_respects_half_open_upper_bound() {
        // Member exactly at c·v is outside the anchor's band.
        let members = [(1.0, 4u32), (2.0, 4)];
        assert!(band_overload(&members, 2.0, 5.0).is_none());
        // Just inside the band it counts.
        let members = [(1.0, 4u32), (1.999, 4)];
        assert!(band_overload(&members, 2.0, 5.0).is_some());
    }

    #[test]
    fn empty_population_never_overloads() {
        assert!(band_overload(&[], 2.0, 1.0).is_none());
    }
}
