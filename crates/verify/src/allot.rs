//! Lemma 1 and the allocation discipline as continuously-checked invariants.

use crate::model::{job_model, JobModel};
use crate::violation::{Recorder, Violation};
use dagsched_core::{AlgoParams, JobId, Speed, Time};
use dagsched_engine::{AdmissionDecision, AdmissionEvent, JobInfo, SimObserver};
use std::collections::HashMap;

/// Checks scheduler S's allocation discipline on every window:
///
/// * Σ alloc ≤ m (independently of the engine's own validation);
/// * every allocation goes to a *started* job, and grants it **exactly** its
///   allotment `n_i` (the paper's S always hands a scheduled job its full
///   allotment — surplus processors idle);
/// * Lemma 1 at admission: `n_i ≤ b²m + 1` (the `+1` is the integrality
///   slack of rounding the fractional allotment up).
///
/// The work-conserving variant S-wc deliberately backfills idle processors
/// beyond allotments and onto waiting jobs; for it, enable
/// [`allow_backfill`](AllotmentChecker::allow_backfill), which keeps the
/// Σ ≤ m and Lemma 1 checks but drops the exact-allotment discipline.
#[derive(Debug)]
pub struct AllotmentChecker {
    params: AlgoParams,
    speed_hint: f64,
    m: u32,
    backfill: bool,
    models: HashMap<JobId, JobModel>,
    started: Vec<JobId>,
    rec: Recorder,
}

impl AllotmentChecker {
    /// Create the checker; `params` must match the scheduler's.
    pub fn new(params: AlgoParams) -> AllotmentChecker {
        AllotmentChecker {
            params,
            speed_hint: 1.0,
            m: 0,
            backfill: false,
            models: HashMap::new(),
            started: Vec::new(),
            rec: Recorder::new("allotment"),
        }
    }

    /// Mirror the scheduler's speed hint.
    pub fn with_speed_hint(mut self, s: f64) -> AllotmentChecker {
        assert!(s.is_finite() && s > 0.0);
        self.speed_hint = s;
        self
    }

    /// Relax the exact-allotment discipline for work-conserving backfill.
    pub fn allow_backfill(mut self) -> AllotmentChecker {
        self.backfill = true;
        self
    }

    /// Collect violations instead of panicking under `verify-strict`.
    pub fn lenient(mut self) -> AllotmentChecker {
        self.rec.lenient();
        self
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        self.rec.violations()
    }
}

impl SimObserver for AllotmentChecker {
    fn on_start(&mut self, m: u32, _speed: Speed, _horizon: Time) {
        self.m = m;
    }

    fn on_job_arrival(&mut self, _now: Time, info: &JobInfo) {
        self.models.insert(
            info.id,
            job_model(info, &self.params, self.m, self.speed_hint),
        );
    }

    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        if event.decision != AdmissionDecision::Admitted {
            return;
        }
        if !self.started.contains(&event.job) {
            self.started.push(event.job);
        }
        // Lemma 1 (with integrality slack): an admitted job's allotment is
        // at most b²m + 1.
        if let Some(jm) = self.models.get(&event.job) {
            let bound = self.params.b().powi(2) * self.m as f64 + 1.0;
            if jm.allot as f64 > bound {
                self.rec.flag(
                    now,
                    Some(event.job),
                    format!(
                        "Lemma 1 violated: allotment {} > b²m+1 = {bound:.3}",
                        jm.allot
                    ),
                );
            }
        }
    }

    fn on_window(
        &mut self,
        at: Time,
        _ticks: u64,
        _jobs: &[(JobId, u32)],
        alloc: &[(JobId, u32)],
        _progress: &[(JobId, u64)],
    ) {
        let total: u64 = alloc.iter().map(|&(_, k)| k as u64).sum();
        if total > self.m as u64 {
            self.rec.flag(
                at,
                None,
                format!("{total} processors allocated on an m = {} machine", self.m),
            );
        }
        if self.backfill {
            return;
        }
        for &(id, k) in alloc {
            if !self.started.contains(&id) {
                self.rec.flag(
                    at,
                    Some(id),
                    format!("{k} processors for an un-started job"),
                );
                continue;
            }
            if let Some(jm) = self.models.get(&id) {
                if k != jm.allot {
                    self.rec.flag(
                        at,
                        Some(id),
                        format!("holds {k} processors but allotment is {}", jm.allot),
                    );
                }
            }
        }
    }

    fn on_job_complete(&mut self, _at: Time, job: JobId, _profit: u64) {
        self.started.retain(|&j| j != job);
        self.models.remove(&job);
    }

    fn on_job_expired(&mut self, _at: Time, job: JobId) {
        self.started.retain(|&j| j != job);
        self.models.remove(&job);
    }
}
