//! Thread-local replay context for strict-mode panics.
//!
//! A `verify-strict` panic used to say only *what* was violated and
//! *when* in simulation time — not *where* in the event stream or *how* to
//! reproduce it, so a CI log line was the start of an investigation, not
//! the end of one. This module threads two pieces of context into
//! [`Recorder::flag`](crate::violation::Recorder)'s panic message without
//! touching any checker signature:
//!
//! * the **event index**: how many observer callbacks the
//!   [`InvariantSuite`](crate::InvariantSuite) has processed this run.
//!   This matches the line index of the serialized JSONL stream up to
//!   window coalescing (the reference path's adjacent width-1 windows
//!   collapse into one JSONL line), so the index locates the violating
//!   event in the uploaded stream artifact;
//! * an optional **replay seed**, published by whoever drives the run
//!   (the fuzz loop sets its master seed), rendered as a ready-to-paste
//!   `dagsched fuzz --replay <seed>` command.
//!
//! State is thread-local: parallel test threads each see their own
//! context, and a run that never sets a seed still gets the event index.

use std::cell::Cell;

thread_local! {
    static EVENT_INDEX: Cell<u64> = const { Cell::new(0) };
    static REPLAY_SEED: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Publish the seed that reproduces the current run; it appears in any
/// strict-mode panic on this thread until [`clear`] or the next
/// [`set_replay_seed`].
pub fn set_replay_seed(seed: u64) {
    REPLAY_SEED.with(|c| c.set(Some(seed)));
}

/// Drop the published replay seed and reset the event index.
pub fn clear() {
    REPLAY_SEED.with(|c| c.set(None));
    EVENT_INDEX.with(|c| c.set(0));
}

/// The number of suite-observed events so far on this thread.
pub fn event_index() -> u64 {
    EVENT_INDEX.with(|c| c.get())
}

/// Restart the event counter (fired by the suite's `on_start`).
pub(crate) fn reset_event_index() {
    EVENT_INDEX.with(|c| c.set(0));
}

/// Count one observer callback (fired once per suite event).
pub(crate) fn bump_event_index() {
    EVENT_INDEX.with(|c| c.set(c.get() + 1));
}

/// The context suffix appended to strict-mode panic messages.
pub(crate) fn describe() -> String {
    let idx = EVENT_INDEX.with(|c| c.get());
    match REPLAY_SEED.with(|c| c.get()) {
        Some(seed) => {
            format!(" [stream event #{idx}; replay: dagsched fuzz --replay {seed}]")
        }
        None => format!(" [stream event #{idx}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_reflects_index_and_seed() {
        clear();
        bump_event_index();
        bump_event_index();
        assert_eq!(event_index(), 2);
        assert_eq!(describe(), " [stream event #2]");
        set_replay_seed(0xBEEF);
        assert_eq!(
            describe(),
            " [stream event #2; replay: dagsched fuzz --replay 48879]"
        );
        clear();
        assert_eq!(describe(), " [stream event #0]");
    }

    #[test]
    fn reset_restarts_the_count() {
        clear();
        bump_event_index();
        reset_event_index();
        assert_eq!(event_index(), 0);
    }
}
