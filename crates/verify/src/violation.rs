//! Violation records and the shared collection/strictness machinery.

use dagsched_core::{JobId, Time};
use std::fmt;

/// One invariant violation, as recorded by a checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the checker that flagged it.
    pub checker: &'static str,
    /// Simulation time of the violating event.
    pub at: Time,
    /// The job involved, when one is identifiable.
    pub job: Option<JobId>,
    /// Human-readable description of what was violated.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] t={}", self.checker, self.at.ticks())?;
        if let Some(job) = self.job {
            write!(f, " {job}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Shared per-checker violation sink.
///
/// Strictness defaults to the `verify-strict` cargo feature: with the
/// feature on, the first violation panics at the offending event (the CI
/// mode); without it, violations accumulate for the caller to inspect.
/// [`lenient`](Recorder::lenient) forces collection regardless of the
/// feature — the mutant tests use this so they pass under both settings.
#[derive(Debug)]
pub(crate) struct Recorder {
    checker: &'static str,
    strict: bool,
    violations: Vec<Violation>,
}

impl Recorder {
    pub(crate) fn new(checker: &'static str) -> Recorder {
        Recorder {
            checker,
            strict: cfg!(feature = "verify-strict"),
            violations: Vec::new(),
        }
    }

    pub(crate) fn lenient(&mut self) {
        self.strict = false;
    }

    /// Force strict mode regardless of the cargo feature (tests of the
    /// panic path itself).
    #[cfg(test)]
    pub(crate) fn force_strict(&mut self) {
        self.strict = true;
    }

    pub(crate) fn flag(&mut self, at: Time, job: Option<JobId>, message: String) {
        let v = Violation {
            checker: self.checker,
            at,
            job,
            message,
        };
        if self.strict {
            panic!("invariant violation: {v}{}", crate::context::describe());
        }
        self.violations.push(v);
    }

    pub(crate) fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_checker_time_and_job() {
        let v = Violation {
            checker: "band-capacity",
            at: Time(17),
            job: Some(JobId(3)),
            message: "load 9 > capacity 6.93".into(),
        };
        let s = v.to_string();
        assert!(s.contains("band-capacity"));
        assert!(s.contains("t=17"));
        assert!(s.contains("J3") || s.contains('3'));
        assert!(s.contains("load 9"));
    }

    #[test]
    fn lenient_recorder_collects_instead_of_panicking() {
        let mut r = Recorder::new("test");
        r.lenient();
        r.flag(Time(1), None, "a".into());
        r.flag(Time(2), Some(JobId(0)), "b".into());
        assert_eq!(r.violations().len(), 2);
    }

    /// Strict panics carry the stream event index and, when published, a
    /// ready-to-paste replay command — a CI failure is reproducible from
    /// the log alone.
    #[test]
    fn strict_panic_names_event_index_and_replay_seed() {
        crate::context::clear();
        crate::context::set_replay_seed(1234);
        for _ in 0..7 {
            crate::context::bump_event_index();
        }
        let payload = std::panic::catch_unwind(|| {
            let mut r = Recorder::new("band-capacity");
            r.force_strict();
            r.flag(Time(3), Some(JobId(1)), "overload".into());
        })
        .expect_err("strict flag must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("overload"), "{msg}");
        assert!(msg.contains("stream event #7"), "{msg}");
        assert!(msg.contains("dagsched fuzz --replay 1234"), "{msg}");
        crate::context::clear();
    }
}
