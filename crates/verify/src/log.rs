//! JSONL event log: a replayable, diffable serialization of the stream.
//!
//! ## Cross-path byte-identity
//!
//! The reference path reports each tick as a width-1 window while the
//! fast-forward path reports whole stable stretches, so the raw streams
//! differ in granularity (and in nothing else — see the engine's
//! `observe` module docs). `EventLog` therefore **coalesces** adjacent
//! windows that are provably the same stable stretch — contiguous in time,
//! identical job view, identical allocation — by summing their widths and
//! per-job progress. After coalescing, the two paths serialize to
//! byte-identical JSONL, which the stream-equivalence tests assert over the
//! differential corpus.
//!
//! The format is deliberately dependency-free (hand-rolled JSON of integers
//! and fixed token strings — nothing needs escaping).

use dagsched_core::{JobId, MachineGroups, NodeId, Speed, Time};
use dagsched_engine::{AdmissionDecision, AdmissionEvent, JobInfo, SimObserver};
use std::fmt::Write as _;

/// A not-yet-flushed window, pending possible coalescing with its successor.
#[derive(Debug)]
struct PendingWindow {
    at: Time,
    ticks: u64,
    jobs: Vec<(JobId, u32)>,
    alloc: Vec<(JobId, u32)>,
    progress: Vec<(JobId, u64)>,
}

/// Observer serializing the full event stream to JSON lines.
#[derive(Debug, Default)]
pub struct EventLog {
    lines: Vec<String>,
    pending: Option<PendingWindow>,
}

fn pairs<T: Copy + Into<u64>>(out: &mut String, items: &[(JobId, T)]) {
    out.push('[');
    for (i, &(id, v)) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", id.0, v.into());
    }
    out.push(']');
}

impl EventLog {
    /// Create an empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// The serialized lines. Complete only after `on_end` (which flushes the
    /// last pending window).
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The whole log as one JSONL string (trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }

    fn flush_window(&mut self) {
        if let Some(w) = self.pending.take() {
            let mut line = format!(
                r#"{{"ev":"window","t":{},"ticks":{},"jobs":"#,
                w.at.ticks(),
                w.ticks
            );
            pairs(&mut line, &w.jobs);
            line.push_str(r#","alloc":"#);
            pairs(&mut line, &w.alloc);
            line.push_str(r#","progress":"#);
            pairs(&mut line, &w.progress);
            line.push('}');
            self.lines.push(line);
        }
    }
}

impl SimObserver for EventLog {
    fn on_start(&mut self, m: u32, speed: Speed, horizon: Time) {
        self.lines.push(format!(
            r#"{{"ev":"start","m":{m},"speed":[{},{}],"horizon":{}}}"#,
            speed.units_per_tick(),
            speed.work_scale(),
            horizon.ticks()
        ));
    }

    fn on_platform(&mut self, groups: &MachineGroups) {
        // Fires only on non-uniform platforms, so uniform streams (and the
        // scalar-twin byte-identity contract) are untouched.
        let mut line = format!(
            r#"{{"ev":"platform","groups":"{groups}","scale":{},"units":["#,
            groups.work_scale()
        );
        for (i, u) in groups.units_per_group().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{u}");
        }
        line.push_str("]}");
        self.lines.push(line);
    }

    fn on_job_arrival(&mut self, now: Time, info: &JobInfo) {
        self.flush_window();
        let mut line = format!(
            r#"{{"ev":"arrive","t":{},"job":{},"w":{},"l":{},"profit":["#,
            now.ticks(),
            info.id.0,
            info.work.units(),
            info.span.units()
        );
        for (i, &(t, p)) in info.profit.segments().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "[{},{p}]", t.ticks());
        }
        let _ = write!(line, r#"],"tail":{}}}"#, info.profit.tail_value());
        self.lines.push(line);
    }

    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        self.flush_window();
        let (verdict, reason) = match event.decision {
            AdmissionDecision::Admitted => ("admitted", None),
            AdmissionDecision::Deferred(r) => ("deferred", Some(r)),
            AdmissionDecision::Rejected(r) => ("rejected", Some(r)),
        };
        let mut line = format!(
            r#"{{"ev":"admission","t":{},"job":{},"decision":"{verdict}""#,
            now.ticks(),
            event.job.0
        );
        if let Some(r) = reason {
            let _ = write!(line, r#","reason":"{}""#, r.token());
        }
        line.push('}');
        self.lines.push(line);
    }

    fn on_window(
        &mut self,
        at: Time,
        ticks: u64,
        jobs: &[(JobId, u32)],
        alloc: &[(JobId, u32)],
        progress: &[(JobId, u64)],
    ) {
        if let Some(p) = self.pending.as_mut() {
            // Same stable stretch: contiguous, same view, same allocation.
            if at == p.at.after(p.ticks) && p.jobs == jobs && p.alloc == alloc {
                p.ticks += ticks;
                for (acc, &(id, delta)) in p.progress.iter_mut().zip(progress) {
                    debug_assert_eq!(acc.0, id);
                    acc.1 += delta;
                }
                return;
            }
        }
        self.flush_window();
        self.pending = Some(PendingWindow {
            at,
            ticks,
            jobs: jobs.to_vec(),
            alloc: alloc.to_vec(),
            progress: progress.to_vec(),
        });
    }

    fn on_node_complete(&mut self, at: Time, job: JobId, node: NodeId) {
        self.flush_window();
        self.lines.push(format!(
            r#"{{"ev":"node","t":{},"job":{},"node":{}}}"#,
            at.ticks(),
            job.0,
            node.0
        ));
    }

    fn on_job_complete(&mut self, at: Time, job: JobId, profit: u64) {
        self.flush_window();
        self.lines.push(format!(
            r#"{{"ev":"complete","t":{},"job":{},"profit":{profit}}}"#,
            at.ticks(),
            job.0
        ));
    }

    fn on_job_expired(&mut self, at: Time, job: JobId) {
        self.flush_window();
        self.lines.push(format!(
            r#"{{"ev":"expire","t":{},"job":{}}}"#,
            at.ticks(),
            job.0
        ));
    }

    fn on_end(&mut self, at: Time) {
        self.flush_window();
        self.lines
            .push(format!(r#"{{"ev":"end","t":{}}}"#, at.ticks()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_identical_windows_coalesce() {
        let mut log = EventLog::new();
        log.on_start(2, Speed::ONE, Time(100));
        let jobs = [(JobId(0), 3u32)];
        let alloc = [(JobId(0), 2u32)];
        // Three width-1 windows of the same stable stretch...
        for t in 0..3u64 {
            log.on_window(Time(t), 1, &jobs, &alloc, &[(JobId(0), 2)]);
        }
        // ...then the allocation changes.
        log.on_window(Time(3), 1, &jobs, &[(JobId(0), 1)], &[(JobId(0), 1)]);
        log.on_end(Time(4));
        let windows: Vec<&String> = log
            .lines()
            .iter()
            .filter(|l| l.contains(r#""ev":"window""#))
            .collect();
        assert_eq!(windows.len(), 2, "3 + 1 ticks must fold into 2 windows");
        assert!(windows[0].contains(r#""ticks":3"#), "{}", windows[0]);
        assert!(
            windows[0].contains("[[0,6]]"),
            "summed progress: {}",
            windows[0]
        );
        assert!(windows[1].contains(r#""ticks":1"#));
    }

    #[test]
    fn non_contiguous_windows_do_not_coalesce() {
        let mut log = EventLog::new();
        let jobs = [(JobId(0), 1u32)];
        let alloc = [(JobId(0), 1u32)];
        log.on_window(Time(0), 1, &jobs, &alloc, &[(JobId(0), 1)]);
        // Gap at t=1 (idle skip): same alloc but not contiguous.
        log.on_window(Time(5), 1, &jobs, &alloc, &[(JobId(0), 1)]);
        log.on_end(Time(6));
        let windows = log
            .lines()
            .iter()
            .filter(|l| l.contains(r#""ev":"window""#))
            .count();
        assert_eq!(windows, 2);
    }

    #[test]
    fn every_event_kind_serializes_one_line() {
        use dagsched_core::Work;
        use dagsched_workload::StepProfitFn;
        let mut log = EventLog::new();
        log.on_start(4, Speed::new(3, 2).unwrap(), Time(50));
        log.on_job_arrival(
            Time(0),
            &JobInfo {
                id: JobId(1),
                arrival: Time(0),
                work: Work(10),
                span: Work(2),
                profit: StepProfitFn::deadline(Time(9), 4),
            },
        );
        log.on_admission(
            Time(0),
            AdmissionEvent {
                job: JobId(1),
                decision: AdmissionDecision::Admitted,
            },
        );
        log.on_window(
            Time(0),
            2,
            &[(JobId(1), 1)],
            &[(JobId(1), 1)],
            &[(JobId(1), 6)],
        );
        log.on_node_complete(Time(2), JobId(1), NodeId(0));
        log.on_job_complete(Time(3), JobId(1), 4);
        log.on_job_expired(Time(3), JobId(2));
        log.on_end(Time(3));
        assert_eq!(log.lines().len(), 8);
        assert!(log.lines()[0].contains(r#""speed":[3,2]"#));
        assert!(log.lines()[1].contains(r#""profit":[[9,4]]"#));
        assert!(log.lines()[2].contains(r#""decision":"admitted""#));
        assert!(log.to_jsonl().ends_with("}\n"));
    }
}
