//! Exact work accounting per window, for every scheduler.
//!
//! Unlike the S-specific checkers, these invariants are universal engine
//! guarantees: no job ever advances faster than its allocation allows, no
//! job processes more than its total work, a completed job has consumed
//! *exactly* its work, and an expired job strictly less.

use crate::violation::{Recorder, Violation};
use dagsched_core::{JobId, MachineGroups, Speed, Time};
use dagsched_engine::{JobInfo, SimObserver};
use std::collections::HashMap;

/// Per-window work-conservation oracle (scaled-unit exact, no floats).
#[derive(Debug)]
pub struct WorkConservationChecker {
    /// Scaled units one processor completes per tick (`speed.num`).
    units: u64,
    /// Work scale (`speed.den`): a job's scaled total is `W · scale`.
    scale: u64,
    total: HashMap<JobId, u64>,
    done: HashMap<JobId, u64>,
    rec: Recorder,
}

impl Default for WorkConservationChecker {
    fn default() -> WorkConservationChecker {
        WorkConservationChecker::new()
    }
}

impl WorkConservationChecker {
    /// Create the checker (no parameters: the speed comes from `on_start`).
    pub fn new() -> WorkConservationChecker {
        WorkConservationChecker {
            units: 0,
            scale: 0,
            total: HashMap::new(),
            done: HashMap::new(),
            rec: Recorder::new("work-conservation"),
        }
    }

    /// Collect violations instead of panicking under `verify-strict`.
    pub fn lenient(mut self) -> WorkConservationChecker {
        self.rec.lenient();
        self
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        self.rec.violations()
    }
}

impl SimObserver for WorkConservationChecker {
    fn on_start(&mut self, _m: u32, speed: Speed, _horizon: Time) {
        self.units = speed.units_per_tick();
        self.scale = speed.work_scale();
    }

    fn on_platform(&mut self, groups: &MachineGroups) {
        // Related-machines run: all work is scaled by the group lcm (not the
        // reporting speed's own denominator), and the tightest universal
        // per-processor bound is the fastest group's units.
        self.scale = groups.work_scale();
        self.units = groups.units_per_group().iter().copied().max().unwrap_or(0);
    }

    fn on_job_arrival(&mut self, _now: Time, info: &JobInfo) {
        self.total.insert(info.id, info.work.units() * self.scale);
        self.done.insert(info.id, 0);
    }

    fn on_window(
        &mut self,
        at: Time,
        ticks: u64,
        _jobs: &[(JobId, u32)],
        alloc: &[(JobId, u32)],
        progress: &[(JobId, u64)],
    ) {
        for (i, &(id, delta)) in progress.iter().enumerate() {
            // The window's capacity for this job: its processors × ticks ×
            // per-tick units. `progress` is aligned with `alloc` by contract.
            let k = alloc.get(i).map_or(0, |&(aid, k)| {
                debug_assert_eq!(aid, id, "progress misaligned with alloc");
                k as u64
            });
            let cap = k * ticks * self.units;
            if delta > cap {
                self.rec.flag(
                    at,
                    Some(id),
                    format!(
                        "{delta} scaled units in a window with capacity \
                         {k} procs × {ticks} ticks × {} units = {cap}",
                        self.units
                    ),
                );
            }
            let done = self.done.entry(id).or_insert(0);
            *done += delta;
            let total = self.total.get(&id).copied().unwrap_or(0);
            if *done > total {
                let d = *done;
                self.rec.flag(
                    at,
                    Some(id),
                    format!("processed {d} scaled units but total work is {total}"),
                );
            }
        }
    }

    fn on_job_complete(&mut self, at: Time, job: JobId, _profit: u64) {
        let done = self.done.remove(&job).unwrap_or(0);
        let total = self.total.remove(&job).unwrap_or(0);
        if done != total {
            self.rec.flag(
                at,
                Some(job),
                format!("completed with {done} of {total} scaled units processed"),
            );
        }
    }

    fn on_job_expired(&mut self, at: Time, job: JobId) {
        let done = self.done.remove(&job).unwrap_or(0);
        let total = self.total.remove(&job).unwrap_or(0);
        if done >= total && total > 0 {
            self.rec.flag(
                at,
                Some(job),
                format!("expired after processing {done} of {total} scaled units"),
            );
        }
    }
}
