//! Independent re-derivation of scheduler S's arrival-time quantities.
//!
//! The checkers deliberately do **not** ask the scheduler what it computed —
//! they recompute allotment, budget, density and δ-goodness from the same
//! [`JobInfo`] the scheduler saw, with the same formulas, in the same
//! floating-point operation order (so the derived values are bit-identical
//! and band-boundary comparisons cannot diverge). A scheduler whose internal
//! bookkeeping drifts from the paper's definitions is then caught by the
//! disagreement, which is the whole point of an independent oracle.

use dagsched_core::{AlgoParams, Time};
use dagsched_engine::JobInfo;

/// The paper's per-job quantities, recomputed from first principles.
#[derive(Debug, Clone, Copy)]
pub struct JobModel {
    /// Allotment `n_i` (rounded up, floored at 1, capped at `m`).
    pub allot: u32,
    /// Budget `x_i = (W−L)/n_i + L` (speed-hint-scaled).
    pub x: f64,
    /// Density `v_i = p_i / (x_i · n_i)`.
    pub density: f64,
    /// Maximum profit `p_i` (the flat prefix value for non-deadline jobs).
    pub profit: u64,
    /// Release time `r_i`.
    pub arrival: Time,
    /// Relative deadline `D_i` as a float.
    pub rel_deadline: f64,
    /// Absolute deadline `r_i + D_i`.
    pub abs_deadline: Time,
    /// Whether any allotment `≤ m` meets the `(1+2δ)` contraction.
    pub admissible: bool,
    /// δ-good: admissible and `D_i ≥ (1+2δ)·x_i`.
    pub delta_good: bool,
}

/// Recompute S's arrival-time quantities for one job.
///
/// `speed_hint` mirrors [`SchedulerS::with_speed_hint`]: when S was told it
/// runs on `s`-speed processors, the checker must scale `W` and `L` the same
/// way or every density diverges.
///
/// [`SchedulerS::with_speed_hint`]: https://docs.rs/dagsched-sched
pub fn job_model(info: &JobInfo, params: &AlgoParams, m: u32, speed_hint: f64) -> JobModel {
    let (d_rel, profit) = info
        .profit
        .as_deadline()
        .unwrap_or((info.profit.flat_until(), info.profit.max_profit()));
    let w = info.work.as_f64() / speed_hint;
    let l = info.span.as_f64() / speed_hint;
    let d = d_rel.as_f64();

    let (allot, admissible) = match params.raw_allotment(w, l, d) {
        Some(frac) => {
            let n = (frac.ceil() as u32).max(1);
            (n.min(m), n <= m)
        }
        None => (m, false),
    };
    let x = AlgoParams::x_time(w, l, allot);
    let density = profit as f64 / (x * allot as f64);
    let abs_deadline = info.arrival.saturating_add(d_rel.ticks());
    let delta_good = admissible && d >= params.good_factor() * x;

    JobModel {
        allot,
        x,
        density,
        profit,
        arrival: info.arrival,
        rel_deadline: d,
        abs_deadline,
        admissible,
        delta_good,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::{JobId, Work};
    use dagsched_workload::StepProfitFn;

    fn info(w: u64, l: u64, d: u64, p: u64) -> JobInfo {
        JobInfo {
            id: JobId(0),
            arrival: Time(5),
            work: Work(w),
            span: Work(l),
            profit: StepProfitFn::deadline(Time(d), p),
        }
    }

    #[test]
    fn slack_job_is_delta_good_with_small_allotment() {
        let params = AlgoParams::from_epsilon(1.0).unwrap();
        // W=64, L=4, D=23 on m=8 (same numbers as the SchedulerS unit test).
        let m = job_model(&info(64, 4, 23, 10), &params, 8, 1.0);
        assert!(m.admissible);
        assert!(m.delta_good);
        assert!(m.allot >= 1 && m.allot <= 8);
        assert_eq!(m.abs_deadline, Time(28));
        assert!(m.density > 0.0);
        // x at the rounded allotment obeys δ-goodness directly.
        assert!(m.rel_deadline >= params.good_factor() * m.x);
    }

    #[test]
    fn deadline_below_span_is_inadmissible() {
        let params = AlgoParams::from_epsilon(1.0).unwrap();
        let m = job_model(&info(64, 16, 10, 10), &params, 8, 1.0);
        assert!(!m.admissible);
        assert!(!m.delta_good);
        assert_eq!(m.allot, 8, "inadmissible jobs fall back to n = m");
    }

    #[test]
    fn speed_hint_scales_work_and_span() {
        let params = AlgoParams::from_epsilon(1.0).unwrap();
        let base = job_model(&info(64, 4, 23, 10), &params, 8, 1.0);
        let fast = job_model(&info(64, 4, 23, 10), &params, 8, 2.0);
        // Halving effective work can only shrink the allotment and budget.
        assert!(fast.allot <= base.allot);
        assert!(fast.x <= base.x);
    }
}
