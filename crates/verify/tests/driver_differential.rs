//! Resumability oracle: driving a [`SimDriver`] incrementally — one `step()`
//! at a time, or in `run_until` bursts at arbitrary horizons — must be
//! **byte-identical** to the one-shot `simulate_observed` wrapper.
//!
//! `stream_equiv.rs` proves the two execution paths (reference and
//! fast-forward) emit the same event stream; this file proves that *how the
//! driver is paced* is equally invisible: same `SimResult` (including the
//! step count) and the same JSONL event log, for every production scheduler,
//! both engine paths, and proptest-chosen pause points.

use dagsched_core::{AlgoParams, Speed, Time};
use dagsched_engine::{
    simulate_observed, NodePick, OnlineScheduler, SimConfig, SimDriver, SimObserver, SimResult,
};
use dagsched_sched::{Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, SNoAdmission, SchedulerS};
use dagsched_verify::EventLog;
use dagsched_workload::{ArrivalProcess, DeadlinePolicy, Instance, WorkloadGen};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

fn factories(m: u32) -> Vec<(&'static str, SchedFactory)> {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    vec![
        (
            "S",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0)) as _),
        ),
        (
            "S-wc",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving()) as _),
        ),
        (
            "S-noadmit",
            Box::new(move || Box::new(SNoAdmission::new(m, params)) as _),
        ),
        ("FIFO", Box::new(move || Box::new(Fifo::new(m)) as _)),
        ("EDF", Box::new(move || Box::new(Edf::new(m)) as _)),
        (
            "HDF",
            Box::new(move || Box::new(GreedyDensity::new(m)) as _),
        ),
        ("LLF", Box::new(move || Box::new(LeastLaxity::new(m)) as _)),
        ("EDF-AC", Box::new(move || Box::new(EdfAc::new(m)) as _)),
    ]
}

/// The one-shot reference: `simulate_observed` with an `EventLog`.
fn one_shot(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
) -> (SimResult, String) {
    let mut log = EventLog::new();
    let r = simulate_observed(inst, mk().as_mut(), cfg, &mut log).expect("one-shot runs");
    (r, log.to_jsonl())
}

/// Drive the run one `step()` at a time.
fn stepped(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
) -> (SimResult, String) {
    let mut log = EventLog::new();
    let mut sched = mk();
    let mut driver =
        SimDriver::with_observer(inst, sched.as_mut(), cfg, &mut log as &mut dyn SimObserver);
    while driver.step().expect("step runs") {}
    let r = driver.finish().expect("finish after completion");
    (r, log.to_jsonl())
}

/// Drive the run in `run_until` bursts at the given horizons (ascending or
/// not — the driver treats a past horizon as a no-op), then finish.
fn paused(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
    horizons: &[Time],
) -> (SimResult, String) {
    let mut log = EventLog::new();
    let mut sched = mk();
    let mut driver =
        SimDriver::with_observer(inst, sched.as_mut(), cfg, &mut log as &mut dyn SimObserver);
    for &h in horizons {
        driver.run_until(h).expect("run_until runs");
    }
    let r = driver.finish().expect("finish runs");
    (r, log.to_jsonl())
}

fn assert_matches(label: &str, got: (SimResult, String), want: &(SimResult, String)) {
    assert!(
        got.0.same_outcome(&want.0),
        "{label}: outcome diverges from one-shot\n\
         got : profit {} ticks {}\nwant: profit {} ticks {}",
        got.0.total_profit,
        got.0.ticks_simulated,
        want.0.total_profit,
        want.0.ticks_simulated,
    );
    assert_eq!(
        got.0.steps_executed, want.0.steps_executed,
        "{label}: step count diverges"
    );
    if got.1 != want.1 {
        for (i, (g, w)) in got.1.lines().zip(want.1.lines()).enumerate() {
            assert_eq!(g, w, "{label}: event streams diverge at line {i}");
        }
        panic!(
            "{label}: streams are a prefix of each other ({} vs {} lines)",
            got.1.lines().count(),
            want.1.lines().count()
        );
    }
}

fn configs() -> Vec<SimConfig> {
    let mut out = Vec::new();
    for speed in [Speed::ONE, Speed::new(3, 2).expect("positive")] {
        for fast_forward in [true, false] {
            out.push(SimConfig {
                speed,
                pick: NodePick::Fifo,
                fast_forward,
                ..SimConfig::default()
            });
        }
    }
    out.push(SimConfig {
        pick: NodePick::CriticalPathFirst,
        ..SimConfig::default()
    });
    out
}

#[test]
fn stepped_drive_matches_one_shot_for_every_production_scheduler() {
    for (seed, m) in [(7u64, 4u32), (191, 6), (2024, 8)] {
        let inst = WorkloadGen::standard(m, 25, seed)
            .generate()
            .expect("valid workload");
        for cfg in configs() {
            for (name, mk) in &factories(m) {
                let want = one_shot(&inst, mk, &cfg);
                let got = stepped(&inst, mk, &cfg);
                assert_matches(&format!("seed {seed} {name} stepped"), got, &want);
            }
        }
    }
}

#[test]
fn stepped_drive_matches_one_shot_under_overload() {
    // Admission churn + expiries: the densest event stream.
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 40, 99)
    }
    .generate()
    .expect("valid workload");
    for cfg in configs() {
        for (name, mk) in &factories(m) {
            let want = one_shot(&inst, mk, &cfg);
            let got = stepped(&inst, mk, &cfg);
            assert_matches(&format!("overload {name} stepped"), got, &want);
        }
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Pausing at arbitrary horizons never perturbs the run: SimResult
        /// and JSONL stream stay byte-identical to the one-shot wrapper.
        #[test]
        fn run_until_at_random_horizons_is_invisible(
            seed in 0u64..500,
            hseed in 0u64..500,
            n_pauses in 1usize..12,
            sched_idx in 0usize..8,
            ff in 0u8..2,
        ) {
            let m = 4 + (seed % 5) as u32;
            let inst = WorkloadGen::standard(m, 20, seed)
                .generate()
                .expect("valid workload");
            let cfg = SimConfig {
                fast_forward: ff == 1,
                ..SimConfig::default()
            };
            let mks = factories(m);
            let (name, mk) = &mks[sched_idx % mks.len()];
            // Random pause horizons across (and past) the instance window.
            let span = inst.stats().horizon.ticks() + 8;
            let mut rng = dagsched_core::Rng64::seed_from(hseed);
            let horizons: Vec<Time> = (0..n_pauses)
                .map(|_| Time(rng.gen_range(span.max(1))))
                .collect();
            let want = one_shot(&inst, mk, &cfg);
            let got = paused(&inst, mk, &cfg, &horizons);
            assert_matches(
                &format!("seed {seed} {name} pauses {horizons:?}"),
                got,
                &want,
            );
        }
    }
}
