//! Differential oracle for the PR-10 hot-path rewrites: the incremental
//! slot-plan [`SchedulerSProfit`] (segment plan + bounded-stability
//! fast-forward + delta cached replay) and the bounded-stability
//! [`RandomOrder`] against their frozen pre-rewrite twins
//! [`OracleSProfit`] / [`OracleRandomOrder`].
//!
//! The twins have **no** stability claim, so they always run the per-tick
//! reference path; the rewrites run the windowed fast path by default. The
//! outcome must still be byte-identical — same `SimResult` (every field
//! [`SimResult::same_outcome`] compares) and the same JSONL event stream
//! (the event log coalesces a window of `s` identical reference ticks into
//! exactly the record the fast path emits in one call). The one field that
//! legitimately differs is `steps_executed` — that *is* the speedup — so
//! this suite never compares it.
//!
//! Corpus: the standard seeds, an overload mix, a parked-majority
//! instance (mostly rejected jobs → the plan-gap bulk-skip carries the
//! run), the fuzzer's collision family, a multi-thread sweep, and
//! proptest-driven paused `run_until` runs at random horizons.

use dagsched_core::{JobId, Speed, Time};
use dagsched_engine::{
    parallel_map, simulate_observed, NodePick, OnlineScheduler, SimConfig, SimDriver, SimObserver,
    SimResult, WindowMode,
};
use dagsched_sched::oracle::{OracleRandomOrder, OracleSProfit};
use dagsched_sched::{RandomOrder, SchedulerSProfit};
use dagsched_verify::EventLog;
use dagsched_workload::{
    ArrivalProcess, DeadlinePolicy, Instance, JobSpec, StepProfitFn, WorkloadGen,
};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler> + Sync>;

/// (name, rewritten scheduler, frozen oracle twin).
fn pairs(m: u32) -> Vec<(&'static str, SchedFactory, SchedFactory)> {
    vec![
        (
            "S-profit",
            Box::new(move || Box::new(SchedulerSProfit::with_epsilon(m, 1.0)) as _),
            Box::new(move || Box::new(OracleSProfit::with_epsilon(m, 1.0)) as _),
        ),
        (
            "RANDOM",
            Box::new(move || Box::new(RandomOrder::new(m, 42)) as _),
            Box::new(move || Box::new(OracleRandomOrder::new(m, 42)) as _),
        ),
    ]
}

/// One observed run.
fn run_one(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
) -> (SimResult, String) {
    let mut log = EventLog::new();
    let r = simulate_observed(inst, mk().as_mut(), cfg, &mut log).expect("run succeeds");
    (r, log.to_jsonl())
}

fn assert_matches(label: &str, fast: (SimResult, String), oracle: &(SimResult, String)) {
    assert!(
        fast.0.same_outcome(&oracle.0),
        "{label}: rewrite outcome diverges from frozen oracle\n\
         rewrite: profit {} ticks {} end {:?}\noracle : profit {} ticks {} end {:?}",
        fast.0.total_profit,
        fast.0.ticks_simulated,
        fast.0.end_time,
        oracle.0.total_profit,
        oracle.0.ticks_simulated,
        oracle.0.end_time,
    );
    // NOTE: `steps_executed` is deliberately NOT compared — the rewrite's
    // whole point is taking fewer engine steps for the same schedule.
    if fast.1 != oracle.1 {
        for (i, (f, o)) in fast.1.lines().zip(oracle.1.lines()).enumerate() {
            assert_eq!(f, o, "{label}: event streams diverge at line {i}");
        }
        panic!(
            "{label}: streams are a prefix of each other ({} vs {} lines)",
            fast.1.lines().count(),
            oracle.1.lines().count()
        );
    }
}

fn check_pair(
    inst: &Instance,
    mk_fast: &dyn Fn() -> Box<dyn OnlineScheduler>,
    mk_oracle: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
    label: &str,
) {
    let oracle = run_one(inst, mk_oracle, cfg);
    let fast = run_one(inst, mk_fast, cfg);
    assert_matches(label, fast, &oracle);
}

fn check_all(inst: &Instance, m: u32, label: &str) {
    for speed in [Speed::ONE, Speed::new(3, 2).expect("positive")] {
        for pick in [NodePick::Fifo, NodePick::CriticalPathFirst] {
            for window in [WindowMode::EventKernel, WindowMode::ReferenceScan] {
                let cfg = SimConfig {
                    speed,
                    pick: pick.clone(),
                    window,
                    ..SimConfig::default()
                };
                for (name, mk_fast, mk_oracle) in &pairs(m) {
                    check_pair(
                        inst,
                        mk_fast,
                        mk_oracle,
                        &cfg,
                        &format!(
                            "{label}: {name} at speed {speed:?} pick {pick:?} window {window:?}"
                        ),
                    );
                }
            }
        }
    }
    // The rewrites must also be byte-faithful on the naive path, where the
    // segment plan replaces the per-tick BTreeMap scan step for step.
    let naive = SimConfig {
        fast_forward: false,
        ..SimConfig::default()
    };
    for (name, mk_fast, mk_oracle) in &pairs(m) {
        check_pair(
            inst,
            mk_fast,
            mk_oracle,
            &naive,
            &format!("{label}: {name} naive"),
        );
    }
}

#[test]
fn rewrites_match_oracles_on_standard_workloads() {
    for seed in [7u64, 191, 2024] {
        let m = 4 + (seed % 5) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        check_all(&inst, m, &format!("standard seed {seed}"));
    }
}

#[test]
fn rewrites_match_oracles_under_overload() {
    // Tight deadlines + hot arrivals: maximal admission churn, so the
    // slot-plan split/insert/release machinery is exercised hardest.
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 50, 99)
    }
    .generate()
    .expect("valid workload");
    check_all(&inst, m, "overload");
}

/// A parked majority: most jobs are rejected at admission (band
/// conflicts) and wait out their deadlines unallocated, so the run is
/// dominated by plan gaps — exactly the stretches the bounded-stability
/// bulk-skip fast-forwards through in one window each.
#[test]
fn rewrites_match_oracles_with_a_parked_majority() {
    use dagsched_dag::gen;
    let mut jobs: Vec<JobSpec> = (0..40u32)
        .map(|i| {
            JobSpec::new(
                JobId(i),
                Time(0),
                gen::single(5_000).into_shared(),
                StepProfitFn::deadline(Time(50_000), 1),
            )
        })
        .collect();
    for i in 0..20u32 {
        jobs.push(JobSpec::new(
            JobId(40 + i),
            Time(2 * i as u64),
            gen::chain(3, 2).into_shared(),
            StepProfitFn::deadline(Time(40), 3),
        ));
    }
    jobs.sort_by_key(|j| j.arrival);
    let jobs = jobs
        .into_iter()
        .enumerate()
        .map(|(i, j)| JobSpec::new(JobId(i as u32), j.arrival, j.dag.clone(), j.profit.clone()))
        .collect();
    let inst = Instance::new(4, jobs).expect("valid parked instance");
    check_all(&inst, 4, "parked majority");
}

/// The standard corpus again through the multi-thread harness: each
/// (instance, pair) runs both sides on a worker thread. Byte-identity
/// must hold at N threads exactly as at 1.
#[test]
fn rewrites_match_oracles_across_threads() {
    let insts: Vec<(u64, Instance)> = [7u64, 191, 2024]
        .iter()
        .map(|&seed| {
            let m = 4 + (seed % 5) as u32;
            (
                seed,
                WorkloadGen::standard(m, 30, seed)
                    .generate()
                    .expect("valid workload"),
            )
        })
        .collect();
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    for i in 0..insts.len() {
        for s in 0..pairs(1).len() {
            tasks.push((i, s));
        }
    }
    let insts_ref = &insts;
    let results = parallel_map(tasks, 4, |&(i, s)| {
        let (seed, inst) = &insts_ref[i];
        let mks = pairs(inst.m());
        let (name, mk_fast, mk_oracle) = &mks[s];
        let oracle = run_one(inst, mk_oracle, &SimConfig::default());
        let fast = run_one(inst, mk_fast, &SimConfig::default());
        (format!("threaded seed {seed} {name}"), fast, oracle)
    });
    for (label, fast, oracle) in results {
        assert_matches(&label, fast, &oracle);
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Pausing a fast-path driver at arbitrary horizons matches the
        /// one-shot frozen-oracle run: segment-plan state, the delta
        /// replay cache, and the bounded-stability windows all survive
        /// `run_until` boundaries.
        #[test]
        fn paused_fast_run_matches_one_shot_oracle(
            seed in 0u64..500,
            hseed in 0u64..500,
            n_pauses in 1usize..12,
            pair_idx in 0usize..2,
        ) {
            let m = 4 + (seed % 5) as u32;
            let inst = WorkloadGen::standard(m, 20, seed)
                .generate()
                .expect("valid workload");
            let mks = pairs(m);
            let (name, mk_fast, mk_oracle) = &mks[pair_idx % mks.len()];
            let oracle = run_one(&inst, mk_oracle, &SimConfig::default());

            let span = inst.stats().horizon.ticks() + 8;
            let mut rng = dagsched_core::Rng64::seed_from(hseed);
            let cfg = SimConfig::default();
            let mut log = EventLog::new();
            let mut sched = mk_fast();
            let mut driver = SimDriver::with_observer(
                &inst,
                sched.as_mut(),
                &cfg,
                &mut log as &mut dyn SimObserver,
            );
            for _ in 0..n_pauses {
                driver
                    .run_until(Time(rng.gen_range(span.max(1))))
                    .expect("run_until runs");
            }
            let r = driver.finish().expect("finish runs");
            assert_matches(
                &format!("paused fast seed {seed} {name}"),
                (r, log.to_jsonl()),
                &oracle,
            );
        }
    }
}

/// The fuzzer's collision family: same-step admit+expire batches and dense
/// ready churn through the shared generator, so this suite and the fuzzer
/// sample the same distribution.
#[test]
fn rewrites_match_oracles_on_the_fuzz_collision_corpus() {
    let corpus = dagsched_fuzz::collision_instances(0xDE17A, 16);
    for (ci, inst) in corpus.iter().enumerate() {
        let m = inst.m();
        for (name, mk_fast, mk_oracle) in &pairs(m) {
            check_pair(
                inst,
                mk_fast,
                mk_oracle,
                &SimConfig::default(),
                &format!("fuzz collision #{ci} {name}"),
            );
        }
    }
}
