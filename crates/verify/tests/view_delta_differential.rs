//! Differential oracle for the incremental scheduler handoff: with every
//! other knob fixed, [`HandoffMode::Delta`] and [`HandoffMode::Rebuild`]
//! must be **byte-identical** — same `SimResult` (including
//! `steps_executed`), same JSONL event stream.
//!
//! `event_kernel_differential.rs` pins *which next-event selection* drove
//! the windows; this file pins *how the scheduler saw the alive set*: the
//! maintained `(id, ready_count)` view patched by `ViewDelta` (with each
//! scheduler's `allocate_delta` — cached replay on empty deltas,
//! incremental lut patching otherwise) against the frozen
//! [`ViewRebuild`](dagsched_engine::ViewRebuild) twin that reconstructs the
//! view and runs a full `allocate_into` every step. It runs the standard
//! corpus and an overload corpus, collision-dense proptest instances,
//! `run_until` at proptest-chosen pause horizons, and the whole corpus
//! again under a multi-thread harness — all for every production
//! scheduler, including the delta-declining `RandomOrder` (which exercises
//! the maintained-view + full-`allocate_into` fallback).

use dagsched_core::{AlgoParams, JobId, Speed, Time};
use dagsched_engine::{
    parallel_map, simulate_observed, HandoffMode, NodePick, OnlineScheduler, SimConfig, SimDriver,
    SimObserver, SimResult, WindowMode,
};
use dagsched_sched::{
    Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, RandomOrder, SNoAdmission, SchedulerS,
};
use dagsched_verify::EventLog;
use dagsched_workload::{
    ArrivalProcess, DeadlinePolicy, Instance, JobSpec, StepProfitFn, WorkloadGen,
};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler> + Sync>;

fn factories(m: u32) -> Vec<(&'static str, SchedFactory)> {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    vec![
        (
            "S",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0)) as _),
        ),
        (
            "S-wc",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving()) as _),
        ),
        (
            "S-noadmit",
            Box::new(move || Box::new(SNoAdmission::new(m, params)) as _),
        ),
        ("FIFO", Box::new(move || Box::new(Fifo::new(m)) as _)),
        ("EDF", Box::new(move || Box::new(Edf::new(m)) as _)),
        (
            "HDF",
            Box::new(move || Box::new(GreedyDensity::new(m)) as _),
        ),
        ("LLF", Box::new(move || Box::new(LeastLaxity::new(m)) as _)),
        ("EDF-AC", Box::new(move || Box::new(EdfAc::new(m)) as _)),
        (
            // Declines `allocate_delta`: pins the engine's fallback, where
            // the *maintained* view feeds a full `allocate_into` per step.
            "RANDOM",
            Box::new(move || Box::new(RandomOrder::new(m, 42)) as _),
        ),
    ]
}

/// One observed run under the given handoff mode.
fn run_mode(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
    handoff: HandoffMode,
) -> (SimResult, String) {
    let cfg = SimConfig {
        handoff,
        ..cfg.clone()
    };
    let mut log = EventLog::new();
    let r = simulate_observed(inst, mk().as_mut(), &cfg, &mut log).expect("run succeeds");
    (r, log.to_jsonl())
}

fn assert_matches(label: &str, delta: (SimResult, String), rebuild: &(SimResult, String)) {
    assert!(
        delta.0.same_outcome(&rebuild.0),
        "{label}: delta outcome diverges from rebuild\n\
         delta  : profit {} ticks {}\nrebuild: profit {} ticks {}",
        delta.0.total_profit,
        delta.0.ticks_simulated,
        rebuild.0.total_profit,
        rebuild.0.ticks_simulated,
    );
    assert_eq!(
        delta.0.steps_executed, rebuild.0.steps_executed,
        "{label}: step count diverges (an allocation changed a window)"
    );
    if delta.1 != rebuild.1 {
        for (i, (d, r)) in delta.1.lines().zip(rebuild.1.lines()).enumerate() {
            assert_eq!(d, r, "{label}: event streams diverge at line {i}");
        }
        panic!(
            "{label}: streams are a prefix of each other ({} vs {} lines)",
            delta.1.lines().count(),
            rebuild.1.lines().count()
        );
    }
}

fn check_pair(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
    label: &str,
) {
    let rebuild = run_mode(inst, mk, cfg, HandoffMode::Rebuild);
    let delta = run_mode(inst, mk, cfg, HandoffMode::Delta);
    assert_matches(label, delta, &rebuild);
}

fn check_all(inst: &Instance, m: u32, label: &str) {
    for speed in [Speed::ONE, Speed::new(3, 2).expect("positive")] {
        for pick in [NodePick::Fifo, NodePick::CriticalPathFirst] {
            for window in [WindowMode::EventKernel, WindowMode::ReferenceScan] {
                let cfg = SimConfig {
                    speed,
                    pick: pick.clone(),
                    window,
                    ..SimConfig::default()
                };
                for (name, mk) in &factories(m) {
                    check_pair(
                        inst,
                        mk,
                        &cfg,
                        &format!(
                            "{label}: {name} at speed {speed:?} pick {pick:?} window {window:?}"
                        ),
                    );
                }
            }
        }
    }
    // The maintained view is patched on the naive path too: one
    // representative naive configuration per instance.
    let naive = SimConfig {
        fast_forward: false,
        ..SimConfig::default()
    };
    for (name, mk) in &factories(m) {
        check_pair(inst, mk, &naive, &format!("{label}: {name} naive"));
    }
}

#[test]
fn delta_matches_rebuild_on_standard_workloads() {
    for seed in [7u64, 191, 2024] {
        let m = 4 + (seed % 5) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        check_all(&inst, m, &format!("standard seed {seed}"));
    }
}

#[test]
fn delta_matches_rebuild_under_overload() {
    // Tight deadlines + hot arrivals: the view churns hardest — admits,
    // expiries and ready-count patches on nearly every step.
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 50, 99)
    }
    .generate()
    .expect("valid workload");
    check_all(&inst, m, "overload");
}

/// A parked majority: most jobs sit alive-but-idle for the whole run, so
/// almost every step's delta is empty (or a handful of ready patches) and
/// the cached-replay branch of every `allocate_delta` carries the run.
#[test]
fn delta_matches_rebuild_with_a_parked_majority() {
    use dagsched_dag::gen;
    let mut jobs: Vec<JobSpec> = (0..40u32)
        .map(|i| {
            JobSpec::new(
                JobId(i),
                Time(0),
                gen::single(5_000).into_shared(),
                StepProfitFn::deadline(Time(50_000), 1),
            )
        })
        .collect();
    // Foreground churn: short chains arriving over time.
    for i in 0..20u32 {
        jobs.push(JobSpec::new(
            JobId(40 + i),
            Time(2 * i as u64),
            gen::chain(3, 2).into_shared(),
            StepProfitFn::deadline(Time(40), 3),
        ));
    }
    jobs.sort_by_key(|j| j.arrival);
    let jobs = jobs
        .into_iter()
        .enumerate()
        .map(|(i, j)| JobSpec::new(JobId(i as u32), j.arrival, j.dag.clone(), j.profit.clone()))
        .collect();
    let inst = Instance::new(4, jobs).expect("valid parked instance");
    check_all(&inst, 4, "parked majority");
}

/// The whole standard corpus again, but driven through the multi-thread
/// harness: each (instance, scheduler) pair runs both handoff modes on a
/// worker thread. Byte-identity must hold at N threads exactly as at 1 —
/// the delta path has no hidden shared state.
#[test]
fn delta_matches_rebuild_across_threads() {
    let insts: Vec<(u64, Instance)> = [7u64, 191, 2024]
        .iter()
        .map(|&seed| {
            let m = 4 + (seed % 5) as u32;
            (
                seed,
                WorkloadGen::standard(m, 30, seed)
                    .generate()
                    .expect("valid workload"),
            )
        })
        .collect();
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    for i in 0..insts.len() {
        for s in 0..factories(1).len() {
            tasks.push((i, s));
        }
    }
    let insts_ref = &insts;
    let results = parallel_map(tasks, 4, |&(i, s)| {
        let (seed, inst) = &insts_ref[i];
        let mks = factories(inst.m());
        let (name, mk) = &mks[s];
        let rebuild = run_mode(inst, mk, &SimConfig::default(), HandoffMode::Rebuild);
        let delta = run_mode(inst, mk, &SimConfig::default(), HandoffMode::Delta);
        (format!("threaded seed {seed} {name}"), delta, rebuild)
    });
    for (label, delta, rebuild) in results {
        assert_matches(&label, delta, &rebuild);
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Collision-dense random instances (same shape as the kernel suite):
    /// single-digit arrivals, works and deadlines, so same-step
    /// admit+expire, multi-removal batches and dense ready churn are the
    /// norm.
    fn collision_instance(seed: u64, n: usize, m: u32) -> Instance {
        use dagsched_dag::gen;
        let mut rng = dagsched_core::Rng64::seed_from(seed);
        let mut arrivals: Vec<u64> = (0..n).map(|_| rng.gen_range(8)).collect();
        arrivals.sort_unstable();
        let jobs: Vec<JobSpec> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let work = 1 + rng.gen_range(6);
                let dag = if rng.gen_range(2) == 0 {
                    gen::single(work).into_shared()
                } else {
                    gen::chain(2, work.max(1)).into_shared()
                };
                let deadline = 1 + rng.gen_range(9);
                JobSpec::new(
                    JobId(i as u32),
                    Time(a),
                    dag,
                    StepProfitFn::deadline(Time(deadline), 1 + rng.gen_range(5)),
                )
            })
            .collect();
        Instance::new(m, jobs).expect("valid collision instance")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Delta == rebuild on collision-dense instances for every
        /// production scheduler, fast-forward and naive.
        #[test]
        fn delta_matches_rebuild_under_adversarial_ties(
            seed in 0u64..1000,
            n in 3usize..14,
            m in 1u32..4,
            sched_idx in 0usize..9,
            ff in 0u8..2,
        ) {
            let inst = collision_instance(seed, n, m);
            let cfg = SimConfig {
                fast_forward: ff == 1,
                ..SimConfig::default()
            };
            let mks = factories(m);
            let (name, mk) = &mks[sched_idx % mks.len()];
            check_pair(
                &inst,
                mk,
                &cfg,
                &format!("ties seed {seed} n {n} m {m} {name} ff {ff}"),
            );
        }

        /// Pausing a delta-mode driver at arbitrary horizons matches the
        /// one-shot rebuild run: the delta accumulator survives `run_until`
        /// boundaries without losing or duplicating changes.
        #[test]
        fn paused_delta_run_matches_one_shot_rebuild(
            seed in 0u64..500,
            hseed in 0u64..500,
            n_pauses in 1usize..12,
            sched_idx in 0usize..9,
        ) {
            let m = 4 + (seed % 5) as u32;
            let inst = WorkloadGen::standard(m, 20, seed)
                .generate()
                .expect("valid workload");
            let mks = factories(m);
            let (name, mk) = &mks[sched_idx % mks.len()];
            let rebuild = run_mode(&inst, mk, &SimConfig::default(), HandoffMode::Rebuild);

            let span = inst.stats().horizon.ticks() + 8;
            let mut rng = dagsched_core::Rng64::seed_from(hseed);
            let delta_cfg = SimConfig {
                handoff: HandoffMode::Delta,
                ..SimConfig::default()
            };
            let mut log = EventLog::new();
            let mut sched = mk();
            let mut driver = SimDriver::with_observer(
                &inst,
                sched.as_mut(),
                &delta_cfg,
                &mut log as &mut dyn SimObserver,
            );
            for _ in 0..n_pauses {
                driver
                    .run_until(Time(rng.gen_range(span.max(1))))
                    .expect("run_until runs");
            }
            let r = driver.finish().expect("finish runs");
            assert_matches(
                &format!("paused delta seed {seed} {name}"),
                (r, log.to_jsonl()),
                &rebuild,
            );
        }
    }
}

/// The fuzzer's collision family one more time, via its shared generator:
/// keeps this suite and the fuzzer's delta-vs-rebuild oracle head sampling
/// the same distribution.
#[test]
fn delta_matches_rebuild_on_the_fuzz_collision_corpus() {
    let corpus = dagsched_fuzz::collision_instances(0xDE17A, 16);
    for (ci, inst) in corpus.iter().enumerate() {
        let m = inst.m();
        for (name, mk) in &factories(m) {
            check_pair(
                inst,
                mk,
                &SimConfig::default(),
                &format!("fuzz collision #{ci} {name}"),
            );
        }
    }
}
