//! Mutant fixtures: deliberately broken schedulers (and one corrupted event
//! stream) proving that every checker actually fires.
//!
//! A checker that never flags anything on correct schedulers is only
//! trustworthy if it demonstrably flags *incorrect* ones. Each test below
//! violates exactly one invariant and asserts the matching checker records
//! it (`.lenient()` so the tests also pass under `--features verify-strict`).

use dagsched_core::{AlgoParams, JobId, Speed, Time};
use dagsched_dag::gen;
use dagsched_engine::{
    simulate_observed, AdmissionDecision, AdmissionEvent, Allocation, JobInfo, OnlineScheduler,
    SimConfig, SimObserver, TickView,
};
use dagsched_sched::SNoAdmission;
use dagsched_verify::{
    AllotmentChecker, BandCapacityChecker, DeltaGoodChecker, WorkConservationChecker,
};
use dagsched_workload::{Instance, JobSpec, StepProfitFn};

fn params() -> AlgoParams {
    AlgoParams::from_epsilon(1.0).expect("valid epsilon")
}

/// Reference-path config (mutants don't claim fast-forward stability).
fn naive_cfg() -> SimConfig {
    SimConfig {
        fast_forward: false,
        ..SimConfig::default()
    }
}

/// Observation 3 mutant: the no-admission ablation starts every arriving
/// job, so a burst of identical-density jobs overloads their band.
#[test]
fn band_checker_fires_on_unbounded_admission() {
    let m = 2u32;
    let jobs: Vec<JobSpec> = (0..64)
        .map(|i| {
            JobSpec::new(
                JobId(i),
                Time(0),
                gen::single(8).into_shared(),
                StepProfitFn::deadline(Time(5000), 4),
            )
        })
        .collect();
    let inst = Instance::new(m, jobs).expect("valid instance");
    let mut checker = BandCapacityChecker::new(params()).lenient();
    let mut mutant = SNoAdmission::new(m, params());
    simulate_observed(&inst, &mut mutant, &naive_cfg(), &mut checker).expect("runs");
    assert!(
        !checker.violations().is_empty(),
        "64 same-density jobs on m=2 must overload a band"
    );
    assert!(
        checker.violations()[0]
            .to_string()
            .contains("Observation 3"),
        "unexpected flag: {}",
        checker.violations()[0]
    );
}

/// δ-goodness mutant: the same ablation happily starts jobs whose deadline
/// leaves no δ slack (or is outright infeasible for `m` processors).
#[test]
fn delta_good_checker_fires_on_tight_admission() {
    let m = 4u32;
    // W=20, L=2, relative deadline 3: raw allotment (20-2)/(3-2) = 18 > m,
    // so the job is infeasible — scheduler S would park it forever.
    let inst = Instance::new(
        m,
        vec![JobSpec::new(
            JobId(0),
            Time(0),
            gen::block(10, 2).into_shared(),
            StepProfitFn::deadline(Time(3), 10),
        )],
    )
    .expect("valid instance");
    let mut checker = DeltaGoodChecker::new(params()).lenient();
    let mut mutant = SNoAdmission::new(m, params());
    simulate_observed(&inst, &mut mutant, &naive_cfg(), &mut checker).expect("runs");
    assert!(
        !checker.violations().is_empty(),
        "admitting an infeasible job must violate δ-goodness"
    );
}

/// Allotment mutant: admits with the correct paper allotment, then hands the
/// job a single processor anyway.
struct OneProcMutant {
    alive: Vec<JobId>,
    report: Option<Vec<AdmissionEvent>>,
}

impl OnlineScheduler for OneProcMutant {
    fn name(&self) -> String {
        "one-proc-mutant".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        self.alive.push(info.id);
        if let Some(buf) = self.report.as_mut() {
            buf.push(AdmissionEvent {
                job: info.id,
                decision: AdmissionDecision::Admitted,
            });
        }
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn allocate(&mut self, _view: &TickView<'_>) -> Allocation {
        self.alive
            .first()
            .map(|&id| vec![(id, 1)])
            .unwrap_or_default()
    }
    fn enable_admission_reporting(&mut self) {
        self.report.get_or_insert_with(Vec::new);
    }
    fn drain_admission_events(&mut self, out: &mut Vec<AdmissionEvent>) {
        if let Some(buf) = self.report.as_mut() {
            out.append(buf);
        }
    }
}

#[test]
fn allotment_checker_fires_on_underallocation() {
    let m = 8u32;
    // W=32, L=1, relative deadline 5: allotment ceil(31/4) = 8 processors.
    let inst = Instance::new(
        m,
        vec![JobSpec::new(
            JobId(0),
            Time(0),
            gen::block(32, 1).into_shared(),
            StepProfitFn::deadline(Time(5), 10),
        )],
    )
    .expect("valid instance");
    let mut checker = AllotmentChecker::new(params()).lenient();
    let mut mutant = OneProcMutant {
        alive: Vec::new(),
        report: None,
    };
    simulate_observed(&inst, &mut mutant, &naive_cfg(), &mut checker).expect("runs");
    assert!(
        !checker.violations().is_empty(),
        "running an 8-allotment job on 1 processor must be flagged"
    );
    assert!(
        checker.violations()[0].to_string().contains("allotment"),
        "unexpected flag: {}",
        checker.violations()[0]
    );
}

/// Allocation-to-unknown mutant: allocates a job that was never admitted.
struct GhostMutant {
    alive: Vec<JobId>,
}

impl OnlineScheduler for GhostMutant {
    fn name(&self) -> String {
        "ghost-mutant".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        // Never reports an admission — the checker sees only the arrival.
        self.alive.push(info.id);
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn allocate(&mut self, _view: &TickView<'_>) -> Allocation {
        self.alive
            .first()
            .map(|&id| vec![(id, 1)])
            .unwrap_or_default()
    }
}

#[test]
fn allotment_checker_fires_on_unadmitted_allocation() {
    let inst = Instance::new(
        2,
        vec![JobSpec::new(
            JobId(0),
            Time(0),
            gen::single(6).into_shared(),
            StepProfitFn::deadline(Time(50), 3),
        )],
    )
    .expect("valid instance");
    let mut checker = AllotmentChecker::new(params()).lenient();
    let mut mutant = GhostMutant { alive: Vec::new() };
    simulate_observed(&inst, &mut mutant, &naive_cfg(), &mut checker).expect("runs");
    assert!(
        !checker.violations().is_empty(),
        "allocating a never-admitted job must be flagged"
    );
}

/// Work-conservation mutant: the engine's accounting cannot be corrupted
/// from a scheduler, so feed the checker a hand-corrupted event stream —
/// over-capacity progress, then a completion short of the job's total work.
#[test]
fn work_checker_fires_on_corrupted_stream() {
    let mut checker = WorkConservationChecker::new().lenient();
    checker.on_start(2, Speed::ONE, Time(100));
    checker.on_job_arrival(
        Time(0),
        &JobInfo {
            id: JobId(0),
            arrival: Time(0),
            work: dagsched_core::Work(5),
            span: dagsched_core::Work(5),
            profit: StepProfitFn::deadline(Time(50), 1),
        },
    );
    // 1 processor × 1 tick × 1 unit/tick = capacity 1, but claims 2 units.
    checker.on_window(
        Time(0),
        1,
        &[(JobId(0), 1)],
        &[(JobId(0), 1)],
        &[(JobId(0), 2)],
    );
    assert_eq!(
        checker.violations().len(),
        1,
        "over-capacity window must flag"
    );
    // Completes having processed 2 of 5 scaled units.
    checker.on_job_complete(Time(1), JobId(0), 1);
    assert_eq!(
        checker.violations().len(),
        2,
        "completion with unfinished work must flag"
    );
    assert!(checker.violations()[1]
        .to_string()
        .contains("completed with"));
}

/// Expiry-side mutant: a job that "expires" after finishing all its work.
#[test]
fn work_checker_fires_on_finished_expiry() {
    let mut checker = WorkConservationChecker::new().lenient();
    checker.on_start(1, Speed::ONE, Time(100));
    checker.on_job_arrival(
        Time(0),
        &JobInfo {
            id: JobId(0),
            arrival: Time(0),
            work: dagsched_core::Work(3),
            span: dagsched_core::Work(3),
            profit: StepProfitFn::deadline(Time(10), 1),
        },
    );
    for t in 0..3u64 {
        checker.on_window(
            Time(t),
            1,
            &[(JobId(0), 1)],
            &[(JobId(0), 1)],
            &[(JobId(0), 1)],
        );
    }
    checker.on_job_expired(Time(3), JobId(0));
    assert!(
        !checker.violations().is_empty(),
        "expiring a fully-processed job must flag"
    );
}

// ---------------------------------------------------------------------------
// Bounded-fuzz mutant kills: the coverage-guided loop, pointed at each
// seeded mutant with a fixed master seed and a small exec budget, must find
// a killing counterexample. This closes the loop the hand-written fixtures
// above cannot: the fuzzer *discovers* the violating workload instead of
// being handed one.
// ---------------------------------------------------------------------------

use dagsched_fuzz::{FuzzConfig, FuzzSession, InvariantProfile, OracleSet, Subject};

/// Invariant-head-only fuzz config: deterministic, bounded well under the
/// 10k-exec ceiling, stops at the first kill, skips minimization for speed.
fn kill_cfg(seed: u64) -> FuzzConfig {
    FuzzConfig {
        master_seed: seed,
        max_execs: 2000,
        max_failures: 1,
        oracles: OracleSet {
            invariants: true,
            kernel_diff: false,
            pause_diff: false,
            handoff_diff: false,
            twin_diff: false,
        },
        minimize: false,
        ..FuzzConfig::default()
    }
}

fn assert_killed(subject: Subject, seed: u64, oracle: &str, detail_needle: &str) {
    let name = subject.name().to_string();
    let report = FuzzSession::with_subject(kill_cfg(seed), subject).run();
    assert!(
        !report.failures.is_empty(),
        "{name}: not killed within {} execs",
        report.execs
    );
    let f = &report.failures[0];
    assert_eq!(
        f.oracle, oracle,
        "{name}: wrong oracle: [{}] {}",
        f.oracle, f.detail
    );
    assert!(
        f.detail.contains(detail_needle),
        "{name}: kill evidence lacks {detail_needle:?}: {}",
        f.detail
    );
    assert!(
        report.execs <= 10_000,
        "{name}: kill exceeded the 10k exec bound"
    );
}

/// The no-admission ablation is killed through the full suite — admitting
/// everything violates δ-goodness on the corpus's tight-deadline chains.
#[test]
fn fuzz_kills_no_admission_mutant() {
    let subject = Subject::new(
        "S-no-admission",
        InvariantProfile::SchedulerS { backfill: false },
        |m| Box::new(SNoAdmission::new(m, params())),
    );
    assert_killed(subject, 0xBEEF, "invariants", "");
}

/// The one-processor mutant is killed via the Lemma 1 allotment discipline:
/// the fuzzer tightens a deadline until the paper allotment exceeds one.
#[test]
fn fuzz_kills_one_proc_mutant() {
    let subject = Subject::new(
        "one-proc",
        InvariantProfile::SchedulerS { backfill: false },
        |_m| {
            Box::new(OneProcMutant {
                alive: Vec::new(),
                report: None,
            })
        },
    );
    assert_killed(subject, 0xBEEF, "invariants", "allotment");
}

/// The ghost mutant (allocates without ever admitting) is killed on the
/// very first corpus entry: any allocation to an unadmitted job flags.
#[test]
fn fuzz_kills_ghost_mutant() {
    let subject = Subject::new(
        "ghost",
        InvariantProfile::SchedulerS { backfill: false },
        |_m| Box::new(GhostMutant { alive: Vec::new() }),
    );
    assert_killed(subject, 0xBEEF, "invariants", "");
}

/// An over-allocating mutant: hands one job more processors than exist.
/// The engine itself rejects the allocation, surfacing as `sim-error`.
struct OverAllocMutant {
    m: u32,
    alive: Vec<JobId>,
}

impl OnlineScheduler for OverAllocMutant {
    fn name(&self) -> String {
        "over-alloc-mutant".into()
    }
    fn on_arrival(&mut self, info: &JobInfo, _now: Time) {
        self.alive.push(info.id);
    }
    fn on_completion(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn on_expiry(&mut self, id: JobId, _now: Time) {
        self.alive.retain(|&j| j != id);
    }
    fn allocate(&mut self, _view: &TickView<'_>) -> Allocation {
        self.alive
            .first()
            .map(|&id| vec![(id, self.m + 1)])
            .unwrap_or_default()
    }
}

#[test]
fn fuzz_kills_over_allocating_mutant() {
    let subject = Subject::new("over-alloc", InvariantProfile::Off, |m| {
        Box::new(OverAllocMutant {
            m,
            alive: Vec::new(),
        })
    });
    assert_killed(subject, 0xBEEF, "sim-error", "");
}
