//! Replay regression for the fuzzer's promoted fixtures.
//!
//! Each fixture under `tests/fixtures/` is a hand-minimized near-miss from
//! the adversarial families (triple-tie instants, Figure 1 DAGs at the
//! Brent bound, density-band burst ties, parked-majority delta churn).
//! None currently violates an oracle — the regression is that they stay
//! green under all four heads (invariants, kernel-vs-scan,
//! paused-vs-one-shot, delta-vs-rebuild) as the engine evolves, and that
//! any future counterexample promoted here immediately fails CI.

use dagsched_fuzz::cli::replay_instance;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_replays_clean(name: &str) {
    let text = fixture(name);
    let verdict =
        replay_instance(&text).unwrap_or_else(|e| panic!("{name} fails an oracle head:\n{e}"));
    // All four heads must have actually run and passed.
    assert_eq!(
        verdict.matches("PASS").count(),
        4,
        "{name}: expected four PASS lines, got:\n{verdict}"
    );
    for head in [
        "invariants",
        "kernel-vs-scan",
        "paused-vs-oneshot",
        "delta-vs-rebuild",
    ] {
        assert!(
            verdict.contains(head),
            "{name}: head {head} missing from verdict:\n{verdict}"
        );
    }
}

#[test]
fn triple_tie_fixture_replays_clean() {
    assert_replays_clean("triple-tie.txt");
}

#[test]
fn fig1_tight_fixture_replays_clean() {
    assert_replays_clean("fig1-tight.txt");
}

#[test]
fn band_burst_fixture_replays_clean() {
    assert_replays_clean("band-burst.txt");
}

#[test]
fn delta_parked_fixture_replays_clean() {
    assert_replays_clean("delta-parked.txt");
}

/// The fixture texts round-trip through the codec — a fixture that decodes
/// to something other than what it prints would make the replay command
/// lie about what it tested.
#[test]
fn fixtures_round_trip_through_the_codec() {
    use dagsched_workload::codec;
    for name in [
        "triple-tie.txt",
        "fig1-tight.txt",
        "band-burst.txt",
        "delta-parked.txt",
    ] {
        let text = fixture(name);
        let inst = codec::decode(&text).expect("fixture decodes");
        let reencoded = codec::encode(&inst);
        let stripped: String = text
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(reencoded, stripped, "{name} does not round-trip");
    }
}
