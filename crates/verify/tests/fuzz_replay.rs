//! Replay regression for the fuzzer's promoted fixtures.
//!
//! Each fixture under `tests/fixtures/` is a hand-minimized near-miss from
//! the adversarial families (triple-tie instants, Figure 1 DAGs at the
//! Brent bound, density-band burst ties, parked-majority delta churn,
//! carry-over-sensitive chains, pick-sensitive forks).
//! None currently violates an oracle — the regression is that they stay
//! green under all five heads (invariants, kernel-vs-scan,
//! paused-vs-one-shot, delta-vs-rebuild, grouped-vs-scalar) as the engine
//! evolves, and that any future counterexample promoted here immediately
//! fails CI. The configuration-axis fixtures are additionally re-judged
//! under the non-default flag they were promoted for, plus a sensitivity
//! check proving the flag actually changes the outcome on that workload.

use dagsched_core::Speed;
use dagsched_engine::{simulate, NodePick, SimConfig};
use dagsched_fuzz::cli::replay_instance;
use dagsched_fuzz::ir::fnv1a;
use dagsched_fuzz::oracle::{run_exec_with, OracleSet, Subject};
use dagsched_sched::Fifo;
use dagsched_workload::{codec, Instance};

const FIXTURES: &[&str] = &[
    "triple-tie.txt",
    "fig1-tight.txt",
    "band-burst.txt",
    "delta-parked.txt",
    "carryover-chain.txt",
    "pick-diamond.txt",
    "profit-cliff.txt",
];

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_replays_clean(name: &str) {
    let text = fixture(name);
    let verdict =
        replay_instance(&text).unwrap_or_else(|e| panic!("{name} fails an oracle head:\n{e}"));
    // All five heads must have actually run and passed.
    assert_eq!(
        verdict.matches("PASS").count(),
        5,
        "{name}: expected five PASS lines, got:\n{verdict}"
    );
    for head in [
        "invariants",
        "kernel-vs-scan",
        "paused-vs-oneshot",
        "delta-vs-rebuild",
        "grouped-vs-scalar",
    ] {
        assert!(
            verdict.contains(head),
            "{name}: head {head} missing from verdict:\n{verdict}"
        );
    }
}

/// Judge a fixture through every oracle head under a non-default base
/// config — how the fuzz loop sees candidates whose configuration axis was
/// mutated.
fn assert_heads_clean_under(name: &str, base: &SimConfig) {
    let text = fixture(name);
    let inst = codec::decode(&text).expect("fixture decodes");
    let outcome = run_exec_with(
        &inst,
        &Subject::scheduler_s(),
        &OracleSet::default(),
        fnv1a(text.as_bytes()),
        None,
        base,
    );
    assert!(
        outcome.failure.is_none(),
        "{name} fails under {base:?}: {:?}",
        outcome.failure
    );
}

fn profit_under(inst: &Instance, cfg: &SimConfig) -> u64 {
    let mut sched = Fifo::new(inst.m());
    simulate(inst, &mut sched, cfg)
        .expect("baseline run succeeds")
        .total_profit
}

#[test]
fn triple_tie_fixture_replays_clean() {
    assert_replays_clean("triple-tie.txt");
}

#[test]
fn fig1_tight_fixture_replays_clean() {
    assert_replays_clean("fig1-tight.txt");
}

#[test]
fn band_burst_fixture_replays_clean() {
    assert_replays_clean("band-burst.txt");
}

#[test]
fn delta_parked_fixture_replays_clean() {
    assert_replays_clean("delta-parked.txt");
}

#[test]
fn carryover_fixture_replays_clean() {
    assert_replays_clean("carryover-chain.txt");
}

#[test]
fn pick_fixture_replays_clean() {
    assert_replays_clean("pick-diamond.txt");
}

#[test]
fn profit_cliff_fixture_replays_clean() {
    assert_replays_clean("profit-cliff.txt");
}

/// Every fixture also stays green with the general-profit scheduler as the
/// subject — the fuzz loop's `sprofit_subject` configuration axis judges
/// candidates exactly this way, so a slot-plan fast-path regression on any
/// promoted workload fails here first.
#[test]
fn fixtures_replay_clean_under_the_general_profit_subject() {
    for name in FIXTURES {
        let text = fixture(name);
        let inst = codec::decode(&text).expect("fixture decodes");
        let outcome = run_exec_with(
            &inst,
            &Subject::scheduler_s_profit(),
            &OracleSet::default(),
            fnv1a(text.as_bytes()),
            None,
            &SimConfig::default(),
        );
        assert!(
            outcome.failure.is_none(),
            "{name} fails under the S-profit subject: {:?}",
            outcome.failure
        );
    }
}

/// The carry-over fixture under its promoted flag: every head stays green
/// with carry-over disabled at double speed, and the flag is load-bearing —
/// a work-conserving baseline completes the chain by its deadline only with
/// carry-over on.
#[test]
fn carryover_fixture_exercises_the_flag() {
    let speed = Speed::integer(2).expect("positive");
    let off = SimConfig {
        carryover: false,
        speed,
        ..SimConfig::default()
    };
    assert_heads_clean_under("carryover-chain.txt", &off);
    let inst = codec::decode(&fixture("carryover-chain.txt")).expect("decodes");
    let on = SimConfig {
        carryover: true,
        speed,
        ..SimConfig::default()
    };
    assert_eq!(profit_under(&inst, &on), 5, "carry-over makes the deadline");
    assert_eq!(profit_under(&inst, &off), 0, "node granularity misses it");
}

/// The pick fixture under its promoted flag: every head stays green under
/// critical-path-first, and the pick policy is load-bearing — the ally
/// completes by the deadline, the adversarial low-height pick does not.
#[test]
fn pick_fixture_exercises_the_flag() {
    let cpf = SimConfig {
        pick: NodePick::CriticalPathFirst,
        ..SimConfig::default()
    };
    assert_heads_clean_under("pick-diamond.txt", &cpf);
    let inst = codec::decode(&fixture("pick-diamond.txt")).expect("decodes");
    let alh = SimConfig {
        pick: NodePick::AdversarialLowHeight,
        ..SimConfig::default()
    };
    assert_eq!(profit_under(&inst, &cpf), 5, "critical path first makes it");
    assert_eq!(
        profit_under(&inst, &alh),
        0,
        "postponing the path misses it"
    );
}

/// The profit-cliff fixture's general steps are load-bearing: at unit speed
/// a work-conserving baseline misses every *first* bound (a pure-deadline
/// projection of these profit functions would score zero) yet still earns
/// the later-step and tail values; doubling the speed makes some cliffs and
/// raises the take.
#[test]
fn profit_cliff_fixture_exercises_the_steps() {
    let inst = codec::decode(&fixture("profit-cliff.txt")).expect("decodes");
    let unit = profit_under(&inst, &SimConfig::default());
    assert!(unit > 0, "later steps and tails still pay out");
    let all_first_steps: u64 = inst.jobs().iter().map(|j| j.profit.max_profit()).sum();
    assert!(
        unit < all_first_steps,
        "unit speed misses at least one first bound ({unit} vs {all_first_steps})"
    );
    let fast = SimConfig {
        speed: Speed::integer(2).expect("positive"),
        ..SimConfig::default()
    };
    assert!(
        profit_under(&inst, &fast) > unit,
        "doubling the speed makes cliffs and raises the take"
    );
}

/// The fixture texts round-trip through the codec — a fixture that decodes
/// to something other than what it prints would make the replay command
/// lie about what it tested.
#[test]
fn fixtures_round_trip_through_the_codec() {
    for name in FIXTURES {
        let text = fixture(name);
        let inst = codec::decode(&text).expect("fixture decodes");
        let reencoded = codec::encode(&inst);
        let stripped: String = text
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(reencoded, stripped, "{name} does not round-trip");
    }
}
