//! Stream-level equivalence oracle: the reference and fast-forward engine
//! paths must emit **byte-identical** JSONL event logs.
//!
//! `crates/sched/tests/fastforward_equiv.rs` compares the two paths at the
//! outcome level (profit, end time, completion sets). This file raises the
//! bar to the whole event stream: every arrival, admission decision,
//! coalesced execution window, node completion, completion and expiry must
//! serialize to the same bytes regardless of which path produced it. An
//! outcome-equal run with a transiently different schedule cannot pass.

use dagsched_core::{AlgoParams, Speed};
use dagsched_engine::{simulate_observed, NodePick, OnlineScheduler, SimConfig};
use dagsched_sched::{Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, SNoAdmission, SchedulerS};
use dagsched_verify::EventLog;
use dagsched_workload::{ArrivalProcess, DeadlinePolicy, Instance, WorkloadGen};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

/// Run both paths with an `EventLog` attached; return the two JSONL dumps.
fn log_pair(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
) -> (String, String) {
    let mut fast_log = EventLog::new();
    let fast = simulate_observed(inst, mk().as_mut(), cfg, &mut fast_log).expect("fast path runs");
    let naive_cfg = SimConfig {
        fast_forward: false,
        ..cfg.clone()
    };
    let mut naive_log = EventLog::new();
    let naive = simulate_observed(inst, mk().as_mut(), &naive_cfg, &mut naive_log)
        .expect("naive path runs");
    assert!(
        fast.same_outcome(&naive),
        "outcome diverged before stream check"
    );
    (fast_log.to_jsonl(), naive_log.to_jsonl())
}

/// Point at the first differing line so a failure is debuggable, and dump
/// both logs to `target/tmp/` so CI can upload them as artifacts.
fn assert_identical(fast: &str, naive: &str, label: &str) {
    if fast == naive {
        return;
    }
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("event-logs");
    if std::fs::create_dir_all(&dir).is_ok() {
        let slug: String = label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        let _ = std::fs::write(dir.join(format!("{slug}.fast.jsonl")), fast);
        let _ = std::fs::write(dir.join(format!("{slug}.naive.jsonl")), naive);
        eprintln!("{label}: diverging JSONL logs dumped to {}", dir.display());
    }
    for (i, (f, n)) in fast.lines().zip(naive.lines()).enumerate() {
        assert_eq!(f, n, "{label}: streams diverge at line {i}");
    }
    panic!(
        "{label}: streams are a prefix of each other ({} vs {} lines)",
        fast.lines().count(),
        naive.lines().count()
    );
}

fn check_all(inst: &Instance, m: u32, label: &str) {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    let mks: Vec<(&str, SchedFactory)> = vec![
        (
            "S",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0))),
        ),
        (
            "S-wc",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving())),
        ),
        (
            "S-noadmit",
            Box::new(move || Box::new(SNoAdmission::new(m, params))),
        ),
        ("FIFO", Box::new(move || Box::new(Fifo::new(m)))),
        ("EDF", Box::new(move || Box::new(Edf::new(m)))),
        (
            "GREEDY-DENSITY",
            Box::new(move || Box::new(GreedyDensity::new(m))),
        ),
        ("LLF", Box::new(move || Box::new(LeastLaxity::new(m)))),
        ("EDF-AC", Box::new(move || Box::new(EdfAc::new(m)))),
    ];
    for speed in [
        Speed::ONE,
        Speed::new(3, 2).expect("positive"),
        Speed::integer(2).expect("positive"),
    ] {
        for pick in [NodePick::Fifo, NodePick::CriticalPathFirst] {
            let cfg = SimConfig {
                speed,
                pick: pick.clone(),
                ..SimConfig::default()
            };
            for (name, mk) in &mks {
                let (fast, naive) = log_pair(inst, mk, &cfg);
                assert_identical(
                    &fast,
                    &naive,
                    &format!("{label}: {name} at speed {speed:?} pick {pick:?}"),
                );
            }
        }
    }
}

#[test]
fn event_streams_identical_on_standard_workloads() {
    for seed in [7u64, 191, 2024] {
        let m = 4 + (seed % 5) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        check_all(&inst, m, &format!("standard seed {seed}"));
    }
}

#[test]
fn event_streams_identical_under_overload() {
    // Tight deadlines and a hot arrival process maximize admission churn,
    // expiries and window boundaries — the hardest stream to coalesce.
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 50, 99)
    }
    .generate()
    .expect("valid workload");
    check_all(&inst, m, "overload");
}

/// The logged stream is self-consistent: exactly one start and one end line,
/// every completion/expiry preceded by that job's arrival line.
#[test]
fn logged_stream_is_well_formed() {
    let m = 5;
    let inst = WorkloadGen::standard(m, 25, 13).generate().expect("valid");
    let mut log = EventLog::new();
    let mut s = SchedulerS::with_epsilon(m, 1.0);
    simulate_observed(&inst, &mut s, &SimConfig::default(), &mut log).expect("runs");
    let lines = log.lines();
    assert!(lines.first().expect("nonempty").contains(r#""ev":"start""#));
    assert!(lines.last().expect("nonempty").contains(r#""ev":"end""#));
    let count = |kind: &str| {
        lines
            .iter()
            .filter(|l| l.contains(&format!(r#""ev":"{kind}""#)))
            .count()
    };
    assert_eq!(count("start"), 1);
    assert_eq!(count("end"), 1);
    assert_eq!(count("arrive"), inst.len());
    for l in lines {
        assert!(
            l.starts_with('{') && l.ends_with('}'),
            "not a JSON object: {l}"
        );
    }
}
