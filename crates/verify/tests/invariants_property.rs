//! Satellite 1: random workloads × speeds × every production scheduler,
//! with the runtime checkers attached — zero violations expected.
//!
//! The S-specific suite (band capacity, allotment discipline, δ-goodness)
//! attaches only to scheduler S and its work-conserving variant; the
//! universal work-conservation checker and the event log attach to every
//! scheduler, baselines and EDF-AC included.

use dagsched_core::{AlgoParams, Speed};
use dagsched_engine::{simulate_observed, Observers, OnlineScheduler, SimConfig};
use dagsched_sched::{Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, SNoAdmission, SchedulerS};
use dagsched_verify::{EventLog, InvariantSuite, WorkConservationChecker};
use dagsched_workload::{ArrivalProcess, DeadlinePolicy, Instance, WorkloadGen};
use proptest::prelude::*;

/// A compact generated workload description.
#[derive(Debug, Clone)]
struct Cfg {
    m: u32,
    n_jobs: usize,
    seed: u64,
    slack_deci: u32, // deadline slack factor in 1/10ths
    load_deci: u32,  // offered load in 1/10ths
    speed_pick: u8,  // index into SPEEDS
}

const SPEEDS: [(u32, u32); 3] = [(1, 1), (3, 2), (2, 1)];

fn arb_cfg() -> impl Strategy<Value = Cfg> {
    (
        2u32..=12,
        5usize..=35,
        0u64..1000,
        10u32..=30,
        5u32..=50,
        0u8..3,
    )
        .prop_map(|(m, n_jobs, seed, slack_deci, load_deci, speed_pick)| Cfg {
            m,
            n_jobs,
            seed,
            slack_deci,
            load_deci,
            speed_pick,
        })
}

fn build(cfg: &Cfg) -> Instance {
    WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(cfg.load_deci as f64 / 10.0, 60.0, cfg.m),
        deadlines: DeadlinePolicy::SlackFactor(cfg.slack_deci as f64 / 10.0),
        ..WorkloadGen::standard(cfg.m, cfg.n_jobs, cfg.seed)
    }
    .generate()
    .expect("valid workload")
}

fn sim_cfg(cfg: &Cfg) -> SimConfig {
    let (num, den) = SPEEDS[cfg.speed_pick as usize];
    SimConfig {
        speed: Speed::new(num, den).expect("positive"),
        ..SimConfig::default()
    }
}

/// Run one scheduler with the universal checkers attached; panic on any
/// work-conservation violation.
fn run_universal(inst: &Instance, sched: &mut dyn OnlineScheduler, cfg: &SimConfig, label: &str) {
    let mut work = WorkConservationChecker::new().lenient();
    let mut log = EventLog::new();
    {
        let mut fanout = Observers::new(vec![&mut work, &mut log]);
        simulate_observed(inst, sched, cfg, &mut fanout).expect("simulation runs");
    }
    assert!(
        work.violations().is_empty(),
        "{label}: work-conservation violations: {:?}",
        work.violations()
    );
    assert!(
        log.lines()
            .last()
            .expect("stream nonempty")
            .contains(r#""ev":"end""#),
        "{label}: truncated event stream"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scheduler S (plain and work-conserving) passes the full invariant
    /// suite — Observation 3, Lemma 1, δ-goodness, work conservation — at
    /// every event of every random run.
    #[test]
    fn scheduler_s_clean_under_full_suite(cfg in arb_cfg()) {
        let inst = build(&cfg);
        let sim = sim_cfg(&cfg);

        let mut suite = InvariantSuite::for_scheduler_s(
            AlgoParams::from_epsilon(1.0).expect("valid epsilon"),
        ).lenient();
        let mut s = SchedulerS::with_epsilon(cfg.m, 1.0);
        simulate_observed(&inst, &mut s, &sim, &mut suite).expect("S runs");
        suite.assert_clean();

        let mut suite_wc = InvariantSuite::for_scheduler_s(
            AlgoParams::from_epsilon(1.0).expect("valid epsilon"),
        ).allow_backfill().lenient();
        let mut swc = SchedulerS::with_epsilon(cfg.m, 1.0).work_conserving();
        simulate_observed(&inst, &mut swc, &sim, &mut suite_wc).expect("S-wc runs");
        suite_wc.assert_clean();
    }

    /// Every production scheduler conserves work exactly and emits a
    /// complete event stream on every random run.
    #[test]
    fn all_schedulers_conserve_work(cfg in arb_cfg()) {
        let inst = build(&cfg);
        let sim = sim_cfg(&cfg);
        let m = cfg.m;
        let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");

        let mut scheds: Vec<(&str, Box<dyn OnlineScheduler>)> = vec![
            ("S", Box::new(SchedulerS::with_epsilon(m, 1.0))),
            ("S-wc", Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving())),
            ("S-noadmit", Box::new(SNoAdmission::new(m, params))),
            ("FIFO", Box::new(Fifo::new(m))),
            ("EDF", Box::new(Edf::new(m))),
            ("GREEDY-DENSITY", Box::new(GreedyDensity::new(m))),
            ("LLF", Box::new(LeastLaxity::new(m))),
            ("EDF-AC", Box::new(EdfAc::new(m))),
        ];
        for (name, sched) in scheds.iter_mut() {
            run_universal(&inst, sched.as_mut(), &sim, name);
        }
    }
}
