//! Differential oracle for the discrete-event kernel: with every other
//! knob fixed, [`WindowMode::EventKernel`] and [`WindowMode::ReferenceScan`]
//! must be **byte-identical** — same `SimResult` (including
//! `steps_executed`), same JSONL event stream.
//!
//! `stream_equiv.rs` proves fast-forward vs naive; `driver_differential.rs`
//! proves pacing is invisible. This file closes the third axis: *which
//! next-event selection* computed each window and expiry batch. It runs the
//! kernel against the frozen [`HorizonScan`] twin over the same corpus
//! (standard seeds + overload), over hand-built adversarial-tie instances
//! (simultaneous arrival + expiry + completion on one tick, events exactly
//! on window edges), over proptest-generated collision-dense instances, and
//! through `run_until` at proptest-chosen pause horizons.

use dagsched_core::{AlgoParams, JobId, Speed, Time};
use dagsched_engine::{
    simulate_observed, NodePick, OnlineScheduler, SimConfig, SimDriver, SimObserver, SimResult,
    WindowMode,
};
use dagsched_sched::{Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, SNoAdmission, SchedulerS};
use dagsched_verify::EventLog;
use dagsched_workload::{
    ArrivalProcess, DeadlinePolicy, Instance, JobSpec, StepProfitFn, WorkloadGen,
};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

fn factories(m: u32) -> Vec<(&'static str, SchedFactory)> {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    vec![
        (
            "S",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0)) as _),
        ),
        (
            "S-wc",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving()) as _),
        ),
        (
            "S-noadmit",
            Box::new(move || Box::new(SNoAdmission::new(m, params)) as _),
        ),
        ("FIFO", Box::new(move || Box::new(Fifo::new(m)) as _)),
        ("EDF", Box::new(move || Box::new(Edf::new(m)) as _)),
        (
            "HDF",
            Box::new(move || Box::new(GreedyDensity::new(m)) as _),
        ),
        ("LLF", Box::new(move || Box::new(LeastLaxity::new(m)) as _)),
        ("EDF-AC", Box::new(move || Box::new(EdfAc::new(m)) as _)),
    ]
}

/// One observed run under the given window mode.
fn run_mode(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
    window: WindowMode,
) -> (SimResult, String) {
    let cfg = SimConfig {
        window,
        ..cfg.clone()
    };
    let mut log = EventLog::new();
    let r = simulate_observed(inst, mk().as_mut(), &cfg, &mut log).expect("run succeeds");
    (r, log.to_jsonl())
}

fn assert_matches(label: &str, kernel: (SimResult, String), scan: &(SimResult, String)) {
    assert!(
        kernel.0.same_outcome(&scan.0),
        "{label}: kernel outcome diverges from scan\n\
         kernel: profit {} ticks {}\nscan  : profit {} ticks {}",
        kernel.0.total_profit,
        kernel.0.ticks_simulated,
        scan.0.total_profit,
        scan.0.ticks_simulated,
    );
    assert_eq!(
        kernel.0.steps_executed, scan.0.steps_executed,
        "{label}: step count diverges (a window boundary moved)"
    );
    if kernel.1 != scan.1 {
        for (i, (k, s)) in kernel.1.lines().zip(scan.1.lines()).enumerate() {
            assert_eq!(k, s, "{label}: event streams diverge at line {i}");
        }
        panic!(
            "{label}: streams are a prefix of each other ({} vs {} lines)",
            kernel.1.lines().count(),
            scan.1.lines().count()
        );
    }
}

fn check_pair(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
    label: &str,
) {
    let scan = run_mode(inst, mk, cfg, WindowMode::ReferenceScan);
    let kernel = run_mode(inst, mk, cfg, WindowMode::EventKernel);
    assert_matches(label, kernel, &scan);
}

fn check_all(inst: &Instance, m: u32, label: &str) {
    for speed in [
        Speed::ONE,
        Speed::new(3, 2).expect("positive"),
        Speed::integer(2).expect("positive"),
    ] {
        for pick in [NodePick::Fifo, NodePick::CriticalPathFirst] {
            let cfg = SimConfig {
                speed,
                pick: pick.clone(),
                ..SimConfig::default()
            };
            for (name, mk) in &factories(m) {
                check_pair(
                    inst,
                    mk,
                    &cfg,
                    &format!("{label}: {name} at speed {speed:?} pick {pick:?}"),
                );
            }
        }
    }
    // The kernel's expiry index is maintained on the naive path too: one
    // representative naive configuration per instance.
    let naive = SimConfig {
        fast_forward: false,
        ..SimConfig::default()
    };
    for (name, mk) in &factories(m) {
        check_pair(inst, mk, &naive, &format!("{label}: {name} naive"));
    }
}

#[test]
fn kernel_matches_scan_on_standard_workloads() {
    for seed in [7u64, 191, 2024] {
        let m = 4 + (seed % 5) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        check_all(&inst, m, &format!("standard seed {seed}"));
    }
}

#[test]
fn kernel_matches_scan_under_overload() {
    // Tight deadlines + hot arrivals: the densest event stream, where every
    // source kind keeps re-arming.
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 50, 99)
    }
    .generate()
    .expect("valid workload");
    check_all(&inst, m, "overload");
}

/// Hand-built tie nest: on one machine of 2 processors, tick 10 carries a
/// completion frontier (job 0's 11-unit node claimed from t = 0), an expiry
/// boundary (job 1, deadline exactly 10 with an unstartable workload), and
/// an arrival (job 2) — all three source kinds due on the same tick, which
/// is also exactly the preceding window's edge.
fn triple_tie_instance() -> Instance {
    use dagsched_dag::gen;
    let jobs = vec![
        JobSpec::new(
            JobId(0),
            Time(0),
            gen::single(11).into_shared(),
            StepProfitFn::deadline(Time(100), 7),
        ),
        JobSpec::new(
            JobId(1),
            Time(0),
            gen::chain(4, 25).into_shared(),
            StepProfitFn::deadline(Time(10), 5),
        ),
        JobSpec::new(
            JobId(2),
            Time(10),
            gen::single(3).into_shared(),
            StepProfitFn::deadline(Time(20), 3),
        ),
    ];
    Instance::new(2, jobs).expect("valid tie instance")
}

#[test]
fn simultaneous_arrival_expiry_completion_tie() {
    let inst = triple_tie_instance();
    check_all(&inst, 2, "triple tie at t=10");
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Collision-dense random instances: arrivals, works, and deadlines all
    /// drawn from single-digit ranges so simultaneous events and
    /// window-edge coincidences are the norm, not the exception.
    fn collision_instance(seed: u64, n: usize, m: u32) -> Instance {
        use dagsched_dag::gen;
        let mut rng = dagsched_core::Rng64::seed_from(seed);
        let mut arrivals: Vec<u64> = (0..n).map(|_| rng.gen_range(8)).collect();
        arrivals.sort_unstable();
        let jobs: Vec<JobSpec> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let work = 1 + rng.gen_range(6);
                let dag = if rng.gen_range(2) == 0 {
                    gen::single(work).into_shared()
                } else {
                    gen::chain(2, work.max(1)).into_shared()
                };
                let deadline = 1 + rng.gen_range(9);
                JobSpec::new(
                    JobId(i as u32),
                    Time(a),
                    dag,
                    StepProfitFn::deadline(Time(deadline), 1 + rng.gen_range(5)),
                )
            })
            .collect();
        Instance::new(m, jobs).expect("valid collision instance")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Kernel == scan on collision-dense instances for every production
        /// scheduler, fast-forward and naive.
        #[test]
        fn kernel_matches_scan_under_adversarial_ties(
            seed in 0u64..1000,
            n in 3usize..14,
            m in 1u32..4,
            sched_idx in 0usize..8,
            ff in 0u8..2,
        ) {
            let inst = collision_instance(seed, n, m);
            let cfg = SimConfig {
                fast_forward: ff == 1,
                ..SimConfig::default()
            };
            let mks = factories(m);
            let (name, mk) = &mks[sched_idx % mks.len()];
            check_pair(
                &inst,
                mk,
                &cfg,
                &format!("ties seed {seed} n {n} m {m} {name} ff {ff}"),
            );
        }

        /// Pausing a kernel-mode driver at arbitrary horizons matches the
        /// one-shot scan-mode run: mode and pacing are jointly invisible.
        #[test]
        fn paused_kernel_run_matches_one_shot_scan(
            seed in 0u64..500,
            hseed in 0u64..500,
            n_pauses in 1usize..12,
            sched_idx in 0usize..8,
        ) {
            let m = 4 + (seed % 5) as u32;
            let inst = WorkloadGen::standard(m, 20, seed)
                .generate()
                .expect("valid workload");
            let mks = factories(m);
            let (name, mk) = &mks[sched_idx % mks.len()];
            let scan = run_mode(&inst, mk, &SimConfig::default(), WindowMode::ReferenceScan);

            let span = inst.stats().horizon.ticks() + 8;
            let mut rng = dagsched_core::Rng64::seed_from(hseed);
            let kernel_cfg = SimConfig {
                window: WindowMode::EventKernel,
                ..SimConfig::default()
            };
            let mut log = EventLog::new();
            let mut sched = mk();
            let mut driver = SimDriver::with_observer(
                &inst,
                sched.as_mut(),
                &kernel_cfg,
                &mut log as &mut dyn SimObserver,
            );
            for _ in 0..n_pauses {
                driver
                    .run_until(Time(rng.gen_range(span.max(1))))
                    .expect("run_until runs");
            }
            let r = driver.finish().expect("finish runs");
            assert_matches(
                &format!("paused kernel seed {seed} {name}"),
                (r, log.to_jsonl()),
                &scan,
            );
        }
    }
}

/// Satellite: pausing `run_until` *exactly* on a tie instant — the tick
/// where a completion, an arrival, and an expiry all fire — must be
/// invisible under both window modes. A pause boundary landing on the tie
/// is the sharpest pacing test there is: the driver must split the window
/// on the instant without reordering any of the three coincident events.
mod paused_at_ties {
    use super::*;
    use std::collections::BTreeMap;

    /// Per-tick bitmask of job-level event kinds: 1 = arrival,
    /// 2 = completion, 4 = expiry.
    #[derive(Default)]
    struct TieFinder {
        ticks: BTreeMap<u64, u8>,
    }

    impl SimObserver for TieFinder {
        fn on_job_arrival(&mut self, now: Time, _info: &dagsched_engine::JobInfo) {
            *self.ticks.entry(now.0).or_default() |= 1;
        }
        fn on_job_complete(&mut self, at: Time, _job: JobId, _profit: u64) {
            *self.ticks.entry(at.0).or_default() |= 2;
        }
        fn on_job_expired(&mut self, at: Time, _job: JobId) {
            *self.ticks.entry(at.0).or_default() |= 4;
        }
    }

    /// A driver run paused at the given instants, under the given mode.
    fn run_paused(
        inst: &Instance,
        mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
        window: WindowMode,
        pauses: &[Time],
    ) -> (SimResult, String) {
        let cfg = SimConfig {
            window,
            ..SimConfig::default()
        };
        let mut log = EventLog::new();
        let mut sched = mk();
        let mut driver =
            SimDriver::with_observer(inst, sched.as_mut(), &cfg, &mut log as &mut dyn SimObserver);
        for &p in pauses {
            driver.run_until(p).expect("run_until runs");
        }
        let r = driver.finish().expect("finish runs");
        (r, log.to_jsonl())
    }

    /// The hand-built triple tie at t = 10: pause exactly on the tie, one
    /// tick before, one tick after, and repeatedly on the same instant —
    /// for every scheduler, under both window modes, against the one-shot
    /// reference scan.
    #[test]
    fn pausing_exactly_on_the_triple_tie_is_invisible() {
        let inst = triple_tie_instance();
        let tie = Time(10);
        let schedules: [&[Time]; 4] = [
            &[tie],
            &[Time(9), tie, Time(11)],
            &[tie, tie, Time(11)],
            &[Time(9), Time(9), tie],
        ];
        for (name, mk) in &factories(2) {
            let scan = run_mode(&inst, mk, &SimConfig::default(), WindowMode::ReferenceScan);
            for window in [WindowMode::EventKernel, WindowMode::ReferenceScan] {
                for (i, pauses) in schedules.iter().enumerate() {
                    let paused = run_paused(&inst, mk, window, pauses);
                    assert_matches(
                        &format!("triple-tie pause #{i} {name} {window:?}"),
                        paused,
                        &scan,
                    );
                }
            }
        }
    }

    /// The fuzzer's collision family: discover every tie instant (ticks
    /// where at least two event kinds coincide) with an observer pass, then
    /// pause exactly on each of them under both modes. At least one *triple*
    /// tie must exist across the corpus, or the family has lost its teeth.
    #[test]
    fn pausing_on_discovered_tie_instants_is_invisible() {
        // Seed re-rolled in PR 10: the profit-cliff entry widened the seed
        // corpus, reshuffling the deterministic draw — this seed restores a
        // triple tie (completion = arrival = expiry) within 24 instances.
        let corpus = dagsched_fuzz::collision_instances(0xC0111DF, 24);
        let mut saw_triple = false;
        for (ci, inst) in corpus.iter().enumerate() {
            let m = inst.m();
            let mks = factories(m);
            let (name, mk) = &mks[0]; // scheduler S
            let mut finder = TieFinder::default();
            simulate_observed(inst, mk().as_mut(), &SimConfig::default(), &mut finder)
                .expect("finder run");
            let ties: Vec<Time> = finder
                .ticks
                .iter()
                .filter(|&(_, &mask)| mask.count_ones() >= 2)
                .map(|(&t, _)| Time(t))
                .collect();
            saw_triple |= finder.ticks.values().any(|&mask| mask == 7);
            let scan = run_mode(inst, mk, &SimConfig::default(), WindowMode::ReferenceScan);
            for &tie in &ties {
                for window in [WindowMode::EventKernel, WindowMode::ReferenceScan] {
                    let paused = run_paused(inst, mk, window, &[tie]);
                    assert_matches(
                        &format!("collision #{ci} pause at {} {name} {window:?}", tie.0),
                        paused,
                        &scan,
                    );
                }
            }
        }
        assert!(
            saw_triple,
            "no completion = arrival = expiry instant in the collision corpus"
        );
    }
}
