//! Hot-path rewrite oracle: the optimized schedulers must be
//! **byte-identical** to their frozen pre-rewrite implementations.
//!
//! The allocation-free rework (incremental treap band index, slab job
//! state, sorted-`Vec` queues, `allocate_into`) claims to change *nothing*
//! observable: same admissions in the same order, same allocations, same
//! event stream. This file holds it to that claim. Each optimized
//! scheduler runs side by side with its retained legacy twin from
//! `dagsched_sched::oracle` on the stream-equivalence corpus (standard and
//! overload workloads, multiple speeds and node-pick policies, both engine
//! paths), and the comparison is on
//!
//! * [`SimResult`] equality — outcome per job, profit, end time, step and
//!   tick counters — and
//! * the full JSONL [`EventLog`] — every arrival, admission decision,
//!   execution window, node completion, completion and expiry must
//!   serialize to the same bytes.

use dagsched_core::{AlgoParams, Speed};
use dagsched_engine::{simulate_observed, NodePick, OnlineScheduler, SimConfig};
use dagsched_sched::oracle::{OracleEdfAc, OracleSNoAdmission, OracleSchedulerS};
use dagsched_sched::{EdfAc, SNoAdmission, SchedulerS};
use dagsched_verify::EventLog;
use dagsched_workload::{ArrivalProcess, DeadlinePolicy, Instance, WorkloadGen};

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

/// Run one scheduler with an `EventLog`; return the log plus outcome facts.
fn run_logged(
    inst: &Instance,
    sched: &mut dyn OnlineScheduler,
    cfg: &SimConfig,
) -> (String, String) {
    let mut log = EventLog::new();
    let r = simulate_observed(inst, sched, cfg, &mut log).expect("simulation runs");
    // SimResult has no Eq; its Debug form covers every field (scheduler
    // name, per-job outcomes, profit, end, tick/step counters), so equal
    // Debug strings mean equal results.
    (format!("{r:?}"), log.to_jsonl())
}

/// Point at the first differing line so a failure is debuggable, and dump
/// both logs to `target/tmp/` so CI can upload them as artifacts.
fn assert_identical(new: &str, legacy: &str, label: &str) {
    if new == legacy {
        return;
    }
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("legacy-diff-logs");
    if std::fs::create_dir_all(&dir).is_ok() {
        let slug: String = label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        let _ = std::fs::write(dir.join(format!("{slug}.new.jsonl")), new);
        let _ = std::fs::write(dir.join(format!("{slug}.legacy.jsonl")), legacy);
        eprintln!("{label}: diverging logs dumped to {}", dir.display());
    }
    for (i, (a, b)) in new.lines().zip(legacy.lines()).enumerate() {
        assert_eq!(a, b, "{label}: new vs legacy diverge at line {i}");
    }
    panic!(
        "{label}: one stream is a prefix of the other ({} vs {} lines)",
        new.lines().count(),
        legacy.lines().count()
    );
}

/// The optimized/legacy pairs under differential test.
fn pairs(m: u32) -> Vec<(&'static str, SchedFactory, SchedFactory)> {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    vec![
        (
            "S",
            Box::new(move || {
                Box::new(SchedulerS::with_epsilon(m, 1.0)) as Box<dyn OnlineScheduler>
            }),
            Box::new(move || {
                Box::new(OracleSchedulerS::with_epsilon(m, 1.0)) as Box<dyn OnlineScheduler>
            }),
        ),
        (
            "S-wc",
            Box::new(move || {
                Box::new(SchedulerS::with_epsilon(m, 1.0).work_conserving())
                    as Box<dyn OnlineScheduler>
            }),
            Box::new(move || {
                Box::new(OracleSchedulerS::with_epsilon(m, 1.0).work_conserving())
                    as Box<dyn OnlineScheduler>
            }),
        ),
        (
            "S-noadmit",
            Box::new(move || Box::new(SNoAdmission::new(m, params)) as Box<dyn OnlineScheduler>),
            Box::new(move || {
                Box::new(OracleSNoAdmission::new(m, params)) as Box<dyn OnlineScheduler>
            }),
        ),
        (
            "EDF-AC",
            Box::new(move || Box::new(EdfAc::new(m)) as Box<dyn OnlineScheduler>),
            Box::new(move || Box::new(OracleEdfAc::new(m)) as Box<dyn OnlineScheduler>),
        ),
    ]
}

fn check_all(inst: &Instance, m: u32, label: &str) {
    for speed in [
        Speed::ONE,
        Speed::new(3, 2).expect("positive"),
        Speed::integer(2).expect("positive"),
    ] {
        for pick in [NodePick::Fifo, NodePick::CriticalPathFirst] {
            // Both engine paths: the naive tick loop calls allocate_into
            // every tick, the fast-forward path once per event — the legacy
            // twins only override `allocate`, so this also proves the
            // default `allocate_into` bridge is faithful.
            for fast_forward in [true, false] {
                let cfg = SimConfig {
                    speed,
                    pick: pick.clone(),
                    fast_forward,
                    ..SimConfig::default()
                };
                for (name, mk_new, mk_legacy) in &pairs(m) {
                    let (res_new, log_new) = run_logged(inst, mk_new().as_mut(), &cfg);
                    let (res_legacy, log_legacy) = run_logged(inst, mk_legacy().as_mut(), &cfg);
                    let tag =
                        format!("{label}: {name} speed {speed:?} pick {pick:?} ff {fast_forward}");
                    assert_eq!(res_new, res_legacy, "{tag}: SimResult diverged");
                    assert_identical(&log_new, &log_legacy, &tag);
                }
            }
        }
    }
}

#[test]
fn optimized_schedulers_match_legacy_on_standard_workloads() {
    for seed in [7u64, 191, 2024] {
        let m = 4 + (seed % 5) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        check_all(&inst, m, &format!("standard seed {seed}"));
    }
}

#[test]
fn optimized_schedulers_match_legacy_under_overload() {
    // Overload maximizes admission churn: band rejections, P-queue scans on
    // every completion, expiries — the paths the rewrite touched hardest.
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 50, 99)
    }
    .generate()
    .expect("valid workload");
    check_all(&inst, m, "overload");
}
