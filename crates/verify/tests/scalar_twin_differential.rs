//! Scalar-twin differential suite: a single-group [`MachineGroups`] platform
//! must be **byte-identical** — `SimResult` and JSONL event stream — to the
//! frozen pre-refactor scalar-speed path ([`PlatformMode::Scalar`]).
//!
//! The grouped path is the production arithmetic (per-processor units at a
//! group-lcm scale, per-group completion frontiers, placement-order claim
//! binding); the scalar twin is the pre-refactor engine frozen behind
//! `SimConfig::platform`. On a uniform platform the two must be
//! indistinguishable at every observable layer:
//!
//! * over the stream-equivalence corpus (standard seeds + the overload
//!   workload), at 1 and N sweep threads through
//!   [`parallel_map`](dagsched_engine::parallel_map);
//! * on proptest-chosen workloads, speeds (integral and fractional),
//!   schedulers and pick policies;
//! * under paused [`SimDriver::run_until`] at arbitrary horizons.

use dagsched_core::{AlgoParams, MachineGroups, Speed, Time};
use dagsched_engine::{
    parallel_map, simulate_observed, NodePick, OnlineScheduler, PlatformMode, SimConfig, SimDriver,
    SimObserver, SimResult,
};
use dagsched_sched::{
    AggregateBlind, Edf, EdfAc, Fifo, GreedyDensity, LeastLaxity, SNoAdmission, SchedulerS,
};
use dagsched_verify::EventLog;
use dagsched_workload::{ArrivalProcess, DeadlinePolicy, Instance, WorkloadGen};
use proptest::prelude::*;

type SchedFactory = Box<dyn Fn() -> Box<dyn OnlineScheduler> + Send + Sync>;

fn factories(m: u32) -> Vec<(&'static str, SchedFactory)> {
    let params = AlgoParams::from_epsilon(1.0).expect("valid epsilon");
    vec![
        (
            "S",
            Box::new(move || Box::new(SchedulerS::with_epsilon(m, 1.0)) as Box<dyn OnlineScheduler>)
                as SchedFactory,
        ),
        (
            "S-noadmit",
            Box::new(move || Box::new(SNoAdmission::new(m, params)) as Box<dyn OnlineScheduler>),
        ),
        (
            "FIFO",
            Box::new(move || Box::new(Fifo::new(m)) as Box<dyn OnlineScheduler>),
        ),
        (
            "EDF",
            Box::new(move || Box::new(Edf::new(m)) as Box<dyn OnlineScheduler>),
        ),
        (
            "EDF-blind",
            Box::new(move || Box::new(AggregateBlind(Edf::new(m))) as Box<dyn OnlineScheduler>),
        ),
        (
            "HDF",
            Box::new(move || Box::new(GreedyDensity::new(m)) as Box<dyn OnlineScheduler>),
        ),
        (
            "LLF",
            Box::new(move || Box::new(LeastLaxity::new(m)) as Box<dyn OnlineScheduler>),
        ),
        (
            "EDF-AC",
            Box::new(move || Box::new(EdfAc::new(m)) as Box<dyn OnlineScheduler>),
        ),
    ]
}

/// The legacy scalar path: no groups, frozen `PlatformMode::Scalar`.
fn scalar_cfg(base: &SimConfig) -> SimConfig {
    SimConfig {
        groups: None,
        platform: PlatformMode::Scalar,
        ..base.clone()
    }
}

/// The production path on the same platform: an explicit single uniform
/// group under `PlatformMode::Grouped`.
fn grouped_cfg(base: &SimConfig, m: u32) -> SimConfig {
    SimConfig {
        groups: Some(MachineGroups::uniform(m, base.speed).expect("m >= 1")),
        platform: PlatformMode::Grouped,
        ..base.clone()
    }
}

fn run_cfg(
    inst: &Instance,
    mk: &dyn Fn() -> Box<dyn OnlineScheduler>,
    cfg: &SimConfig,
) -> (SimResult, String) {
    let mut log = EventLog::new();
    let r = simulate_observed(inst, mk().as_mut(), cfg, &mut log).expect("run succeeds");
    (r, log.to_jsonl())
}

/// Full byte-identity: every `SimResult` field (outcome, exact counters,
/// trace) and the whole JSONL stream.
fn assert_twin(label: &str, grouped: &(SimResult, String), scalar: &(SimResult, String)) {
    let (g, s) = (&grouped.0, &scalar.0);
    assert!(
        g.same_outcome(s),
        "{label}: outcome diverges (profit {} vs {})",
        g.total_profit,
        s.total_profit
    );
    assert_eq!(
        g.scaled_units_processed, s.scaled_units_processed,
        "{label}"
    );
    assert_eq!(g.work_scale, s.work_scale, "{label}");
    assert_eq!(g.ticks_simulated, s.ticks_simulated, "{label}");
    assert_eq!(g.steps_executed, s.steps_executed, "{label}");
    assert_eq!(g.end_time, s.end_time, "{label}");
    assert_eq!(
        format!("{g:?}"),
        format!("{s:?}"),
        "{label}: SimResult debug reprs differ"
    );
    if grouped.1 != scalar.1 {
        for (i, (gl, sl)) in grouped.1.lines().zip(scalar.1.lines()).enumerate() {
            assert_eq!(gl, sl, "{label}: JSONL diverges at line {i}");
        }
        panic!(
            "{label}: JSONL streams are a prefix of each other \
             ({} vs {} lines)",
            grouped.1.lines().count(),
            scalar.1.lines().count()
        );
    }
}

fn corpus() -> Vec<(String, u32, Instance)> {
    let mut out = Vec::new();
    for seed in [7u64, 191, 2024] {
        let m = 4 + (seed % 5) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        out.push((format!("standard seed {seed}"), m, inst));
    }
    let m = 6;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(4.0, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(m, 50, 99)
    }
    .generate()
    .expect("valid workload");
    out.push(("overload".into(), m, inst));
    out
}

const SPEEDS: [(u32, u32); 3] = [(1, 1), (3, 2), (2, 1)];

/// One corpus cell: workload index × speed index × scheduler index.
#[derive(Debug, Clone, Copy)]
struct Cell {
    inst_idx: usize,
    speed_idx: usize,
    sched_idx: usize,
}

/// Run one cell both ways and assert the twin contract; return a compact
/// fingerprint so thread-count determinism can also be asserted.
fn check_cell(corpus: &[(String, u32, Instance)], c: &Cell) -> (u64, u64, String) {
    let (label, m, inst) = &corpus[c.inst_idx];
    let (num, den) = SPEEDS[c.speed_idx];
    let base = SimConfig {
        speed: Speed::new(num, den).expect("positive"),
        ..SimConfig::default()
    };
    let mks = factories(*m);
    let (name, mk) = &mks[c.sched_idx];
    let grouped = run_cfg(inst, mk, &grouped_cfg(&base, inst.m()));
    let scalar = run_cfg(inst, mk, &scalar_cfg(&base));
    assert_twin(
        &format!("{label}: {name} at speed {num}/{den}"),
        &grouped,
        &scalar,
    );
    (grouped.0.total_profit, grouped.0.ticks_simulated, grouped.1)
}

/// The whole stream-equivalence corpus, swept at 1 thread and at N threads:
/// every cell satisfies the twin contract, and the sweep output itself is
/// independent of the thread count.
#[test]
fn single_group_matches_scalar_twin_across_corpus_and_threads() {
    let corpus = corpus();
    let n_scheds = factories(1).len();
    let mut cells = Vec::new();
    for inst_idx in 0..corpus.len() {
        for speed_idx in 0..SPEEDS.len() {
            for sched_idx in 0..n_scheds {
                cells.push(Cell {
                    inst_idx,
                    speed_idx,
                    sched_idx,
                });
            }
        }
    }
    let serial = parallel_map(cells.clone(), 1, |c| check_cell(&corpus, c));
    let threaded = parallel_map(cells, 8, |c| check_cell(&corpus, c));
    assert_eq!(serial, threaded, "sweep results depend on the thread count");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-group platform — arbitrary m, fractional or integral
    /// speed, any scheduler, either pick policy — is byte-identical to the
    /// scalar twin.
    #[test]
    fn any_single_group_matches_scalar_twin(
        m in 2u32..=10,
        n_jobs in 5usize..=25,
        seed in 0u64..1000,
        speed_idx in 0usize..5,
        sched_idx in 0usize..8,
        cpf in 0u8..2,
    ) {
        let speeds = [(1u32, 1u32), (3, 2), (2, 1), (5, 3), (7, 4)];
        let (num, den) = speeds[speed_idx];
        let inst = WorkloadGen::standard(m, n_jobs, seed)
            .generate()
            .expect("valid workload");
        let base = SimConfig {
            speed: Speed::new(num, den).expect("positive"),
            pick: if cpf == 1 { NodePick::CriticalPathFirst } else { NodePick::Fifo },
            ..SimConfig::default()
        };
        let mks = factories(m);
        let (name, mk) = &mks[sched_idx % mks.len()];
        let grouped = run_cfg(&inst, mk, &grouped_cfg(&base, m));
        let scalar = run_cfg(&inst, mk, &scalar_cfg(&base));
        assert_twin(
            &format!("seed {seed} m {m} {name} speed {num}/{den}"),
            &grouped,
            &scalar,
        );
    }

    /// Pausing a grouped-platform driver at arbitrary `run_until` horizons
    /// still matches the one-shot scalar twin: platform mode and pacing are
    /// jointly invisible.
    #[test]
    fn paused_grouped_run_matches_one_shot_scalar(
        seed in 0u64..500,
        hseed in 0u64..500,
        n_pauses in 1usize..10,
        sched_idx in 0usize..8,
    ) {
        let m = 3 + (seed % 6) as u32;
        let inst = WorkloadGen::standard(m, 20, seed)
            .generate()
            .expect("valid workload");
        let base = SimConfig {
            speed: Speed::new(3, 2).expect("positive"),
            ..SimConfig::default()
        };
        let mks = factories(m);
        let (name, mk) = &mks[sched_idx % mks.len()];
        let scalar = run_cfg(&inst, mk, &scalar_cfg(&base));

        let span = inst.stats().horizon.ticks() + 8;
        let mut rng = dagsched_core::Rng64::seed_from(hseed);
        let cfg = grouped_cfg(&base, m);
        let mut log = EventLog::new();
        let mut sched = mk();
        let mut driver = SimDriver::with_observer(
            &inst,
            sched.as_mut(),
            &cfg,
            &mut log as &mut dyn SimObserver,
        );
        for _ in 0..n_pauses {
            driver
                .run_until(Time(rng.gen_range(span.max(1))))
                .expect("run_until runs");
        }
        let r = driver.finish().expect("finish runs");
        assert_twin(
            &format!("paused seed {seed} {name}"),
            &(r, log.to_jsonl()),
            &scalar,
        );
    }
}
