//! Discrete time and integral work.
//!
//! The paper analyses schedulers in *time steps*: a unit of time on a single
//! processor is a **processor step**. We mirror that exactly: [`Time`] counts
//! ticks since the start of the simulation and [`Work`] counts work units.
//! At speed 1 a processor finishes one work unit per tick, so a job with work
//! `W` occupies `W` processor steps — the identity the analysis relies on.
//!
//! Both are thin wrappers around `u64` with checked/saturating helpers so the
//! simulator can never silently wrap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A discrete simulation instant (tick index), starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// An integral amount of work (processor steps at unit speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Work(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// `self + dt`, panicking on overflow in debug builds.
    #[inline]
    pub fn after(self, dt: u64) -> Time {
        Time(self.0 + dt)
    }

    /// Saturating addition, for deadlines derived from `Time::MAX`.
    #[inline]
    pub fn saturating_add(self, dt: u64) -> Time {
        Time(self.0.saturating_add(dt))
    }

    /// Ticks elapsed since `earlier`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Interpret this instant as an amount of work at unit speed.
    #[inline]
    pub const fn as_work(self) -> Work {
        Work(self.0)
    }

    /// Lossless conversion for policy (floating point) computations.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Work {
    /// No work.
    pub const ZERO: Work = Work(0);

    /// Raw unit count.
    #[inline]
    pub const fn units(self) -> u64 {
        self.0
    }

    /// True iff there is no work left.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtract up to `amount`, returning how much was actually removed.
    ///
    /// This is the primitive the engine uses to advance a node: it never
    /// underflows, and the return value lets the caller account for leftover
    /// speed budget within a tick.
    #[inline]
    pub fn deplete(&mut self, amount: u64) -> u64 {
        let taken = self.0.min(amount);
        self.0 -= taken;
        taken
    }

    /// Checked multiplication by a scale factor (used when the engine rescales
    /// an instance for rational speeds).
    #[inline]
    pub fn checked_scale(self, factor: u64) -> Option<Work> {
        self.0.checked_mul(factor).map(Work)
    }

    /// Ceiling division by a positive integer: the number of ticks `p`
    /// processors (or a speed-`p` processor) need for this much perfectly
    /// divisible work.
    #[inline]
    pub fn div_ceil_by(self, divisor: u64) -> u64 {
        assert!(divisor > 0, "division by zero");
        self.0.div_ceil(divisor)
    }

    /// Lossless conversion for policy (floating point) computations.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Interpret as a duration at unit speed.
    #[inline]
    pub const fn as_ticks(self) -> u64 {
        self.0
    }
}

macro_rules! impl_newtype_arith {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<u64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: u64) -> $t {
                $t(self.0 * rhs)
            }
        }
        impl Div<u64> for $t {
            type Output = $t;
            #[inline]
            fn div(self, rhs: u64) -> $t {
                $t(self.0 / rhs)
            }
        }
        impl Rem<u64> for $t {
            type Output = $t;
            #[inline]
            fn rem(self, rhs: u64) -> $t {
                $t(self.0 % rhs)
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                $t(iter.map(|v| v.0).sum())
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl From<u64> for $t {
            #[inline]
            fn from(v: u64) -> $t {
                $t(v)
            }
        }
        impl From<$t> for u64 {
            #[inline]
            fn from(v: $t) -> u64 {
                v.0
            }
        }
    };
}

impl_newtype_arith!(Time);
impl_newtype_arith!(Work);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_arithmetic() {
        let a = Time(5);
        let b = a.after(3);
        assert_eq!(b, Time(8));
        assert!(a < b);
        assert_eq!(b.since(a), 3);
        assert_eq!(a.since(b), 0, "since() saturates instead of underflowing");
        assert_eq!(b - a, Time(3));
        assert_eq!(a + Time(1), Time(6));
    }

    #[test]
    fn time_saturating_add_at_max() {
        assert_eq!(Time::MAX.saturating_add(10), Time::MAX);
        assert_eq!(Time(1).saturating_add(2), Time(3));
    }

    #[test]
    fn work_deplete_partial_and_full() {
        let mut w = Work(10);
        assert_eq!(w.deplete(4), 4);
        assert_eq!(w, Work(6));
        assert_eq!(w.deplete(100), 6, "deplete caps at remaining work");
        assert!(w.is_zero());
        assert_eq!(w.deplete(1), 0, "depleting empty work is a no-op");
    }

    #[test]
    fn work_div_ceil() {
        assert_eq!(Work(10).div_ceil_by(3), 4);
        assert_eq!(Work(9).div_ceil_by(3), 3);
        assert_eq!(Work(0).div_ceil_by(3), 0);
        assert_eq!(Work(1).div_ceil_by(1), 1);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn work_div_ceil_zero_divisor_panics() {
        let _ = Work(10).div_ceil_by(0);
    }

    #[test]
    fn work_checked_scale_overflow() {
        assert_eq!(Work(2).checked_scale(3), Some(Work(6)));
        assert_eq!(Work(u64::MAX).checked_scale(2), None);
    }

    #[test]
    fn conversions_round_trip() {
        let t = Time(42);
        assert_eq!(t.as_work(), Work(42));
        assert_eq!(Work(42).as_ticks(), 42);
        assert_eq!(u64::from(t), 42);
        assert_eq!(Time::from(42u64), t);
        assert_eq!(t.as_f64(), 42.0);
    }

    #[test]
    fn sums() {
        let total: Work = [Work(1), Work(2), Work(3)].into_iter().sum();
        assert_eq!(total, Work(6));
        let total: Time = [Time(4), Time(5)].into_iter().sum();
        assert_eq!(total, Time(9));
    }

    #[test]
    fn display() {
        assert_eq!(Time(7).to_string(), "7");
        assert_eq!(Work(8).to_string(), "8");
    }
}
