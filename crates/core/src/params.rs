//! The paper's constants (Tables 1–3) and allotment formulas.
//!
//! Theorem 2 parameterizes scheduler **S** by a constant `ε > 0` and derives:
//!
//! | symbol | definition | role |
//! |--------|------------|------|
//! | `δ`    | any value `< ε/2` | freshness slack |
//! | `c`    | `≥ 1 + 1/(δε)`    | density band width |
//! | `b`    | `√((1+2δ)/(1+ε)) < 1` | capacity head-room factor |
//! | `a`    | `1 + (1+2δ)/(ε−2δ)`   | processor-step inflation (Lemma 3) |
//!
//! Per job the algorithm computes an allotment
//! `n_i = (W_i−L_i)/(D_i/(1+2δ) − L_i)`, a budgeted execution time
//! `x_i = (W_i−L_i)/n_i + L_i` and a density `v_i = p_i/(x_i n_i)`.
//!
//! ### A note on the charging margin
//!
//! Lemma 5 lower-bounds the credit each started job keeps by
//! `(1−b)/b − 1/((c−1)δ)` and the paper identifies `(1−b)/b` with `ε`.
//! That identification only holds up to constants (for `ε = 1, δ = 1/4`,
//! `(1−b)/b ≈ 0.155`). We therefore expose the *exact* margin
//! [`AlgoParams::charge_margin`] and, in [`AlgoParams::from_epsilon`], pick
//! `c` large enough that the exact margin is at least half of `(1−b)/b`,
//! which keeps every downstream bound positive for all `ε ∈ (0, 2]`.

use crate::error::SchedError;

/// Validated constants `(ε, δ, c)` with the derived `b` and `a`.
///
/// Construct with [`AlgoParams::new`] for full control or
/// [`AlgoParams::from_epsilon`] for the paper's recommended settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoParams {
    epsilon: f64,
    delta: f64,
    c: f64,
    b: f64,
    a: f64,
}

impl AlgoParams {
    /// Create parameters, validating every constraint from Table 1.
    ///
    /// Requirements: `ε > 0`, `0 < δ < ε/2`, `c ≥ 1 + 1/(δε)`, and the exact
    /// charging margin `(1−b)/b − 1/((c−1)δ)` must be positive.
    pub fn new(epsilon: f64, delta: f64, c: f64) -> Result<AlgoParams, SchedError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(SchedError::InvalidParams(format!(
                "epsilon must be positive and finite, got {epsilon}"
            )));
        }
        if !delta.is_finite() || delta <= 0.0 || delta >= epsilon / 2.0 {
            return Err(SchedError::InvalidParams(format!(
                "delta must satisfy 0 < delta < epsilon/2 = {}, got {delta}",
                epsilon / 2.0
            )));
        }
        if !c.is_finite() || c < 1.0 + 1.0 / (delta * epsilon) {
            return Err(SchedError::InvalidParams(format!(
                "c must be >= 1 + 1/(delta*epsilon) = {}, got {c}",
                1.0 + 1.0 / (delta * epsilon)
            )));
        }
        let b = ((1.0 + 2.0 * delta) / (1.0 + epsilon)).sqrt();
        debug_assert!(b < 1.0, "delta < epsilon/2 implies b < 1");
        let a = 1.0 + (1.0 + 2.0 * delta) / (epsilon - 2.0 * delta);
        let params = AlgoParams {
            epsilon,
            delta,
            c,
            b,
            a,
        };
        if params.charge_margin() <= 0.0 {
            return Err(SchedError::InvalidParams(format!(
                "charging margin (1-b)/b - 1/((c-1)delta) = {} is not positive; \
                 increase c (need c > {})",
                params.charge_margin(),
                1.0 + b / ((1.0 - b) * delta)
            )));
        }
        Ok(params)
    }

    /// The paper's recommended instantiation for a given `ε`:
    /// `δ = ε/4` and the smallest `c` that (a) satisfies `c ≥ 1 + 1/(δε)`
    /// and (b) leaves half of the `(1−b)/b` credit as charging margin.
    pub fn from_epsilon(epsilon: f64) -> Result<AlgoParams, SchedError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(SchedError::InvalidParams(format!(
                "epsilon must be positive and finite, got {epsilon}"
            )));
        }
        let delta = epsilon / 4.0;
        let b = ((1.0 + 2.0 * delta) / (1.0 + epsilon)).sqrt();
        let c_paper = 1.0 + 1.0 / (delta * epsilon);
        // Margin (1-b)/b - 1/((c-1)δ) >= (1-b)/(2b)  <=>  c >= 1 + 2b/((1-b)δ).
        let c_margin = 1.0 + 2.0 * b / ((1.0 - b) * delta);
        AlgoParams::new(epsilon, delta, c_paper.max(c_margin))
    }

    /// The deadline-slack constant `ε` of Theorem 2.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The freshness constant `δ < ε/2`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The density band width `c`.
    #[inline]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The capacity head-room factor `b = √((1+2δ)/(1+ε)) < 1`.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The processor-step inflation `a = 1 + (1+2δ)/(ε−2δ)` (Lemma 3).
    #[inline]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Exact Lemma 5 credit margin `(1−b)/b − 1/((c−1)δ)`.
    ///
    /// `‖C‖ ≥ charge_margin() · ‖R‖`: completed profit is at least this
    /// fraction of started profit. Guaranteed positive by construction.
    pub fn charge_margin(&self) -> f64 {
        (1.0 - self.b) / self.b - 1.0 / ((self.c - 1.0) * self.delta)
    }

    /// Lemma 9 factor: `‖C^O‖ ≤ opt_vs_started() · ‖R‖` (throughput case).
    pub fn opt_vs_started(&self) -> f64 {
        1.0 + self.a * self.c * (1.0 + 2.0 * self.delta) / (self.delta * self.b * (1.0 - self.b))
    }

    /// The end-to-end competitive ratio of Lemma 10 / Theorem 2
    /// (throughput): `‖C^O‖ ≤ ratio · ‖C‖`. This is the `O(1/ε⁶)` constant.
    pub fn throughput_competitive_ratio(&self) -> f64 {
        self.opt_vs_started() / self.charge_margin()
    }

    /// Lemma 21 factor for the general-profit case (the `2(1+2δ)` variant).
    pub fn profit_opt_vs_started(&self) -> f64 {
        1.0 + self.a * self.c * 2.0 * (1.0 + 2.0 * self.delta)
            / (self.delta * self.b * (1.0 - self.b))
    }

    /// Lemma 22 competitive ratio for general profit functions (Theorem 3).
    pub fn profit_competitive_ratio(&self) -> f64 {
        self.profit_opt_vs_started() / self.charge_margin()
    }

    /// `δ`-good threshold: a job is δ-good iff `D_i ≥ (1+2δ) x_i`.
    #[inline]
    pub fn good_factor(&self) -> f64 {
        1.0 + 2.0 * self.delta
    }

    /// `δ`-fresh threshold: at time `t`, fresh iff `d_i − t ≥ (1+δ) x_i`.
    #[inline]
    pub fn fresh_factor(&self) -> f64 {
        1.0 + self.delta
    }

    /// The paper's fractional allotment
    /// `n_i = (W_i − L_i) / (D_i/(1+2δ) − L_i)`.
    ///
    /// Returns `None` if the denominator is non-positive, i.e. the deadline is
    /// too tight even for infinite parallelism under the (1+2δ) contraction —
    /// such a job cannot be δ-good and is rejected by the scheduler.
    /// A fully sequential job (`W == L`) yields `Some(0.0)`; callers allocate
    /// `max(1, ceil(n))` actual processors.
    pub fn raw_allotment(&self, work: f64, span: f64, rel_deadline: f64) -> Option<f64> {
        let denom = rel_deadline / self.good_factor() - span;
        if denom <= 0.0 {
            return None;
        }
        Some((work - span) / denom)
    }

    /// Budgeted execution time `x_i = (W_i − L_i)/n_i + L_i` for an integral
    /// allotment `n_i ≥ 1` (Observation 2: `n_i` dedicated processors finish
    /// the job within `x_i` ticks regardless of node order).
    pub fn x_time(work: f64, span: f64, allotment: u32) -> f64 {
        debug_assert!(allotment >= 1);
        (work - span) / allotment as f64 + span
    }

    /// Lower bound on any 1-speed schedule's completion time for a DAG job:
    /// `max{L, W/m}` — and the paper's stronger per-job benchmark
    /// `(W−L)/m + L` which any greedy (work-conserving) schedule achieves.
    pub fn brent_time(work: f64, span: f64, m: u32) -> f64 {
        (work - span) / m as f64 + span
    }

    /// Theorem 2's deadline condition: `D_i ≥ (1+ε)((W−L)/m + L)`.
    pub fn theorem2_min_deadline(&self, work: f64, span: f64, m: u32) -> f64 {
        (1.0 + self.epsilon) * Self::brent_time(work, span, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps: f64) -> AlgoParams {
        AlgoParams::from_epsilon(eps).unwrap()
    }

    #[test]
    fn from_epsilon_satisfies_all_table1_constraints() {
        for eps in [0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 4.0] {
            let p = params(eps);
            assert!(
                p.delta() > 0.0 && p.delta() < eps / 2.0,
                "delta for eps={eps}"
            );
            assert!(
                p.c() >= 1.0 + 1.0 / (p.delta() * eps) - 1e-9,
                "c for eps={eps}"
            );
            assert!(p.b() > 0.0 && p.b() < 1.0, "b in (0,1) for eps={eps}");
            let b_expected = ((1.0 + 2.0 * p.delta()) / (1.0 + eps)).sqrt();
            assert!((p.b() - b_expected).abs() < 1e-12);
            let a_expected = 1.0 + (1.0 + 2.0 * p.delta()) / (eps - 2.0 * p.delta());
            assert!((p.a() - a_expected).abs() < 1e-12);
            assert!(p.charge_margin() > 0.0, "margin positive for eps={eps}");
            assert!(
                p.charge_margin() >= (1.0 - p.b()) / p.b() / 2.0 - 1e-9,
                "margin is at least half of (1-b)/b for eps={eps}"
            );
        }
    }

    #[test]
    fn new_rejects_bad_inputs() {
        assert!(AlgoParams::new(0.0, 0.1, 100.0).is_err());
        assert!(AlgoParams::new(-1.0, 0.1, 100.0).is_err());
        assert!(AlgoParams::new(f64::NAN, 0.1, 100.0).is_err());
        assert!(AlgoParams::new(1.0, 0.5, 100.0).is_err(), "delta = eps/2");
        assert!(AlgoParams::new(1.0, 0.6, 100.0).is_err(), "delta > eps/2");
        assert!(AlgoParams::new(1.0, 0.0, 100.0).is_err(), "delta = 0");
        // c below the paper's floor 1 + 1/(delta*eps) = 5.
        assert!(AlgoParams::new(1.0, 0.25, 4.9).is_err());
        // c at the floor but margin non-positive: eps=1, delta=0.25 gives
        // b ~ .866, (1-b)/b ~ .1547, need 1/((c-1)*.25) < .1547 => c > 26.86.
        assert!(AlgoParams::new(1.0, 0.25, 10.0).is_err());
        assert!(AlgoParams::new(1.0, 0.25, 30.0).is_ok());
        assert!(AlgoParams::from_epsilon(0.0).is_err());
        assert!(AlgoParams::from_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn competitive_ratio_grows_as_inverse_poly_of_epsilon() {
        // Theorem 2 gives O(1/eps^6): the ratio must be monotone decreasing
        // in eps and bounded by K/eps^6 for a single constant K over a sweep.
        let mut prev = f64::INFINITY;
        let mut k_max: f64 = 0.0;
        for eps in [0.1, 0.2, 0.4, 0.8, 1.0, 1.6, 2.0] {
            let p = params(eps);
            let ratio = p.throughput_competitive_ratio();
            assert!(ratio.is_finite() && ratio > 1.0);
            assert!(ratio < prev, "ratio should shrink as eps grows");
            prev = ratio;
            k_max = k_max.max(ratio * eps.powi(6));
        }
        // K exists (finite); sanity: the eps=0.1 point dominates.
        assert!(k_max.is_finite());
        let p = params(0.1);
        assert!(p.throughput_competitive_ratio() <= k_max / 0.1f64.powi(6) + 1.0);
    }

    #[test]
    fn profit_ratio_dominates_throughput_ratio() {
        for eps in [0.25, 0.5, 1.0, 2.0] {
            let p = params(eps);
            assert!(
                p.profit_competitive_ratio() > p.throughput_competitive_ratio(),
                "the 2(1+2δ) variant is strictly weaker"
            );
        }
    }

    /// Lemma 1: if `D ≥ (1+ε)((W−L)/m + L)` then `n_i ≤ b²m` (as a real).
    #[test]
    fn lemma1_allotment_bound() {
        let p = params(0.5);
        for m in [2u32, 4, 16, 64] {
            for (w, l) in [
                (1000.0, 10.0),
                (1000.0, 999.0),
                (64.0, 1.0),
                (5000.0, 2500.0),
            ] {
                let d = p.theorem2_min_deadline(w, l, m);
                let n = p.raw_allotment(w, l, d).expect("deadline is feasible");
                assert!(
                    n <= p.b() * p.b() * m as f64 + 1e-9,
                    "n={n} > b^2 m={} for W={w} L={l} m={m}",
                    p.b() * p.b() * m as f64
                );
            }
        }
    }

    /// Lemma 2: every job with the Theorem-2 deadline is δ-good,
    /// i.e. `x_i (1+2δ) ≤ D_i`, using the *fractional* allotment.
    #[test]
    fn lemma2_delta_good() {
        let p = params(1.0);
        for m in [2u32, 8, 32] {
            for (w, l) in [(300.0, 3.0), (100.0, 50.0), (10.0, 9.0)] {
                let d = p.theorem2_min_deadline(w, l, m);
                let n = p.raw_allotment(w, l, d).unwrap();
                // fractional x = (W-L)/n + L (guard n=0 for sequential jobs)
                let x = if n > 0.0 { (w - l) / n + l } else { l };
                assert!(
                    x * p.good_factor() <= d + 1e-6,
                    "x(1+2δ)={} > D={d}",
                    x * p.good_factor()
                );
            }
        }
    }

    /// Lemma 3: `x_i n_i ≤ a W_i` with the fractional allotment.
    #[test]
    fn lemma3_processor_step_inflation() {
        let p = params(0.75);
        for m in [4u32, 12] {
            for (w, l) in [(400.0, 4.0), (400.0, 100.0), (400.0, 399.0)] {
                let d = p.theorem2_min_deadline(w, l, m);
                let n = p.raw_allotment(w, l, d).unwrap();
                let xn = if n > 0.0 { (w - l) + n * l } else { l };
                assert!(
                    xn <= p.a() * w + 1e-6,
                    "x*n = {xn} exceeds aW = {}",
                    p.a() * w
                );
            }
        }
    }

    #[test]
    fn raw_allotment_edge_cases() {
        let p = params(0.5);
        // Deadline too tight: denominator <= 0.
        assert_eq!(p.raw_allotment(100.0, 50.0, 50.0), None);
        // Fully sequential job: zero fractional allotment.
        let d = p.theorem2_min_deadline(50.0, 50.0, 8);
        assert_eq!(p.raw_allotment(50.0, 50.0, d), Some(0.0));
        // Embarrassingly parallel job gets close to b^2 m.
        let d = p.theorem2_min_deadline(1000.0, 1.0, 10);
        let n = p.raw_allotment(1000.0, 1.0, d).unwrap();
        assert!(n > 1.0);
    }

    #[test]
    fn brent_time_and_x_time() {
        assert_eq!(AlgoParams::brent_time(100.0, 10.0, 10), 19.0);
        assert_eq!(AlgoParams::x_time(100.0, 10.0, 5), 28.0);
        // With allotment 1, x = W.
        assert_eq!(AlgoParams::x_time(100.0, 10.0, 1), 100.0);
    }

    #[test]
    fn good_and_fresh_factors() {
        let p = params(1.0);
        assert!((p.good_factor() - 1.5).abs() < 1e-12); // 1 + 2*0.25
        assert!((p.fresh_factor() - 1.25).abs() < 1e-12); // 1 + 0.25
    }
}
