//! Identifiers for jobs and DAG nodes.
//!
//! Both are `u32` newtypes: a job index within an instance, and a node index
//! *within one job's DAG*. Keeping them distinct types prevents the classic
//! bug of indexing a job table with a node id (and vice versa), at zero cost.

use std::fmt;

/// Identifier of a job within an [`Instance`](https://docs.rs/dagsched-workload).
///
/// Ids are dense: workload generators assign `0..n` in arrival order, and the
/// engine uses them to index per-job state vectors directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

/// Identifier of a node within a single job's DAG (dense, `0..num_nodes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl JobId {
    /// The id as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for JobId {
    #[inline]
    fn from(v: u32) -> Self {
        JobId(v)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_display() {
        assert_eq!(JobId(3).index(), 3);
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(JobId(3).to_string(), "J3");
        assert_eq!(NodeId(9).to_string(), "n9");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(JobId(2) < JobId(10));
        assert!(NodeId(0) < NodeId(1));
    }

    #[test]
    fn from_u32() {
        assert_eq!(JobId::from(5u32), JobId(5));
        assert_eq!(NodeId::from(7u32), NodeId(7));
    }
}
