//! Exact rational speed augmentation.
//!
//! Resource-augmentation analysis compares an `s`-speed algorithm against a
//! 1-speed optimal solution. Theorem 1 of the paper puts the interesting
//! threshold at `s = 2 − 1/m`, and Corollary 1 at `s = 2 + ε` — neither of
//! which is an integer. To keep the execution engine exact we represent speed
//! as a reduced fraction `num/den`: the engine multiplies every node's work by
//! `den` and lets each processor complete `num` (scaled) units per tick.

use crate::error::SchedError;
use std::cmp::Ordering;
use std::fmt;

/// A rational processor speed `num/den > 0`, kept in lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Speed {
    num: u32,
    den: u32,
}

impl Speed {
    /// Unit speed (the baseline the optimal solution runs at).
    pub const ONE: Speed = Speed { num: 1, den: 1 };

    /// Create a speed `num/den`, reducing to lowest terms.
    ///
    /// # Errors
    /// Returns [`SchedError::InvalidSpeed`] if either component is zero.
    pub fn new(num: u32, den: u32) -> Result<Speed, SchedError> {
        if num == 0 || den == 0 {
            return Err(SchedError::InvalidSpeed { num, den });
        }
        let g = gcd(num, den);
        Ok(Speed {
            num: num / g,
            den: den / g,
        })
    }

    /// Integer speed `s/1`.
    pub fn integer(s: u32) -> Result<Speed, SchedError> {
        Speed::new(s, 1)
    }

    /// The paper's Theorem 1 threshold `2 − 1/m = (2m − 1)/m`.
    ///
    /// Any semi-non-clairvoyant scheduler needs at least this much
    /// augmentation to be O(1)-competitive on `m` processors.
    pub fn theorem1_threshold(m: u32) -> Result<Speed, SchedError> {
        if m == 0 {
            return Err(SchedError::InvalidSpeed { num: 0, den: 0 });
        }
        Speed::new(2 * m - 1, m)
    }

    /// Numerator of the reduced fraction.
    #[inline]
    pub const fn num(self) -> u32 {
        self.num
    }

    /// Denominator of the reduced fraction.
    #[inline]
    pub const fn den(self) -> u32 {
        self.den
    }

    /// Work units (in the `den`-scaled instance) a processor finishes per tick.
    #[inline]
    pub const fn units_per_tick(self) -> u64 {
        self.num as u64
    }

    /// Factor every node's work must be multiplied by so that integer
    /// progress per tick is exact.
    #[inline]
    pub const fn work_scale(self) -> u64 {
        self.den as u64
    }

    /// The speed as a float, for reporting only.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact comparison against another speed (cross-multiplication).
    pub fn cmp_exact(self, other: Speed) -> Ordering {
        let lhs = self.num as u64 * other.den as u64;
        let rhs = other.num as u64 * self.den as u64;
        lhs.cmp(&rhs)
    }

    /// True iff `self >= other` exactly.
    pub fn at_least(self, other: Speed) -> bool {
        self.cmp_exact(other) != Ordering::Less
    }
}

impl Default for Speed {
    fn default() -> Self {
        Speed::ONE
    }
}

impl PartialOrd for Speed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Speed {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_exact(*other)
    }
}

impl fmt::Display for Speed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}x", self.num)
        } else {
            write!(f, "{}/{}x", self.num, self.den)
        }
    }
}

/// Greatest common divisor (binary-free Euclid; inputs are nonzero here).
fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let s = Speed::new(4, 6).unwrap();
        assert_eq!((s.num(), s.den()), (2, 3));
        let s = Speed::new(10, 5).unwrap();
        assert_eq!((s.num(), s.den()), (2, 1));
    }

    #[test]
    fn rejects_zero_components() {
        assert!(Speed::new(0, 1).is_err());
        assert!(Speed::new(1, 0).is_err());
        assert!(Speed::theorem1_threshold(0).is_err());
    }

    #[test]
    fn theorem1_threshold_values() {
        // 2 - 1/m for a few m.
        assert_eq!(Speed::theorem1_threshold(1).unwrap(), Speed::ONE);
        let s = Speed::theorem1_threshold(4).unwrap();
        assert_eq!((s.num(), s.den()), (7, 4));
        assert!((s.as_f64() - 1.75).abs() < 1e-12);
        let s = Speed::theorem1_threshold(2).unwrap();
        assert_eq!((s.num(), s.den()), (3, 2));
    }

    #[test]
    fn exact_ordering() {
        let a = Speed::new(3, 2).unwrap(); // 1.5
        let b = Speed::new(7, 4).unwrap(); // 1.75
        assert!(a < b);
        assert!(b.at_least(a));
        assert!(a.at_least(a));
        assert_eq!(a.cmp_exact(Speed::new(6, 4).unwrap()), Ordering::Equal);
    }

    #[test]
    fn engine_scaling_contract() {
        // speed 3/2: scale works by 2, process 3 per tick.
        let s = Speed::new(3, 2).unwrap();
        assert_eq!(s.work_scale(), 2);
        assert_eq!(s.units_per_tick(), 3);
        // A 6-unit node becomes 12 scaled units -> 4 ticks at 3/tick,
        // versus 6 ticks at unit speed: exactly 1.5x faster.
        let scaled = 6 * s.work_scale();
        assert_eq!(scaled.div_ceil(s.units_per_tick()), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Speed::ONE.to_string(), "1x");
        assert_eq!(Speed::new(7, 4).unwrap().to_string(), "7/4x");
        assert_eq!(Speed::integer(2).unwrap().to_string(), "2x");
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(Speed::default(), Speed::ONE);
    }
}
