//! Related-machines platform descriptions.
//!
//! The paper analyses `m` *identical* machines running at a single
//! augmentation speed `s`. The related-machines extension (bag-of-tasks on
//! related machines, Gupta–Kumar–Singla 2021; precedence constraints on
//! related machines, Maiti et al. 2020) replaces that scalar with a small
//! set of **machine groups**: `g` groups, group `i` holding `count_i`
//! processors that all run at speed `speed_i`.
//!
//! Exactness is preserved by generalising the single-speed scaling trick
//! (see [`Speed`]): with per-group speeds `num_i/den_i`, every node's work is
//! multiplied by `scale = lcm(den_0, …, den_{g−1})` and a group-`i`
//! processor then completes `units_i = num_i · scale/den_i` scaled units per
//! tick — an integer by construction. A single group degenerates to exactly
//! the scalar numbers (`scale = den`, `units = num`), which is what makes
//! the uniform case byte-identical to the legacy scalar engine path.
//!
//! Group order is part of the description: processors are laid out group 0
//! first, and all engine tie-breaks involving groups order by ascending
//! group index.

use crate::error::SchedError;
use crate::speed::Speed;
use std::fmt;
use std::str::FromStr;

/// One homogeneous slice of the platform: `count` processors at `speed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineGroup {
    /// Number of processors in the group (positive).
    pub count: u32,
    /// Speed every processor in the group runs at.
    pub speed: Speed,
}

/// An ordered list of machine groups describing a related-machines platform.
///
/// Invariants (checked at construction): at least one group, every count
/// positive, the total processor count fits in `u32`, and the combined work
/// scale / per-group units fit in `u64`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineGroups {
    groups: Vec<MachineGroup>,
    /// `lcm` of the group denominators: the factor every node's work is
    /// multiplied by so per-tick progress is integral for *all* groups.
    scale: u64,
    /// Scaled units a single processor of each group completes per tick.
    units: Vec<u64>,
    total: u32,
}

impl MachineGroups {
    /// Build a platform description from `(count, speed)` pairs.
    ///
    /// # Errors
    /// [`SchedError::InvalidInstance`] if the list is empty, any count is
    /// zero, the total processor count overflows `u32`, or the combined
    /// work scale overflows `u64`.
    pub fn new(pairs: impl IntoIterator<Item = (u32, Speed)>) -> Result<MachineGroups, SchedError> {
        let groups: Vec<MachineGroup> = pairs
            .into_iter()
            .map(|(count, speed)| MachineGroup { count, speed })
            .collect();
        if groups.is_empty() {
            return Err(SchedError::InvalidInstance(
                "machine groups: at least one group required".into(),
            ));
        }
        let mut total: u32 = 0;
        let mut scale: u64 = 1;
        for g in &groups {
            if g.count == 0 {
                return Err(SchedError::InvalidInstance(
                    "machine groups: group count must be positive".into(),
                ));
            }
            total = total.checked_add(g.count).ok_or_else(|| {
                SchedError::InvalidInstance(
                    "machine groups: total processor count overflows".into(),
                )
            })?;
            scale = lcm(scale, g.speed.work_scale()).ok_or_else(|| {
                SchedError::InvalidInstance("machine groups: work scale overflows u64".into())
            })?;
        }
        let mut units = Vec::with_capacity(groups.len());
        for g in &groups {
            // `scale` is a multiple of this group's denominator by
            // construction, so the division is exact.
            let per_den = scale / g.speed.work_scale();
            let u = g
                .speed
                .units_per_tick()
                .checked_mul(per_den)
                .ok_or_else(|| {
                    SchedError::InvalidInstance(
                        "machine groups: per-tick units overflow u64".into(),
                    )
                })?;
            units.push(u);
        }
        Ok(MachineGroups {
            groups,
            scale,
            units,
            total,
        })
    }

    /// The uniform platform: one group of `m` processors at `speed` — the
    /// paper's original model, expressed in the group vocabulary.
    pub fn uniform(m: u32, speed: Speed) -> Result<MachineGroups, SchedError> {
        MachineGroups::new([(m, speed)])
    }

    /// The groups, in declaration (= processor layout) order.
    #[inline]
    pub fn groups(&self) -> &[MachineGroup] {
        &self.groups
    }

    /// Number of groups.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Always false (construction rejects empty lists); included so the
    /// conventional `len`/`is_empty` pair is complete.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total processor count across all groups.
    #[inline]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The factor every node's work is multiplied by (lcm of denominators).
    #[inline]
    pub fn work_scale(&self) -> u64 {
        self.scale
    }

    /// Scaled units one processor of group `g` completes per tick.
    #[inline]
    pub fn units(&self, g: usize) -> u64 {
        self.units[g]
    }

    /// Per-group per-processor units, indexed by group.
    #[inline]
    pub fn units_per_group(&self) -> &[u64] {
        &self.units
    }

    /// `Some(speed)` iff every group runs at the same speed (the platform is
    /// effectively the paper's identical-machines model).
    pub fn uniform_speed(&self) -> Option<Speed> {
        let s = self.groups[0].speed;
        self.groups.iter().all(|g| g.speed == s).then_some(s)
    }

    /// True iff all groups share one speed.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.uniform_speed().is_some()
    }

    /// The same platform shape with every group's speed multiplied by `by` —
    /// resource augmentation applied uniformly across a heterogeneous
    /// platform (how the sweep's speed axis composes with its shape axis).
    ///
    /// # Errors
    /// [`SchedError::InvalidInstance`] if a product overflows `u32` or the
    /// scaled platform violates a construction invariant.
    pub fn scaled(&self, by: Speed) -> Result<MachineGroups, SchedError> {
        let overflow =
            || SchedError::InvalidInstance("machine groups: scaled speed overflows u32".into());
        let mut pairs = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            let num = g.speed.num().checked_mul(by.num()).ok_or_else(overflow)?;
            let den = g.speed.den().checked_mul(by.den()).ok_or_else(overflow)?;
            pairs.push((g.count, Speed::new(num, den)?));
        }
        MachineGroups::new(pairs)
    }
}

impl fmt::Display for MachineGroups {
    /// Round-trips with [`FromStr`]: `4x1,2x2`, `3x3/2,1x1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            if g.speed.den() == 1 {
                write!(f, "{}x{}", g.count, g.speed.num())?;
            } else {
                write!(f, "{}x{}/{}", g.count, g.speed.num(), g.speed.den())?;
            }
        }
        Ok(())
    }
}

impl FromStr for MachineGroups {
    type Err = SchedError;

    /// Parse a `<count>x<speed>[,<count>x<speed>…]` spec, e.g. `4x1,2x2`
    /// (four unit-speed machines plus two double-speed machines) or
    /// `2x3/2` (two machines at speed 3/2). `+` is accepted as an
    /// alternative separator for contexts where commas are awkward (CSV).
    fn from_str(s: &str) -> Result<MachineGroups, SchedError> {
        let bad = |part: &str| {
            SchedError::InvalidInstance(format!(
                "machine groups: bad component {part:?} (want <count>x<num>[/<den>])"
            ))
        };
        let mut pairs = Vec::new();
        for part in s.split([',', '+']) {
            let part = part.trim();
            let (count, speed) = part.split_once('x').ok_or_else(|| bad(part))?;
            let count: u32 = count.trim().parse().map_err(|_| bad(part))?;
            let speed = match speed.trim().split_once('/') {
                Some((n, d)) => Speed::new(
                    n.trim().parse().map_err(|_| bad(part))?,
                    d.trim().parse().map_err(|_| bad(part))?,
                )?,
                None => Speed::integer(speed.trim().parse().map_err(|_| bad(part))?)?,
            };
            pairs.push((count, speed));
        }
        MachineGroups::new(pairs)
    }
}

/// Ticks a processor completing `units` scaled work units per tick needs to
/// finish `rem` remaining scaled units: `ceil(rem/units)`.
///
/// This is the single audited implementation of the completion-frontier
/// arithmetic used by the engine's claim loop and event re-keying; it
/// replaces the ad-hoc `div_ceil` call sites that predated machine groups.
///
/// # Panics
/// If `units == 0` — a zero-speed processor never finishes, and every
/// constructed [`Speed`]/[`MachineGroups`] guarantees positive units, so a
/// zero here is an engine bug worth failing loudly on.
#[inline]
pub fn ticks_to_complete(rem: u64, units: u64) -> u64 {
    assert!(units > 0, "ticks_to_complete: zero units per tick");
    rem.div_ceil(units)
}

/// Multiply a node's work by the platform work scale, checked.
///
/// # Errors
/// [`SchedError::InvalidInstance`] if the product overflows `u64` — the
/// instance's work values are incompatible with this platform's scale.
#[inline]
pub fn scale_work(work: u64, scale: u64) -> Result<u64, SchedError> {
    work.checked_mul(scale).ok_or_else(|| {
        SchedError::InvalidInstance(format!(
            "scaled work overflows u64 (work {work} × scale {scale})"
        ))
    })
}

/// Least common multiple with overflow detection (`None` on overflow).
fn lcm(a: u64, b: u64) -> Option<u64> {
    // a, b ≥ 1 here (work scales are positive).
    let g = gcd(a, b);
    (a / g).checked_mul(b)
}

/// Greatest common divisor (Euclid; inputs are nonzero here).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degenerates_to_scalar_numbers() {
        // speed 3/2 as one group: scale and units match Speed's exactly.
        let s = Speed::new(3, 2).unwrap();
        let g = MachineGroups::uniform(4, s).unwrap();
        assert_eq!(g.total(), 4);
        assert_eq!(g.work_scale(), s.work_scale());
        assert_eq!(g.units(0), s.units_per_tick());
        assert_eq!(g.uniform_speed(), Some(s));
        assert!(g.is_uniform());
    }

    #[test]
    fn heterogeneous_scale_is_lcm_and_units_are_exact() {
        // Speeds 3/2 and 5/3: scale = lcm(2,3) = 6; units 3·3=9 and 5·2=10.
        let g = MachineGroups::new([
            (2, Speed::new(3, 2).unwrap()),
            (1, Speed::new(5, 3).unwrap()),
        ])
        .unwrap();
        assert_eq!(g.work_scale(), 6);
        assert_eq!(g.units_per_group(), &[9, 10]);
        assert_eq!(g.total(), 3);
        assert_eq!(g.uniform_speed(), None);
        // Cross-check: units/scale reproduces the rational speed.
        assert!((g.units(0) as f64 / 6.0 - 1.5).abs() < 1e-12);
        assert!((g.units(1) as f64 / 6.0 - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multi_group_same_speed_is_still_uniform() {
        let g = MachineGroups::new([(4, Speed::ONE), (2, Speed::ONE)]).unwrap();
        assert_eq!(g.uniform_speed(), Some(Speed::ONE));
        assert_eq!(g.total(), 6);
    }

    #[test]
    fn scaled_multiplies_every_group_and_reduces() {
        let g: MachineGroups = "4x1,2x2".parse().unwrap();
        let s = g.scaled(Speed::new(3, 2).unwrap()).unwrap();
        assert_eq!(s.to_string(), "4x3/2,2x3");
        assert_eq!(s.total(), g.total());
        // Scaling by one is the identity.
        assert_eq!(g.scaled(Speed::ONE).unwrap(), g);
        // Overflow is an error, not a wrap.
        let big = MachineGroups::uniform(1, Speed::integer(u32::MAX).unwrap()).unwrap();
        assert!(big.scaled(Speed::integer(2).unwrap()).is_err());
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(MachineGroups::new(std::iter::empty()).is_err());
        assert!(MachineGroups::new([(0, Speed::ONE)]).is_err());
        assert!(MachineGroups::new([(u32::MAX, Speed::ONE), (1, Speed::ONE)]).is_err());
    }

    #[test]
    fn scale_overflow_is_an_error_not_a_wrap() {
        // Pairwise-coprime huge denominators push the lcm past u64.
        let big = |d| Speed::new(1, d).unwrap();
        let r = MachineGroups::new([
            (1, big(4_294_967_291)), // prime
            (1, big(4_294_967_279)), // prime
            (1, big(4_294_967_231)), // prime
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn display_and_parse_round_trip() {
        for spec in ["4x1", "4x1,2x2", "2x3/2,1x5/3", "8x2"] {
            let g: MachineGroups = spec.parse().unwrap();
            assert_eq!(g.to_string(), spec);
        }
        // `+` separator (CSV-friendly) parses to the same platform.
        let a: MachineGroups = "4x1+2x2".parse().unwrap();
        let b: MachineGroups = "4x1,2x2".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for spec in [
            "", "4", "x1", "4x", "4x0", "0x1", "4x1,,2x2", "4x1/0", "ax1",
        ] {
            assert!(spec.parse::<MachineGroups>().is_err(), "accepted {spec:?}");
        }
    }

    #[test]
    fn ticks_to_complete_matches_div_ceil() {
        assert_eq!(ticks_to_complete(0, 3), 0);
        assert_eq!(ticks_to_complete(1, 3), 1);
        assert_eq!(ticks_to_complete(3, 3), 1);
        assert_eq!(ticks_to_complete(4, 3), 2);
        // No intermediate overflow even at the top of the range.
        assert_eq!(ticks_to_complete(u64::MAX, 1), u64::MAX);
        assert_eq!(ticks_to_complete(u64::MAX, u64::MAX), 1);
        assert_eq!(ticks_to_complete(u64::MAX - 1, u64::MAX), 1);
    }

    #[test]
    #[should_panic(expected = "zero units")]
    fn ticks_to_complete_rejects_zero_units() {
        ticks_to_complete(1, 0);
    }

    #[test]
    fn scale_work_checks_overflow() {
        assert_eq!(scale_work(6, 2).unwrap(), 12);
        assert_eq!(scale_work(0, u64::MAX).unwrap(), 0);
        assert_eq!(scale_work(u64::MAX, 1).unwrap(), u64::MAX);
        assert!(scale_work(u64::MAX, 2).is_err());
        assert!(scale_work(1 << 62, 8).is_err());
    }
}
