//! Error type shared across the workspace.

use std::fmt;

/// Errors raised by dagsched crates.
///
/// The workspace is a simulator, not a service: errors indicate *misuse*
/// (invalid construction parameters, malformed instances) rather than runtime
/// faults, so a single flat enum keeps matching simple for callers.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A [`Speed`](crate::Speed) with a zero numerator or denominator.
    InvalidSpeed {
        /// Offending numerator.
        num: u32,
        /// Offending denominator.
        den: u32,
    },
    /// Algorithm parameters violating the paper's constraints
    /// (e.g. `δ ≥ ε/2` or a non-positive charging margin).
    InvalidParams(String),
    /// A DAG failed validation (cycle, dangling edge, zero-work node, ...).
    InvalidDag(String),
    /// A workload instance failed validation (unsorted arrivals, bad profit
    /// function, zero processors, ...).
    InvalidInstance(String),
    /// A scheduler returned an allocation the engine cannot honour
    /// (over-subscribed processors, unknown job, ...).
    InvalidAllocation(String),
    /// Text (de)serialization of an instance failed.
    Codec(String),
    /// An experiment/bound computation was asked for something unsupported
    /// (e.g. exact OPT on an instance that is too large).
    Unsupported(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidSpeed { num, den } => {
                write!(f, "invalid speed {num}/{den}: both parts must be positive")
            }
            SchedError::InvalidParams(msg) => write!(f, "invalid algorithm parameters: {msg}"),
            SchedError::InvalidDag(msg) => write!(f, "invalid DAG: {msg}"),
            SchedError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            SchedError::InvalidAllocation(msg) => write!(f, "invalid allocation: {msg}"),
            SchedError::Codec(msg) => write!(f, "codec error: {msg}"),
            SchedError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SchedError::InvalidSpeed { num: 0, den: 3 };
        assert!(e.to_string().contains("0/3"));
        let e = SchedError::InvalidDag("cycle through n2".into());
        assert!(e.to_string().contains("cycle through n2"));
        let e = SchedError::InvalidParams("delta too large".into());
        assert!(e.to_string().contains("delta too large"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<SchedError>();
    }
}
