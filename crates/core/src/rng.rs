//! Deterministic pseudo-random numbers for workload generation.
//!
//! Experiments in this workspace must be bit-reproducible from a seed, across
//! platforms and dependency upgrades, so we implement a small, well-known
//! generator instead of depending on an external crate:
//! **xoshiro256\*\*** (Blackman & Vigna) seeded via **SplitMix64**, the
//! combination recommended by the xoshiro authors.
//!
//! On top of the raw generator we provide exactly the distributions the
//! workload generators need: uniform integers/floats, Bernoulli, exponential
//! (Poisson-process inter-arrivals), Poisson counts, log-normal (heavy-tailed
//! node works), Zipf (skewed profit densities) and Fisher–Yates shuffling.

/// SplitMix64 step: used for seeding and as a simple standalone stream.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* generator.
///
/// Cloning yields an identical stream — handy for replaying a sub-experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed deterministically from a single `u64` (SplitMix64 expansion).
    pub fn seed_from(seed: u64) -> Rng64 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro requires a nonzero state; splitmix64 output of any seed
        // cannot be all-zero across four draws, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng64 { s }
    }

    /// Derive an independent child stream (for per-thread / per-run seeding).
    ///
    /// Mixing the label through SplitMix64 decorrelates children even for
    /// adjacent labels.
    pub fn child(&self, label: u64) -> Rng64 {
        let mut sm = self.s[0] ^ label.wrapping_mul(0xD1B54A32D192ED03);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Rng64 { s }
    }

    /// Next raw 64-bit value (xoshiro256\*\* scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection
    /// (unbiased). Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.gen_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponential variate with the given `rate` (mean `1/rate`), via
    /// inversion. Used for Poisson-process inter-arrival times.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // 1 - U in (0,1] avoids ln(0).
        -(1.0 - self.gen_f64()).ln() / rate
    }

    /// Poisson count with the given `mean`.
    ///
    /// Knuth multiplication for small means; for `mean > 30` a normal
    /// approximation with continuity correction (adequate for workload
    /// shaping, and avoids pathological loop lengths).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let z = self.standard_normal();
            let v = mean + mean.sqrt() * z + 0.5;
            return if v < 0.0 { 0 } else { v as u64 };
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.gen_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Standard normal variate (Box–Muller; one value per call, the second is
    /// discarded to keep the generator state trajectory simple).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.gen_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal variate with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Zipf-like draw over `{1, …, n}` with exponent `s > 0` by inverse CDF
    /// over precomputable weights — O(n) per call is fine for the small `n`
    /// the workload generators use (density classes, not job counts).
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n >= 1 && s > 0.0);
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut target = self.gen_f64() * norm;
        for k in 1..=n {
            target -= (k as f64).powf(-s);
            if target <= 0.0 {
                return k;
            }
        }
        n
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly choose an element; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(xs.len() as u64) as usize])
        }
    }

    /// Sample an index proportionally to non-negative `weights`.
    /// Panics if the weights sum to zero or contain negatives.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative and sum to a positive value"
        );
        let mut target = self.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_answer() {
        // Reference vector from the SplitMix64 paper implementation:
        // seed 0 produces 0xE220A8397B1DCDAF first.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
        assert_eq!(splitmix64(&mut s), 0x06C45D188009454F);
    }

    #[test]
    fn deterministic_and_clonable() {
        let mut a = Rng64::seed_from(42);
        let mut b = Rng64::seed_from(42);
        let mut c = a.clone();
        for _ in 0..100 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_eq!(v, c.next_u64());
        }
        let mut d = Rng64::seed_from(43);
        assert_ne!(a.next_u64(), d.next_u64());
    }

    #[test]
    fn child_streams_differ_from_parent_and_siblings() {
        let parent = Rng64::seed_from(7);
        let mut c0 = parent.child(0);
        let mut c1 = parent.child(1);
        let mut p = parent.clone();
        let (a, b, c) = (c0.next_u64(), c1.next_u64(), p.next_u64());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Children are themselves deterministic.
        assert_eq!(parent.child(1).next_u64(), b);
    }

    #[test]
    fn gen_range_is_unbiased_enough_and_in_bounds() {
        let mut rng = Rng64::seed_from(1);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        // Each bucket within 10% of the expected 10_000.
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (9_000..=11_000).contains(c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        Rng64::seed_from(0).gen_range(0);
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut rng = Rng64::seed_from(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.gen_range_inclusive(5, 7) {
                5 => saw_lo = true,
                7 => saw_hi = true,
                6 => {}
                other => panic!("{other} out of range"),
            }
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(rng.gen_range_inclusive(9, 9), 9, "singleton range");
    }

    #[test]
    fn gen_f64_in_unit_interval_with_good_mean() {
        let mut rng = Rng64::seed_from(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng64::seed_from(4);
        let rate = 0.25;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean} far from 1/rate = 4");
    }

    #[test]
    fn poisson_mean_small_and_large_regimes() {
        let mut rng = Rng64::seed_from(5);
        for target in [0.5, 3.0, 80.0] {
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(target) as f64).sum::<f64>() / n as f64;
            let tol = (target / 10.0).max(0.05);
            assert!(
                (mean - target).abs() < tol,
                "poisson({target}) empirical mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed_from(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = Rng64::seed_from(7);
        for _ in 0..10_000 {
            assert!(rng.log_normal(0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let mut rng = Rng64::seed_from(8);
        let mut counts = [0u32; 8];
        for _ in 0..50_000 {
            let k = rng.zipf(8, 1.2);
            assert!((1..=8).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[3], "rank 1 should dominate rank 4");
        assert!(counts[3] > counts[7], "rank 4 should dominate rank 8");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from(9);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_and_weighted_index() {
        let mut rng = Rng64::seed_from(10);
        assert_eq!(rng.choose::<u32>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
        // Weighted: index 1 has 90% of the mass.
        let mut ones = 0;
        for _ in 0..10_000 {
            if rng.weighted_index(&[1.0, 9.0]) == 1 {
                ones += 1;
            }
        }
        assert!((8_700..=9_300).contains(&ones), "got {ones}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_index_rejects_zero_total() {
        Rng64::seed_from(0).weighted_index(&[0.0, 0.0]);
    }
}
