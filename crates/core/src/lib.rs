//! # dagsched-core
//!
//! Foundation types shared by every crate in the `dagsched` workspace, which
//! reproduces *"Scheduling Parallelizable Jobs Online to Maximize Throughput"*
//! (Agrawal, Li, Lu, Moseley — SPAA 2017).
//!
//! This crate deliberately has **zero dependencies**: everything downstream —
//! the DAG model, the simulator, the paper's scheduler — builds on the exact
//! integer arithmetic defined here, so simulations are bit-reproducible.
//!
//! Contents:
//!
//! * [`Time`] / [`Work`] — discrete simulation time and integral work units.
//!   At speed 1, one processor completes one work unit per tick, so the two
//!   scales coincide (the paper's convention).
//! * [`Speed`] — exact rational speed augmentation (`s`-speed analysis).
//! * [`MachineGroups`] — related-machines platform descriptions (groups of
//!   processors sharing a speed), with the exact lcm-scaled arithmetic that
//!   keeps heterogeneous progress integral.
//! * [`JobId`] / [`NodeId`] — lightweight identifiers.
//! * [`AlgoParams`] — the constants of the paper's Tables 1–3
//!   (`ε, δ, c, b, a`) together with the derived competitive-ratio constant,
//!   validated at construction.
//! * [`rng`] — a deterministic xoshiro256\*\* PRNG plus the handful of
//!   distributions the workload generators need.

#![warn(missing_docs)]

pub mod error;
pub mod groups;
pub mod ids;
pub mod params;
pub mod rng;
pub mod speed;
pub mod time;

pub use error::SchedError;
pub use groups::{scale_work, ticks_to_complete, MachineGroup, MachineGroups};
pub use ids::{JobId, NodeId};
pub use params::AlgoParams;
pub use rng::Rng64;
pub use speed::Speed;
pub use time::{Time, Work};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SchedError>;
