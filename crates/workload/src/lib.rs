//! # dagsched-workload
//!
//! Online problem instances for the scheduler experiments.
//!
//! An [`Instance`] is a machine size `m` plus a list of [`JobSpec`]s sorted by
//! arrival time. Each job carries a DAG (from `dagsched-dag`) and a
//! [`StepProfitFn`] — the paper's non-increasing profit function `p_i(t)`,
//! restricted to piecewise-constant steps (which subsumes the
//! deadline-and-profit special case: a single step at the relative deadline).
//!
//! [`gen`] builds randomized instances from four orthogonal knobs:
//! arrival process, DAG family, deadline-slack policy and profit policy —
//! the axes swept by the experiments in `dagsched-experiments`. [`codec`]
//! provides a line-oriented text format for persisting instances, so every
//! experiment can be replayed outside the generator.

#![warn(missing_docs)]

pub mod cluster;
pub mod codec;
pub mod gen;
pub mod instance;
pub mod job;
pub mod profit;
pub mod sporadic;

pub use cluster::ClusterTraceGen;
pub use gen::{ArrivalProcess, DagFamily, DeadlinePolicy, ProfitPolicy, ProfitShape, WorkloadGen};
pub use instance::Instance;
pub use job::JobSpec;
pub use profit::StepProfitFn;
pub use sporadic::{SporadicTask, SporadicTaskSet};
