//! Piecewise-constant non-increasing profit functions.
//!
//! The general profit problem gives each job an arbitrary non-increasing
//! `p_i(t)` — the profit for completing `t` ticks after arrival. We restrict
//! to *step functions*: finitely many `(bound, value)` segments followed by a
//! constant tail. This loses no generality for the experiments (any
//! non-increasing function can be discretized to steps on a tick grid) and it
//! makes Section 5's deadline search tractable: the scheduler only needs to
//! consider one candidate deadline per step.
//!
//! The throughput special case is a single step: profit `p` for `t ≤ D`,
//! zero after.

use dagsched_core::{Result, SchedError, Time};
use std::sync::Arc;

/// A non-increasing step function `p(t)` over relative completion time.
///
/// Semantics: with segments `[(b₀, v₀), (b₁, v₁), …]` (strictly increasing
/// `bᵢ`, strictly decreasing `vᵢ`) and tail value `v_tail`:
///
/// * `p(t) = v₀` for `t ≤ b₀`,
/// * `p(t) = vᵢ` for `bᵢ₋₁ < t ≤ bᵢ`,
/// * `p(t) = v_tail` for `t > b_last`.
///
/// Profits are integers so experiment totals are exact.
///
/// Segments live behind an `Arc` so cloning — which the engine does once per
/// job **arrival** to build the scheduler's [`JobInfo`] — is a reference-count
/// bump, not a heap allocation. Profit functions are immutable after
/// construction, so the sharing is unobservable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProfitFn {
    segments: Arc<[(Time, u64)]>,
    tail: u64,
}

impl StepProfitFn {
    /// The deadline special case: profit `p` iff completed within
    /// `rel_deadline` ticks of arrival.
    pub fn deadline(rel_deadline: Time, profit: u64) -> StepProfitFn {
        StepProfitFn {
            segments: Arc::new([(rel_deadline, profit)]),
            tail: 0,
        }
    }

    /// A general step function.
    ///
    /// # Errors
    /// Segments must be non-empty with strictly increasing bounds and
    /// strictly decreasing values, all above the tail value; bounds must be
    /// positive (a profit window of zero ticks is unfillable).
    pub fn steps(segments: Vec<(Time, u64)>, tail: u64) -> Result<StepProfitFn> {
        if segments.is_empty() {
            return Err(SchedError::InvalidInstance(
                "profit function needs at least one segment".into(),
            ));
        }
        if segments[0].0 == Time::ZERO {
            return Err(SchedError::InvalidInstance(
                "first profit bound must be positive".into(),
            ));
        }
        for w in segments.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(SchedError::InvalidInstance(format!(
                    "profit bounds must strictly increase: {} then {}",
                    w[0].0, w[1].0
                )));
            }
            if w[1].1 >= w[0].1 {
                return Err(SchedError::InvalidInstance(format!(
                    "profit values must strictly decrease: {} then {}",
                    w[0].1, w[1].1
                )));
            }
        }
        let last_val = segments.last().unwrap().1;
        if tail >= last_val {
            return Err(SchedError::InvalidInstance(format!(
                "tail {tail} must be below the last segment value {last_val}"
            )));
        }
        Ok(StepProfitFn {
            segments: segments.into(),
            tail,
        })
    }

    /// Evaluate `p(t)` for a relative completion time `t`.
    pub fn eval(&self, t: Time) -> u64 {
        for &(bound, value) in self.segments.iter() {
            if t <= bound {
                return value;
            }
        }
        self.tail
    }

    /// The maximum obtainable profit, `p(0⁺)`.
    pub fn max_profit(&self) -> u64 {
        self.segments[0].1
    }

    /// The paper's `x*`: the largest `t` with `p(t) = p(0⁺)` — the profit is
    /// flat up to (and including) this point.
    pub fn flat_until(&self) -> Time {
        self.segments[0].0
    }

    /// The value after the last breakpoint (0 for deadline jobs).
    pub fn tail_value(&self) -> u64 {
        self.tail
    }

    /// The step bounds and values, for schedulers that enumerate candidate
    /// deadlines (one candidate per step suffices: within a step, smaller
    /// deadlines only constrain more without paying more).
    pub fn segments(&self) -> &[(Time, u64)] {
        &self.segments
    }

    /// For single-step functions with zero tail (the throughput case), the
    /// relative deadline; `None` for genuinely general functions.
    pub fn as_deadline(&self) -> Option<(Time, u64)> {
        if self.segments.len() == 1 && self.tail == 0 {
            Some(self.segments[0])
        } else {
            None
        }
    }

    /// Latest relative time at which completing still earns more than the
    /// tail: the last bound. After this, running the job can gain at most
    /// `tail` (exactly 0 for deadline jobs) — schedulers use it to expire
    /// work.
    pub fn last_useful_time(&self) -> Time {
        self.segments.last().unwrap().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_function_semantics() {
        let f = StepProfitFn::deadline(Time(10), 100);
        assert_eq!(f.eval(Time(0)), 100);
        assert_eq!(f.eval(Time(10)), 100, "deadline tick is inclusive");
        assert_eq!(f.eval(Time(11)), 0);
        assert_eq!(f.max_profit(), 100);
        assert_eq!(f.flat_until(), Time(10));
        assert_eq!(f.as_deadline(), Some((Time(10), 100)));
        assert_eq!(f.last_useful_time(), Time(10));
        assert_eq!(f.tail_value(), 0);
    }

    #[test]
    fn multi_step_semantics() {
        let f = StepProfitFn::steps(vec![(Time(5), 90), (Time(8), 40), (Time(20), 10)], 2).unwrap();
        assert_eq!(f.eval(Time(1)), 90);
        assert_eq!(f.eval(Time(5)), 90);
        assert_eq!(f.eval(Time(6)), 40);
        assert_eq!(f.eval(Time(8)), 40);
        assert_eq!(f.eval(Time(9)), 10);
        assert_eq!(f.eval(Time(20)), 10);
        assert_eq!(f.eval(Time(21)), 2);
        assert_eq!(f.eval(Time(1_000_000)), 2);
        assert_eq!(f.flat_until(), Time(5));
        assert_eq!(f.as_deadline(), None);
        assert_eq!(f.last_useful_time(), Time(20));
    }

    #[test]
    fn eval_is_non_increasing_everywhere() {
        let f = StepProfitFn::steps(vec![(Time(3), 50), (Time(7), 20)], 0).unwrap();
        let mut prev = u64::MAX;
        for t in 0..20 {
            let v = f.eval(Time(t));
            assert!(v <= prev, "p({t}) = {v} increased from {prev}");
            prev = v;
        }
    }

    #[test]
    fn validation_rejects_malformed_functions() {
        assert!(StepProfitFn::steps(vec![], 0).is_err(), "empty");
        assert!(
            StepProfitFn::steps(vec![(Time(0), 10)], 0).is_err(),
            "zero first bound"
        );
        assert!(
            StepProfitFn::steps(vec![(Time(5), 10), (Time(5), 5)], 0).is_err(),
            "non-increasing bounds"
        );
        assert!(
            StepProfitFn::steps(vec![(Time(5), 10), (Time(9), 10)], 0).is_err(),
            "non-decreasing values"
        );
        assert!(
            StepProfitFn::steps(vec![(Time(5), 10)], 10).is_err(),
            "tail not below last value"
        );
        assert!(StepProfitFn::steps(vec![(Time(5), 10)], 9).is_ok());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_fn() -> impl Strategy<Value = StepProfitFn> {
            // Up to 5 segments with increasing bounds / decreasing values.
            (1usize..=5).prop_flat_map(|k| {
                (
                    proptest::collection::vec(1u64..50, k),
                    proptest::collection::vec(1u64..50, k),
                )
                    .prop_map(move |(dbounds, dvals)| {
                        let mut bound = 0u64;
                        let mut segs = Vec::new();
                        let mut value: u64 = dvals.iter().sum::<u64>() + 1;
                        for i in 0..k {
                            bound += dbounds[i];
                            value -= dvals[i];
                            segs.push((Time(bound), value));
                        }
                        StepProfitFn::steps(segs, 0).expect("constructed valid")
                    })
            })
        }

        proptest! {
            #[test]
            fn non_increasing(f in arb_fn(), t1 in 0u64..200, dt in 0u64..200) {
                prop_assert!(f.eval(Time(t1)) >= f.eval(Time(t1 + dt)));
            }

            #[test]
            fn flat_until_is_flat(f in arb_fn()) {
                let x = f.flat_until();
                for t in 0..=x.ticks().min(100) {
                    prop_assert_eq!(f.eval(Time(t)), f.max_profit());
                }
                prop_assert!(f.eval(Time(x.ticks() + 1)) < f.max_profit());
            }
        }
    }
}
