//! A complete online problem instance.

use crate::job::JobSpec;
use dagsched_core::{Result, SchedError, Time, Work};

/// A machine size plus jobs sorted by arrival time.
#[derive(Debug, Clone)]
pub struct Instance {
    m: u32,
    jobs: Vec<JobSpec>,
}

/// Aggregate facts about an instance, for experiment reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Σ W_i.
    pub total_work: Work,
    /// Σ max-profit.
    pub total_profit: u64,
    /// First arrival.
    pub first_arrival: Time,
    /// Last "useful" time: max over jobs of arrival + last profit bound.
    pub horizon: Time,
    /// Offered load `ΣW / (m · (horizon − first_arrival))`; > 1 means
    /// overload (not all work can possibly finish in its useful window).
    pub load_factor: f64,
    /// Mean parallelism `W/L` across jobs.
    pub mean_parallelism: f64,
}

impl Instance {
    /// Validate and build an instance.
    ///
    /// # Errors
    /// * `m == 0`,
    /// * no jobs,
    /// * job ids not dense in order (`jobs[i].id.index() == i`),
    /// * arrivals not sorted non-decreasingly.
    pub fn new(m: u32, jobs: Vec<JobSpec>) -> Result<Instance> {
        if m == 0 {
            return Err(SchedError::InvalidInstance("m must be positive".into()));
        }
        if jobs.is_empty() {
            return Err(SchedError::InvalidInstance("no jobs".into()));
        }
        for (i, j) in jobs.iter().enumerate() {
            if j.id.index() != i {
                return Err(SchedError::InvalidInstance(format!(
                    "job at position {i} has id {}; ids must be dense and ordered",
                    j.id
                )));
            }
        }
        if jobs.windows(2).any(|w| w[1].arrival < w[0].arrival) {
            return Err(SchedError::InvalidInstance(
                "jobs must be sorted by arrival".into(),
            ));
        }
        Ok(Instance { m, jobs })
    }

    /// Number of processors.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The jobs, sorted by arrival, indexed by [`JobId`](dagsched_core::JobId).
    #[inline]
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Always false (construction requires ≥ 1 job); for clippy symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Compute aggregate statistics.
    pub fn stats(&self) -> InstanceStats {
        let n_jobs = self.jobs.len();
        let total_work: Work = self.jobs.iter().map(|j| j.work()).sum();
        let total_profit: u64 = self.jobs.iter().map(|j| j.max_profit()).sum();
        let first_arrival = self.jobs.first().map(|j| j.arrival).unwrap_or(Time::ZERO);
        let horizon = self
            .jobs
            .iter()
            .map(|j| j.last_useful_abs())
            .max()
            .unwrap_or(Time::ZERO);
        let window = horizon.since(first_arrival).max(1);
        let load_factor = total_work.as_f64() / (self.m as f64 * window as f64);
        let mean_parallelism =
            self.jobs.iter().map(|j| j.dag.parallelism()).sum::<f64>() / n_jobs as f64;
        InstanceStats {
            n_jobs,
            total_work,
            total_profit,
            first_arrival,
            horizon,
            load_factor,
            mean_parallelism,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profit::StepProfitFn;
    use dagsched_core::JobId;
    use dagsched_dag::gen;

    fn job(id: u32, arrival: u64, width: u32, d: u64, p: u64) -> JobSpec {
        JobSpec::new(
            JobId(id),
            Time(arrival),
            gen::block(width, 2).into_shared(),
            StepProfitFn::deadline(Time(d), p),
        )
    }

    #[test]
    fn valid_instance_and_stats() {
        let inst = Instance::new(4, vec![job(0, 0, 4, 10, 5), job(1, 5, 8, 10, 3)]).unwrap();
        assert_eq!(inst.m(), 4);
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
        let s = inst.stats();
        assert_eq!(s.n_jobs, 2);
        assert_eq!(s.total_work, Work(8 + 16));
        assert_eq!(s.total_profit, 8);
        assert_eq!(s.first_arrival, Time(0));
        assert_eq!(s.horizon, Time(15));
        assert!((s.load_factor - 24.0 / (4.0 * 15.0)).abs() < 1e-12);
        // block(4): parallelism 4; block(8): parallelism 8 -> mean 6.
        assert!((s.mean_parallelism - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_instances() {
        assert!(Instance::new(0, vec![job(0, 0, 1, 5, 1)]).is_err(), "m = 0");
        assert!(Instance::new(2, vec![]).is_err(), "no jobs");
        assert!(
            Instance::new(2, vec![job(1, 0, 1, 5, 1)]).is_err(),
            "non-dense ids"
        );
        assert!(
            Instance::new(2, vec![job(0, 9, 1, 5, 1), job(1, 3, 1, 5, 1)]).is_err(),
            "unsorted arrivals"
        );
    }

    #[test]
    fn overload_has_load_factor_above_one() {
        // 10 wide blocks of work 20 each arriving together, window 10, m=2:
        // 200 work / (2*10) = 10.
        let jobs: Vec<JobSpec> = (0..10).map(|i| job(i, 0, 10, 10, 1)).collect();
        let inst = Instance::new(2, jobs).unwrap();
        assert!(inst.stats().load_factor > 1.0);
    }
}
