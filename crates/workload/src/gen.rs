//! Randomized instance generation.
//!
//! Instances are built from four orthogonal knobs, each an enum so that
//! experiment configurations are plain data:
//!
//! * [`ArrivalProcess`] — when jobs arrive;
//! * [`DagFamily`] — what the job DAGs look like;
//! * [`DeadlinePolicy`] — how much slack deadlines get relative to the
//!   paper's per-job benchmark `(W−L)/m + L` (Theorem 2's condition is
//!   "slack factor ≥ 1+ε");
//! * [`ProfitPolicy`] + [`ProfitShape`] — how much finishing pays, and
//!   whether the payoff is a single deadline step or a decaying staircase
//!   (the Section 5 general-profit setting).
//!
//! All randomness flows from a single seed through [`Rng64`], so a
//! `WorkloadGen` value *is* the experiment input.

use crate::instance::Instance;
use crate::job::JobSpec;
use crate::profit::StepProfitFn;
use dagsched_core::{JobId, Result, Rng64, Time};
use dagsched_dag::{gen as dgen, DagJobSpec};

/// When jobs arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Every job arrives at time 0 (a one-shot batch).
    AllAtOnce,
    /// Poisson process: exponential inter-arrival gaps with the given rate
    /// (jobs per tick), rounded to the tick grid.
    Poisson {
        /// Jobs per tick.
        rate: f64,
    },
    /// Fixed period with uniform jitter in `[0, jitter]`.
    Periodic {
        /// Base inter-arrival gap.
        period: u64,
        /// Maximum uniform release delay added per job.
        jitter: u64,
    },
    /// Bursts of `burst_size` simultaneous jobs separated by `gap` ticks.
    Bursty {
        /// Jobs per burst.
        burst_size: u32,
        /// Ticks between bursts.
        gap: u64,
    },
}

impl ArrivalProcess {
    /// Generate `n` non-decreasing arrival times.
    fn arrivals(&self, n: usize, rng: &mut Rng64) -> Vec<Time> {
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::AllAtOnce => out.resize(n, Time::ZERO),
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "poisson rate must be positive");
                let mut t = 0.0f64;
                for _ in 0..n {
                    t += rng.exponential(rate);
                    out.push(Time(t as u64));
                }
            }
            ArrivalProcess::Periodic { period, jitter } => {
                for i in 0..n {
                    let j = if jitter > 0 {
                        rng.gen_range_inclusive(0, jitter)
                    } else {
                        0
                    };
                    out.push(Time(i as u64 * period + j));
                }
                out.sort_unstable();
            }
            ArrivalProcess::Bursty { burst_size, gap } => {
                assert!(burst_size >= 1);
                for i in 0..n {
                    let burst = i as u64 / burst_size as u64;
                    out.push(Time(burst * gap));
                }
            }
        }
        out
    }

    /// The Poisson rate that makes the *offered load* `λ·E[W]/m` equal to
    /// `rho` (load > 1 means overload).
    pub fn poisson_for_load(rho: f64, mean_work: f64, m: u32) -> ArrivalProcess {
        assert!(rho > 0.0 && mean_work > 0.0);
        ArrivalProcess::Poisson {
            rate: rho * m as f64 / mean_work,
        }
    }
}

/// What one job's DAG looks like. Ranges are sampled uniformly (inclusive).
#[derive(Debug, Clone, PartialEq)]
pub enum DagFamily {
    /// One sequential node.
    Single {
        /// Work range of the node.
        work: (u64, u64),
    },
    /// A chain (fully sequential: `W = L`).
    Chain {
        /// Chain length range (nodes).
        len: (u32, u32),
        /// Per-node work range.
        node_work: (u64, u64),
    },
    /// An independent block (embarrassingly parallel).
    Block {
        /// Block width range (nodes).
        width: (u32, u32),
        /// Per-node work range.
        node_work: (u64, u64),
    },
    /// Repeated fork-join segments (structured parallelism).
    ForkJoin {
        /// Segment count range.
        segments: (u32, u32),
        /// Fan-out range per segment.
        width: (u32, u32),
        /// Per-node work range.
        node_work: (u64, u64),
    },
    /// Random layered level-graphs.
    Layered {
        /// Layer count range.
        layers: (u32, u32),
        /// Per-layer width range.
        width: (u32, u32),
        /// Per-node work range.
        node_work: (u64, u64),
        /// Probability of each extra cross-layer edge.
        p_edge: f64,
    },
    /// Recursive series-parallel DAGs (Cilk-like).
    SeriesParallel {
        /// Approximate node-count range.
        nodes: (u32, u32),
        /// Per-node work range.
        node_work: (u64, u64),
    },
    /// Erdős–Rényi DAGs over a topological order.
    Random {
        /// Node-count range.
        n: (u32, u32),
        /// Forward-edge probability.
        p: f64,
        /// Per-node work range.
        node_work: (u64, u64),
    },
    /// The paper's Figure 1 adversarial job for machine size `m`.
    Fig1 {
        /// Machine size the construction targets.
        m: u32,
        /// Chain length range (nodes).
        chain_len: (u32, u32),
        /// Work per node.
        grain: u64,
    },
    /// Weighted mixture of families.
    Mixed(Vec<(f64, DagFamily)>),
}

impl DagFamily {
    /// Sample one DAG.
    pub fn sample(&self, rng: &mut Rng64) -> DagJobSpec {
        fn r32(rng: &mut Rng64, (lo, hi): (u32, u32)) -> u32 {
            rng.gen_range_inclusive(lo as u64, hi as u64) as u32
        }
        fn r64(rng: &mut Rng64, (lo, hi): (u64, u64)) -> u64 {
            rng.gen_range_inclusive(lo, hi)
        }
        match self {
            DagFamily::Single { work } => dgen::single(r64(rng, *work)),
            DagFamily::Chain { len, node_work } => {
                let len = r32(rng, *len);
                dgen::chain(len, r64(rng, *node_work))
            }
            DagFamily::Block { width, node_work } => {
                let width = r32(rng, *width);
                dgen::block(width, r64(rng, *node_work))
            }
            DagFamily::ForkJoin {
                segments,
                width,
                node_work,
            } => {
                let s = r32(rng, *segments);
                let w = r32(rng, *width);
                dgen::fork_join(s, w, r64(rng, *node_work))
            }
            DagFamily::Layered {
                layers,
                width,
                node_work,
                p_edge,
            } => {
                let layers = r32(rng, *layers);
                dgen::layered_random(rng, layers, *width, *node_work, *p_edge)
            }
            DagFamily::SeriesParallel { nodes, node_work } => {
                let n = r32(rng, *nodes);
                dgen::series_parallel(rng, n, *node_work)
            }
            DagFamily::Random { n, p, node_work } => {
                let n = r32(rng, *n);
                dgen::random_dag(rng, n, *p, *node_work)
            }
            DagFamily::Fig1 {
                m,
                chain_len,
                grain,
            } => dgen::fig1(*m, r32(rng, *chain_len), *grain),
            DagFamily::Mixed(parts) => {
                assert!(!parts.is_empty(), "mixture needs at least one family");
                let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
                let idx = rng.weighted_index(&weights);
                parts[idx].1.sample(rng)
            }
        }
    }

    /// A representative mixed workload: chains, blocks, fork-joins and
    /// layered DAGs in equal proportion — used as the default by the
    /// experiments.
    pub fn standard_mix(node_work: (u64, u64)) -> DagFamily {
        DagFamily::Mixed(vec![
            (
                1.0,
                DagFamily::Chain {
                    len: (3, 12),
                    node_work,
                },
            ),
            (
                1.0,
                DagFamily::Block {
                    width: (4, 32),
                    node_work,
                },
            ),
            (
                1.0,
                DagFamily::ForkJoin {
                    segments: (1, 4),
                    width: (2, 8),
                    node_work,
                },
            ),
            (
                1.0,
                DagFamily::Layered {
                    layers: (2, 5),
                    width: (1, 6),
                    node_work,
                    p_edge: 0.35,
                },
            ),
        ])
    }
}

/// How the relative deadline is set, as a multiple of the per-job benchmark
/// `brent = (W−L)/m + L` (the completion time `m` dedicated processors
/// guarantee greedily).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlinePolicy {
    /// `D = ceil(factor · brent)`. Theorem 2 requires `factor ≥ 1 + ε`.
    SlackFactor(f64),
    /// Per-job uniform slack factor in `[lo, hi)`.
    UniformSlack {
        /// Smallest slack factor.
        lo: f64,
        /// Largest slack factor (exclusive).
        hi: f64,
    },
    /// A fixed relative deadline for every job (can violate Theorem 2's
    /// condition — used by the lower-bound experiments).
    FixedRelative(u64),
}

impl DeadlinePolicy {
    fn rel_deadline(&self, brent: f64, rng: &mut Rng64) -> Time {
        let d = match *self {
            DeadlinePolicy::SlackFactor(f) => (f * brent).ceil(),
            DeadlinePolicy::UniformSlack { lo, hi } => (rng.gen_f64_range(lo, hi) * brent).ceil(),
            DeadlinePolicy::FixedRelative(d) => d as f64,
        };
        Time((d as u64).max(1))
    }
}

/// How much finishing a job pays (its maximum profit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfitPolicy {
    /// Every job pays the same.
    Uniform(u64),
    /// `p = ceil(density · W)`: constant profit *per unit of work*.
    ProportionalToWork {
        /// Profit per work unit.
        density: f64,
    },
    /// Per-job density uniform in `[lo, hi)`, `p = ceil(density · W)`.
    /// `hi/lo` is the paper's `δ`-style max/min density ratio.
    UniformDensity {
        /// Smallest density.
        lo: f64,
        /// Largest density (exclusive).
        hi: f64,
    },
    /// Density `base · k^{-s}`-ish via a Zipf draw over `classes` classes:
    /// a few very valuable jobs, many cheap ones.
    ZipfDensity {
        /// Number of Zipf classes.
        classes: u64,
        /// Zipf exponent.
        s: f64,
        /// Density scale.
        base: f64,
    },
    /// Per-job density log-uniform over `[lo, hi)`: spreads densities over
    /// many orders of magnitude, so scheduler S's running queue spans
    /// several `[v, c·v)` bands (the regime where its band capacity — not
    /// the machine size — is the binding constraint).
    LogUniformDensity {
        /// Smallest density.
        lo: f64,
        /// Largest density (exclusive).
        hi: f64,
    },
}

impl ProfitPolicy {
    fn profit(&self, work: f64, rng: &mut Rng64) -> u64 {
        let p = match *self {
            ProfitPolicy::Uniform(p) => return p.max(1),
            ProfitPolicy::ProportionalToWork { density } => density * work,
            ProfitPolicy::UniformDensity { lo, hi } => rng.gen_f64_range(lo, hi) * work,
            ProfitPolicy::ZipfDensity { classes, s, base } => {
                let k = rng.zipf(classes, s);
                base * k as f64 * work / classes as f64
            }
            ProfitPolicy::LogUniformDensity { lo, hi } => {
                assert!(lo > 0.0 && lo < hi);
                (rng.gen_f64_range(lo.ln(), hi.ln())).exp() * work
            }
        };
        (p.ceil() as u64).max(1)
    }
}

/// The shape of the profit function around the sampled deadline/profit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfitShape {
    /// A single step: full profit by the deadline, zero after (throughput).
    Deadline,
    /// Section 5 style staircase: full profit up to the deadline, then
    /// `extra_steps` further steps at times `D·time_factor^k` with values
    /// decaying by `value_factor` each step, then zero.
    SteppedDecay {
        /// Steps after the initial deadline.
        extra_steps: u32,
        /// Each step's bound is the previous times this (> 1).
        time_factor: f64,
        /// Each step's value is the previous times this (in (0, 1)).
        value_factor: f64,
    },
}

impl ProfitShape {
    fn build(&self, rel_deadline: Time, profit: u64) -> StepProfitFn {
        match *self {
            ProfitShape::Deadline => StepProfitFn::deadline(rel_deadline, profit),
            ProfitShape::SteppedDecay {
                extra_steps,
                time_factor,
                value_factor,
            } => {
                assert!(time_factor > 1.0 && value_factor < 1.0 && value_factor > 0.0);
                let mut segs = vec![(rel_deadline, profit)];
                let mut t = rel_deadline.as_f64();
                let mut v = profit as f64;
                for _ in 0..extra_steps {
                    t *= time_factor;
                    v *= value_factor;
                    let tv = Time((t.ceil() as u64).max(segs.last().unwrap().0.ticks() + 1));
                    let vv = (v.floor() as u64).min(segs.last().unwrap().1.saturating_sub(1));
                    if vv == 0 {
                        break;
                    }
                    segs.push((tv, vv));
                }
                StepProfitFn::steps(segs, 0).expect("constructed staircase is valid")
            }
        }
    }
}

/// A complete, seeded instance generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadGen {
    /// Machine size the deadlines are calibrated against (and the instance
    /// records).
    pub m: u32,
    /// Number of jobs.
    pub n_jobs: usize,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// DAG family.
    pub family: DagFamily,
    /// Deadline slack policy.
    pub deadlines: DeadlinePolicy,
    /// Profit magnitude policy.
    pub profits: ProfitPolicy,
    /// Profit function shape.
    pub shape: ProfitShape,
}

impl WorkloadGen {
    /// A reasonable default configuration to tweak from: `n` mixed-shape
    /// jobs, Poisson arrivals at load 1.0, Theorem-2 slack `1+ε = 2`,
    /// work-proportional profits, deadline-shaped payoff.
    pub fn standard(m: u32, n_jobs: usize, seed: u64) -> WorkloadGen {
        let family = DagFamily::standard_mix((1, 8));
        WorkloadGen {
            m,
            n_jobs,
            seed,
            arrivals: ArrivalProcess::Poisson { rate: 0.05 },
            family,
            deadlines: DeadlinePolicy::SlackFactor(2.0),
            profits: ProfitPolicy::ProportionalToWork { density: 1.0 },
            shape: ProfitShape::Deadline,
        }
    }

    /// Generate the instance.
    pub fn generate(&self) -> Result<Instance> {
        let mut rng = Rng64::seed_from(self.seed);
        let arrivals = self.arrivals.arrivals(self.n_jobs, &mut rng);
        let mut jobs = Vec::with_capacity(self.n_jobs);
        for (i, arrival) in arrivals.into_iter().enumerate() {
            let dag = self.family.sample(&mut rng).into_shared();
            let brent = {
                let w = dag.total_work().as_f64();
                let l = dag.span().as_f64();
                (w - l) / self.m as f64 + l
            };
            let d = self.deadlines.rel_deadline(brent, &mut rng);
            let p = self.profits.profit(dag.total_work().as_f64(), &mut rng);
            let profit = self.shape.build(d, p);
            jobs.push(JobSpec::new(JobId(i as u32), arrival, dag, profit));
        }
        Instance::new(self.m, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = WorkloadGen::standard(8, 50, 1234);
        let a = g.generate().unwrap();
        let b = g.generate().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.work(), y.work());
            assert_eq!(x.span(), y.span());
            assert_eq!(x.profit, y.profit);
        }
        let c = WorkloadGen { seed: 99, ..g }.generate().unwrap();
        let differs = a
            .jobs()
            .iter()
            .zip(c.jobs())
            .any(|(x, y)| x.work() != y.work() || x.arrival != y.arrival);
        assert!(differs, "different seeds give different instances");
    }

    #[test]
    fn arrival_processes_are_sorted_and_shaped() {
        let mut rng = Rng64::seed_from(5);
        for p in [
            ArrivalProcess::AllAtOnce,
            ArrivalProcess::Poisson { rate: 0.3 },
            ArrivalProcess::Periodic {
                period: 10,
                jitter: 3,
            },
            ArrivalProcess::Bursty {
                burst_size: 4,
                gap: 20,
            },
        ] {
            let ts = p.arrivals(40, &mut rng);
            assert_eq!(ts.len(), 40);
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{p:?} unsorted");
        }
        // Bursts: first 4 at 0, next 4 at 20.
        let ts = ArrivalProcess::Bursty {
            burst_size: 4,
            gap: 20,
        }
        .arrivals(8, &mut rng);
        assert_eq!(ts[3], Time(0));
        assert_eq!(ts[4], Time(20));
        // AllAtOnce: everything at zero.
        let ts = ArrivalProcess::AllAtOnce.arrivals(3, &mut rng);
        assert!(ts.iter().all(|t| *t == Time::ZERO));
    }

    #[test]
    fn poisson_for_load_hits_target_rate() {
        let p = ArrivalProcess::poisson_for_load(2.0, 50.0, 10);
        match p {
            ArrivalProcess::Poisson { rate } => assert!((rate - 0.4).abs() < 1e-12),
            _ => unreachable!(),
        }
    }

    #[test]
    fn deadline_policies_scale_brent() {
        let mut rng = Rng64::seed_from(6);
        let brent = 40.0;
        assert_eq!(
            DeadlinePolicy::SlackFactor(1.5).rel_deadline(brent, &mut rng),
            Time(60)
        );
        assert_eq!(
            DeadlinePolicy::FixedRelative(7).rel_deadline(brent, &mut rng),
            Time(7)
        );
        for _ in 0..100 {
            let d = DeadlinePolicy::UniformSlack { lo: 1.0, hi: 2.0 }.rel_deadline(brent, &mut rng);
            assert!(d >= Time(40) && d <= Time(80));
        }
    }

    #[test]
    fn profit_policies_respect_shape() {
        let mut rng = Rng64::seed_from(7);
        assert_eq!(ProfitPolicy::Uniform(9).profit(123.0, &mut rng), 9);
        assert_eq!(
            ProfitPolicy::ProportionalToWork { density: 2.0 }.profit(10.0, &mut rng),
            20
        );
        for _ in 0..50 {
            let p = ProfitPolicy::UniformDensity { lo: 1.0, hi: 3.0 }.profit(10.0, &mut rng);
            assert!((10..=30).contains(&p));
        }
        // Zipf: all positive.
        for _ in 0..50 {
            assert!(
                ProfitPolicy::ZipfDensity {
                    classes: 8,
                    s: 1.1,
                    base: 4.0
                }
                .profit(10.0, &mut rng)
                    >= 1
            );
        }
        // Log-uniform: within bounds and spanning decades.
        let pol = ProfitPolicy::LogUniformDensity {
            lo: 1.0,
            hi: 10_000.0,
        };
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let p = pol.profit(10.0, &mut rng);
            assert!((10..=100_000).contains(&p));
            if p < 100 {
                lo_seen = true;
            }
            if p > 10_000 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen, "log-uniform must span the range");
    }

    #[test]
    fn stepped_decay_builds_valid_staircases() {
        let shape = ProfitShape::SteppedDecay {
            extra_steps: 3,
            time_factor: 1.5,
            value_factor: 0.5,
        };
        let f = shape.build(Time(10), 100);
        assert_eq!(f.max_profit(), 100);
        assert_eq!(f.flat_until(), Time(10));
        assert!(f.segments().len() >= 2);
        // strictly increasing bounds, strictly decreasing values (validated
        // by the StepProfitFn constructor; spot-check evaluation).
        assert!(f.eval(Time(11)) < 100);
        assert_eq!(f.eval(Time(10_000)), 0);
        // Tiny profits collapse gracefully to fewer steps.
        let f = shape.build(Time(3), 1);
        assert_eq!(f.segments().len(), 1);
    }

    #[test]
    fn generate_respects_theorem2_condition_when_asked() {
        let g = WorkloadGen {
            deadlines: DeadlinePolicy::SlackFactor(1.75),
            ..WorkloadGen::standard(8, 60, 42)
        };
        let inst = g.generate().unwrap();
        for j in inst.jobs() {
            let brent = j.brent_bound(8);
            let d = j.rel_deadline().unwrap().as_f64();
            assert!(
                d >= 1.75 * brent - 1.0,
                "deadline {d} below (1+eps)*brent = {}",
                1.75 * brent
            );
        }
    }

    #[test]
    fn mixed_family_samples_every_member() {
        let fam = DagFamily::Mixed(vec![
            (
                1.0,
                DagFamily::Chain {
                    len: (5, 5),
                    node_work: (1, 1),
                },
            ),
            (
                1.0,
                DagFamily::Block {
                    width: (5, 5),
                    node_work: (1, 1),
                },
            ),
        ]);
        let mut rng = Rng64::seed_from(8);
        let mut saw_chain = false;
        let mut saw_block = false;
        for _ in 0..60 {
            let d = fam.sample(&mut rng);
            if d.span().units() == 5 {
                saw_chain = true;
            } else if d.span().units() == 1 {
                saw_block = true;
            }
        }
        assert!(saw_chain && saw_block);
    }
}
