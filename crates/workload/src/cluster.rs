//! A cluster-trace-like workload: the closest synthetic equivalent to the
//! production traces a systems evaluation of this scheduler would use
//! (per DESIGN.md's substitution policy — no proprietary traces are
//! available, so we model their published *shape*):
//!
//! * **diurnal arrivals** — a Poisson process whose rate follows a
//!   sinusoidal day/night cycle (implemented by thinning);
//! * **heavy-tailed job sizes** — log-normal work multipliers, so a few
//!   jobs dominate total work;
//! * **job classes** — a mix of *interactive* (small fork-join DAGs, tight
//!   deadlines, high value density), *pipeline* (medium series-parallel,
//!   medium slack) and *batch* (large layered DAGs, loose deadlines, low
//!   density).
//!
//! All knobs have defaults chosen so `ClusterTraceGen::new(m, n, seed)`
//! produces something recognizably trace-shaped out of the box.

use crate::instance::Instance;
use crate::job::JobSpec;
use crate::profit::StepProfitFn;
use dagsched_core::{JobId, Result, Rng64, Time};
use dagsched_dag::gen as dgen;

/// Per-class shape knobs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSpec {
    /// Probability weight of the class in the mix.
    pub weight: f64,
    /// Deadline slack factor over `(W−L)/m + L`.
    pub slack: f64,
    /// Profit per unit of work.
    pub density: f64,
}

/// A seeded cluster-trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTraceGen {
    /// Machine size deadlines are calibrated against.
    pub m: u32,
    /// Number of jobs to emit.
    pub n_jobs: usize,
    /// Master seed.
    pub seed: u64,
    /// Ticks per simulated day (the diurnal period).
    pub day_ticks: u64,
    /// Peak arrival rate (jobs/tick) at the top of the cycle.
    pub peak_rate: f64,
    /// Night-to-peak rate ratio in (0, 1].
    pub trough_ratio: f64,
    /// σ of the log-normal work multiplier (tail heaviness).
    pub size_sigma: f64,
    /// The interactive class (small fork-join, tight deadlines, high value).
    pub interactive: ClassSpec,
    /// The pipeline class (medium series-parallel, medium slack).
    pub pipeline: ClassSpec,
    /// The batch class (large layered DAGs, loose deadlines, low value).
    pub batch: ClassSpec,
}

impl ClusterTraceGen {
    /// Trace-shaped defaults for a machine of `m` processors.
    pub fn new(m: u32, n_jobs: usize, seed: u64) -> ClusterTraceGen {
        ClusterTraceGen {
            m,
            n_jobs,
            seed,
            day_ticks: 2_000,
            peak_rate: 0.08 * m as f64 / 8.0,
            trough_ratio: 0.25,
            size_sigma: 1.0,
            interactive: ClassSpec {
                weight: 0.5,
                slack: 1.6,
                density: 8.0,
            },
            pipeline: ClassSpec {
                weight: 0.3,
                slack: 2.5,
                density: 3.0,
            },
            batch: ClassSpec {
                weight: 0.2,
                slack: 4.0,
                density: 1.0,
            },
        }
    }

    /// Instantaneous arrival rate at tick `t` (sinusoidal diurnal cycle).
    pub fn rate_at(&self, t: u64) -> f64 {
        let phase = (t % self.day_ticks) as f64 / self.day_ticks as f64;
        let wave = 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos()); // 0..1
        let floor = self.trough_ratio * self.peak_rate;
        floor + (self.peak_rate - floor) * wave
    }

    /// Generate the instance.
    pub fn generate(&self) -> Result<Instance> {
        assert!(self.peak_rate > 0.0 && self.trough_ratio > 0.0 && self.trough_ratio <= 1.0);
        let mut rng = Rng64::seed_from(self.seed);
        let mut jobs = Vec::with_capacity(self.n_jobs);
        // Thinning: candidate events at the peak rate, accepted with
        // probability rate(t)/peak.
        let mut t = 0.0f64;
        let mut emitted = 0usize;
        while emitted < self.n_jobs {
            t += rng.exponential(self.peak_rate);
            let tick = t as u64;
            if !rng.gen_bool(self.rate_at(tick) / self.peak_rate) {
                continue;
            }
            let (class, dag) = self.sample_job(&mut rng);
            let w = dag.total_work().as_f64();
            let l = dag.span().as_f64();
            let brent = (w - l) / self.m as f64 + l;
            let d = Time(((class.slack * brent).ceil() as u64).max(1));
            let p = ((class.density * w).ceil() as u64).max(1);
            jobs.push(JobSpec::new(
                JobId(emitted as u32),
                Time(tick),
                dag.into_shared(),
                StepProfitFn::deadline(d, p),
            ));
            emitted += 1;
        }
        Instance::new(self.m, jobs)
    }

    /// Sample one job: pick a class, then a DAG with a heavy-tailed size
    /// multiplier applied to its node count.
    fn sample_job(&self, rng: &mut Rng64) -> (ClassSpec, dagsched_dag::DagJobSpec) {
        let weights = [
            self.interactive.weight,
            self.pipeline.weight,
            self.batch.weight,
        ];
        let class_idx = rng.weighted_index(&weights);
        // Log-normal size multiplier, clamped to keep instances laptop-scale.
        let mult = rng.log_normal(0.0, self.size_sigma).clamp(0.2, 20.0);
        let scale = |base: u32| ((base as f64 * mult).round() as u32).max(1);
        match class_idx {
            0 => {
                let dag = dgen::fork_join(
                    rng.gen_range_inclusive(1, 2) as u32,
                    scale(4).min(64),
                    rng.gen_range_inclusive(1, 3),
                );
                (self.interactive, dag)
            }
            1 => {
                let dag = dgen::series_parallel(rng, scale(10).min(200), (1, 5));
                (self.pipeline, dag)
            }
            _ => {
                let layers = rng.gen_range_inclusive(3, 6) as u32;
                let dag =
                    dgen::layered_random(rng, layers, (2, scale(6).clamp(2, 40)), (2, 8), 0.3);
                (self.batch, dag)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = ClusterTraceGen::new(16, 80, 7);
        let a = g.generate().unwrap();
        let b = g.generate().unwrap();
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.work(), y.work());
            assert_eq!(x.profit, y.profit);
        }
        let c = ClusterTraceGen { seed: 8, ..g }.generate().unwrap();
        assert!(a
            .jobs()
            .iter()
            .zip(c.jobs())
            .any(|(x, y)| x.arrival != y.arrival || x.work() != y.work()));
    }

    #[test]
    fn diurnal_rate_shape() {
        let g = ClusterTraceGen::new(8, 10, 1);
        let peak = g.rate_at(g.day_ticks / 2);
        let trough = g.rate_at(0);
        assert!((peak - g.peak_rate).abs() < 1e-9, "mid-cycle is the peak");
        assert!(
            (trough - g.trough_ratio * g.peak_rate).abs() < 1e-9,
            "cycle start is the trough"
        );
        assert!(g.rate_at(g.day_ticks / 4) > trough);
        assert!(g.rate_at(g.day_ticks / 4) < peak);
        // Periodicity.
        assert_eq!(g.rate_at(17), g.rate_at(17 + g.day_ticks));
    }

    #[test]
    fn arrivals_cluster_around_the_peak() {
        let g = ClusterTraceGen::new(8, 400, 3);
        let inst = g.generate().unwrap();
        // Bucket arrivals by day phase halves: the half around the peak
        // (2nd and 3rd quarters) must clearly dominate.
        let mut peak_half = 0u32;
        let mut trough_half = 0u32;
        for j in inst.jobs() {
            let phase = j.arrival.ticks() % g.day_ticks;
            if (g.day_ticks / 4..3 * g.day_ticks / 4).contains(&phase) {
                peak_half += 1;
            } else {
                trough_half += 1;
            }
        }
        assert!(
            peak_half as f64 > 1.3 * trough_half as f64,
            "peak {peak_half} vs trough {trough_half}"
        );
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let inst = ClusterTraceGen::new(8, 300, 11).generate().unwrap();
        let mut works: Vec<u64> = inst.jobs().iter().map(|j| j.work().units()).collect();
        works.sort_unstable();
        let median = works[works.len() / 2];
        let max = *works.last().unwrap();
        assert!(
            max as f64 > 8.0 * median as f64,
            "max {max} vs median {median}: tail too light"
        );
    }

    #[test]
    fn all_classes_appear_and_deadlines_scale_with_class() {
        let inst = ClusterTraceGen::new(8, 300, 13).generate().unwrap();
        // Interactive jobs (density 8) and batch jobs (density 1) both exist:
        // detect via profit/work ratio.
        let mut high = 0;
        let mut low = 0;
        for j in inst.jobs() {
            let dens = j.max_profit() as f64 / j.work().as_f64();
            if dens > 6.0 {
                high += 1;
            }
            if dens < 1.5 {
                low += 1;
            }
        }
        assert!(high > 10, "interactive class missing ({high})");
        assert!(low > 10, "batch class missing ({low})");
    }

    #[test]
    fn generated_instance_is_simulatable() {
        use dagsched_core::Speed;
        let inst = ClusterTraceGen::new(8, 100, 17).generate().unwrap();
        let stats = inst.stats();
        assert_eq!(stats.n_jobs, 100);
        assert!(stats.load_factor > 0.0);
        let _ = Speed::ONE; // engine-side integration lives in root tests
    }
}
