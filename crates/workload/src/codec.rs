//! Line-oriented text (de)serialization of instances.
//!
//! Experiments persist their generated instances so any run can be replayed
//! or inspected without the generator. The format is deliberately trivial —
//! whitespace-separated tokens, one concept per line — so diffs are readable
//! and no serialization dependency is needed:
//!
//! ```text
//! dagsched-instance v1
//! m 4
//! jobs 1
//! job 0
//! arrival 17
//! profit 2 0          # segment-count tail
//! seg 10 100          # bound value
//! seg 20 40
//! nodes 3
//! work 2 3 1
//! edges 2
//! edge 0 1
//! edge 1 2
//! end
//! ```

use crate::instance::Instance;
use crate::job::JobSpec;
use crate::profit::StepProfitFn;
use dagsched_core::{JobId, NodeId, Result, SchedError, Time, Work};
use dagsched_dag::DagBuilder;
use std::fmt::Write as _;

/// Serialize an instance to the v1 text format.
pub fn encode(inst: &Instance) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "dagsched-instance v1");
    let _ = writeln!(s, "m {}", inst.m());
    let _ = writeln!(s, "jobs {}", inst.len());
    for job in inst.jobs() {
        let _ = writeln!(s, "job {}", job.id.0);
        let _ = writeln!(s, "arrival {}", job.arrival);
        let segs = job.profit.segments();
        let _ = writeln!(s, "profit {} {}", segs.len(), job.profit.tail_value());
        for (b, v) in segs {
            let _ = writeln!(s, "seg {b} {v}");
        }
        let _ = writeln!(s, "nodes {}", job.dag.num_nodes());
        let works: Vec<String> = job
            .dag
            .node_works()
            .iter()
            .map(|w| w.units().to_string())
            .collect();
        let _ = writeln!(s, "work {}", works.join(" "));
        let _ = writeln!(s, "edges {}", job.dag.num_edges());
        for u in 0..job.dag.num_nodes() as u32 {
            for v in job.dag.successors(NodeId(u)) {
                let _ = writeln!(s, "edge {u} {}", v.0);
            }
        }
        let _ = writeln!(s, "end");
    }
    s
}

/// A token cursor with line tracking for error messages.
struct Lines<'a> {
    inner: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Lines<'a> {
        Lines {
            inner: text.lines(),
            line_no: 0,
        }
    }

    /// Next non-empty line, split into tokens (comments after `#` dropped).
    fn next_tokens(&mut self) -> Result<Vec<&'a str>> {
        loop {
            let line = self.inner.next().ok_or_else(|| {
                SchedError::Codec(format!(
                    "unexpected end of input after line {}",
                    self.line_no
                ))
            })?;
            self.line_no += 1;
            let body = line.split('#').next().unwrap_or("").trim();
            if !body.is_empty() {
                return Ok(body.split_whitespace().collect());
            }
        }
    }

    fn expect(&mut self, keyword: &str, arity: usize) -> Result<Vec<&'a str>> {
        let toks = self.next_tokens()?;
        if toks[0] != keyword || toks.len() != arity + 1 {
            return Err(SchedError::Codec(format!(
                "line {}: expected `{keyword}` with {arity} argument(s), got {:?}",
                self.line_no, toks
            )));
        }
        Ok(toks[1..].to_vec())
    }

    fn err(&self, msg: impl Into<String>) -> SchedError {
        SchedError::Codec(format!("line {}: {}", self.line_no, msg.into()))
    }
}

fn parse<T: std::str::FromStr>(tok: &str, lines: &Lines<'_>, what: &str) -> Result<T> {
    tok.parse()
        .map_err(|_| lines.err(format!("cannot parse {what} from {tok:?}")))
}

/// Parse the v1 text format.
pub fn decode(text: &str) -> Result<Instance> {
    let mut lines = Lines::new(text);
    let header = lines.next_tokens()?;
    if header != ["dagsched-instance", "v1"] {
        return Err(lines.err("missing `dagsched-instance v1` header"));
    }
    let m: u32 = parse(lines.expect("m", 1)?[0], &lines, "machine count")?;
    let n_jobs: usize = parse(lines.expect("jobs", 1)?[0], &lines, "job count")?;
    let mut jobs = Vec::with_capacity(n_jobs);
    for expect_id in 0..n_jobs {
        let id: u32 = parse(lines.expect("job", 1)?[0], &lines, "job id")?;
        if id as usize != expect_id {
            return Err(lines.err(format!("job id {id}, expected {expect_id}")));
        }
        let arrival: u64 = parse(lines.expect("arrival", 1)?[0], &lines, "arrival")?;
        let p = lines.expect("profit", 2)?;
        let n_segs: usize = parse(p[0], &lines, "segment count")?;
        let tail: u64 = parse(p[1], &lines, "tail value")?;
        let mut segs = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            let s = lines.expect("seg", 2)?;
            segs.push((
                Time(parse(s[0], &lines, "segment bound")?),
                parse(s[1], &lines, "segment value")?,
            ));
        }
        let profit = StepProfitFn::steps(segs, tail)?;
        let n_nodes: usize = parse(lines.expect("nodes", 1)?[0], &lines, "node count")?;
        let w = lines.next_tokens()?;
        if w[0] != "work" || w.len() != n_nodes + 1 {
            return Err(lines.err(format!("expected `work` with {n_nodes} values")));
        }
        let mut builder = DagBuilder::with_capacity(n_nodes, 0);
        for tok in &w[1..] {
            builder.add_node(Work(parse(tok, &lines, "node work")?));
        }
        let n_edges: usize = parse(lines.expect("edges", 1)?[0], &lines, "edge count")?;
        for _ in 0..n_edges {
            let e = lines.expect("edge", 2)?;
            let from: u32 = parse(e[0], &lines, "edge source")?;
            let to: u32 = parse(e[1], &lines, "edge target")?;
            builder.add_edge(NodeId(from), NodeId(to))?;
        }
        lines.expect("end", 0)?;
        jobs.push(JobSpec::new(
            JobId(id),
            Time(arrival),
            builder.build()?.into_shared(),
            profit,
        ));
    }
    Instance::new(m, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ProfitShape, WorkloadGen};

    fn assert_instances_equal(a: &Instance, b: &Instance) {
        assert_eq!(a.m(), b.m());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.profit, y.profit);
            assert_eq!(*x.dag, *y.dag);
        }
    }

    #[test]
    fn round_trip_standard_workload() {
        let inst = WorkloadGen::standard(8, 30, 77).generate().unwrap();
        let text = encode(&inst);
        let back = decode(&text).unwrap();
        assert_instances_equal(&inst, &back);
        // And encoding is stable.
        assert_eq!(encode(&back), text);
    }

    #[test]
    fn round_trip_general_profit_workload() {
        let gen = WorkloadGen {
            shape: ProfitShape::SteppedDecay {
                extra_steps: 3,
                time_factor: 1.6,
                value_factor: 0.4,
            },
            ..WorkloadGen::standard(4, 20, 5)
        };
        let inst = gen.generate().unwrap();
        let back = decode(&encode(&inst)).unwrap();
        assert_instances_equal(&inst, &back);
    }

    #[test]
    fn decode_accepts_comments_and_blank_lines() {
        let text = "\
# a hand-written instance
dagsched-instance v1

m 2
jobs 1
job 0
arrival 3   # early
profit 1 0
seg 10 5
nodes 2
work 4 4
edges 1
edge 0 1
end
";
        let inst = decode(text).unwrap();
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.jobs()[0].work(), Work(8));
        assert_eq!(inst.jobs()[0].span(), Work(8));
        assert_eq!(inst.jobs()[0].rel_deadline(), Some(Time(10)));
    }

    #[test]
    fn decode_rejects_malformed_inputs() {
        assert!(decode("").is_err(), "empty");
        assert!(decode("not-a-header v1\n").is_err(), "bad header");
        let ok = "\
dagsched-instance v1
m 2
jobs 1
job 0
arrival 0
profit 1 0
seg 10 5
nodes 1
work 3
edges 0
end
";
        assert!(decode(ok).is_ok());
        for (broken, why) in [
            (ok.replace("m 2", "m x"), "non-numeric m"),
            (ok.replace("job 0", "job 1"), "wrong job id"),
            (ok.replace("seg 10 5", "seg 0 5"), "invalid profit bound"),
            (ok.replace("work 3", "work 3 4"), "work arity mismatch"),
            (ok.replace("edges 0", "edges 1"), "missing edge line"),
            (ok.replace("\nend\n", "\n"), "missing end"),
        ] {
            assert!(decode(&broken).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn decode_validates_dag_through_builder() {
        // An edge out of range must surface as an error, not a panic.
        let text = "\
dagsched-instance v1
m 1
jobs 1
job 0
arrival 0
profit 1 0
seg 5 1
nodes 1
work 2
edges 1
edge 0 7
end
";
        assert!(decode(text).is_err());
    }
}
