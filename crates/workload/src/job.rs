//! A single online job: arrival + DAG + profit function.

use crate::profit::StepProfitFn;
use dagsched_core::{JobId, Time, Work};
use dagsched_dag::DagJobSpec;
use std::sync::Arc;

/// One job of an online instance.
///
/// The DAG is shared (`Arc`) because the engine, the optimal-bound machinery
/// and repeated simulation runs all read the same immutable structure.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Dense id within the instance (also its index in `Instance::jobs`).
    pub id: JobId,
    /// Arrival (release) time `r_i`.
    pub arrival: Time,
    /// The job body.
    pub dag: Arc<DagJobSpec>,
    /// Profit as a function of relative completion time.
    pub profit: StepProfitFn,
}

impl JobSpec {
    /// Construct a job.
    pub fn new(id: JobId, arrival: Time, dag: Arc<DagJobSpec>, profit: StepProfitFn) -> JobSpec {
        JobSpec {
            id,
            arrival,
            dag,
            profit,
        }
    }

    /// Total work `W_i`.
    #[inline]
    pub fn work(&self) -> Work {
        self.dag.total_work()
    }

    /// Span `L_i`.
    #[inline]
    pub fn span(&self) -> Work {
        self.dag.span()
    }

    /// Relative deadline `D_i` for deadline-profit jobs (`None` for general
    /// profit functions).
    pub fn rel_deadline(&self) -> Option<Time> {
        self.profit.as_deadline().map(|(d, _)| d)
    }

    /// Absolute deadline `d_i = r_i + D_i` for deadline-profit jobs.
    pub fn abs_deadline(&self) -> Option<Time> {
        self.rel_deadline()
            .map(|d| self.arrival.saturating_add(d.ticks()))
    }

    /// Maximum obtainable profit `p_i(0⁺)`.
    #[inline]
    pub fn max_profit(&self) -> u64 {
        self.profit.max_profit()
    }

    /// The latest absolute time at which completing this job still earns
    /// more than the profit tail; after it, deadline jobs are worthless.
    pub fn last_useful_abs(&self) -> Time {
        self.arrival
            .saturating_add(self.profit.last_useful_time().ticks())
    }

    /// The paper's per-job benchmark `(W−L)/m + L` as a real number: the
    /// completion time a greedy schedule achieves on `m` dedicated
    /// processors, and (as `max{L, W/m} ≤` it `≤ 2·max{L, W/m}`) a proxy for
    /// the best any schedule can do.
    pub fn brent_bound(&self, m: u32) -> f64 {
        let w = self.work().as_f64();
        let l = self.span().as_f64();
        (w - l) / m as f64 + l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::gen;

    #[test]
    fn accessors() {
        let dag = gen::diamond(4, 5).into_shared();
        let job = JobSpec::new(
            JobId(3),
            Time(10),
            dag.clone(),
            StepProfitFn::deadline(Time(30), 7),
        );
        assert_eq!(job.work(), dag.total_work());
        assert_eq!(job.span(), Work(7));
        assert_eq!(job.rel_deadline(), Some(Time(30)));
        assert_eq!(job.abs_deadline(), Some(Time(40)));
        assert_eq!(job.max_profit(), 7);
        assert_eq!(job.last_useful_abs(), Time(40));
    }

    #[test]
    fn general_profit_job_has_no_deadline() {
        let dag = gen::chain(3, 2).into_shared();
        let f = StepProfitFn::steps(vec![(Time(10), 20), (Time(20), 5)], 0).unwrap();
        let job = JobSpec::new(JobId(0), Time(5), dag, f);
        assert_eq!(job.rel_deadline(), None);
        assert_eq!(job.abs_deadline(), None);
        assert_eq!(job.last_useful_abs(), Time(25));
    }

    #[test]
    fn brent_bound_matches_formula() {
        // W = 22, L = 7 (diamond of 4 width-5 nodes): (22-7)/m + 7.
        let dag = gen::diamond(4, 5).into_shared();
        let job = JobSpec::new(JobId(0), Time(0), dag, StepProfitFn::deadline(Time(9), 1));
        assert!((job.brent_bound(5) - (15.0 / 5.0 + 7.0)).abs() < 1e-12);
    }
}
