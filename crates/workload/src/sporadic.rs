//! Sporadic DAG task sets — the recurring-job model of the real-time
//! literature the paper builds on (Saifullah et al., Li et al., Baruah).
//!
//! A [`SporadicTask`] releases an instance of its DAG repeatedly, at least
//! `period` ticks apart (sporadic = period plus random jitter); each
//! instance must finish within the task's relative deadline. A
//! [`SporadicTaskSet`] unrolls all tasks over a horizon into an ordinary
//! online [`Instance`], so every scheduler in the workspace can run it —
//! and returns the job→task map that task-aware schedulers (federated
//! scheduling, in `dagsched-sched`) need.

use crate::instance::Instance;
use crate::job::JobSpec;
use crate::profit::StepProfitFn;
use dagsched_core::{JobId, Result, Rng64, SchedError, Time};
use dagsched_dag::DagJobSpec;
use std::sync::Arc;

/// One recurring DAG task.
#[derive(Debug, Clone)]
pub struct SporadicTask {
    /// The DAG released at each instance.
    pub dag: Arc<DagJobSpec>,
    /// Minimum inter-arrival time.
    pub period: u64,
    /// Relative deadline of each instance (constrained: `≤ period` is the
    /// usual real-time setting, but not enforced).
    pub rel_deadline: Time,
    /// Profit per completed instance (for throughput-style evaluation;
    /// classic real-time analysis treats every instance as mandatory).
    pub profit: u64,
    /// Maximum extra release delay on top of the period (0 = periodic).
    pub jitter: u64,
}

impl SporadicTask {
    /// Utilization `W / period`.
    pub fn utilization(&self) -> f64 {
        self.dag.total_work().as_f64() / self.period as f64
    }

    /// Density `W / min(D, period)` (the sequential-task density used by
    /// partitioned EDF tests).
    pub fn density(&self) -> f64 {
        self.dag.total_work().as_f64() / self.rel_deadline.as_f64().min(self.period as f64)
    }

    /// Is the task *heavy* in the federated-scheduling sense — impossible
    /// to finish on one dedicated processor within its deadline
    /// (`W > D`)?
    pub fn is_heavy(&self) -> bool {
        self.dag.total_work().as_f64() > self.rel_deadline.as_f64()
    }
}

/// A set of sporadic tasks plus unrolling parameters.
#[derive(Debug, Clone)]
pub struct SporadicTaskSet {
    /// Machine size.
    pub m: u32,
    /// The tasks.
    pub tasks: Vec<SporadicTask>,
    /// Unroll releases in `[0, horizon)`.
    pub horizon: Time,
    /// Seed for the sporadic jitter.
    pub seed: u64,
}

impl SporadicTaskSet {
    /// Total utilization `Σ W_i / T_i` (the machine is overloaded in the
    /// long run iff this exceeds `m`).
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(SporadicTask::utilization).sum()
    }

    /// Unroll into an online [`Instance`]; also returns `task_of_job`
    /// (the task index of each job, indexed by job id).
    ///
    /// # Errors
    /// If the configuration yields no releases before the horizon.
    pub fn generate(&self) -> Result<(Instance, Vec<usize>)> {
        if self.tasks.is_empty() {
            return Err(SchedError::InvalidInstance("no tasks".into()));
        }
        let mut rng = Rng64::seed_from(self.seed);
        // (arrival, task index) events.
        let mut events: Vec<(Time, usize)> = Vec::new();
        for (ti, task) in self.tasks.iter().enumerate() {
            assert!(task.period > 0, "period must be positive");
            let mut t = if task.jitter > 0 {
                rng.gen_range_inclusive(0, task.jitter)
            } else {
                0
            };
            while t < self.horizon.ticks() {
                events.push((Time(t), ti));
                let gap = task.period
                    + if task.jitter > 0 {
                        rng.gen_range_inclusive(0, task.jitter)
                    } else {
                        0
                    };
                t += gap;
            }
        }
        if events.is_empty() {
            return Err(SchedError::InvalidInstance(
                "horizon too short: no releases".into(),
            ));
        }
        events.sort_by_key(|&(t, ti)| (t, ti));
        let mut jobs = Vec::with_capacity(events.len());
        let mut task_of_job = Vec::with_capacity(events.len());
        for (i, (arrival, ti)) in events.iter().enumerate() {
            let task = &self.tasks[*ti];
            jobs.push(JobSpec::new(
                JobId(i as u32),
                *arrival,
                task.dag.clone(),
                StepProfitFn::deadline(task.rel_deadline, task.profit),
            ));
            task_of_job.push(*ti);
        }
        Ok((Instance::new(self.m, jobs)?, task_of_job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::gen;

    fn task(w_width: u32, period: u64, d: u64) -> SporadicTask {
        SporadicTask {
            dag: gen::block(w_width, 2).into_shared(),
            period,
            rel_deadline: Time(d),
            profit: 1,
            jitter: 0,
        }
    }

    #[test]
    fn utilization_and_density() {
        let t = task(10, 40, 25); // W = 20
        assert!((t.utilization() - 0.5).abs() < 1e-12);
        assert!((t.density() - 20.0 / 25.0).abs() < 1e-12);
        assert!(!t.is_heavy());
        let heavy = task(20, 100, 30); // W = 40 > D = 30
        assert!(heavy.is_heavy());
    }

    #[test]
    fn periodic_unrolling_counts_and_order() {
        let set = SporadicTaskSet {
            m: 4,
            tasks: vec![task(2, 10, 10), task(3, 25, 20)],
            horizon: Time(100),
            seed: 0,
        };
        let (inst, map) = set.generate().unwrap();
        // Task 0: releases at 0,10,...,90 = 10; task 1: 0,25,50,75 = 4.
        assert_eq!(inst.len(), 14);
        assert_eq!(map.iter().filter(|&&t| t == 0).count(), 10);
        assert_eq!(map.iter().filter(|&&t| t == 1).count(), 4);
        assert!(inst.jobs().windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // total utilization: 4/10·... task0 W=4 per 10 => .4; task1 W=6 per 25 = .24
        assert!((set.total_utilization() - 0.64).abs() < 1e-12);
    }

    #[test]
    fn sporadic_jitter_spreads_releases_but_respects_min_separation() {
        let mut t = task(2, 10, 10);
        t.jitter = 5;
        let set = SporadicTaskSet {
            m: 2,
            tasks: vec![t],
            horizon: Time(500),
            seed: 7,
        };
        let (inst, _) = set.generate().unwrap();
        let arrivals: Vec<u64> = inst.jobs().iter().map(|j| j.arrival.ticks()).collect();
        for w in arrivals.windows(2) {
            assert!(w[1] - w[0] >= 10, "separation below the period");
            assert!(w[1] - w[0] <= 20, "gap beyond period + 2·jitter");
        }
        // Fewer releases than the strictly periodic 50.
        assert!(arrivals.len() < 50);
        assert!(arrivals.len() > 30);
    }

    #[test]
    fn generate_is_deterministic() {
        let set = SporadicTaskSet {
            m: 2,
            tasks: vec![SporadicTask {
                jitter: 3,
                ..task(2, 10, 10)
            }],
            horizon: Time(200),
            seed: 9,
        };
        let (a, _) = set.generate().unwrap();
        let (b, _) = set.generate().unwrap();
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.arrival, y.arrival);
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let empty = SporadicTaskSet {
            m: 2,
            tasks: vec![],
            horizon: Time(10),
            seed: 0,
        };
        assert!(empty.generate().is_err());
        let no_releases = SporadicTaskSet {
            m: 2,
            tasks: vec![task(1, 10, 5)],
            horizon: Time(0),
            seed: 0,
        };
        assert!(no_releases.generate().is_err());
    }
}
