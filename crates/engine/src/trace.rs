//! Execution traces and schedule-quality metrics.
//!
//! When [`SimConfig::record_trace`](crate::SimConfig) is set, the engine
//! records every tick's allocation. [`Trace`] post-processes that record
//! into the quantities the paper's future-work section cares about —
//! preemption counts, processor utilization, per-job response times — and
//! the Gantt-style dump used by the examples.

use dagsched_core::{JobId, Time};

/// One tick's processor assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTick {
    /// The tick this record covers.
    pub at: Time,
    /// `(job, processors granted)`, in the order the scheduler listed them.
    pub alloc: Vec<(JobId, u32)>,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ticks: Vec<TraceTick>,
}

/// Aggregate schedule-quality metrics derived from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Ticks with at least one processor busy.
    pub busy_ticks: u64,
    /// Σ processors granted over all ticks.
    pub processor_ticks: u64,
    /// Mean fraction of `m` granted over busy ticks.
    pub mean_utilization: f64,
    /// Number of *preemptions*: a job held processors at tick `t`, was
    /// alive, but held none at the next recorded tick (its final tick
    /// before completion does not count).
    pub preemptions: u64,
    /// Number of *allotment changes*: consecutive ticks where a job's
    /// processor count changed (excluding 0↔k transitions counted above).
    pub resize_events: u64,
    /// Distinct jobs that ever ran.
    pub jobs_run: usize,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Record one tick (engine hook).
    pub fn push(&mut self, at: Time, alloc: &[(JobId, u32)]) {
        self.ticks.push(TraceTick {
            at,
            alloc: alloc.to_vec(),
        });
    }

    /// The raw per-tick records.
    pub fn ticks(&self) -> &[TraceTick] {
        &self.ticks
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// First tick at which a job held processors.
    pub fn first_start(&self, id: JobId) -> Option<Time> {
        self.ticks
            .iter()
            .find(|t| t.alloc.iter().any(|(j, _)| *j == id))
            .map(|t| t.at)
    }

    /// Total processor-ticks granted to one job.
    pub fn processor_ticks_of(&self, id: JobId) -> u64 {
        self.ticks
            .iter()
            .flat_map(|t| t.alloc.iter())
            .filter(|(j, _)| *j == id)
            .map(|(_, k)| *k as u64)
            .sum()
    }

    /// Compute aggregate statistics for a machine of `m` processors.
    ///
    /// `completions` maps jobs to their completion times so the final
    /// descheduling of a finished job is not counted as a preemption.
    pub fn stats(&self, m: u32, completions: &[(JobId, Time)]) -> TraceStats {
        use std::collections::HashMap;
        let done: HashMap<JobId, Time> = completions.iter().copied().collect();
        let mut busy_ticks = 0u64;
        let mut processor_ticks = 0u64;
        let mut util_sum = 0.0f64;
        let mut preemptions = 0u64;
        let mut resize_events = 0u64;
        let mut jobs: std::collections::HashSet<JobId> = std::collections::HashSet::new();

        let mut prev: HashMap<JobId, u32> = HashMap::new();
        for (i, t) in self.ticks.iter().enumerate() {
            let granted: u64 = t.alloc.iter().map(|(_, k)| *k as u64).sum();
            if granted > 0 {
                busy_ticks += 1;
                util_sum += granted as f64 / m as f64;
            }
            processor_ticks += granted;
            let cur: HashMap<JobId, u32> = t.alloc.iter().copied().collect();
            for &id in cur.keys() {
                jobs.insert(id);
            }
            // Compare against the previous tick only if it is adjacent in
            // simulated time (idle gaps are skipped by the engine).
            if i > 0 && self.ticks[i - 1].at.after(1) == t.at {
                for (&id, &k_prev) in &prev {
                    match cur.get(&id) {
                        None => {
                            // Deschedule: preemption unless it completed at
                            // exactly this boundary.
                            if done.get(&id) != Some(&t.at) {
                                preemptions += 1;
                            }
                        }
                        Some(&k_cur) if k_cur != k_prev => resize_events += 1,
                        Some(_) => {}
                    }
                }
            }
            prev = cur;
        }
        TraceStats {
            busy_ticks,
            processor_ticks,
            mean_utilization: if busy_ticks > 0 {
                util_sum / busy_ticks as f64
            } else {
                0.0
            },
            preemptions,
            resize_events,
            jobs_run: jobs.len(),
        }
    }

    /// A compact textual Gantt-like dump (one line per tick), for debugging
    /// and the examples. Only the first `max_ticks` ticks are rendered.
    pub fn render(&self, max_ticks: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in self.ticks.iter().take(max_ticks) {
            let _ = write!(out, "t={:<6}", t.at.ticks());
            for (j, k) in &t.alloc {
                let _ = write!(out, " {j}x{k}");
            }
            let _ = writeln!(out);
        }
        if self.ticks.len() > max_ticks {
            let _ = writeln!(out, "... ({} more ticks)", self.ticks.len() - max_ticks);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(v: u32) -> JobId {
        JobId(v)
    }

    #[test]
    fn empty_trace_stats() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        let s = tr.stats(4, &[]);
        assert_eq!(s.busy_ticks, 0);
        assert_eq!(s.preemptions, 0);
        assert_eq!(s.mean_utilization, 0.0);
        assert_eq!(s.jobs_run, 0);
    }

    #[test]
    fn utilization_and_processor_ticks() {
        let mut tr = Trace::new();
        tr.push(Time(0), &[(j(0), 4)]);
        tr.push(Time(1), &[(j(0), 2)]);
        tr.push(Time(2), &[]);
        let s = tr.stats(4, &[]);
        assert_eq!(s.busy_ticks, 2);
        assert_eq!(s.processor_ticks, 6);
        assert!((s.mean_utilization - 0.75).abs() < 1e-12); // (1.0 + 0.5)/2
        assert_eq!(s.jobs_run, 1);
    }

    #[test]
    fn preemption_vs_completion_vs_resize() {
        let mut tr = Trace::new();
        tr.push(Time(0), &[(j(0), 2), (j(1), 1)]);
        tr.push(Time(1), &[(j(0), 1)]); // j1 descheduled, j0 resized
        tr.push(Time(2), &[(j(2), 1)]); // j0 descheduled
                                        // j0 completed at the t=2 boundary -> not a preemption; j1 was
                                        // preempted at t=1.
        let s = tr.stats(4, &[(j(0), Time(2))]);
        assert_eq!(s.preemptions, 1);
        assert_eq!(s.resize_events, 1);
        assert_eq!(s.jobs_run, 3);
    }

    #[test]
    fn idle_gaps_do_not_create_phantom_preemptions() {
        let mut tr = Trace::new();
        tr.push(Time(0), &[(j(0), 1)]);
        // Next recorded tick is far in the future (engine skipped the gap):
        tr.push(Time(100), &[(j(1), 1)]);
        let s = tr.stats(2, &[]);
        assert_eq!(s.preemptions, 0, "non-adjacent ticks are not compared");
    }

    #[test]
    fn per_job_queries() {
        let mut tr = Trace::new();
        tr.push(Time(5), &[(j(0), 2)]);
        tr.push(Time(6), &[(j(0), 2), (j(1), 1)]);
        assert_eq!(tr.first_start(j(0)), Some(Time(5)));
        assert_eq!(tr.first_start(j(1)), Some(Time(6)));
        assert_eq!(tr.first_start(j(9)), None);
        assert_eq!(tr.processor_ticks_of(j(0)), 4);
        assert_eq!(tr.processor_ticks_of(j(1)), 1);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn render_is_bounded() {
        let mut tr = Trace::new();
        for t in 0..10 {
            tr.push(Time(t), &[(j(0), 1)]);
        }
        let out = tr.render(3);
        assert_eq!(out.lines().count(), 4, "{out}");
        assert!(out.contains("7 more ticks"));
        assert!(out.contains("t=0"));
    }
}
