//! The platform layer: machine-size and speed accounting.
//!
//! A [`Platform`] owns what the paper calls the machine — `m` processors
//! organized as [`MachineGroups`] of identical speed — plus the two things
//! that follow directly from it: exact speed arithmetic (per-processor
//! `units` scaled work units per tick at a common lcm `scale`) and per-tick
//! allocation validation (every grant to an alive job, every count ≥ 1, no
//! duplicates, total ≤ `m`). The processed scaled-units counter also lives
//! here, since it is the platform's view of consumed capacity.
//!
//! ## Placement order
//!
//! Allocation entries name *counts*, not processors; the platform fixes
//! which concrete processors an entry consumes by materializing a placement
//! order at construction: `proc_units[p]` / `proc_group[p]` describe the
//! `p`-th processor handed out. Entries consume processors sequentially
//! (a cursor walks the order), so the `i`-th node picked for an entry binds
//! to processor `cursor + i`. Group-aware schedulers get fastest-first
//! order (descending units, ascending group index on ties); aggregate-blind
//! schedulers get declaration order — on a uniform platform the two orders
//! coincide, which is what keeps uniform runs byte-identical regardless of
//! awareness.

use crate::sched_api::Allocation;
use dagsched_core::{JobId, MachineGroups, Result, SchedError, Speed, Time};

/// The simulated machine: size, speed groups, and capacity accounting. See
/// the [module docs](self).
#[derive(Debug, Clone)]
pub struct Platform {
    m: u32,
    speed: Speed,
    groups: MachineGroups,
    scale: u64,
    /// Per-processor scaled units per tick, in placement order.
    proc_units: Vec<u64>,
    /// Owning group index of each processor, aligned with `proc_units`.
    proc_group: Vec<u32>,
    /// `Some(units)` iff every processor runs at the same speed.
    uniform_units: Option<u64>,
    units_processed: u64,
    /// Validation scratch, dense by job index; entries are set and cleared
    /// within one [`validate`](Platform::validate) call, keeping validation
    /// O(|alloc|).
    granted: Vec<bool>,
}

impl Platform {
    /// A uniform machine of `m` processors at `speed`, for an instance of
    /// `n` jobs. The single-group case of
    /// [`with_groups`](Platform::with_groups).
    #[cfg(test)]
    fn new(m: u32, speed: Speed, n: usize) -> Platform {
        let groups = MachineGroups::uniform(m, speed).expect("uniform group is valid for m >= 1");
        Platform::with_groups(groups, false, n)
    }

    /// A machine described by `groups`, for an instance of `n` jobs.
    ///
    /// `fastest_first` selects the placement order: `true` (group-aware
    /// schedulers) orders processors by descending units then ascending
    /// group index; `false` keeps declaration order.
    pub(crate) fn with_groups(groups: MachineGroups, fastest_first: bool, n: usize) -> Platform {
        let m = groups.total();
        let scale = groups.work_scale();
        let mut order: Vec<u32> = (0..groups.len() as u32).collect();
        if fastest_first {
            order.sort_by(|&a, &b| {
                groups
                    .units(b as usize)
                    .cmp(&groups.units(a as usize))
                    .then(a.cmp(&b))
            });
        }
        let mut proc_units = Vec::with_capacity(m as usize);
        let mut proc_group = Vec::with_capacity(m as usize);
        for &g in &order {
            let grp = &groups.groups()[g as usize];
            let u = groups.units(g as usize);
            for _ in 0..grp.count {
                proc_units.push(u);
                proc_group.push(g);
            }
        }
        let uniform_units = groups.uniform_speed().map(|_| groups.units(0));
        // Reporting speed: the uniform speed, or the fastest group's speed
        // on a heterogeneous platform (what `on_start` serializes).
        let speed = groups.uniform_speed().unwrap_or_else(|| {
            let fastest = (0..groups.len())
                .max_by(|&a, &b| {
                    groups.groups()[a]
                        .speed
                        .cmp_exact(groups.groups()[b].speed)
                        .then(b.cmp(&a))
                })
                .expect("groups are non-empty");
            groups.groups()[fastest].speed
        });
        Platform {
            m,
            speed,
            groups,
            scale,
            proc_units,
            proc_group,
            uniform_units,
            units_processed: 0,
            granted: vec![false; n],
        }
    }

    /// Machine size (total processors over all groups).
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Reporting speed: the uniform speed, or the fastest group's speed on
    /// a heterogeneous platform.
    #[inline]
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// The machine-group description.
    #[inline]
    pub fn groups(&self) -> &MachineGroups {
        &self.groups
    }

    /// The work scale (lcm of group denominators) all node work is
    /// multiplied by.
    #[inline]
    pub fn work_scale(&self) -> u64 {
        self.scale
    }

    /// Scaled work units one processor completes per tick — the uniform
    /// value, or the fastest processor's on a heterogeneous platform.
    #[inline]
    pub fn units_per_tick(&self) -> u64 {
        self.uniform_units
            .unwrap_or_else(|| *self.proc_units.iter().max().expect("m >= 1"))
    }

    /// `Some(units)` iff every processor runs at the same speed — the
    /// scalar-twin fast path.
    #[inline]
    pub fn uniform_units(&self) -> Option<u64> {
        self.uniform_units
    }

    /// Per-processor scaled units per tick, in placement order.
    #[inline]
    pub fn proc_units(&self) -> &[u64] {
        &self.proc_units
    }

    /// Owning group index per processor, in placement order.
    #[inline]
    pub fn proc_group(&self) -> &[u32] {
        &self.proc_group
    }

    /// Scaled work units consumed so far.
    #[inline]
    pub fn scaled_units_processed(&self) -> u64 {
        self.units_processed
    }

    /// Record `u` scaled units of consumed capacity.
    #[inline]
    pub(crate) fn record_units(&mut self, u: u64) {
        self.units_processed += u;
    }

    /// Validate one tick's allocation against the machine and the alive set.
    ///
    /// # Errors
    /// [`SchedError::InvalidAllocation`] on a grant to a dead job, a zero
    /// grant, a duplicated job, or over-subscription past `m` (the message
    /// names the group whose processors ran out).
    pub(crate) fn validate(
        &mut self,
        t: Time,
        alloc: &Allocation,
        is_alive: impl Fn(JobId) -> bool,
    ) -> Result<()> {
        let mut used: u64 = 0;
        let mut bad = None;
        for &(id, k) in alloc {
            if !is_alive(id) {
                bad = Some(format!("tick {t}: job {id} is not alive"));
                break;
            }
            if k == 0 {
                bad = Some(format!("tick {t}: zero processors for {id}"));
                break;
            }
            if self.granted[id.index()] {
                bad = Some(format!("tick {t}: duplicate allocation for {id}"));
                break;
            }
            self.granted[id.index()] = true;
            used += k as u64;
            if used > self.m as u64 {
                let g = self.proc_group[self.m as usize - 1];
                bad = Some(format!(
                    "tick {t}: {used} processors allocated but m = {} \
                     (exhausted at group {g} of {})",
                    self.m, self.groups
                ));
                break;
            }
        }
        for &(id, _) in alloc {
            if id.index() < self.granted.len() {
                self.granted[id.index()] = false;
            }
        }
        match bad {
            Some(msg) => Err(SchedError::InvalidAllocation(msg)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new(2, Speed::new(3, 2).unwrap(), 4)
    }

    #[test]
    fn speed_arithmetic_is_exposed_exactly() {
        let p = platform();
        assert_eq!(p.m(), 2);
        assert_eq!(p.work_scale(), 2);
        assert_eq!(p.units_per_tick(), 3);
        assert_eq!(p.uniform_units(), Some(3));
        assert_eq!(p.proc_units(), &[3, 3]);
        assert_eq!(p.proc_group(), &[0, 0]);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let mut p = platform();
        let alive = |id: JobId| id.index() < 3;
        assert!(p
            .validate(Time(0), &vec![(JobId(0), 1), (JobId(1), 1)], alive)
            .is_ok());
        // Dead job.
        assert!(p.validate(Time(0), &vec![(JobId(3), 1)], alive).is_err());
        // Zero grant.
        assert!(p.validate(Time(0), &vec![(JobId(0), 0)], alive).is_err());
        // Duplicate.
        assert!(p
            .validate(Time(0), &vec![(JobId(0), 1), (JobId(0), 1)], alive)
            .is_err());
        // Over-subscription.
        assert!(p
            .validate(Time(0), &vec![(JobId(0), 2), (JobId(1), 1)], alive)
            .is_err());
        // The scratch is clean after a failure: a good allocation passes.
        assert!(p.validate(Time(1), &vec![(JobId(0), 2)], alive).is_ok());
        assert!(p.validate(Time(2), &vec![(JobId(0), 2)], alive).is_ok());
    }

    #[test]
    fn heterogeneous_placement_orders() {
        // 2 slow (1x) declared first, then 1 fast (2x).
        let groups: MachineGroups = "2x1,1x2".parse().unwrap();
        let blind = Platform::with_groups(groups.clone(), false, 1);
        assert_eq!(blind.m(), 3);
        assert_eq!(blind.work_scale(), 1);
        assert_eq!(blind.uniform_units(), None);
        assert_eq!(blind.proc_units(), &[1, 1, 2], "declaration order");
        assert_eq!(blind.proc_group(), &[0, 0, 1]);
        let aware = Platform::with_groups(groups, true, 1);
        assert_eq!(aware.proc_units(), &[2, 1, 1], "fastest first");
        assert_eq!(aware.proc_group(), &[1, 0, 0]);
        assert_eq!(aware.units_per_tick(), 2, "fastest processor's units");
        assert_eq!(aware.speed(), Speed::new(2, 1).unwrap());
    }

    #[test]
    fn fastest_first_breaks_unit_ties_by_group_index() {
        // Equal speeds in different groups: placement keeps group order.
        let groups: MachineGroups = "1x2,1x2,1x1".parse().unwrap();
        let p = Platform::with_groups(groups, true, 1);
        assert_eq!(p.proc_group(), &[0, 1, 2]);
    }

    #[test]
    fn lcm_scale_spans_groups() {
        let groups: MachineGroups = "1x3/2,1x5/3".parse().unwrap();
        let p = Platform::with_groups(groups, false, 1);
        assert_eq!(p.work_scale(), 6);
        // 3/2 → 9 units at scale 6; 5/3 → 10 units.
        assert_eq!(p.proc_units(), &[9, 10]);
        assert_eq!(p.speed(), Speed::new(5, 3).unwrap(), "fastest group");
    }
}
