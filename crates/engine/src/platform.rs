//! The platform layer: machine-size and speed accounting.
//!
//! A [`Platform`] owns what the paper calls the machine — `m` identical
//! processors running at a rational speed — plus the two things that follow
//! directly from it: exact speed arithmetic (`units` scaled work units per
//! tick at scale `scale`) and per-tick allocation validation (every grant to
//! an alive job, every count ≥ 1, no duplicates, total ≤ `m`). The processed
//! scaled-units counter also lives here, since it is the platform's view of
//! consumed capacity.

use crate::sched_api::Allocation;
use dagsched_core::{JobId, Result, SchedError, Speed, Time};

/// The simulated machine: size, speed, and capacity accounting. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct Platform {
    m: u32,
    speed: Speed,
    scale: u64,
    units: u64,
    units_processed: u64,
    /// Validation scratch, dense by job index; entries are set and cleared
    /// within one [`validate`](Platform::validate) call, keeping validation
    /// O(|alloc|).
    granted: Vec<bool>,
}

impl Platform {
    /// A machine of `m` processors at `speed`, for an instance of `n` jobs.
    pub(crate) fn new(m: u32, speed: Speed, n: usize) -> Platform {
        Platform {
            m,
            speed,
            scale: speed.work_scale(),
            units: speed.units_per_tick(),
            units_processed: 0,
            granted: vec![false; n],
        }
    }

    /// Machine size.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Processor speed (resource augmentation).
    #[inline]
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// The work scale (speed denominator) all node work is multiplied by.
    #[inline]
    pub fn work_scale(&self) -> u64 {
        self.scale
    }

    /// Scaled work units one processor completes per tick (speed numerator).
    #[inline]
    pub fn units_per_tick(&self) -> u64 {
        self.units
    }

    /// Scaled work units consumed so far.
    #[inline]
    pub fn scaled_units_processed(&self) -> u64 {
        self.units_processed
    }

    /// Record `u` scaled units of consumed capacity.
    #[inline]
    pub(crate) fn record_units(&mut self, u: u64) {
        self.units_processed += u;
    }

    /// Validate one tick's allocation against the machine and the alive set.
    ///
    /// # Errors
    /// [`SchedError::InvalidAllocation`] on a grant to a dead job, a zero
    /// grant, a duplicated job, or over-subscription past `m`.
    pub(crate) fn validate(
        &mut self,
        t: Time,
        alloc: &Allocation,
        is_alive: impl Fn(JobId) -> bool,
    ) -> Result<()> {
        let mut used: u64 = 0;
        let mut bad = None;
        for &(id, k) in alloc {
            if !is_alive(id) {
                bad = Some(format!("tick {t}: job {id} is not alive"));
                break;
            }
            if k == 0 {
                bad = Some(format!("tick {t}: zero processors for {id}"));
                break;
            }
            if self.granted[id.index()] {
                bad = Some(format!("tick {t}: duplicate allocation for {id}"));
                break;
            }
            self.granted[id.index()] = true;
            used += k as u64;
            if used > self.m as u64 {
                bad = Some(format!(
                    "tick {t}: {used} processors allocated but m = {}",
                    self.m
                ));
                break;
            }
        }
        for &(id, _) in alloc {
            if id.index() < self.granted.len() {
                self.granted[id.index()] = false;
            }
        }
        match bad {
            Some(msg) => Err(SchedError::InvalidAllocation(msg)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new(2, Speed::new(3, 2).unwrap(), 4)
    }

    #[test]
    fn speed_arithmetic_is_exposed_exactly() {
        let p = platform();
        assert_eq!(p.m(), 2);
        assert_eq!(p.work_scale(), 2);
        assert_eq!(p.units_per_tick(), 3);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let mut p = platform();
        let alive = |id: JobId| id.index() < 3;
        assert!(p
            .validate(Time(0), &vec![(JobId(0), 1), (JobId(1), 1)], alive)
            .is_ok());
        // Dead job.
        assert!(p.validate(Time(0), &vec![(JobId(3), 1)], alive).is_err());
        // Zero grant.
        assert!(p.validate(Time(0), &vec![(JobId(0), 0)], alive).is_err());
        // Duplicate.
        assert!(p
            .validate(Time(0), &vec![(JobId(0), 1), (JobId(0), 1)], alive)
            .is_err());
        // Over-subscription.
        assert!(p
            .validate(Time(0), &vec![(JobId(0), 2), (JobId(1), 1)], alive)
            .is_err());
        // The scratch is clean after a failure: a good allocation passes.
        assert!(p.validate(Time(1), &vec![(JobId(0), 2)], alive).is_ok());
        assert!(p.validate(Time(2), &vec![(JobId(0), 2)], alive).is_ok());
    }
}
